/**
 * @file
 * ltsim — command-line driver for the Lightening-Transformer simulator.
 *
 * Evaluate any paper workload on any modelled accelerator:
 *
 *   ltsim --model deit-t --arch lt-b --bits 4
 *   ltsim --model bert-large --seq 320 --arch mrr --module mha
 *   ltsim --model deit-b --arch mzi --bits 8 --csv
 *   ltsim --list
 *
 * Options:
 *   --model  deit-t | deit-s | deit-b | bert-base | bert-large
 *   --seq    sequence length for BERT models (default 128 / 320)
 *   --arch   lt-b | lt-l | lt-crossbar-b | lt-broadcast-b | mrr | mzi
 *   --bits   4 | 8 (datapath precision, default 4)
 *   --module mha | ffn | all (default all)
 *   --csv    emit one machine-readable CSV row instead of the table
 *   --chip   also print the chip area/power breakdown (LT archs only)
 */

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "arch/chip_model.hh"
#include "arch/performance_model.hh"
#include "baselines/mrr_accelerator.hh"
#include "baselines/mzi_accelerator.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace lt;

struct Options
{
    std::string model = "deit-t";
    std::string arch = "lt-b";
    std::string module = "all";
    size_t seq = 0;
    int bits = 4;
    bool csv = false;
    bool chip = false;
};

void
usage()
{
    std::cout <<
        "usage: ltsim [--model M] [--arch A] [--bits B] [--seq N]\n"
        "             [--module mha|ffn|all] [--csv] [--chip] [--list]\n"
        "models: deit-t deit-s deit-b bert-base bert-large\n"
        "archs:  lt-b lt-l lt-crossbar-b lt-broadcast-b mrr mzi\n";
}

std::optional<nn::PaperModelConfig>
resolveModel(const Options &opt)
{
    if (opt.model == "deit-t")
        return nn::deitTiny();
    if (opt.model == "deit-s")
        return nn::deitSmall();
    if (opt.model == "deit-b")
        return nn::deitBase();
    if (opt.model == "bert-base")
        return nn::bertBase(opt.seq ? opt.seq : 128);
    if (opt.model == "bert-large")
        return nn::bertLarge(opt.seq ? opt.seq : 320);
    return std::nullopt;
}

std::optional<arch::ArchConfig>
resolveLtArch(const Options &opt)
{
    arch::ArchConfig cfg;
    if (opt.arch == "lt-b")
        cfg = arch::ArchConfig::ltBase();
    else if (opt.arch == "lt-l")
        cfg = arch::ArchConfig::ltLarge();
    else if (opt.arch == "lt-crossbar-b")
        cfg = arch::ArchConfig::ltCrossbarBase();
    else if (opt.arch == "lt-broadcast-b")
        cfg = arch::ArchConfig::ltBroadcastBase();
    else
        return std::nullopt;
    cfg.precision_bits = opt.bits;
    return cfg;
}

std::vector<nn::GemmOp>
selectOps(const nn::Workload &wl, const std::string &module)
{
    if (module == "mha")
        return wl.moduleOps(nn::Module::Mha);
    if (module == "ffn")
        return wl.moduleOps(nn::Module::Ffn);
    return wl.ops;
}

void
printReport(const arch::PerfReport &r, const Options &opt)
{
    if (opt.csv) {
        std::cout << r.accelerator << "," << r.workload << ","
                  << opt.module << "," << opt.bits << ","
                  << units::fmtSci(r.energy.total(), 6) << ","
                  << units::fmtSci(r.latency.total(), 6) << ","
                  << units::fmtSci(r.edp(), 6) << "\n";
        return;
    }
    Table table({"accelerator", "workload", "module", "bits",
                 "energy", "latency", "EDP [J*s]", "FPS"});
    table.addRow({r.accelerator, r.workload, opt.module,
                  std::to_string(opt.bits),
                  units::fmtEnergy(r.energy.total()),
                  units::fmtTime(r.latency.total()),
                  units::fmtSci(r.edp(), 3),
                  units::fmtFixed(1.0 / r.latency.total(), 0)});
    table.print(std::cout);

    Table breakdown({"component", "energy", "share [%]"});
    const auto &e = r.energy;
    auto row = [&](const char *name, double v) {
        if (v > 0.0)
            breakdown.addRow({name, units::fmtEnergy(v),
                              units::fmtFixed(v / e.total() * 100.0,
                                              1)});
    };
    row("laser", e.laser);
    row("op1 DAC", e.op1_dac);
    row("op1 modulation", e.op1_mod);
    row("op2 DAC", e.op2_dac);
    row("op2 modulation", e.op2_mod);
    row("detection (PD+TIA)", e.detection);
    row("ADC", e.adc);
    row("data movement", e.data_movement);
    row("static (mem+digital)", e.static_other);
    breakdown.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                lt_fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--model")
            opt.model = next();
        else if (arg == "--arch")
            opt.arch = next();
        else if (arg == "--module")
            opt.module = next();
        else if (arg == "--seq")
            opt.seq = static_cast<size_t>(std::stoul(next()));
        else if (arg == "--bits")
            opt.bits = std::stoi(next());
        else if (arg == "--csv")
            opt.csv = true;
        else if (arg == "--chip")
            opt.chip = true;
        else if (arg == "--list") {
            usage();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            lt_fatal("unknown argument ", arg);
        }
    }
    if (opt.bits != 4 && opt.bits != 8)
        lt_fatal("--bits must be 4 or 8");
    if (opt.module != "mha" && opt.module != "ffn" &&
        opt.module != "all")
        lt_fatal("--module must be mha, ffn, or all");

    auto model = resolveModel(opt);
    if (!model) {
        usage();
        lt_fatal("unknown model ", opt.model);
    }
    nn::Workload wl = nn::extractWorkload(*model);
    auto ops = selectOps(wl, opt.module);
    std::string label = wl.model + "/" + opt.module;

    if (auto lt_cfg = resolveLtArch(opt)) {
        arch::LtPerformanceModel perf(*lt_cfg);
        printReport(perf.evaluateOps(ops, label), opt);
        if (opt.chip && !opt.csv) {
            arch::ChipModel chip(*lt_cfg);
            auto a = chip.area();
            auto p = chip.power(opt.bits);
            std::cout << "\nchip: "
                      << units::fmtAreaMm2(a.total()) << ", "
                      << units::fmtPower(p.total()) << " peak, "
                      << units::fmtFixed(chip.opticalTops(), 1)
                      << " TOPS\n";
        }
        return 0;
    }
    if (opt.arch == "mrr") {
        baselines::MrrConfig cfg;
        cfg.precision_bits = opt.bits;
        baselines::MrrAccelerator mrr(cfg);
        printReport(mrr.evaluateOps(ops, label), opt);
        return 0;
    }
    if (opt.arch == "mzi") {
        baselines::MziConfig zc;
        zc.precision_bits = opt.bits;
        baselines::MziAccelerator mzi(zc);
        baselines::MrrConfig mc;
        mc.precision_bits = opt.bits;
        baselines::MrrAccelerator mha_fallback(mc);
        arch::PerfReport r;
        r.accelerator = "MZI-array+MRR(MHA)";
        r.workload = label;
        for (const auto &op : ops) {
            r += op.dynamic ? mha_fallback.evaluateGemm(op)
                            : mzi.evaluateGemm(op);
        }
        printReport(r, opt);
        return 0;
    }
    usage();
    lt_fatal("unknown arch ", opt.arch);
}
