/**
 * @file
 * End-to-end continuous-batching demo: a serve::Server on the noisy
 * photonic engine, hammered by concurrent client threads.
 *
 * Three clients submit staggered generation requests (some with tight
 * deadlines) against one shared ExecutionEngine while the serving
 * thread continuously admits, prefills, and lockstep-decodes them
 * through nn::BatchedDecoder. Every request opens with the same
 * system prompt, served out of the paged KV block pool: the prefix
 * encodes once, later requests map it copy-on-write, and the demo
 * prints the pool's sharing stats (hits, shared blocks, resident
 * bytes) alongside the usual metrics — queue depth, TTFT, per-token
 * latency percentiles, throughput, and fused dispatch counters.
 *
 * With --trace [path] (default serve_trace.json) the whole run is
 * recorded through obs::TraceRecorder and exported as Chrome/Perfetto
 * trace_event JSON — open it in chrome://tracing or ui.perfetto.dev
 * to see every request's lifecycle lane and the scheduler's per-tick
 * phase spans — and the derived per-phase time breakdown is printed.
 *
 *   cmake --build build && ./build/serve_demo [--trace [path]]
 */

#include <chrono>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/execution_engine.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "serve/server.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace lt;

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--trace") {
            trace_path = "serve_trace.json";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                trace_path = argv[++i];
        } else {
            std::cerr << "usage: serve_demo [--trace [path]]\n";
            return 2;
        }
    }
    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!trace_path.empty()) {
        recorder = std::make_unique<obs::TraceRecorder>(1 << 16);
        obs::installRecorder(recorder.get());
    }

    printBanner(std::cout,
                "Continuous-batching serve demo (3 clients, "
                "noisy engine)");

    // A small causal LM stand-in and the shared multi-core engine.
    nn::TransformerConfig cfg;
    cfg.dim = 32;
    cfg.depth = 2;
    cfg.heads = 2;
    cfg.mlp_hidden = 64;
    cfg.vocab_size = 64;
    cfg.num_classes = 64;
    cfg.max_tokens = 64;
    cfg.pooling = nn::Pooling::LastToken;
    cfg.causal = true;
    nn::TransformerClassifier model(cfg);

    core::DptcConfig dptc;
    dptc.input_bits = 8;
    nn::ExecutionEngine engine(dptc, core::EvalMode::Noisy);

    serve::ServerConfig scfg;
    scfg.scheduler.max_batch = 6;
    scfg.quant = nn::QuantConfig::w8a8();
    // Paged KV memory: 8-token blocks, 96-block budget. Requests
    // sharing the system prompt below map its blocks copy-on-write
    // instead of re-encoding them.
    scfg.kv_pool.block_tokens = 8;
    scfg.kv_pool.num_blocks = 96;
    serve::Server server(model, engine, scfg);
    server.start();

    // One system prompt shared by every client, like a deployed
    // assistant persona: the pool encodes its KV once and hands the
    // same blocks to all later requests.
    const std::vector<int> kSystemPrompt = {7, 21, 3, 42, 11, 58};

    // Load generator: each client thread submits a burst of requests
    // with its own prompt mix and waits on the futures.
    const size_t kClients = 3, kPerClient = 4;
    struct Outcome
    {
        uint64_t id;
        size_t tokens;
        bool expired;
        double ttft_ms;
        double total_ms;
    };
    std::vector<std::future<std::vector<Outcome>>> clients;
    for (size_t c = 0; c < kClients; ++c) {
        clients.push_back(std::async(std::launch::async, [&, c] {
            Rng rng(0xC11E + c);
            std::vector<Outcome> outcomes;
            for (size_t i = 0; i < kPerClient; ++i) {
                serve::Request req;
                req.prompt = kSystemPrompt;
                req.shared_prefix_tokens = kSystemPrompt.size();
                size_t suffix_len =
                    4 + static_cast<size_t>(rng.uniformInt(0, 6));
                for (size_t t = 0; t < suffix_len; ++t)
                    req.prompt.push_back(static_cast<int>(
                        rng.uniformInt(0, 63)));
                req.max_new_tokens =
                    6 + static_cast<size_t>(rng.uniformInt(0, 10));
                if (i == kPerClient - 1)
                    // The last request of each client is latency-
                    // critical: expire it rather than serve it late.
                    req.deadline = std::chrono::milliseconds(250);
                auto future = server.submit(std::move(req));
                serve::RequestResult r = future.get();
                outcomes.push_back({r.request_id,
                                    r.generated.size(), r.expired,
                                    r.ttft_ms, r.total_ms});
                // Staggered arrivals: keep the batch composition
                // changing mid-flight.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(3 * (c + 1)));
            }
            return outcomes;
        }));
    }

    Table table({"client", "request", "tokens", "expired",
                 "TTFT [ms]", "total [ms]"});
    for (size_t c = 0; c < kClients; ++c) {
        std::vector<Outcome> outcomes = clients[c].get();
        for (const Outcome &o : outcomes)
            table.addRow({std::to_string(c), std::to_string(o.id),
                          std::to_string(o.tokens),
                          o.expired ? "yes" : "no",
                          units::fmtFixed(o.ttft_ms, 2),
                          units::fmtFixed(o.total_ms, 2)});
    }
    server.drain();
    table.print(std::cout);

    serve::MetricsSnapshot m = server.metrics();
    Table stats({"submitted", "completed", "expired", "tokens",
                 "tokens/s", "TTFT p50/p99 [ms]",
                 "token p50/p99 [ms]", "decode ticks",
                 "engine batches"});
    stats.addRow({std::to_string(m.submitted),
                  std::to_string(m.completed),
                  std::to_string(m.expired),
                  std::to_string(m.tokens_generated),
                  units::fmtFixed(m.tokens_per_s, 1),
                  units::fmtFixed(m.ttft_p50_ms, 1) + " / " +
                      units::fmtFixed(m.ttft_p99_ms, 1),
                  units::fmtFixed(m.token_p50_ms, 1) + " / " +
                      units::fmtFixed(m.token_p99_ms, 1),
                  std::to_string(m.decode_ticks),
                  std::to_string(m.engine_batch_calls)});
    stats.print(std::cout);

    const serve::KvPoolStats &p = m.kv_pool;
    Table pool({"prefix hits", "misses", "peak shared blocks",
                "peak used blocks", "evictions", "recomputes",
                "peak resident KV"});
    pool.addRow({std::to_string(p.prefix_hits),
                 std::to_string(p.prefix_misses),
                 std::to_string(p.peak_shared_blocks),
                 std::to_string(p.peak_used_blocks) + " / " +
                     std::to_string(p.total_blocks),
                 std::to_string(p.evictions),
                 std::to_string(p.recomputes),
                 units::fmtFixed(
                     static_cast<double>(p.peak_resident_bytes) /
                         1024.0,
                     1) +
                     " KiB"});
    std::cout << "\nPaged KV pool (" << p.total_blocks << " blocks x "
              << scfg.kv_pool.block_tokens << " tokens):\n";
    pool.print(std::cout);

    std::cout
        << "\nAll requests decoded in lockstep on one engine: each "
           "fused step issues\nO(layers) gemmBatch dispatches however "
           "many requests are active, and every\nrequest's logits are "
           "bit-identical to running it alone on its noise lane\n"
           "(tests/test_serve.cc and bench_serve_throughput assert "
           "both). The shared\nsystem prompt encoded once: every "
           "request after the first mapped its KV\nblocks "
           "copy-on-write instead of re-running prefill over the "
           "prefix.\n";

    // After drain every request reservation is released; only the
    // warm-cached system-prompt prefix (idle, evictable) stays
    // resident — so committed == materialized.
    bool ok = m.completed == m.submitted && m.tokens_generated > 0 &&
              p.prefix_hits > 0 && p.prefix_misses >= 1 &&
              p.used_blocks == p.resident_blocks;

    if (recorder) {
        obs::installRecorder(nullptr);
        const bool wrote =
            obs::writeChromeTraceFile(trace_path, *recorder);
        if (!wrote) {
            std::cerr << "FAILED to write trace to " << trace_path
                      << "\n";
            ok = false;
        } else {
            std::cout << "\nwrote " << trace_path << " ("
                      << recorder->threadLanes() << " thread lane(s), "
                      << m.submitted << " request lanes, "
                      << recorder->droppedEvents()
                      << " dropped events) — load it in "
                         "chrome://tracing or ui.perfetto.dev\n";
            obs::writePhaseBreakdown(
                std::cout, obs::phaseBreakdown(recorder->snapshot()));
        }
    }
    return ok ? 0 : 1;
}
