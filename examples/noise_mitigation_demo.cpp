/**
 * @file
 * Noise-mitigation demo (the Section V-E extension hook): measure the
 * per-wavelength dispersion coefficients of a DDot with basis-vector
 * probes, then compare raw vs calibrated GEMM error as the wavelength
 * count scales toward the 112-channel FSR limit. Calibration removes
 * the deterministic dispersion error entirely, so spectral
 * parallelism can scale without an accuracy tax.
 *
 * Build & run:  ./build/examples/noise_mitigation_demo
 */

#include <iostream>

#include "core/calibration.hh"
#include "core/dptc.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;

    printBanner(std::cout,
                "Per-wavelength calibration vs dispersion error");

    Table table({"wavelengths", "raw mean err", "calibrated mean err",
                 "reduction"});
    for (size_t nl : {12, 24, 48, 96, 112}) {
        core::DptcConfig base;
        base.nlambda = nl;
        base.input_bits = 8;
        base.noise = core::NoiseConfig::ideal();
        base.noise.enable_dispersion = true;
        core::DptcConfig calibrated = base;
        calibrated.channel_calibration = true;

        core::Dptc raw(base), cal(calibrated);
        Rng rng(nl);
        Matrix a(12, nl), b(nl, 12);
        for (double &v : a.data())
            v = rng.uniform(-1.0, 1.0);
        for (double &v : b.data())
            v = rng.uniform(-1.0, 1.0);
        Matrix ref = a * b;

        RunningStats raw_err, cal_err;
        Matrix r1 = raw.multiply(a, b, core::EvalMode::Noisy);
        Matrix r2 = cal.multiply(a, b, core::EvalMode::Noisy);
        for (size_t i = 0; i < ref.data().size(); ++i) {
            raw_err.add(std::abs(r1.data()[i] - ref.data()[i]));
            cal_err.add(std::abs(r2.data()[i] - ref.data()[i]));
        }
        table.addRow({std::to_string(nl),
                      units::fmtSci(raw_err.mean(), 2),
                      units::fmtSci(cal_err.mean(), 2),
                      units::fmtFixed(raw_err.mean() /
                                          std::max(cal_err.mean(),
                                                   1e-30), 0) +
                          "x"});
    }
    table.print(std::cout);

    std::cout
        << "\nThe raw dispersion error grows with spectral "
           "parallelism (first-order in\nthe kappa deviation); probe-"
           "based calibration measures the static per-channel\n"
           "coefficients once and cancels them digitally. The "
           "calibrated error is pinned\nat the 8-bit DAC quantization "
           "floor, so the reduction factor grows with the\nwavelength "
           "count — at the 112-channel FSR limit calibration buys "
           "~5x, letting\nspectral parallelism scale without an "
           "accuracy tax.\n";
    return 0;
}
