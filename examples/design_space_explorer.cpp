/**
 * @file
 * Architecture design-space exploration with the public API: sweep
 * tile count, core size, and precision; report area / power / peak
 * TOPS / DeiT-T latency+energy; and pick the best-EDP configuration
 * under an area budget — the kind of study Section V-B's scaling
 * figures support.
 *
 * Build & run:  ./build/examples/design_space_explorer
 */

#include <iostream>
#include <limits>

#include "arch/chip_model.hh"
#include "arch/performance_model.hh"
#include "nn/model_zoo.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout,
                "Design-space exploration (DeiT-T, 4-bit)");

    nn::Workload wl = nn::extractWorkload(nn::deitTiny());
    constexpr double kAreaBudgetMm2 = 120.0;

    Table table({"config", "area [mm^2]", "power [W]", "peak TOPS",
                 "DeiT-T lat [us]", "DeiT-T E [uJ]", "EDP [nJ*s]",
                 "fits budget"});
    std::string best_name = "-";
    double best_edp = std::numeric_limits<double>::infinity();

    for (size_t nt : {2, 4, 8}) {
        for (size_t core : {8, 12, 16, 24}) {
            ArchConfig cfg = ArchConfig::ltBase();
            cfg.nt = nt;
            cfg.nh = cfg.nv = cfg.nlambda = core;
            cfg.name = "Nt" + std::to_string(nt) + "-N" +
                       std::to_string(core);
            ChipModel chip(cfg);
            LtPerformanceModel model(cfg);
            auto r = model.evaluate(wl);
            double area_mm2 = chip.area().total() * 1e6;
            bool fits = area_mm2 <= kAreaBudgetMm2;
            if (fits && r.edp() < best_edp) {
                best_edp = r.edp();
                best_name = cfg.name;
            }
            table.addRow(
                {cfg.name, units::fmtFixed(area_mm2, 1),
                 units::fmtFixed(chip.power(4).total(), 2),
                 units::fmtFixed(chip.opticalTops(), 0),
                 units::fmtFixed(r.latency.total() * 1e6, 2),
                 units::fmtFixed(r.energy.total() * 1e6, 1),
                 units::fmtFixed(r.edp() * 1e9, 3),
                 fits ? "yes" : "no"});
        }
    }
    table.print(std::cout);

    std::cout << "\nbest-EDP configuration within "
              << units::fmtFixed(kAreaBudgetMm2, 0)
              << " mm^2: " << best_name << " (EDP "
              << units::fmtSci(best_edp) << " J*s)\n";
    std::cout << "Larger cores raise peak TOPS but pay DAC/laser "
                 "power; more tiles scale\nthroughput linearly until "
                 "the area budget bites — the Fig. 9/10 trade-off.\n";
    return 0;
}
