/**
 * @file
 * LLM decode on the photonic accelerator (paper Section VI-B), in two
 * parts:
 *
 *  1. an analytic roofline of a BERT-large-sized decoder: per-token
 *     decode is memory-bound at batch 1, and batching trades KV-cache
 *     traffic for much better photonic-compute utilization;
 *  2. a LIVE decode loop: an nn::InferenceSession generating tokens
 *     autoregressively on the noisy photonic ExecutionEngine with a
 *     growing K/V cache, cross-checking the MACs the engine actually
 *     executed per step against the analytic decodeStepWorkload()
 *     prediction.
 *
 * Build & run:  ./build/llm_decode_demo
 */

#include <algorithm>
#include <iostream>

#include "arch/performance_model.hh"
#include "nn/execution_engine.hh"
#include "nn/inference_session.hh"
#include "nn/llm_workload.hh"
#include "nn/tensor_ops.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;

    printBanner(std::cout,
                "Autoregressive decode on LT-B (BERT-large-sized "
                "decoder stand-in)");

    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    cfg.precision_bits = 8;
    arch::LtPerformanceModel lt_model(cfg);
    auto model = nn::bertLarge(1);

    std::cout << "model GEMM parameters: "
              << nn::gemmParamCount(model) / 1000000 << "M\n\n";

    Table table({"context", "batch", "intensity [MAC/B]",
                 "step time [us]", "tokens/s", "utilization"});
    for (size_t ctx : {128, 1024}) {
        for (size_t batch : {1, 8, 32}) {
            nn::DecodeConfig dcfg{model, ctx, batch, 8};
            nn::DecodeStep step = nn::decodeStepWorkload(dcfg);
            nn::Workload wl;
            wl.model = "decode";
            wl.ops = step.ops;
            double compute_s = lt_model.evaluate(wl).latency.total();
            double memory_s = static_cast<double>(step.totalBytes()) /
                              cfg.hbm_bandwidth;
            double step_s = std::max(compute_s, memory_s);
            table.addRow(
                {std::to_string(ctx), std::to_string(batch),
                 units::fmtFixed(step.arithmeticIntensity(), 2),
                 units::fmtFixed(step_s * 1e6, 2),
                 units::fmtFixed(batch / step_s, 0),
                 units::fmtFixed(compute_s / step_s * 100.0, 0) +
                     " %"});
        }
    }
    table.print(std::cout);

    std::cout << "\nAt batch 1 the photonic cores idle while weights "
                 "and KV cache stream\n(memory-bound); batching "
                 "amortizes the weight traffic and raises\nutilization "
                 "several-fold — the paper's Section VI-B strategy. "
                 "The KV-cache\nstream keeps long-context attention "
                 "memory-bound, motivating the Q/K\nrecomputation and "
                 "tiling ideas the paper cites.\n\n";

    // ---- part 2: a real decode loop on the functional model ----------

    printBanner(std::cout,
                "Live decode: InferenceSession on the noisy photonic "
                "engine");

    // A small causal LM (head width == vocab) the functional model can
    // actually execute; greedy decoding feeds the argmax logit back in.
    nn::TransformerConfig tcfg;
    tcfg.dim = 32;
    tcfg.depth = 2;
    tcfg.heads = 2;
    tcfg.mlp_hidden = 64;
    tcfg.vocab_size = 64;
    tcfg.num_classes = 64;
    tcfg.max_tokens = 48;
    tcfg.pooling = nn::Pooling::LastToken;
    tcfg.causal = true;
    nn::TransformerClassifier lm(tcfg);

    nn::PaperModelConfig analytic;
    analytic.name = "tiny-decoder";
    analytic.dim = tcfg.dim;
    analytic.depth = tcfg.depth;
    analytic.heads = tcfg.heads;
    analytic.mlp_hidden = tcfg.mlp_hidden;
    analytic.seq_len = tcfg.max_tokens;
    analytic.patch_dim = 0;
    analytic.num_classes = tcfg.num_classes;

    core::DptcConfig dptc;
    dptc.input_bits = 8;
    nn::ExecutionEngine engine(dptc, core::EvalMode::Noisy);
    nn::InferenceSession session(lm, engine, nn::QuantConfig::w8a8());

    std::vector<int> prompt{3, 14, 15, 9, 26, 5, 35, 8};
    Matrix logits = session.prefill(prompt);
    std::cout << "prompt of " << prompt.size()
              << " tokens prefilled; generating greedily:\n\n";

    Table live({"step", "context", "token", "measured MACs",
                "predicted MACs", "match"});
    bool all_match = true;
    for (int step = 0; step < 16; ++step) {
        int next = static_cast<int>(nn::argmaxRow(logits, 0));
        nn::DecodeConfig dcfg{analytic, session.contextLen(), 1, 8,
                              /*include_head=*/true};
        size_t predicted = nn::decodeStepWorkload(dcfg).macs;
        engine.resetStats();
        logits = session.decodeStep(next);
        size_t measured = engine.stats().macs.load();
        bool match = measured == predicted;
        all_match &= match;
        live.addRow({std::to_string(step),
                     std::to_string(session.contextLen()),
                     std::to_string(next), std::to_string(measured),
                     std::to_string(predicted),
                     match ? "yes" : "NO"});
    }
    live.print(std::cout);

    std::cout << "\nmeasured == predicted on every step: "
              << (all_match ? "yes" : "NO")
              << "\nThe session's skinny per-head QK^T / AV rows (the "
                 "[1, dk] x [dk, ctx]\ntraffic the roofline above "
                 "prices) execute on the engine via gemmBatch;\nthe "
                 "analytic Section VI-B model and the executed loop "
                 "agree MAC-for-MAC.\n";
    return all_match ? 0 : 1;
}
