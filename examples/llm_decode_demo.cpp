/**
 * @file
 * LLM decode on the photonic accelerator (paper Section VI-B): shows
 * how the per-token decode step of an autoregressive model is
 * memory-bound at batch 1 and how batching trades KV-cache traffic
 * for much better photonic-compute utilization.
 *
 * Build & run:  ./build/examples/llm_decode_demo
 */

#include <algorithm>
#include <iostream>

#include "arch/performance_model.hh"
#include "nn/llm_workload.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;

    printBanner(std::cout,
                "Autoregressive decode on LT-B (BERT-large-sized "
                "decoder stand-in)");

    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    cfg.precision_bits = 8;
    arch::LtPerformanceModel lt_model(cfg);
    auto model = nn::bertLarge(1);

    std::cout << "model GEMM parameters: "
              << nn::gemmParamCount(model) / 1000000 << "M\n\n";

    Table table({"context", "batch", "intensity [MAC/B]",
                 "step time [us]", "tokens/s", "utilization"});
    for (size_t ctx : {128, 1024}) {
        for (size_t batch : {1, 8, 32}) {
            nn::DecodeConfig dcfg{model, ctx, batch, 8};
            nn::DecodeStep step = nn::decodeStepWorkload(dcfg);
            nn::Workload wl;
            wl.model = "decode";
            wl.ops = step.ops;
            double compute_s = lt_model.evaluate(wl).latency.total();
            double memory_s = static_cast<double>(step.totalBytes()) /
                              cfg.hbm_bandwidth;
            double step_s = std::max(compute_s, memory_s);
            table.addRow(
                {std::to_string(ctx), std::to_string(batch),
                 units::fmtFixed(step.arithmeticIntensity(), 2),
                 units::fmtFixed(step_s * 1e6, 2),
                 units::fmtFixed(batch / step_s, 0),
                 units::fmtFixed(compute_s / step_s * 100.0, 0) +
                     " %"});
        }
    }
    table.print(std::cout);

    std::cout << "\nAt batch 1 the photonic cores idle while weights "
                 "and KV cache stream\n(memory-bound); batching "
                 "amortizes the weight traffic and raises\nutilization "
                 "several-fold — the paper's Section VI-B strategy. "
                 "The KV-cache\nstream keeps long-context attention "
                 "memory-bound, motivating the Q/K\nrecomputation and "
                 "tiling ideas the paper cites.\n";
    return 0;
}
