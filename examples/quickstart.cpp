/**
 * @file
 * Quickstart: the three layers of the library in ~80 lines.
 *
 *  1. Physics — simulate one noisy optical dot product on DDot.
 *  2. Functional — run a full-range GEMM through the DPTC tensor core.
 *  3. Architecture — cost a DeiT-T inference on the LT-B accelerator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "core/ddot.hh"
#include "core/dptc.hh"
#include "nn/model_zoo.hh"
#include "nn/workload.hh"
#include "util/rng.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;

    // ------------------------------------------------ 1. DDot physics
    // A 12-wavelength coherent dot-product engine with the paper's
    // default noise (magnitude 0.03, phase 2 deg, WDM dispersion).
    core::DDot ddot(12, core::NoiseConfig::paperDefault());
    Rng rng(42);
    auto x = rng.uniformVector(12); // full-range in [-1, 1]
    auto y = rng.uniformVector(12);

    double exact = core::DDot::idealDot(x, y);
    double optical = ddot.fieldSimDot(x, y, rng);
    std::cout << "DDot: exact " << exact << " vs optical " << optical
              << " (error "
              << units::fmtFixed(std::abs(optical - exact), 4)
              << ")\n";

    // -------------------------------------------- 2. DPTC tensor core
    // One-shot 12x12x12 matrix multiply, both operands dynamic and
    // full-range — the capability prior photonic PTCs lack.
    core::DptcConfig dcfg; // 12x12x12, 4-bit, paper noise
    core::Dptc dptc(dcfg);
    Matrix a(12, 12), b(12, 12);
    for (double &v : a.data())
        v = rng.uniform(-1.0, 1.0);
    for (double &v : b.data())
        v = rng.uniform(-1.0, 1.0);
    Matrix noisy = dptc.multiply(a, b, core::EvalMode::Noisy);
    Matrix ref = a * b;
    std::cout << "DPTC one-shot MM: max|noisy - exact| = "
              << units::fmtFixed(noisy.maxAbsDiff(ref), 3) << "\n";

    // ------------------------------------- 3. Accelerator-level model
    // Cost a full DeiT-T inference on the LT-B configuration.
    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    arch::LtPerformanceModel accelerator(cfg);
    nn::Workload deit = nn::extractWorkload(nn::deitTiny());
    arch::PerfReport report = accelerator.evaluate(deit);

    std::cout << "\nDeiT-T on " << cfg.name << " ("
              << units::fmtAreaMm2(
                     arch::ChipModel(cfg).area().total())
              << ", 4-bit):\n";
    std::cout << "  energy  : "
              << units::fmtEnergy(report.energy.total()) << "\n";
    std::cout << "  latency : "
              << units::fmtTime(report.latency.total()) << "\n";
    std::cout << "  EDP     : " << units::fmtSci(report.edp()) << " J*s\n";
    std::cout << "  FPS     : "
              << units::fmtFixed(1.0 / report.latency.total(), 0)
              << "\n";
    return 0;
}
