/**
 * @file
 * Sparse attention on DPTC (paper Section VI-A): run window-local
 * attention functionally through the blockified path, check it is
 * exact, and compare its accelerator cost against dense attention
 * for a long-sequence workload where sparsity pays off.
 *
 * Build & run:  ./build/examples/sparse_attention_demo
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "nn/sparse_attention.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;
    using namespace lt::nn;

    printBanner(std::cout,
                "Window-local sparse attention on the DPTC");

    // Long-document geometry: 1024 tokens, BigBird-style window.
    const size_t seq = 1024, dk = 64;
    WindowAttentionConfig cfg{seq, 63, 64, dk};

    Rng rng(9);
    auto rand_m = [&](size_t r, size_t c) {
        Matrix m(r, c);
        for (double &v : m.data())
            v = rng.uniform(-1.0, 1.0);
        return m;
    };
    Matrix q = rand_m(seq, dk), k = rand_m(seq, dk),
           v = rand_m(seq, dk);

    Matrix blocked = windowAttentionBlocked(q, k, v, cfg);
    Matrix dense = windowAttentionDense(q, k, v, cfg);
    std::cout << "functional check: max|blocked - dense| = "
              << units::fmtSci(blocked.maxAbsDiff(dense), 1) << "\n\n";

    SparseAttentionWorkload sparse = blockifyWindowAttention(cfg);
    std::cout << "blockification: " << sparse.qk_ops.size()
              << " chunked QK^T GEMMs + " << sparse.av_ops.size()
              << " compressed AV GEMMs\n";
    std::cout << "MAC savings vs dense attention: "
              << units::fmtFixed(sparse.savings(), 1) << "x\n\n";

    // Accelerator cost: dense vs blockified, per head.
    arch::LtPerformanceModel lt_model(arch::ArchConfig::ltBase());
    std::vector<GemmOp> dense_ops{
        {GemmKind::QkT, seq, dk, seq, 1, true},
        {GemmKind::Av, seq, seq, dk, 1, true}};
    auto dense_r = lt_model.evaluateOps(dense_ops, "dense");
    std::vector<GemmOp> sparse_ops = sparse.qk_ops;
    sparse_ops.insert(sparse_ops.end(), sparse.av_ops.begin(),
                      sparse.av_ops.end());
    auto sparse_r = lt_model.evaluateOps(sparse_ops, "sparse");

    Table table({"variant", "energy [uJ]", "latency [us]"});
    table.addRow({"dense attention",
                  units::fmtFixed(dense_r.energy.total() * 1e6, 2),
                  units::fmtFixed(dense_r.latency.total() * 1e6, 2)});
    table.addRow({"window-local (blockified)",
                  units::fmtFixed(sparse_r.energy.total() * 1e6, 2),
                  units::fmtFixed(sparse_r.latency.total() * 1e6, 2)});
    table.print(std::cout);
    std::cout << "\nenergy saving "
              << units::fmtFixed(dense_r.energy.total() /
                                     sparse_r.energy.total(), 1)
              << "x, latency saving "
              << units::fmtFixed(dense_r.latency.total() /
                                     sparse_r.latency.total(), 1)
              << "x at 1024 tokens.\n";
    return 0;
}
