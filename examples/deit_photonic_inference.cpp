/**
 * @file
 * End-to-end photonic Transformer inference (the paper's software
 * model workflow): train a small quantized ViT on a synthetic vision
 * task with noise-aware training, then run inference with every GEMM
 * — including the dynamic attention products — executing on the noisy
 * DPTC functional model, and compare accuracy against the digital
 * reference at several noise levels.
 *
 * Build & run:  ./build/examples/deit_photonic_inference
 */

#include <iostream>

#include "nn/execution_engine.hh"
#include "nn/gemm_backend.hh"
#include "nn/transformer.hh"
#include "train/datasets.hh"
#include "train/trainer.hh"
#include "util/table.hh"
#include "util/units.hh"

int
main()
{
    using namespace lt;

    printBanner(std::cout,
                "Photonic ViT inference on a synthetic vision task");

    // A small ViT: 16x16 images in 4x4 patches, 1 encoder block.
    nn::TransformerConfig cfg;
    cfg.dim = 16;
    cfg.depth = 1;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.num_classes = train::ShapeDataset::kNumClasses;
    cfg.max_tokens = train::ShapeDataset::kNumPatches + 1;
    cfg.patch_dim = train::ShapeDataset::kPatchDim;
    nn::TransformerClassifier model(cfg);
    std::cout << "model parameters: " << model.numParams() << "\n";

    // Noise-aware quantized training (4-bit weights + activations).
    train::TrainerConfig tcfg;
    tcfg.epochs = 10;
    tcfg.lr = 2e-3;
    tcfg.quant = nn::QuantConfig::w4a4();
    tcfg.train_noise_std = 0.05;
    tcfg.verbose = true;
    train::Trainer trainer(model, tcfg);
    train::ShapeDataset train_set(400, 7);
    trainer.trainVision(train_set.samples());

    // Digital reference.
    train::ShapeDataset test_set(200, 8);
    nn::IdealBackend ideal;
    nn::RunContext ideal_ctx{&ideal, tcfg.quant};
    double ref = train::Trainer::evaluateVision(
        model, test_set.samples(), ideal_ctx);
    std::cout << "\ndigital (GPU-reference) accuracy: "
              << units::fmtFixed(ref * 100.0, 1) << " %\n\n";

    // Photonic inference at several noise levels.
    Table table({"noise setting", "accuracy [%]", "drop vs digital"});
    struct Setting
    {
        const char *name;
        double mag;
        double phase_deg;
    };
    for (const auto &s :
         {Setting{"paper default (0.03, 2deg)", 0.03, 2.0},
          Setting{"mild (0.01, 1deg)", 0.01, 1.0},
          Setting{"harsh (0.08, 6deg)", 0.08, 6.0},
          Setting{"extreme (0.20, 20deg)", 0.20, 20.0}}) {
        core::DptcConfig dcfg;
        dcfg.input_bits = 4;
        dcfg.noise.magnitude_noise_std = s.mag;
        dcfg.noise.phase_noise_std_deg = s.phase_deg;
        // Every GEMM runs on the multi-core execution engine (8 DPTC
        // replicas, LT-B's nt * nc), sharded over the thread pool.
        nn::ExecutionEngine photonic(dcfg, core::EvalMode::Noisy);
        // Inference context: static weights are fake-quantized and
        // encoded once per engine (WeightPlan cache), not per sample.
        nn::RunContext ctx{&photonic, tcfg.quant, nn::NoiseStream{},
                           /*inference=*/true};
        double acc = train::Trainer::evaluateVision(
            model, test_set.samples(), ctx);
        table.addRow({s.name, units::fmtFixed(acc * 100.0, 1),
                      units::fmtFixed((ref - acc) * 100.0, 1) + " %"});
    }
    table.print(std::cout);
    std::cout << "\nAt the paper's design point the photonic inference "
                 "matches the digital\nreference; accuracy degrades "
                 "gracefully as encoding noise grows.\n";
    return 0;
}
