/**
 * @file
 * Table V reproduction: energy / latency / EDP of the MZI-array
 * baseline, MRR-bank baseline, and LT-B on DeiT-T and DeiT-B at
 * 4-bit and 8-bit precision, split into MHA (QK^T + AV), FFN, and
 * All rows, plus the "Energy w/o Arch Opt" column (LT-crossbar-B).
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "baselines/mrr_accelerator.hh"
#include "baselines/mzi_accelerator.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace lt;

struct PaperCell
{
    double energy_mj;
    double latency_ms;
};

/** Paper Table V reference values (LT-B columns). */
PaperCell
paperLt(const std::string &model, const std::string &module, int bits)
{
    // {model, module, bits} -> {mJ, ms}
    if (model == "DeiT-T-224") {
        if (bits == 4) {
            if (module == "MHA") return {0.04, 3.12e-3};
            if (module == "FFN") return {0.22, 1.04e-2};
            return {0.38, 1.94e-2};
        }
        if (module == "MHA") return {0.15, 3.12e-3};
        if (module == "FFN") return {0.68, 1.04e-2};
        return {1.21, 1.94e-2};
    }
    if (bits == 4) {
        if (module == "MHA") return {0.17, 1.25e-2};
        if (module == "FFN") return {3.47, 1.67e-1};
        return {5.44, 2.65e-1};
    }
    if (module == "MHA") return {0.61, 1.25e-2};
    if (module == "FFN") return {10.81, 1.67e-1};
    return {16.98, 2.66e-1};
}

} // namespace

int
main()
{
    using namespace lt::bench;

    printBanner(std::cout,
                "Table V: MZI / MRR / LT-B on DeiT-T and DeiT-B");

    for (int bits : {4, 8}) {
        for (const auto &model : {nn::deitTiny(), nn::deitBase()}) {
            nn::Workload wl = nn::extractWorkload(model);

            arch::ArchConfig lt_cfg = arch::ArchConfig::ltBase();
            lt_cfg.precision_bits = bits;
            arch::ArchConfig noopt_cfg =
                arch::ArchConfig::ltCrossbarBase();
            noopt_cfg.precision_bits = bits;
            arch::LtPerformanceModel lt_model(lt_cfg);
            arch::LtPerformanceModel lt_noopt(noopt_cfg);
            baselines::MrrConfig mrr_cfg;
            mrr_cfg.precision_bits = bits;
            baselines::MrrAccelerator mrr(mrr_cfg);
            baselines::MziConfig mzi_cfg;
            mzi_cfg.precision_bits = bits;
            baselines::MziAccelerator mzi(mzi_cfg);

            printBanner(std::cout, model.name + " @ " +
                                       std::to_string(bits) + "-bit");
            Table table({"Module",
                         "MZI E[mJ]", "MZI lat[ms]", "MZI EDP",
                         "MRR E[mJ]", "MRR lat[ms]", "MRR EDP",
                         "LT E w/o opt", "LT E[mJ] (paper)",
                         "LT lat[ms] (paper)", "LT EDP"});

            auto emitRow = [&](const std::string &name,
                               const std::vector<nn::GemmOp> &ops,
                               bool mzi_supported) {
                auto lt_r = lt_model.evaluateOps(ops, name);
                auto noopt_r = lt_noopt.evaluateOps(ops, name);
                auto mrr_r = mrr.evaluateOps(ops, name);
                PaperCell paper = paperLt(model.name, name, bits);
                std::vector<std::string> cells{name};
                if (mzi_supported) {
                    arch::PerfReport mzi_r;
                    for (const auto &op : ops) {
                        mzi_r += op.dynamic ? mrr.evaluateGemm(op)
                                            : mzi.evaluateGemm(op);
                    }
                    cells.push_back(
                        units::fmtFixed(mzi_r.energy.total() * 1e3, 2));
                    cells.push_back(
                        units::fmtFixed(mzi_r.latency.total() * 1e3, 2));
                    cells.push_back(units::fmtSci(mzi_r.edp() * 1e6, 2));
                } else {
                    cells.insert(cells.end(), {"-", "-", "-"});
                }
                cells.push_back(
                    units::fmtFixed(mrr_r.energy.total() * 1e3, 2));
                cells.push_back(
                    units::fmtFixed(mrr_r.latency.total() * 1e3, 2));
                cells.push_back(units::fmtSci(mrr_r.edp() * 1e6, 2));
                cells.push_back(
                    units::fmtFixed(noopt_r.energy.total() * 1e3, 2));
                cells.push_back(vsPaper(lt_r.energy.total() * 1e3,
                                        paper.energy_mj));
                cells.push_back(
                    units::fmtSci(lt_r.latency.total() * 1e3, 2) +
                    " (paper " + units::fmtSci(paper.latency_ms, 2) +
                    ")");
                cells.push_back(units::fmtSci(lt_r.edp() * 1e6, 2));
                table.addRow(std::move(cells));
            };

            emitRow("MHA", wl.moduleOps(nn::Module::Mha), false);
            emitRow("FFN", wl.moduleOps(nn::Module::Ffn), true);
            emitRow("All", wl.ops, true);
            table.print(std::cout);
        }
    }

    // Average-ratio summary like the paper's "Average Ratio" rows.
    printBanner(std::cout, "Average ratios vs LT-B (all = 1)");
    Table summary({"precision", "MZI E", "MZI lat", "MRR E",
                   "MRR lat", "paper MZI E/lat", "paper MRR E/lat"});
    for (int bits : {4, 8}) {
        double mzi_e = 0, mzi_l = 0, mrr_e = 0, mrr_l = 0;
        int count = 0;
        for (const auto &model : {nn::deitTiny(), nn::deitBase()}) {
            nn::Workload wl = nn::extractWorkload(model);
            arch::ArchConfig cfg = arch::ArchConfig::ltBase();
            cfg.precision_bits = bits;
            arch::LtPerformanceModel lt_model(cfg);
            baselines::MrrConfig mc;
            mc.precision_bits = bits;
            baselines::MrrAccelerator mrr(mc);
            baselines::MziConfig zc;
            zc.precision_bits = bits;
            baselines::MziAccelerator mzi(zc);
            auto lt_r = lt_model.evaluate(wl);
            auto mrr_r = mrr.evaluate(wl);
            auto mzi_r = mzi.evaluate(wl, mrr);
            mzi_e += mzi_r.energy.total() / lt_r.energy.total();
            mzi_l += mzi_r.latency.total() / lt_r.latency.total();
            mrr_e += mrr_r.energy.total() / lt_r.energy.total();
            mrr_l += mrr_r.latency.total() / lt_r.latency.total();
            ++count;
        }
        summary.addRow(
            {std::to_string(bits) + "-bit",
             ratio(mzi_e / count), ratio(mzi_l / count),
             ratio(mrr_e / count), ratio(mrr_l / count),
             bits == 4 ? "8.01x / 677.56x" : "32.46x / 675.67x",
             bits == 4 ? "4.03x / 12.85x" : "2.67x / 12.81x"});
    }
    summary.print(std::cout);
    return 0;
}
