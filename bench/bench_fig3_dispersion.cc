/**
 * @file
 * Fig. 3 reproduction: coupling coefficient kappa(lambda) and phase
 * shift phi(lambda) across the paper's 25-channel DWDM sweep
 * (0.4 nm spacing around 1550 nm). The paper reports a maximum
 * relative kappa difference of ~1.8% and a maximum dispersion-induced
 * phase difference of 0.28 degrees.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "photonics/coupler.hh"
#include "photonics/phase_shifter.hh"
#include "photonics/wavelength.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::photonics;

    printBanner(std::cout,
                "Fig. 3: kappa / phase dispersion over 25 wavelengths");

    WdmGrid grid(25);
    DirectionalCoupler dc;
    PhaseShifter ps(-M_PI / 2.0);

    Table table({"lambda [nm]", "kappa", "kappa rel.dev [%]",
                 "phi [deg]", "phase error [deg]"});
    CsvWriter csv("fig3_dispersion.csv",
                  {"lambda_nm", "kappa", "phi_deg"});
    double max_kdev = 0.0, max_perr = 0.0;
    for (size_t i = 0; i < grid.count(); ++i) {
        double lambda = grid.wavelength(i);
        double kappa = dc.kappa(lambda);
        double kdev = std::abs(kappa - 0.5) / 0.5 * 100.0;
        double phi_deg = ps.phase(lambda) * 180.0 / M_PI;
        double perr = std::abs(ps.phaseError(lambda)) * 180.0 / M_PI;
        max_kdev = std::max(max_kdev, kdev);
        max_perr = std::max(max_perr, perr);
        table.addRow({units::fmtFixed(lambda * 1e9, 2),
                      units::fmtFixed(kappa, 5),
                      units::fmtFixed(kdev, 3),
                      units::fmtFixed(phi_deg, 4),
                      units::fmtFixed(perr, 4)});
        csv.writeRow({lambda * 1e9, kappa, phi_deg});
    }
    table.print(std::cout);

    std::cout << "\nmax relative kappa deviation : "
              << lt::bench::vsPaper(max_kdev, 1.8) << " %\n";
    std::cout << "max dispersion phase error   : "
              << lt::bench::vsPaper(max_perr, 0.28) << " deg\n";
    std::cout << "(series written to fig3_dispersion.csv)\n";
    return 0;
}
