/**
 * @file
 * Section V-B wavelength-scaling reproduction (Eq. 10): the microdisk
 * FSR (5.6 THz) bounds the usable DWDM window to
 * [1527.88, 1572.76] nm, fitting up to 112 channels at 0.4 nm
 * spacing. Also shows how added spectral parallelism reduces the
 * cycle count of a DeiT-T inference.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"
#include "photonics/wavelength.hh"

int
main()
{
    using namespace lt;
    using namespace lt::photonics;

    printBanner(std::cout, "Eq. 10: FSR-bounded wavelength scaling");

    FsrWindow window = fsrWindow();
    std::cout << "lambda_left  = "
              << lt::bench::vsPaper(window.lambda_left_m * 1e9,
                                    1527.88)
              << " nm\n";
    std::cout << "lambda_right = "
              << lt::bench::vsPaper(window.lambda_right_m * 1e9,
                                    1572.76)
              << " nm\n";
    size_t channels = maxWdmChannels(window);
    std::cout << "max channels @ 0.4 nm spacing = " << channels
              << " (paper: up to 112)\n";

    printBanner(std::cout,
                "DeiT-T latency vs per-core wavelength count");
    nn::Workload wl = nn::extractWorkload(nn::deitTiny());
    Table table({"Nlambda", "DeiT-T latency [ms]", "speedup vs 12"});
    double base_latency =
        arch::LtPerformanceModel(arch::ArchConfig::ltBase())
            .evaluate(wl).latency.total() * 1e3;
    for (size_t nl : {6, 12, 24, 48, 112}) {
        arch::ArchConfig cfg = arch::ArchConfig::ltBase();
        cfg.nlambda = nl;
        arch::LtPerformanceModel model(cfg);
        double lat = model.evaluate(wl).latency.total() * 1e3;
        table.addRow({std::to_string(nl), units::fmtSci(lat, 3),
                      lt::bench::ratio(base_latency / lat)});
    }
    table.print(std::cout);
    std::cout << "\n(the dispersion-robustness that makes >100-channel"
                 " operation viable is\nvalidated in bench_fig14 and"
                 " tests/test_ddot.cc)\n";
    return 0;
}
