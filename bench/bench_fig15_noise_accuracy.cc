/**
 * @file
 * Fig. 15 reproduction: encoding-noise robustness — accuracy of the
 * 4-bit vision substitute under sweeping magnitude-noise std
 * (0.02..0.08) and phase-noise std (1..7 degrees), against the
 * digital reference. Paper outcome: degradation within ~0.5% at the
 * paper's operating points, growing gracefully with noise.
 *
 * `--fast-gate` instead runs the statistical-equivalence gate of the
 * Fast noise sampler (NoiseSampler::Fast): accuracy under the fast
 * Ziggurat sampler must track the bit-exact sampler within a
 * tolerance at the paper default and at the harshest point of each
 * sweep. Exits nonzero on violation (CI keys on this).
 */

#include <cmath>
#include <cstring>
#include <iostream>

#include "bench_accuracy_common.hh"
#include "bench_common.hh"
#include "util/csv.hh"

namespace {

/**
 * Fast-sampler statistical-equivalence gate: the two samplers draw
 * from different generators, so per-sample logits differ — but over
 * a test set the accuracy under matched noise levels must agree
 * within tolerance, or the fast sampler is NOT a drop-in for
 * accuracy studies.
 */
int
runFastGate()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fast-sampler gate: accuracy, fast vs bit-exact");

    std::cout << "training 4-bit vision substitute (DeiT-T stand-in)"
              << "...\n";
    TrainedVisionTask vision = trainVisionTask(4);

    constexpr double kTolerance = 0.08;

    struct Point
    {
        const char *name;
        double magnitude_std;
        double phase_deg;
    };
    const Point points[] = {
        {"paper default", -1.0, -1.0}, // keep paperDefault() values
        {"magnitude 0.08", 0.08, -1.0},
        {"phase 7 deg", -1.0, 7.0},
    };

    Table table({"operating point", "bit-exact acc [%]",
                 "fast acc [%]", "|delta| [%]", "gate"});
    bool ok = true;
    for (const Point &p : points) {
        core::NoiseConfig noise = core::NoiseConfig::paperDefault();
        if (p.magnitude_std >= 0.0)
            noise.magnitude_noise_std = p.magnitude_std;
        if (p.phase_deg >= 0.0)
            noise.phase_noise_std_deg = p.phase_deg;

        noise.sampler = core::NoiseSampler::BitExact;
        double acc_exact = photonicVisionAccuracy(vision, noise, 12);
        noise.sampler = core::NoiseSampler::Fast;
        double acc_fast = photonicVisionAccuracy(vision, noise, 12);

        double delta = std::abs(acc_fast - acc_exact);
        bool point_ok = delta <= kTolerance;
        ok &= point_ok;
        table.addRow({p.name,
                      units::fmtFixed(acc_exact * 100.0, 1),
                      units::fmtFixed(acc_fast * 100.0, 1),
                      units::fmtFixed(delta * 100.0, 1),
                      point_ok ? "PASS" : "FAIL"});
        if (!point_ok)
            std::cerr << "FAST SAMPLER ACCURACY VIOLATION ("
                      << p.name << "): bit-exact " << acc_exact
                      << " vs fast " << acc_fast << " (tolerance "
                      << kTolerance << ")\n";
    }
    table.print(std::cout);
    std::cout << "\nGate: |acc_fast - acc_bitexact| <= "
              << units::fmtFixed(kTolerance, 2)
              << " at every operating point.\n";
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lt;
    using namespace lt::bench;

    if (argc > 1 && std::strcmp(argv[1], "--fast-gate") == 0)
        return runFastGate();

    printBanner(std::cout,
                "Fig. 15: accuracy vs encoding magnitude/phase noise");

    std::cout << "training 4-bit vision substitute (DeiT-T stand-in)"
              << "...\n";
    TrainedVisionTask vision = trainVisionTask(4);
    std::cout << "digital reference accuracy: "
              << units::fmtFixed(vision.digital_accuracy * 100.0, 1)
              << " %\n";

    CsvWriter csv("fig15_noise_accuracy.csv",
                  {"sweep", "value", "accuracy", "reference"});

    printBanner(std::cout, "magnitude-noise sweep (phase = 2 deg)");
    Table mag_table({"magnitude std", "accuracy [%]", "drop [%]"});
    for (double sigma : {0.02, 0.04, 0.06, 0.08}) {
        core::NoiseConfig noise = core::NoiseConfig::paperDefault();
        noise.magnitude_noise_std = sigma;
        double acc = photonicVisionAccuracy(vision, noise, 12);
        mag_table.addRow(
            {units::fmtFixed(sigma, 2),
             units::fmtFixed(acc * 100.0, 1),
             units::fmtFixed((vision.digital_accuracy - acc) * 100.0,
                             1)});
        csv.writeRow({"magnitude", units::fmtFixed(sigma, 2),
                      units::fmtFixed(acc, 4),
                      units::fmtFixed(vision.digital_accuracy, 4)});
    }
    mag_table.print(std::cout);

    printBanner(std::cout, "phase-noise sweep (magnitude = 0.03)");
    Table ph_table({"phase std [deg]", "accuracy [%]", "drop [%]"});
    for (double deg : {1.0, 3.0, 5.0, 7.0}) {
        core::NoiseConfig noise = core::NoiseConfig::paperDefault();
        noise.phase_noise_std_deg = deg;
        double acc = photonicVisionAccuracy(vision, noise, 12);
        ph_table.addRow(
            {units::fmtFixed(deg, 0),
             units::fmtFixed(acc * 100.0, 1),
             units::fmtFixed((vision.digital_accuracy - acc) * 100.0,
                             1)});
        csv.writeRow({"phase", units::fmtFixed(deg, 1),
                      units::fmtFixed(acc, 4),
                      units::fmtFixed(vision.digital_accuracy, 4)});
    }
    ph_table.print(std::cout);

    std::cout << "\nShape check (paper): accuracy stays within ~1% of "
                 "the digital reference\nacross both sweeps thanks to "
                 "noise-aware training; degradation grows\ngracefully "
                 "with the noise level.\n"
              << "(series written to fig15_noise_accuracy.csv)\n";
    return 0;
}
