/**
 * @file
 * Fig. 15 reproduction: encoding-noise robustness — accuracy of the
 * 4-bit vision substitute under sweeping magnitude-noise std
 * (0.02..0.08) and phase-noise std (1..7 degrees), against the
 * digital reference. Paper outcome: degradation within ~0.5% at the
 * paper's operating points, growing gracefully with noise.
 */

#include <iostream>

#include "bench_accuracy_common.hh"
#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fig. 15: accuracy vs encoding magnitude/phase noise");

    std::cout << "training 4-bit vision substitute (DeiT-T stand-in)"
              << "...\n";
    TrainedVisionTask vision = trainVisionTask(4);
    std::cout << "digital reference accuracy: "
              << units::fmtFixed(vision.digital_accuracy * 100.0, 1)
              << " %\n";

    CsvWriter csv("fig15_noise_accuracy.csv",
                  {"sweep", "value", "accuracy", "reference"});

    printBanner(std::cout, "magnitude-noise sweep (phase = 2 deg)");
    Table mag_table({"magnitude std", "accuracy [%]", "drop [%]"});
    for (double sigma : {0.02, 0.04, 0.06, 0.08}) {
        core::NoiseConfig noise = core::NoiseConfig::paperDefault();
        noise.magnitude_noise_std = sigma;
        double acc = photonicVisionAccuracy(vision, noise, 12);
        mag_table.addRow(
            {units::fmtFixed(sigma, 2),
             units::fmtFixed(acc * 100.0, 1),
             units::fmtFixed((vision.digital_accuracy - acc) * 100.0,
                             1)});
        csv.writeRow({"magnitude", units::fmtFixed(sigma, 2),
                      units::fmtFixed(acc, 4),
                      units::fmtFixed(vision.digital_accuracy, 4)});
    }
    mag_table.print(std::cout);

    printBanner(std::cout, "phase-noise sweep (magnitude = 0.03)");
    Table ph_table({"phase std [deg]", "accuracy [%]", "drop [%]"});
    for (double deg : {1.0, 3.0, 5.0, 7.0}) {
        core::NoiseConfig noise = core::NoiseConfig::paperDefault();
        noise.phase_noise_std_deg = deg;
        double acc = photonicVisionAccuracy(vision, noise, 12);
        ph_table.addRow(
            {units::fmtFixed(deg, 0),
             units::fmtFixed(acc * 100.0, 1),
             units::fmtFixed((vision.digital_accuracy - acc) * 100.0,
                             1)});
        csv.writeRow({"phase", units::fmtFixed(deg, 1),
                      units::fmtFixed(acc, 4),
                      units::fmtFixed(vision.digital_accuracy, 4)});
    }
    ph_table.print(std::cout);

    std::cout << "\nShape check (paper): accuracy stays within ~1% of "
                 "the digital reference\nacross both sweeps thanks to "
                 "noise-aware training; degradation grows\ngracefully "
                 "with the noise level.\n"
              << "(series written to fig15_noise_accuracy.csv)\n";
    return 0;
}
