/**
 * @file
 * Fig. 10 reproduction: performance and efficiency of the optical
 * computing part (ADC/DAC excluded) vs core size: TOPS, TOPS/W,
 * TOPS/mm^2, and TOPS/W/mm^2. The paper reports the first three
 * increasing with core size while TOPS/W/mm^2 decreases.
 */

#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout,
                "Fig. 10: optical-part efficiency vs core size");

    Table table({"N", "TOPS", "TOPS/W", "TOPS/mm^2", "TOPS/W/mm^2"});
    CsvWriter csv("fig10_perf_scaling.csv",
                  {"n", "tops", "tops_per_w", "tops_per_mm2",
                   "tops_per_w_mm2"});
    double prev_tops = 0.0, prev_tpw = 0.0, prev_tpmm = 0.0;
    double prev_twm = 1e18;
    bool monotone = true;
    for (size_t n : {8, 12, 16, 20, 24, 32, 40, 48, 56}) {
        ChipModel chip(ArchConfig::singleCore(n));
        double tops = chip.opticalTops();
        double tpw = chip.opticalTopsPerWatt();
        double tpmm = chip.opticalTopsPerMm2();
        AreaBreakdown a = chip.area(true);
        double optical_mm2 =
            (a.photonic_core + a.modulation + a.laser_comb) * 1e6;
        double twm = tpw / optical_mm2;
        table.addRow({std::to_string(n), units::fmtFixed(tops, 1),
                      units::fmtFixed(tpw, 1),
                      units::fmtFixed(tpmm, 2),
                      units::fmtFixed(twm, 3)});
        csv.writeRow({static_cast<double>(n), tops, tpw, tpmm, twm});
        monotone &= tops > prev_tops && tpw > prev_tpw &&
                    tpmm > prev_tpmm && twm < prev_twm;
        prev_tops = tops;
        prev_tpw = tpw;
        prev_tpmm = tpmm;
        prev_twm = twm;
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper): TOPS, TOPS/W, TOPS/mm^2 rise "
                 "with core size;\nTOPS/W/mm^2 falls -> "
              << (monotone ? "OK" : "MISMATCH") << "\n";
    std::cout << "(series written to fig10_perf_scaling.csv)\n";
    return 0;
}
