/**
 * @file
 * google-benchmark microbenchmarks of the functional photonic models:
 * DDot evaluation paths, DPTC one-shot/tiled GEMM, and the MZI
 * mapping pipeline. These measure the *simulator's* software
 * throughput (useful when scaling accuracy experiments), not the
 * modelled hardware.
 */

#include <benchmark/benchmark.h>

#include "core/ddot.hh"
#include "core/dptc.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace {

using namespace lt;
using namespace lt::core;

void
BM_DDotIdeal(benchmark::State &state)
{
    Rng rng(1);
    auto x = rng.uniformVector(12);
    auto y = rng.uniformVector(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(DDot::idealDot(x, y));
}
BENCHMARK(BM_DDotIdeal);

void
BM_DDotFieldSim(benchmark::State &state)
{
    DDot ddot(12, NoiseConfig::paperDefault());
    Rng rng(2);
    auto x = rng.uniformVector(12);
    auto y = rng.uniformVector(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(ddot.fieldSimDot(x, y, rng));
}
BENCHMARK(BM_DDotFieldSim);

void
BM_DDotAnalyticNoisy(benchmark::State &state)
{
    DDot ddot(12, NoiseConfig::paperDefault());
    Rng rng(3);
    auto x = rng.uniformVector(12);
    auto y = rng.uniformVector(12);
    for (auto _ : state)
        benchmark::DoNotOptimize(ddot.analyticNoisyDot(x, y, rng));
}
BENCHMARK(BM_DDotAnalyticNoisy);

void
BM_DptcOneShot(benchmark::State &state)
{
    DptcConfig cfg;
    cfg.noise = state.range(0) ? NoiseConfig::paperDefault()
                               : NoiseConfig::ideal();
    Dptc dptc(cfg);
    Rng rng(4);
    Matrix a(12, 12), b(12, 12);
    for (double &v : a.data())
        v = rng.uniform(-1, 1);
    for (double &v : b.data())
        v = rng.uniform(-1, 1);
    EvalMode mode = state.range(0) ? EvalMode::Noisy : EvalMode::Ideal;
    for (auto _ : state)
        benchmark::DoNotOptimize(dptc.multiply(a, b, mode));
    state.SetItemsProcessed(state.iterations() * 12 * 12 * 12);
}
BENCHMARK(BM_DptcOneShot)->Arg(0)->Arg(1);

void
BM_DptcTiledGemm(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    DptcConfig cfg;
    cfg.noise = NoiseConfig::ideal();
    Dptc dptc(cfg);
    Rng rng(5);
    Matrix a(n, n), b(n, n);
    for (double &v : a.data())
        v = rng.uniform(-1, 1);
    for (double &v : b.data())
        v = rng.uniform(-1, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(dptc.gemm(a, b, EvalMode::Ideal));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DptcTiledGemm)->Arg(48)->Arg(96);

void
BM_MziOperandMapping(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(6);
    Matrix w(n, n);
    for (double &v : w.data())
        v = rng.uniform(-1, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(mziOperandMapping(w));
}
BENCHMARK(BM_MziOperandMapping)->Arg(8)->Arg(12)->Arg(16);

} // namespace

BENCHMARK_MAIN();
