/**
 * @file
 * Section VI-A reproduction, opportunities (1)-(2): SpAtten-style
 * attention head / token / channel pruning on LT-B. After pruning,
 * the remaining computation is regular dense GEMM, so DPTC
 * accelerates it natively — this bench sweeps keep-ratios and shows
 * the resulting energy/latency reductions, plus the heterogeneous
 * core-geometry search the paper suggests for low-utilization shapes.
 */

#include <iostream>

#include "arch/core_search.hh"
#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"
#include "nn/pruning.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Section VI-A: head/token/channel pruning on LT-B");

    arch::LtPerformanceModel lt_model(arch::ArchConfig::ltBase());
    auto deit = nn::deitBase();
    auto full = lt_model.evaluate(nn::extractWorkload(deit));

    Table table({"head keep", "token keep", "channel keep",
                 "energy [mJ]", "latency [ms]", "energy saving",
                 "latency saving"});
    struct Sweep
    {
        double head, token, channel;
    };
    for (const auto &s :
         {Sweep{1.0, 1.0, 1.0}, Sweep{0.5, 1.0, 1.0},
          Sweep{1.0, 0.7, 1.0}, Sweep{1.0, 1.0, 0.75},
          Sweep{0.75, 0.7, 1.0}, Sweep{0.5, 0.5, 0.75}}) {
        nn::PruningConfig cfg{s.head, s.token, s.channel};
        auto r = lt_model.evaluate(nn::prunedWorkload(deit, cfg));
        table.addRow({units::fmtFixed(s.head, 2),
                      units::fmtFixed(s.token, 2),
                      units::fmtFixed(s.channel, 2),
                      units::fmtFixed(r.energy.total() * 1e3, 2),
                      units::fmtFixed(r.latency.total() * 1e3, 3),
                      ratio(full.energy.total() / r.energy.total()),
                      ratio(full.latency.total() /
                            r.latency.total())});
    }
    table.print(std::cout);
    std::cout << "\n(DeiT-B baseline: "
              << units::fmtFixed(full.energy.total() * 1e3, 2)
              << " mJ, "
              << units::fmtFixed(full.latency.total() * 1e3, 3)
              << " ms)\n";

    printBanner(std::cout,
                "heterogeneous DPTC search (paper: Nh=1 engine for "
                "vector-matrix shapes)");
    // The non-block-wise sparse-attention AV case: compressed rows
    // become vector-matrix products (m = 1).
    std::vector<nn::GemmOp> gemv{
        {nn::GemmKind::Av, 1, 144, 144, 1000, true}};
    Table search({"core geometry (Nh x Nl x Nv)", "utilization",
                  "latency [us]", "shots"});
    for (const auto &score : arch::searchCoreGeometry(
             gemv, arch::defaultCandidates(),
             arch::ArchConfig::ltBase())) {
        search.addRow({score.candidate.name(),
                       units::fmtFixed(score.utilization * 100.0, 1) +
                           " %",
                       units::fmtFixed(score.latency_s * 1e6, 2),
                       std::to_string(score.shots)});
    }
    search.print(std::cout);
    std::cout << "\nShape check (paper): a square core wastes ~11/12 "
                 "of its rows on m=1\nworkloads; the searched Nh=1 "
                 "geometry restores full utilization.\n";
    return 0;
}
