/**
 * @file
 * Fig. 9 reproduction: area, power, and latency scaling of a single
 * 4-bit DPTC core with core size N (Nh = Nv = Nlambda = N), DACs not
 * shared. Paper endpoints: area 5.9 -> 49.3 mm^2, power 1.1 -> 17 W,
 * latency 47 -> 106.4 ps across N = 8..32; optics latency grows
 * ~linearly while EO/OE stays flat.
 */

#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout,
                "Fig. 9: single-core area / power / latency scaling");

    struct PaperRow
    {
        size_t n;
        double area, power, latency;
    };
    const PaperRow paper[] = {
        {8, 5.9, 1.1, 47.0},   {12, 9.5, 2.4, 55.5},
        {14, 11.9, 3.3, 59.7}, {16, 14.6, 4.3, 63.9},
        {18, 17.6, 5.4, 68.2}, {20, 21.1, 6.6, 72.4},
        {22, 24.9, 8.1, 76.7}, {24, 29.0, 9.6, 80.9},
        {32, 49.3, 17.0, 106.4}};

    Table table({"N", "area [mm^2] (paper)", "power [W] (paper)",
                 "latency [ps] (paper)", "optics [ps]", "EO/OE [ps]"});
    CsvWriter csv("fig9_core_scaling.csv",
                  {"n", "area_mm2", "power_w", "latency_ps",
                   "optics_ps", "eooe_ps"});
    for (const auto &row : paper) {
        ChipModel chip(ArchConfig::singleCore(row.n));
        double area = chip.area(true).total() * 1e6;
        double power = chip.power(4).total();
        double lat = chip.shotLatencyS() * 1e12;
        double optics = chip.opticsLatencyS() * 1e12;
        double eooe = chip.eoOeLatencyS() * 1e12;
        table.addRow({std::to_string(row.n),
                      lt::bench::vsPaper(area, row.area, 1),
                      lt::bench::vsPaper(power, row.power, 2),
                      lt::bench::vsPaper(lat, row.latency, 1),
                      units::fmtFixed(optics, 1),
                      units::fmtFixed(eooe, 1)});
        csv.writeRow({static_cast<double>(row.n), area, power, lat,
                      optics, eooe});
    }
    table.print(std::cout);
    std::cout << "\n(series written to fig9_core_scaling.csv)\n";
    return 0;
}
