/**
 * @file
 * Extension bench: the complete Table I design set — MZI array, PCM
 * crossbar, MRR bank, and DPTC (LT-B) — evaluated head-to-head on the
 * DeiT-T workload at 4/8-bit, with per-module splits. The paper's
 * Table V covers MZI and MRR; this sweep adds the PCM crossbar so
 * every PTC family in Table I has a quantitative column, and shows
 * *why* each loses: MZI to reconfiguration + mesh loss, PCM to
 * four-quadrant decomposition + write stalls, MRR to locking power
 * and two-pass decomposition.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "baselines/mrr_accelerator.hh"
#include "baselines/mzi_accelerator.hh"
#include "baselines/pcm_accelerator.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "All Table I PTC families on DeiT-T (extension)");

    nn::Workload wl = nn::extractWorkload(nn::deitTiny());
    for (int bits : {4, 8}) {
        printBanner(std::cout, std::to_string(bits) + "-bit");
        arch::ArchConfig lt_cfg = arch::ArchConfig::ltBase();
        lt_cfg.precision_bits = bits;
        arch::LtPerformanceModel lt_model(lt_cfg);
        baselines::MrrConfig mrr_cfg;
        mrr_cfg.precision_bits = bits;
        baselines::MrrAccelerator mrr(mrr_cfg);
        baselines::MziConfig mzi_cfg;
        mzi_cfg.precision_bits = bits;
        baselines::MziAccelerator mzi(mzi_cfg);
        baselines::PcmConfig pcm_cfg;
        pcm_cfg.precision_bits = bits;
        baselines::PcmAccelerator pcm(pcm_cfg);

        auto lt_r = lt_model.evaluate(wl);

        Table table({"PTC family", "energy [mJ]", "latency [ms]",
                     "EDP [uJ*s]", "energy vs LT", "latency vs LT",
                     "dominant penalty"});
        auto addRow = [&](const std::string &name,
                          const arch::PerfReport &r,
                          const std::string &penalty) {
            table.addRow(
                {name, units::fmtFixed(r.energy.total() * 1e3, 2),
                 units::fmtFixed(r.latency.total() * 1e3, 3),
                 units::fmtSci(r.edp() * 1e6, 2),
                 ratio(r.energy.total() / lt_r.energy.total()),
                 ratio(r.latency.total() / lt_r.latency.total()),
                 penalty});
        };
        addRow("DPTC (LT-B)", lt_r, "-");
        addRow("MRR bank", mrr.evaluate(wl),
               "ring locking + 2-pass range decomposition");
        addRow("PCM crossbar", pcm.evaluate(wl),
               "4-pass decomposition + PCM write stalls");
        addRow("MZI array (+MRR MHA)", mzi.evaluate(wl, mrr),
               "2 us reconfig/tile + mesh insertion loss");
        table.print(std::cout);
    }

    std::cout << "\nShape check: DPTC wins every column; each baseline "
                 "loses through exactly the\nmechanism Table I "
                 "predicts from its operand constraints.\n";
    return 0;
}
