/**
 * @file
 * Section II-C claim reproduction: "on a CPU, the required SVD and
 * phase decomposition step takes ~1.5 ms for a 12x12 matrix". This
 * bench wall-clocks our own Jacobi SVD + Clements phase decomposition
 * (the exact pipeline an MZI array needs to map one operand) across
 * matrix sizes, and compares the mapping time against the DPTC's
 * <100 ps compute-and-encode path.
 */

#include <chrono>
#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lt;
    using Clock = std::chrono::steady_clock;

    printBanner(std::cout,
                "MZI operand-mapping cost: SVD + phase decomposition");

    Table table({"matrix", "mean mapping time", "vs 12x12 paper "
                 "(~1.5 ms)", "mapping / DPTC-shot ratio"});
    arch::ChipModel chip(arch::ArchConfig::ltBase());
    double shot_s = chip.shotLatencyS();

    Rng rng(0x57D);
    for (size_t n : {4, 8, 12, 16, 24, 32}) {
        // Warm up + measure over enough repetitions for stable timing.
        const int reps = n <= 12 ? 200 : 50;
        Matrix w(n, n);
        double total_s = 0.0;
        for (int r = 0; r < reps; ++r) {
            for (double &v : w.data())
                v = rng.uniform(-1.0, 1.0);
            auto start = Clock::now();
            MziMapping mapping = mziOperandMapping(w);
            auto stop = Clock::now();
            total_s += std::chrono::duration<double>(stop - start)
                           .count();
            // Keep the optimizer from discarding the work.
            if (mapping.sigma.empty())
                return 1;
        }
        double mean_s = total_s / reps;
        std::string vs_paper =
            n == 12 ? lt::bench::vsPaper(mean_s * 1e3, 1.5) + " ms"
                    : "-";
        table.addRow({std::to_string(n) + "x" + std::to_string(n),
                      units::fmtTime(mean_s),
                      vs_paper,
                      units::fmtSci(mean_s / shot_s, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nTakeaway (paper Insight 1): operand mapping for a "
           "weight-static MZI PTC costs\n"
        << "orders of magnitude more than the ~"
        << units::fmtTime(shot_s, 1)
        << " optical compute+encode path of DPTC,\nso dynamic "
           "attention operands would stall an MZI system "
           "completely.\n"
        << "(absolute times vary with CPU generation; the paper "
           "measured ~1.5 ms at 12x12)\n";
    return 0;
}
