/**
 * @file
 * Fig. 16 / Section VI-A reproduction: window-local sparse attention
 * on DPTC. Blockifies Q/K per the structured pattern, verifies the
 * chunked dense computation is exact, and costs the resulting GEMM
 * list on LT-B against full (dense) attention.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/sparse_attention.hh"
#include "util/rng.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;
    using namespace lt::nn;

    printBanner(std::cout,
                "Fig. 16: blockified window-local sparse attention");

    // Functional equivalence check first (also covered by tests).
    {
        WindowAttentionConfig cfg{64, 9, 8, 16};
        Rng rng(16);
        auto rand_m = [&](size_t r, size_t c) {
            Matrix m(r, c);
            for (double &v : m.data())
                v = rng.uniform(-1.0, 1.0);
            return m;
        };
        Matrix q = rand_m(64, 16), k = rand_m(64, 16),
               v = rand_m(64, 16);
        double err = windowAttentionBlocked(q, k, v, cfg)
                         .maxAbsDiff(windowAttentionDense(q, k, v, cfg));
        std::cout << "blockified vs dense-masked max|diff| = "
                  << units::fmtSci(err, 1) << " (exact)\n";
    }

    // Cost sweep on a DeiT-T-like head geometry.
    arch::LtPerformanceModel lt_model(arch::ArchConfig::ltBase());
    const size_t seq = 197, dk = 64, heads = 3, layers = 12;

    // Dense attention reference for the whole model.
    std::vector<GemmOp> dense_ops{
        {GemmKind::QkT, seq, dk, seq, heads * layers, true},
        {GemmKind::Av, seq, seq, dk, heads * layers, true}};
    auto dense_r = lt_model.evaluateOps(dense_ops, "dense-attn");

    Table table({"window", "block", "MAC savings", "energy [uJ]",
                 "latency [us]", "energy vs dense", "latency vs dense"});
    for (size_t window : {15, 31, 63}) {
        for (size_t block : {12, 24}) {
            WindowAttentionConfig cfg{seq, window, block, dk};
            SparseAttentionWorkload sparse =
                blockifyWindowAttention(cfg);
            // Scale the one-head workload to all heads and layers.
            std::vector<GemmOp> ops;
            for (auto op : sparse.qk_ops) {
                op.count *= heads * layers;
                ops.push_back(op);
            }
            for (auto op : sparse.av_ops) {
                op.count *= heads * layers;
                ops.push_back(op);
            }
            auto r = lt_model.evaluateOps(ops, "sparse-attn");
            table.addRow(
                {std::to_string(window), std::to_string(block),
                 ratio(sparse.savings()),
                 units::fmtFixed(r.energy.total() * 1e6, 1),
                 units::fmtFixed(r.latency.total() * 1e6, 2),
                 ratio(dense_r.energy.total() / r.energy.total()),
                 ratio(dense_r.latency.total() / r.latency.total())});
        }
    }
    table.print(std::cout);

    std::cout << "\ndense attention reference: "
              << units::fmtFixed(dense_r.energy.total() * 1e6, 1)
              << " uJ, "
              << units::fmtFixed(dense_r.latency.total() * 1e6, 2)
              << " us (DeiT-T MHA on LT-B)\n";
    std::cout << "Shape check (paper): after blockification the sparse "
                 "patterns run as dense\nchunked MMs on DPTC, with "
                 "savings tracking the attention-map sparsity.\n";
    return 0;
}
