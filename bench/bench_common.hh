/**
 * @file
 * Shared helpers for the per-figure/table bench binaries.
 *
 * Every bench prints (a) a banner naming the paper artifact it
 * regenerates, (b) an aligned table with the measured rows/series,
 * and (c) where the paper states concrete numbers, a paper-vs-measured
 * column so the reproduction quality is visible at a glance.
 */

#ifndef LT_BENCH_BENCH_COMMON_HH
#define LT_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "arch/report.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace lt {
namespace bench {

/** Format a ratio like "2.62x". */
inline std::string
ratio(double r, int precision = 2)
{
    return units::fmtFixed(r, precision) + "x";
}

/** Format "measured (paper X, delta%)". */
inline std::string
vsPaper(double measured, double paper, int precision = 2)
{
    double delta = paper != 0.0 ? (measured - paper) / paper * 100.0
                                : 0.0;
    return units::fmtFixed(measured, precision) + " (paper " +
           units::fmtFixed(paper, precision) + ", " +
           units::fmtFixed(delta, 1) + "%)";
}

/** Add the Fig. 11-style energy-breakdown columns of a report. */
inline std::vector<std::string>
energyBreakdownCells(const arch::EnergyBreakdown &e)
{
    auto uj = [](double j) { return units::fmtFixed(j * 1e6, 2); };
    return {uj(e.laser),     uj(e.op1_dac), uj(e.op1_mod),
            uj(e.op2_dac),   uj(e.op2_mod), uj(e.detection),
            uj(e.adc),       uj(e.data_movement),
            uj(e.static_other), uj(e.total())};
}

inline std::vector<std::string>
energyBreakdownHeaders(const std::string &first)
{
    return {first,     "laser[uJ]", "op1-DAC", "op1-mod", "op2-DAC",
            "op2-mod", "det",       "ADC",     "data-mv", "static",
            "total[uJ]"};
}

} // namespace bench
} // namespace lt

#endif // LT_BENCH_BENCH_COMMON_HH
