/**
 * @file
 * Execution-engine scaling microbench: GEMM throughput of the
 * software model vs thread count, for both the noisy photonic engine
 * (tile-sharded across DPTC core replicas) and the ideal blocked
 * matmul. Establishes the perf trajectory for later batching /
 * sharding work; rerun after touching the engine, the pool, or the
 * matmul kernel.
 *
 * Also asserts the determinism contract on every row: the result at
 * N threads must be bit-identical to the 1-thread result.
 *
 * Usage: bench_engine_scaling [--csv] [--json [path]]
 *
 * --csv prints the rows as CSV on stdout (the CI smoke mode);
 * --json writes the per-PR perf-trajectory snapshot (default path
 * BENCH_engine.json, committed at the repo root so the scaling
 * numbers are diffable across PRs).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/dptc.hh"
#include "nn/execution_engine.hh"
#include "util/linalg.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace lt;

constexpr size_t kDim = 256; ///< 256 x 256 x 256 GEMM
constexpr int kReps = 3;

double
secondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Row
{
    size_t threads;
    double photonic_s;
    double photonic_gmacs;
    double photonic_speedup;
    bool identical;
    double matmul_s;
    double matmul_speedup;
};

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool json = false;
    std::string json_path = "BENCH_engine.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_engine_scaling [--csv] "
                         "[--json [path]]\n";
            return 2;
        }
    }

    Rng rng(0xBE7C);
    Matrix a(kDim, kDim), b(kDim, kDim);
    for (double &v : a.data())
        v = rng.uniform(-1.0, 1.0);
    for (double &v : b.data())
        v = rng.uniform(-1.0, 1.0);

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;

    const double macs = static_cast<double>(kDim) * kDim * kDim;
    std::vector<Row> rows;
    Matrix reference;

    for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        nn::ExecutionEngine engine(dcfg, core::EvalMode::Noisy);

        Matrix out = engine.gemm(a, b); // warm-up + correctness probe
        double ph_best = 1e30;
        for (int r = 0; r < kReps; ++r)
            ph_best = std::min(
                ph_best, secondsOf([&] { out = engine.gemm(a, b); }));

        double mm_best = 1e30;
        Matrix mm_out;
        for (int r = 0; r < kReps; ++r)
            mm_best = std::min(
                mm_best, secondsOf([&] { mm_out = matmul(a, b); }));

        Row row;
        row.threads = threads;
        row.photonic_s = ph_best;
        row.photonic_gmacs = macs / ph_best / 1e9;
        row.matmul_s = mm_best;
        if (threads == 1) {
            reference = out;
            row.photonic_speedup = 1.0;
            row.matmul_speedup = 1.0;
        } else {
            row.photonic_speedup = rows.front().photonic_s / ph_best;
            row.matmul_speedup = rows.front().matmul_s / mm_best;
        }
        row.identical = out.maxAbsDiff(reference) == 0.0;
        rows.push_back(row);
    }
    ThreadPool::setGlobalThreads(0);

    if (json) {
        // The committed perf-trajectory snapshot: one object per
        // thread count, plus enough host context to interpret it.
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"engine_scaling\",\n"
            << "  \"gemm\": \"" << kDim << "x" << kDim << "x" << kDim
            << "\",\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            out << "    {\"threads\": " << r.threads
                << ", \"photonic_s\": " << r.photonic_s
                << ", \"photonic_gmacs\": " << r.photonic_gmacs
                << ", \"photonic_speedup\": " << r.photonic_speedup
                << ", \"bit_identical\": "
                << (r.identical ? "true" : "false")
                << ", \"matmul_s\": " << r.matmul_s
                << ", \"matmul_speedup\": " << r.matmul_speedup << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        // stderr: keeps the CSV stream clean when modes are combined.
        std::cerr << "wrote " << json_path << "\n";
    }

    // The determinism contract is this bench's CI signal: any
    // non-bit-identical row is a hard failure in every output mode.
    bool all_identical = true;
    for (const Row &r : rows)
        all_identical &= r.identical;

    if (csv) {
        std::cout << "threads,photonic_s,photonic_gmacs,"
                     "photonic_speedup,bit_identical,matmul_s,"
                     "matmul_speedup\n";
        for (const Row &r : rows)
            std::cout << r.threads << "," << r.photonic_s << ","
                      << r.photonic_gmacs << "," << r.photonic_speedup
                      << "," << (r.identical ? 1 : 0) << ","
                      << r.matmul_s << "," << r.matmul_speedup << "\n";
    }
    if (csv || json) {
        if (!all_identical)
            std::cerr << "DETERMINISM VIOLATION: results differ "
                         "across thread counts\n";
        return all_identical ? 0 : 1;
    }

    printBanner(std::cout, "Execution-engine scaling: 256^3 GEMM "
                           "throughput vs thread count");
    std::cout << "host hardware threads: "
              << std::thread::hardware_concurrency() << "\n\n";
    Table table({"threads", "photonic [s]", "GMAC/s", "speedup",
                 "bit-identical", "matmul [s]", "speedup"});
    for (const Row &r : rows) {
        table.addRow({std::to_string(r.threads),
                      units::fmtFixed(r.photonic_s, 3),
                      units::fmtFixed(r.photonic_gmacs, 3),
                      units::fmtFixed(r.photonic_speedup, 2) + "x",
                      r.identical ? "yes" : "NO",
                      units::fmtFixed(r.matmul_s, 4),
                      units::fmtFixed(r.matmul_speedup, 2) + "x"});
    }
    table.print(std::cout);
    std::cout
        << "\nDeterminism: every thread count must report "
           "bit-identical = yes\n(counter-seeded tile noise). Speedup "
           "saturates at min(hardware threads,\nengine cores).\n";
    return all_identical ? 0 : 1;
}
