/**
 * @file
 * Execution-engine scaling microbench: GEMM throughput of the
 * software model vs thread count, for both the noisy photonic engine
 * (tile-sharded across DPTC core replicas) and the ideal blocked
 * matmul. Establishes the perf trajectory for later batching /
 * sharding work; rerun after touching the engine, the pool, or the
 * matmul kernel.
 *
 * Also asserts the determinism contract on every row: the result at
 * N threads must be bit-identical to the 1-thread result.
 *
 * Decode-regime scenario: skinny [1, d] x [d, d] noisy GEMMs — the
 * continuous-batching steady state — with the weight-plan cache on
 * vs off. "off" replays the pre-plan path exactly (per-step maxAbs +
 * normalizeQuantize + reference-kernel gemmTiles); "on" serves the
 * weight from one pre-encoded plan through the packed kernel. The
 * two columns must be bit-identical (this pins the packed-kernel
 * rewrite in CI) and the cache hit/miss counters must show zero
 * steady-state re-encodes. The scenario runs with encoding noise off
 * (dispersion + systematic output noise only): under full encoding
 * noise the per-MAC Gaussian draws dominate and no amount of operand
 * caching moves the needle — the regime where caching matters is
 * exactly the calibrated/systematic-noise serving configuration.
 *
 * Usage: bench_engine_scaling [--csv] [--json [path]]
 *
 * --csv prints the rows as CSV on stdout (the CI smoke mode) and
 * exits nonzero on any bit-identity violation or a zero decode
 * cache-hit rate; --json writes the per-PR perf-trajectory snapshot
 * (default path BENCH_engine.json, committed at the repo root so the
 * scaling numbers are diffable across PRs).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/dptc.hh"
#include "nn/execution_engine.hh"
#include "util/linalg.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace lt;

constexpr size_t kDim = 256; ///< 256 x 256 x 256 GEMM
constexpr int kReps = 3;

double
secondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Row
{
    size_t threads;
    double photonic_s;
    double photonic_gmacs;
    double photonic_speedup;
    bool identical;
    double matmul_s;
    double matmul_speedup;
};

struct DecodeResult
{
    size_t dim;
    size_t steps;
    double cache_on_ms;   ///< per-step, weight served from a plan
    double cache_off_ms;  ///< per-step, pre-plan re-encode + ref kernel
    double speedup;
    bool identical;       ///< cached outputs == uncached, bitwise
    size_t hits;
    size_t misses;
};

/** The decode-regime cache on/off comparison (see file header). */
DecodeResult
runDecodeScenario()
{
    constexpr size_t kDecodeDim = 256;
    constexpr size_t kSteps = 32;
    constexpr int kDecodeReps = 3;

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;
    dcfg.noise.enable_encoding_noise = false;

    Rng rng(0xDEC0DE);
    Matrix w(kDecodeDim, kDecodeDim);
    for (double &v : w.data())
        v = rng.uniform(-1.0, 1.0);
    std::vector<Matrix> xs(kSteps);
    for (Matrix &x : xs) {
        x = Matrix(1, kDecodeDim);
        for (double &v : x.data())
            v = rng.uniform(-1.0, 1.0);
    }

    nn::ExecutionEngine engine(dcfg, core::EvalMode::Noisy);
    core::Dptc reference(dcfg);

    // Cache on: encode the stationary operand once, then run every
    // step against the plan (stream id = step, replayed identically
    // by the off column).
    engine.resetStats();
    core::EncodedOperand plan = engine.encodeWeight(w);
    std::vector<Matrix> on_out(kSteps);
    double on_best = 1e30;
    for (int r = 0; r < kDecodeReps; ++r)
        on_best = std::min(on_best, secondsOf([&] {
                               for (size_t s = 0; s < kSteps; ++s)
                                   on_out[s] =
                                       engine.gemm(xs[s], plan, s);
                           }));
    const size_t hits = engine.stats().encode_cache_hits.load();
    const size_t misses = engine.stats().encode_cache_misses.load();

    // Cache off: the pre-plan path, verbatim — per-step beta
    // normalization + quantization of BOTH operands and the
    // reference (unpacked) tile kernel, seeded exactly like the
    // engine's stream-addressed gemm.
    std::vector<Matrix> off_out(kSteps);
    double off_best = 1e30;
    for (int r = 0; r < kDecodeReps; ++r)
        off_best = std::min(
            off_best, secondsOf([&] {
                for (size_t s = 0; s < kSteps; ++s) {
                    double beta_a = core::Dptc::maxAbs(xs[s]);
                    double beta_b = core::Dptc::maxAbs(w);
                    Matrix a_hat = core::Dptc::normalizeQuantize(
                        xs[s], beta_a, dcfg.input_bits);
                    Matrix b_hat = core::Dptc::normalizeQuantize(
                        w, beta_b, dcfg.input_bits);
                    off_out[s] = Matrix(1, kDecodeDim, 0.0);
                    reference.gemmTiles(
                        a_hat, b_hat, core::EvalMode::Noisy,
                        beta_a * beta_b, 0,
                        reference.outputTilesFor(1, kDecodeDim),
                        off_out[s], deriveSeed(dcfg.seed, s));
                }
            }));

    DecodeResult res;
    res.dim = kDecodeDim;
    res.steps = kSteps;
    res.cache_on_ms = on_best / kSteps * 1e3;
    res.cache_off_ms = off_best / kSteps * 1e3;
    res.speedup = res.cache_off_ms / res.cache_on_ms;
    res.identical = true;
    for (size_t s = 0; s < kSteps; ++s)
        res.identical &= on_out[s].maxAbsDiff(off_out[s]) == 0.0;
    res.hits = hits;
    res.misses = misses;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool json = false;
    std::string json_path = "BENCH_engine.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_engine_scaling [--csv] "
                         "[--json [path]]\n";
            return 2;
        }
    }

    Rng rng(0xBE7C);
    Matrix a(kDim, kDim), b(kDim, kDim);
    for (double &v : a.data())
        v = rng.uniform(-1.0, 1.0);
    for (double &v : b.data())
        v = rng.uniform(-1.0, 1.0);

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;

    const double macs = static_cast<double>(kDim) * kDim * kDim;
    std::vector<Row> rows;
    Matrix reference;

    for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        nn::ExecutionEngine engine(dcfg, core::EvalMode::Noisy);

        Matrix out = engine.gemm(a, b); // warm-up + correctness probe
        double ph_best = 1e30;
        for (int r = 0; r < kReps; ++r)
            ph_best = std::min(
                ph_best, secondsOf([&] { out = engine.gemm(a, b); }));

        double mm_best = 1e30;
        Matrix mm_out;
        for (int r = 0; r < kReps; ++r)
            mm_best = std::min(
                mm_best, secondsOf([&] { mm_out = matmul(a, b); }));

        Row row;
        row.threads = threads;
        row.photonic_s = ph_best;
        row.photonic_gmacs = macs / ph_best / 1e9;
        row.matmul_s = mm_best;
        if (threads == 1) {
            reference = out;
            row.photonic_speedup = 1.0;
            row.matmul_speedup = 1.0;
        } else {
            row.photonic_speedup = rows.front().photonic_s / ph_best;
            row.matmul_speedup = rows.front().matmul_s / mm_best;
        }
        row.identical = out.maxAbsDiff(reference) == 0.0;
        rows.push_back(row);
    }
    ThreadPool::setGlobalThreads(0);

    DecodeResult decode = runDecodeScenario();

    if (json) {
        // The committed perf-trajectory snapshot: one object per
        // thread count, plus enough host context to interpret it.
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"engine_scaling\",\n"
            << "  \"gemm\": \"" << kDim << "x" << kDim << "x" << kDim
            << "\",\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            out << "    {\"threads\": " << r.threads
                << ", \"photonic_s\": " << r.photonic_s
                << ", \"photonic_gmacs\": " << r.photonic_gmacs
                << ", \"photonic_speedup\": " << r.photonic_speedup
                << ", \"bit_identical\": "
                << (r.identical ? "true" : "false")
                << ", \"matmul_s\": " << r.matmul_s
                << ", \"matmul_speedup\": " << r.matmul_speedup << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"decode\": {\"gemm\": \"1x" << decode.dim << "x"
            << decode.dim << "\", \"steps\": " << decode.steps
            << ", \"noise\": \"systematic+dispersion\""
            << ", \"cache_off_ms_per_step\": " << decode.cache_off_ms
            << ", \"cache_on_ms_per_step\": " << decode.cache_on_ms
            << ", \"cache_speedup\": " << decode.speedup
            << ", \"bit_identical\": "
            << (decode.identical ? "true" : "false")
            << ", \"encode_cache_hits\": " << decode.hits
            << ", \"encode_cache_misses\": " << decode.misses
            << "}\n}\n";
        // stderr: keeps the CSV stream clean when modes are combined.
        std::cerr << "wrote " << json_path << "\n";
    }

    // The determinism contracts are this bench's CI signal: a
    // non-bit-identical scaling row, a cached-vs-uncached decode
    // mismatch, or a dead encode cache is a hard failure in every
    // output mode.
    bool all_identical = true;
    for (const Row &r : rows)
        all_identical &= r.identical;
    const bool decode_ok =
        decode.identical && decode.hits > 0 && decode.misses <= 1;

    if (csv) {
        std::cout << "threads,photonic_s,photonic_gmacs,"
                     "photonic_speedup,bit_identical,matmul_s,"
                     "matmul_speedup\n";
        for (const Row &r : rows)
            std::cout << r.threads << "," << r.photonic_s << ","
                      << r.photonic_gmacs << "," << r.photonic_speedup
                      << "," << (r.identical ? 1 : 0) << ","
                      << r.matmul_s << "," << r.matmul_speedup << "\n";
        std::cout << "\ndecode_gemm,cache_off_ms_per_step,"
                     "cache_on_ms_per_step,cache_speedup,"
                     "bit_identical,encode_cache_hits,"
                     "encode_cache_misses\n"
                  << "1x" << decode.dim << "x" << decode.dim << ","
                  << decode.cache_off_ms << "," << decode.cache_on_ms
                  << "," << decode.speedup << ","
                  << (decode.identical ? 1 : 0) << "," << decode.hits
                  << "," << decode.misses << "\n";
    }
    if (csv || json) {
        if (!all_identical)
            std::cerr << "DETERMINISM VIOLATION: results differ "
                         "across thread counts\n";
        if (!decode.identical)
            std::cerr << "DETERMINISM VIOLATION: cached decode GEMMs "
                         "differ from the uncached reference\n";
        else if (!decode_ok)
            std::cerr << "ENCODE CACHE VIOLATION: hits=" << decode.hits
                      << " misses=" << decode.misses
                      << " (want hits > 0, misses <= 1)\n";
        return all_identical && decode_ok ? 0 : 1;
    }

    printBanner(std::cout, "Execution-engine scaling: 256^3 GEMM "
                           "throughput vs thread count");
    std::cout << "host hardware threads: "
              << std::thread::hardware_concurrency() << "\n\n";
    Table table({"threads", "photonic [s]", "GMAC/s", "speedup",
                 "bit-identical", "matmul [s]", "speedup"});
    for (const Row &r : rows) {
        table.addRow({std::to_string(r.threads),
                      units::fmtFixed(r.photonic_s, 3),
                      units::fmtFixed(r.photonic_gmacs, 3),
                      units::fmtFixed(r.photonic_speedup, 2) + "x",
                      r.identical ? "yes" : "NO",
                      units::fmtFixed(r.matmul_s, 4),
                      units::fmtFixed(r.matmul_speedup, 2) + "x"});
    }
    table.print(std::cout);
    std::cout
        << "\nDeterminism: every thread count must report "
           "bit-identical = yes\n(counter-seeded tile noise). Speedup "
           "saturates at min(hardware threads,\nengine cores).\n";

    printBanner(std::cout,
                "Decode regime: 1x" + std::to_string(decode.dim) +
                    "x" + std::to_string(decode.dim) +
                    " noisy GEMM, weight-plan cache on vs off");
    Table dtable({"cache", "ms/step", "speedup", "bit-identical",
                  "enc hits", "enc misses"});
    dtable.addRow({"off (re-encode)",
                   units::fmtFixed(decode.cache_off_ms, 3), "1.00x",
                   "-", "-", "-"});
    dtable.addRow({"on (plan)",
                   units::fmtFixed(decode.cache_on_ms, 3),
                   units::fmtFixed(decode.speedup, 2) + "x",
                   decode.identical ? "yes" : "NO",
                   std::to_string(decode.hits),
                   std::to_string(decode.misses)});
    dtable.print(std::cout);
    std::cout
        << "\nThe stationary weight operand is encoded once "
           "(Dptc::encode) and reused;\ncached results must be "
           "bit-identical to the per-step re-encode path.\nScenario "
           "noise: dispersion + systematic output term (encoding "
           "noise off —\nwith it on, per-MAC Gaussian draws dominate "
           "and caching is invisible).\n";
    return all_identical && decode_ok ? 0 : 1;
}
