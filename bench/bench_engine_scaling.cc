/**
 * @file
 * Execution-engine scaling microbench: GEMM throughput of the
 * software model vs thread count, for both the noisy photonic engine
 * (tile-sharded across DPTC core replicas) and the ideal blocked
 * matmul. Establishes the perf trajectory for later batching /
 * sharding work; rerun after touching the engine, the pool, or the
 * matmul kernel.
 *
 * Also asserts the determinism contract on every row: the result at
 * N threads must be bit-identical to the 1-thread result.
 *
 * Decode-regime scenario: a REAL autoregressive decode
 * (InferenceSession over a 256-dim causal model) on the noisy engine,
 * across the three encoded-operand cache states:
 *
 *   plans off   — every operand re-encoded per step (pre-PR-4 path);
 *   weight plans— static weights served from plans, K/V caches still
 *                 re-encoded per step (the PR 4 steady state);
 *   weight+kv   — weights from plans AND per-head K/V held encoded,
 *                 grown by O(dk) packed appends per token (this PR).
 *
 * All three must produce bit-identical logits at every step (same
 * request id — this pins the encoded-append and operand-view
 * refactors in CI), the kv column must show zero steady-state K/V
 * encodes (kv_encode_misses == 0 after warmup), and both caches must
 * record hits. The scenario runs with encoding noise off (dispersion
 * + systematic output noise only): under full encoding noise the
 * per-MAC Gaussian draws dominate and no amount of operand caching
 * moves the needle — the regime where caching matters is exactly the
 * calibrated/systematic-noise serving configuration.
 *
 * Tracing-overhead scenario (observability PR): the decode bench runs
 * with NO obs::TraceRecorder installed, so every TraceScope in the
 * engine/session/decoder hot path must compile down to one relaxed
 * atomic load and a not-taken branch. The cache-on ms/step is gated
 * against the committed BENCH_engine.json baseline with a < 3%
 * regression budget — if disabled tracing ever costs measurable decode
 * time, this exits nonzero. A second, informational measurement reruns
 * the same decode WITH a recorder installed and reports the traced
 * overhead (not gated: recording cost is a price the user opts into).
 *
 * Usage: bench_engine_scaling [--csv] [--json [path]]
 *
 * --csv prints the rows as CSV on stdout (the CI smoke mode) and
 * exits nonzero on any bit-identity violation or a dead cache;
 * --json writes the per-PR perf-trajectory snapshot (default path
 * BENCH_engine.json, committed at the repo root so the scaling
 * numbers are diffable across PRs; host hardware-thread count is
 * recorded so snapshots are comparable across machines).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/dptc.hh"
#include "nn/execution_engine.hh"
#include "nn/inference_session.hh"
#include "nn/transformer.hh"
#include "obs/trace.hh"
#include "util/fast_rng.hh"
#include "util/linalg.hh"
#include "util/parallel.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace {

using namespace lt;

constexpr size_t kDim = 256; ///< 256 x 256 x 256 GEMM
constexpr int kReps = 3;

/**
 * The decode perf gate of the fast-noise-pipeline PR: the committed
 * bit-exact cache-on ms/step BEFORE the pipeline rewrite (PR 5's
 * BENCH_engine.json). The rewritten bit-exact path must beat it by at
 * least 1.5x, and the Fast sampler must beat the bit-exact path.
 */
constexpr double kPreRewriteDecodeMsPerStep = 7.42;
constexpr double kDecodeSpeedupGate = 1.5;

/**
 * Tracing-overhead gate of the observability PR: the committed
 * cache-on ms/step of BENCH_engine.json at the time the serve path
 * was instrumented. With tracing disabled (no recorder installed —
 * this bench's default state) the decode must stay within
 * kTracingOverheadBudget of it: disabled instrumentation is one
 * relaxed atomic load + branch per scope and must not show up in
 * ms/step. Re-pin the baseline whenever BENCH_engine.json is
 * regenerated for an unrelated perf change.
 */
constexpr double kCommittedCacheOnMsPerStep = 3.93543;
constexpr double kTracingOverheadBudget = 1.03; ///< < 3% regression

double
secondsOf(const std::function<void()> &fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

struct Row
{
    size_t threads;
    double photonic_s;
    double photonic_gmacs;
    double photonic_speedup;
    bool identical;
    double matmul_s;
    double matmul_speedup;
};

struct DecodeResult
{
    size_t dim;
    size_t steps;
    size_t prompt;
    double plans_off_ms;     ///< per-step, every operand re-encoded
    double weight_plans_ms;  ///< per-step, PR 4 state: weights cached
    double kv_plans_ms;      ///< per-step, weights + encoded K/V
    double fast_ms;          ///< per-step, caches + NoiseSampler::Fast
    double speedup;          ///< plans_off / kv_plans
    double kv_speedup;       ///< weight_plans / kv_plans (this PR)
    double fast_speedup;     ///< kv_plans / fast (bit-exact vs Fast)
    bool identical;          ///< bit-exact columns bitwise equal
    size_t draws_per_step;      ///< Gaussian draws/step, bit-exact
    size_t fast_draws_per_step; ///< Gaussian draws/step, Fast
    size_t kv_requants;      ///< beta-growth requants over the run
    // Steady-state gate, measured over the record-free tail window:
    // every product a cache hit, ZERO encodes of either class.
    size_t weight_hits;
    size_t weight_misses;    ///< want 0
    size_t kv_hits;
    size_t kv_misses;        ///< want 0
    // KV memory of the run, in the serve layer's two models: what a
    // dense max_tokens reservation holds for the session's lifetime
    // vs the block-paged footprint of the tokens actually cached
    // (serve/kv_pool geometry: block_tokens x 2 x dim doubles/layer).
    size_t kv_context_tokens;       ///< final K/V tokens per layer
    size_t kv_dense_reserve_bytes;  ///< max_tokens worst case
    size_t kv_paged_resident_bytes; ///< blocks covering the context
    size_t kv_block_tokens;
};

/** Per-draw cost of the three Gaussian pipelines [ns]. */
struct RngBenchResult
{
    double scalar_ns;  ///< Rng::gaussian per-call (blocked engine)
    double blocked_ns; ///< Rng::fillGaussian bulk fill
    double fast_ns;    ///< FastRng::fillGaussian (Ziggurat)
};

/** ns/draw of scalar vs blocked-bulk vs Fast sampling. */
RngBenchResult
runRngMicrobench()
{
    constexpr size_t kDraws = 2'000'000;
    constexpr size_t kBuf = 4096;
    RngBenchResult res;
    double sink = 0.0;
    {
        Rng rng(1);
        double s = secondsOf([&] {
            double acc = 0.0;
            for (size_t i = 0; i < kDraws; ++i)
                acc += rng.gaussian(0.0, 1.0);
            sink += acc;
        });
        res.scalar_ns = s / kDraws * 1e9;
    }
    std::vector<double> buf(kBuf);
    {
        Rng rng(2);
        double s = secondsOf([&] {
            for (size_t i = 0; i < kDraws / kBuf; ++i)
                rng.fillGaussian(buf, 0.0, 1.0);
        });
        res.blocked_ns = s / ((kDraws / kBuf) * kBuf) * 1e9;
    }
    {
        FastRng rng(3);
        double s = secondsOf([&] {
            for (size_t i = 0; i < kDraws / kBuf; ++i)
                rng.fillGaussian(buf, 0.0, 1.0);
        });
        res.fast_ns = s / ((kDraws / kBuf) * kBuf) * 1e9;
    }
    sink += buf[0];
    if (sink == 0.12345) // defeat dead-code elimination of the loops
        std::cerr << "";
    return res;
}

/** The decode-regime cache comparison (see file header). */
DecodeResult
runDecodeScenario()
{
    constexpr size_t kDecodeDim = 256;
    constexpr size_t kPrompt = 96;
    constexpr size_t kSteps = 32;
    constexpr int kDecodeReps = 6;

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;
    dcfg.noise.enable_encoding_noise = false;

    nn::TransformerConfig mcfg;
    mcfg.dim = kDecodeDim;
    mcfg.depth = 2;
    mcfg.heads = 8;
    mcfg.mlp_hidden = 2 * kDecodeDim;
    mcfg.num_classes = 256;
    mcfg.vocab_size = 256;
    mcfg.max_tokens = kPrompt + kSteps;
    mcfg.pooling = nn::Pooling::LastToken;
    mcfg.causal = true;
    nn::TransformerClassifier model(mcfg);

    Rng rng(0xDEC0DE);
    std::vector<int> prompt(kPrompt);
    for (int &t : prompt)
        t = static_cast<int>(rng.uniformInt(0, 255));
    std::vector<int> next(kSteps);
    for (int &t : next)
        t = static_cast<int>(rng.uniformInt(0, 255));

    // One engine per cache state; same request id everywhere, so the
    // three columns must agree bit-for-bit at every step.
    nn::ExecutionEngine off_engine(
        nn::EngineConfig{dcfg, core::EvalMode::Noisy, 8, false,
                         false});
    nn::ExecutionEngine weights_engine(
        nn::EngineConfig{dcfg, core::EvalMode::Noisy, 8, true, false});
    nn::ExecutionEngine kv_engine(
        nn::EngineConfig{dcfg, core::EvalMode::Noisy, 8, true, true});
    // The Fast-sampler column: same caches, same request id, Ziggurat
    // noise stream (deterministic, but NOT bitwise comparable to the
    // bit-exact columns — it is excluded from the identity gate).
    core::DptcConfig fast_cfg = dcfg;
    fast_cfg.noise.sampler = core::NoiseSampler::Fast;
    nn::ExecutionEngine fast_engine(
        nn::EngineConfig{fast_cfg, core::EvalMode::Noisy, 8, true,
                         true});

    auto runColumn = [&](nn::ExecutionEngine &engine,
                         std::vector<Matrix> &out, double &best_s) {
        best_s = 1e30;
        for (int r = 0; r < kDecodeReps; ++r) {
            nn::InferenceSession session(model, engine,
                                         nn::QuantConfig::w8a8(),
                                         /*request_id=*/7);
            session.prefill(prompt);
            // Warm one step (plan builds; KV seeding already happened
            // at prefill), then reset stats so the measured counters
            // are the steady state.
            session.decodeStep(next[0]);
            engine.resetStats();
            std::vector<Matrix> logits(kSteps - 1);
            double s = secondsOf([&] {
                for (size_t i = 1; i < kSteps; ++i)
                    logits[i - 1] = session.decodeStep(next[i]);
            });
            best_s = std::min(best_s, s);
            out = std::move(logits);
        }
    };

    std::vector<Matrix> off_out, weights_out, kv_out, fast_out;
    double off_s, weights_s, kv_s, fast_s;
    runColumn(off_engine, off_out, off_s);
    runColumn(weights_engine, weights_out, weights_s);
    runColumn(kv_engine, kv_out, kv_s);
    // Stats survive from the last measured rep (31 steps): the
    // bit-exact draw load of one decode step.
    const size_t kv_draws = kv_engine.stats().gaussian_draws.load();
    runColumn(fast_engine, fast_out, fast_s);
    const size_t fast_draws =
        fast_engine.stats().gaussian_draws.load();
    // Beta-growth requantizations over the whole measured run: a new
    // token whose magnitude sets a per-operand record forces one
    // (bit-identity-preserving) in-place requant; records decay like
    // ln(T) — report them honestly.
    const size_t kv_requants =
        kv_engine.stats().kv_encode_misses.load();

    // Steady-state gate: replay the decode and measure only the tail
    // window, after the running betas have seen (for this fixed seed
    // — everything here is bit-reproducible) their last record: every
    // weight GEMM must be a plan hit and every K/V product an
    // encoded-cache hit, with ZERO encodes of either class. This is
    // the nonzero-exit acceptance gate of the encoded K/V cache.
    constexpr size_t kSteadyTail = 3;
    {
        nn::InferenceSession session(model, kv_engine,
                                     nn::QuantConfig::w8a8(),
                                     /*request_id=*/7);
        session.prefill(prompt);
        for (size_t i = 0; i + kSteadyTail < kSteps; ++i)
            session.decodeStep(next[i]);
        kv_engine.resetStats();
        for (size_t i = kSteps - kSteadyTail; i < kSteps; ++i)
            session.decodeStep(next[i]);
    }

    DecodeResult res;
    res.dim = kDecodeDim;
    res.steps = kSteps;
    res.prompt = kPrompt;
    res.plans_off_ms = off_s / (kSteps - 1) * 1e3;
    res.weight_plans_ms = weights_s / (kSteps - 1) * 1e3;
    res.kv_plans_ms = kv_s / (kSteps - 1) * 1e3;
    res.fast_ms = fast_s / (kSteps - 1) * 1e3;
    res.speedup = res.plans_off_ms / res.kv_plans_ms;
    res.kv_speedup = res.weight_plans_ms / res.kv_plans_ms;
    res.fast_speedup = res.kv_plans_ms / res.fast_ms;
    res.draws_per_step = kv_draws / (kSteps - 1);
    res.fast_draws_per_step = fast_draws / (kSteps - 1);
    res.identical = off_out.size() == weights_out.size() &&
                    off_out.size() == kv_out.size();
    for (size_t s = 0; res.identical && s < off_out.size(); ++s)
        res.identical =
            off_out[s].maxAbsDiff(weights_out[s]) == 0.0 &&
            off_out[s].maxAbsDiff(kv_out[s]) == 0.0;
    res.kv_requants = kv_requants;
    res.weight_hits = kv_engine.stats().weight_encode_hits.load();
    res.weight_misses = kv_engine.stats().weight_encode_misses.load();
    res.kv_hits = kv_engine.stats().kv_encode_hits.load();
    res.kv_misses = kv_engine.stats().kv_encode_misses.load();

    constexpr size_t kBlockTokens = 16;
    const size_t bytes_per_token_layer =
        2 * kDecodeDim * sizeof(double);
    res.kv_context_tokens = kPrompt + kSteps;
    res.kv_block_tokens = kBlockTokens;
    res.kv_dense_reserve_bytes =
        mcfg.max_tokens * mcfg.depth * bytes_per_token_layer;
    res.kv_paged_resident_bytes =
        mcfg.depth *
        ((res.kv_context_tokens + kBlockTokens - 1) / kBlockTokens) *
        kBlockTokens * bytes_per_token_layer;
    return res;
}

/**
 * Fault-layer acceptance gate (robustness PR). Three engines on the
 * same 256^3 operands and stream:
 *
 *   off       — fault layer inactive (the default config);
 *   verify    — ABFT checksums armed, injection off;
 *   recovered — a dead replica injected, detected, retried onto
 *               healthy replicas, and (past the threshold)
 *               quarantined.
 *
 * All three results must be bitwise identical: verification never
 * changes values, and recovery re-executes tiles on replicas whose
 * noise is replica-independent. The injected run must actually
 * detect and quarantine — a silent fault layer is a failure. The
 * fault-OFF hot-loop cost is gated separately by the decode ms/step
 * budget above (the default engine carries the fault branch).
 */
struct FaultGateResult
{
    bool off_vs_verify = false;    ///< bitwise equal
    bool off_vs_recovered = false; ///< bitwise equal
    uint64_t faults_detected = 0;  ///< injected run, want > 0
    uint64_t quarantines = 0;      ///< injected run, want >= 1
    bool ok() const
    {
        return off_vs_verify && off_vs_recovered &&
               faults_detected > 0 && quarantines >= 1;
    }
};

FaultGateResult
runFaultGate(const Matrix &a, const Matrix &b)
{
    core::DptcConfig dcfg;
    dcfg.input_bits = 8;

    nn::EngineConfig off_cfg{dcfg, core::EvalMode::Noisy, 8, true,
                             true};
    nn::EngineConfig verify_cfg = off_cfg;
    verify_cfg.fault_policy.verify = true;
    nn::EngineConfig faulty_cfg = off_cfg;
    faulty_cfg.faults.enabled = true;
    faulty_cfg.faults.replicas.resize(8);
    faulty_cfg.faults.replicas[2].dead = true;

    nn::ExecutionEngine off_engine(off_cfg);
    nn::ExecutionEngine verify_engine(verify_cfg);
    nn::ExecutionEngine faulty_engine(faulty_cfg);

    Matrix want = off_engine.gemm(a, b, /*stream=*/0);
    Matrix verified = verify_engine.gemm(a, b, /*stream=*/0);
    Matrix recovered = faulty_engine.gemm(a, b, /*stream=*/0);

    FaultGateResult res;
    res.off_vs_verify = want.maxAbsDiff(verified) == 0.0;
    res.off_vs_recovered = want.maxAbsDiff(recovered) == 0.0;
    nn::EngineStatus status = faulty_engine.status();
    res.faults_detected = status.faults_detected;
    res.quarantines = status.quarantines;
    return res;
}

/**
 * The kv_plans decode column re-timed WITH a TraceRecorder installed:
 * the informational traced counterpart of the tracing-off overhead
 * gate. Ring capacity is sized so nothing drops mid-run; the recorder
 * is uninstalled before returning.
 */
double
runTracedDecodeMsPerStep(uint64_t *dropped)
{
    constexpr size_t kDecodeDim = 256;
    constexpr size_t kPrompt = 96;
    constexpr size_t kSteps = 32;
    constexpr int kDecodeReps = 3;

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;
    dcfg.noise.enable_encoding_noise = false;

    nn::TransformerConfig mcfg;
    mcfg.dim = kDecodeDim;
    mcfg.depth = 2;
    mcfg.heads = 8;
    mcfg.mlp_hidden = 2 * kDecodeDim;
    mcfg.num_classes = 256;
    mcfg.vocab_size = 256;
    mcfg.max_tokens = kPrompt + kSteps;
    mcfg.pooling = nn::Pooling::LastToken;
    mcfg.causal = true;
    nn::TransformerClassifier model(mcfg);

    Rng rng(0xDEC0DE);
    std::vector<int> prompt(kPrompt);
    for (int &t : prompt)
        t = static_cast<int>(rng.uniformInt(0, 255));
    std::vector<int> next(kSteps);
    for (int &t : next)
        t = static_cast<int>(rng.uniformInt(0, 255));

    nn::ExecutionEngine engine(
        nn::EngineConfig{dcfg, core::EvalMode::Noisy, 8, true, true});

    obs::TraceRecorder recorder(1 << 18);
    obs::installRecorder(&recorder);
    double best_s = 1e30;
    for (int r = 0; r < kDecodeReps; ++r) {
        nn::InferenceSession session(model, engine,
                                     nn::QuantConfig::w8a8(),
                                     /*request_id=*/7);
        session.prefill(prompt);
        session.decodeStep(next[0]); // warm plan builds
        double s = secondsOf([&] {
            for (size_t i = 1; i < kSteps; ++i)
                session.decodeStep(next[i]);
        });
        best_s = std::min(best_s, s);
    }
    obs::installRecorder(nullptr);
    *dropped = recorder.droppedEvents();
    return best_s / (kSteps - 1) * 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool json = false;
    std::string json_path = "BENCH_engine.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_engine_scaling [--csv] "
                         "[--json [path]]\n";
            return 2;
        }
    }

    Rng rng(0xBE7C);
    Matrix a(kDim, kDim), b(kDim, kDim);
    for (double &v : a.data())
        v = rng.uniform(-1.0, 1.0);
    for (double &v : b.data())
        v = rng.uniform(-1.0, 1.0);

    core::DptcConfig dcfg;
    dcfg.input_bits = 8;

    const double macs = static_cast<double>(kDim) * kDim * kDim;
    std::vector<Row> rows;
    Matrix reference;

    for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        nn::ExecutionEngine engine(dcfg, core::EvalMode::Noisy);

        Matrix out = engine.gemm(a, b); // warm-up + correctness probe
        double ph_best = 1e30;
        for (int r = 0; r < kReps; ++r)
            ph_best = std::min(
                ph_best, secondsOf([&] { out = engine.gemm(a, b); }));

        double mm_best = 1e30;
        Matrix mm_out;
        for (int r = 0; r < kReps; ++r)
            mm_best = std::min(
                mm_best, secondsOf([&] { mm_out = matmul(a, b); }));

        Row row;
        row.threads = threads;
        row.photonic_s = ph_best;
        row.photonic_gmacs = macs / ph_best / 1e9;
        row.matmul_s = mm_best;
        if (threads == 1) {
            reference = out;
            row.photonic_speedup = 1.0;
            row.matmul_speedup = 1.0;
        } else {
            row.photonic_speedup = rows.front().photonic_s / ph_best;
            row.matmul_speedup = rows.front().matmul_s / mm_best;
        }
        row.identical = out.maxAbsDiff(reference) == 0.0;
        rows.push_back(row);
    }
    ThreadPool::setGlobalThreads(0);

    DecodeResult decode = runDecodeScenario();
    FaultGateResult fault = runFaultGate(a, b);
    RngBenchResult rngb = runRngMicrobench();
    uint64_t traced_dropped = 0;
    const double traced_ms = runTracedDecodeMsPerStep(&traced_dropped);
    const double traced_overhead =
        decode.kv_plans_ms > 0.0 ? traced_ms / decode.kv_plans_ms
                                 : 0.0;

    if (json) {
        // The committed perf-trajectory snapshot: one object per
        // thread count, plus enough host context to interpret it.
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"engine_scaling\",\n"
            << "  \"gemm\": \"" << kDim << "x" << kDim << "x" << kDim
            << "\",\n  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            out << "    {\"threads\": " << r.threads
                << ", \"photonic_s\": " << r.photonic_s
                << ", \"photonic_gmacs\": " << r.photonic_gmacs
                << ", \"photonic_speedup\": " << r.photonic_speedup
                << ", \"bit_identical\": "
                << (r.identical ? "true" : "false")
                << ", \"matmul_s\": " << r.matmul_s
                << ", \"matmul_speedup\": " << r.matmul_speedup << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"rng\": {\"scalar_ns_per_draw\": " << rngb.scalar_ns
            << ", \"blocked_ns_per_draw\": " << rngb.blocked_ns
            << ", \"fast_ns_per_draw\": " << rngb.fast_ns << "},\n"
            << "  \"decode\": {\"model\": \"dim" << decode.dim
            << "x2L8H\", \"prompt\": " << decode.prompt
            << ", \"steps\": " << decode.steps
            << ", \"noise\": \"systematic+dispersion\""
            << ", \"cache_off_ms_per_step\": " << decode.plans_off_ms
            << ", \"weight_plans_ms_per_step\": "
            << decode.weight_plans_ms
            << ", \"cache_on_ms_per_step\": " << decode.kv_plans_ms
            << ", \"fast_sampler_ms_per_step\": " << decode.fast_ms
            << ", \"cache_speedup\": " << decode.speedup
            << ", \"kv_cache_speedup_vs_pr4\": " << decode.kv_speedup
            << ", \"fast_speedup_vs_bitexact\": "
            << decode.fast_speedup
            << ", \"gaussian_draws_per_step\": "
            << decode.draws_per_step
            << ", \"fast_gaussian_draws_per_step\": "
            << decode.fast_draws_per_step
            << ", \"bit_identical\": "
            << (decode.identical ? "true" : "false")
            << ", \"kv_requants_over_run\": " << decode.kv_requants
            << ", \"steady_weight_encode_hits\": "
            << decode.weight_hits
            << ", \"steady_weight_encode_misses\": "
            << decode.weight_misses
            << ", \"steady_kv_encode_hits\": " << decode.kv_hits
            << ", \"steady_kv_encode_misses\": " << decode.kv_misses
            << ", \"kv_context_tokens\": "
            << decode.kv_context_tokens
            << ", \"kv_block_tokens\": " << decode.kv_block_tokens
            << ", \"kv_dense_reserve_bytes\": "
            << decode.kv_dense_reserve_bytes
            << ", \"kv_paged_resident_bytes\": "
            << decode.kv_paged_resident_bytes << "},\n"
            << "  \"fault_gate\": {\"off_vs_verify_identical\": "
            << (fault.off_vs_verify ? "true" : "false")
            << ", \"off_vs_recovered_identical\": "
            << (fault.off_vs_recovered ? "true" : "false")
            << ", \"faults_detected\": " << fault.faults_detected
            << ", \"quarantines\": " << fault.quarantines << "},\n"
            << "  \"tracing\": {\"committed_cache_on_ms_per_step\": "
            << kCommittedCacheOnMsPerStep
            << ", \"overhead_budget\": " << kTracingOverheadBudget
            << ", \"traced_cache_on_ms_per_step\": " << traced_ms
            << ", \"traced_overhead_vs_untraced\": " << traced_overhead
            << ", \"trace_dropped_events\": " << traced_dropped
            << "}\n}\n";
        // stderr: keeps the CSV stream clean when modes are combined.
        std::cerr << "wrote " << json_path << "\n";
    }

    // The determinism contracts are this bench's CI signal: a
    // non-bit-identical scaling row, a cached-vs-uncached decode
    // mismatch, or a dead encode cache is a hard failure in every
    // output mode.
    bool all_identical = true;
    for (const Row &r : rows)
        all_identical &= r.identical;
    // Steady-state decode: both caches alive, ZERO re-encodes of
    // weights or K/V after warmup — the acceptance gate of the
    // encoded K/V cache (a dead KV cache fails CI here).
    const bool decode_ok = decode.identical && decode.weight_hits > 0 &&
                           decode.weight_misses == 0 &&
                           decode.kv_hits > 0 && decode.kv_misses == 0;
    // Noise-pipeline perf gates: the rewritten bit-exact path must
    // hold >= 1.5x over the committed pre-rewrite decode baseline, and
    // the Fast sampler must beat the bit-exact path outright.
    const bool bitexact_fast_enough =
        decode.kv_plans_ms <=
        kPreRewriteDecodeMsPerStep / kDecodeSpeedupGate;
    const bool fast_beats_bitexact = decode.fast_ms < decode.kv_plans_ms;
    // Observability gate: with no recorder installed the decode must
    // not regress more than the tracing-overhead budget vs the
    // committed baseline — disabled instrumentation has to be free.
    const bool tracing_off_free =
        decode.kv_plans_ms <=
        kCommittedCacheOnMsPerStep * kTracingOverheadBudget;
    const bool perf_ok =
        bitexact_fast_enough && fast_beats_bitexact && tracing_off_free;
    // Fault-layer gate: verification and recovery both bit-identical
    // to the fault-free engine, and the injected run actually fired.
    const bool fault_ok = fault.ok();

    if (csv) {
        std::cout << "threads,photonic_s,photonic_gmacs,"
                     "photonic_speedup,bit_identical,matmul_s,"
                     "matmul_speedup,hardware_threads\n";
        for (const Row &r : rows)
            std::cout << r.threads << "," << r.photonic_s << ","
                      << r.photonic_gmacs << "," << r.photonic_speedup
                      << "," << (r.identical ? 1 : 0) << ","
                      << r.matmul_s << "," << r.matmul_speedup << ","
                      << std::thread::hardware_concurrency() << "\n";
        std::cout << "\ndecode_model,cache_off_ms_per_step,"
                     "weight_plans_ms_per_step,cache_on_ms_per_step,"
                     "fast_sampler_ms_per_step,"
                     "cache_speedup,kv_cache_speedup_vs_pr4,"
                     "fast_speedup_vs_bitexact,"
                     "gaussian_draws_per_step,"
                     "fast_gaussian_draws_per_step,"
                     "bit_identical,kv_requants_over_run,"
                     "steady_weight_encode_hits,"
                     "steady_weight_encode_misses,"
                     "steady_kv_encode_hits,steady_kv_encode_misses\n"
                  << "dim" << decode.dim << "x2L8H,"
                  << decode.plans_off_ms << ","
                  << decode.weight_plans_ms << ","
                  << decode.kv_plans_ms << "," << decode.fast_ms << ","
                  << decode.speedup << ","
                  << decode.kv_speedup << ","
                  << decode.fast_speedup << ","
                  << decode.draws_per_step << ","
                  << decode.fast_draws_per_step << ","
                  << (decode.identical ? 1 : 0) << ","
                  << decode.kv_requants << "," << decode.weight_hits
                  << "," << decode.weight_misses << ","
                  << decode.kv_hits << "," << decode.kv_misses
                  << "\n";
        std::cout << "\nrng_scalar_ns_per_draw,rng_blocked_ns_per_draw,"
                     "rng_fast_ns_per_draw\n"
                  << rngb.scalar_ns << "," << rngb.blocked_ns << ","
                  << rngb.fast_ns << "\n";
        std::cout << "\nfault_off_vs_verify_identical,"
                     "fault_off_vs_recovered_identical,"
                     "fault_faults_detected,fault_quarantines\n"
                  << (fault.off_vs_verify ? 1 : 0) << ","
                  << (fault.off_vs_recovered ? 1 : 0) << ","
                  << fault.faults_detected << "," << fault.quarantines
                  << "\n";
        std::cout << "\ncommitted_cache_on_ms_per_step,"
                     "tracing_overhead_budget,"
                     "traced_cache_on_ms_per_step,"
                     "traced_overhead_vs_untraced,"
                     "trace_dropped_events,tracing_off_free\n"
                  << kCommittedCacheOnMsPerStep << ","
                  << kTracingOverheadBudget << "," << traced_ms << ","
                  << traced_overhead << "," << traced_dropped << ","
                  << (tracing_off_free ? 1 : 0) << "\n";
    }
    if (csv || json) {
        if (!all_identical)
            std::cerr << "DETERMINISM VIOLATION: results differ "
                         "across thread counts\n";
        if (!decode.identical)
            std::cerr << "DETERMINISM VIOLATION: cached decode logits "
                         "differ from the re-encode reference\n";
        else if (!decode_ok)
            std::cerr << "ENCODE CACHE VIOLATION: weight hits="
                      << decode.weight_hits
                      << " misses=" << decode.weight_misses
                      << ", kv hits=" << decode.kv_hits
                      << " misses=" << decode.kv_misses
                      << " (want hits > 0 and steady-state misses == "
                         "0 on both)\n";
        if (!bitexact_fast_enough)
            std::cerr << "NOISE PIPELINE PERF VIOLATION: bit-exact "
                         "decode "
                      << decode.kv_plans_ms << " ms/step > "
                      << kPreRewriteDecodeMsPerStep / kDecodeSpeedupGate
                      << " (committed pre-rewrite baseline "
                      << kPreRewriteDecodeMsPerStep << " / "
                      << kDecodeSpeedupGate << "x gate)\n";
        if (!fast_beats_bitexact)
            std::cerr << "NOISE PIPELINE PERF VIOLATION: Fast sampler "
                      << decode.fast_ms
                      << " ms/step not faster than bit-exact "
                      << decode.kv_plans_ms << "\n";
        if (!tracing_off_free)
            std::cerr << "TRACING OVERHEAD VIOLATION: tracing-disabled "
                         "decode "
                      << decode.kv_plans_ms << " ms/step > "
                      << kCommittedCacheOnMsPerStep *
                             kTracingOverheadBudget
                      << " (committed baseline "
                      << kCommittedCacheOnMsPerStep << " x "
                      << kTracingOverheadBudget
                      << " budget) — disabled TraceScopes must be "
                         "free\n";
        if (!fault_ok)
            std::cerr << "FAULT LAYER VIOLATION: off/verify identical="
                      << fault.off_vs_verify
                      << " off/recovered identical="
                      << fault.off_vs_recovered
                      << " faults_detected=" << fault.faults_detected
                      << " quarantines=" << fault.quarantines
                      << " (want identical=1, detected > 0, "
                         "quarantines >= 1)\n";
        return all_identical && decode_ok && perf_ok && fault_ok ? 0
                                                                 : 1;
    }

    printBanner(std::cout, "Execution-engine scaling: 256^3 GEMM "
                           "throughput vs thread count");
    std::cout << "host hardware threads: "
              << std::thread::hardware_concurrency() << "\n\n";
    Table table({"threads", "photonic [s]", "GMAC/s", "speedup",
                 "bit-identical", "matmul [s]", "speedup"});
    for (const Row &r : rows) {
        table.addRow({std::to_string(r.threads),
                      units::fmtFixed(r.photonic_s, 3),
                      units::fmtFixed(r.photonic_gmacs, 3),
                      units::fmtFixed(r.photonic_speedup, 2) + "x",
                      r.identical ? "yes" : "NO",
                      units::fmtFixed(r.matmul_s, 4),
                      units::fmtFixed(r.matmul_speedup, 2) + "x"});
    }
    table.print(std::cout);
    std::cout
        << "\nDeterminism: every thread count must report "
           "bit-identical = yes\n(counter-seeded tile noise). Speedup "
           "saturates at min(hardware threads,\nengine cores).\n";

    printBanner(std::cout,
                "Decode regime: dim-" + std::to_string(decode.dim) +
                    " causal decode (prompt " +
                    std::to_string(decode.prompt) + ", " +
                    std::to_string(decode.steps) +
                    " steps), encoded-operand caches");
    Table dtable({"cache state", "ms/step", "speedup", "bit-identical",
                  "draws/step", "w hits/misses", "kv hits/misses"});
    dtable.addRow({"plans off",
                   units::fmtFixed(decode.plans_off_ms, 3), "1.00x",
                   "-", "-", "-", "-"});
    dtable.addRow({"weight plans (PR4)",
                   units::fmtFixed(decode.weight_plans_ms, 3),
                   units::fmtFixed(decode.plans_off_ms /
                                       decode.weight_plans_ms,
                                   2) +
                       "x",
                   "-", "-", "-", "-"});
    dtable.addRow({"weight+kv plans",
                   units::fmtFixed(decode.kv_plans_ms, 3),
                   units::fmtFixed(decode.speedup, 2) + "x",
                   decode.identical ? "yes" : "NO",
                   std::to_string(decode.draws_per_step),
                   std::to_string(decode.weight_hits) + "/" +
                       std::to_string(decode.weight_misses),
                   std::to_string(decode.kv_hits) + "/" +
                       std::to_string(decode.kv_misses)});
    dtable.addRow({"+ fast sampler",
                   units::fmtFixed(decode.fast_ms, 3),
                   units::fmtFixed(decode.plans_off_ms / decode.fast_ms,
                                   2) +
                       "x",
                   "n/a",
                   std::to_string(decode.fast_draws_per_step), "-",
                   "-"});
    dtable.print(std::cout);
    std::cout
        << "\nStationary weights are encoded once per version; the "
           "growing K/V caches are\nencoded once at prefill and grown "
           "by O(dk) packed appends per token.\nAll bit-exact cache "
           "states must produce bit-identical logits, and "
           "steady-state\nmisses must be zero on both caches. The "
           "fast-sampler row draws Ziggurat noise\n(deterministic, "
           "different stream — excluded from the identity gate). "
           "Scenario\nnoise: dispersion + systematic output term "
           "(encoding noise off — with it on,\nper-MAC Gaussian draws "
           "dominate and caching is invisible).\n";

    printBanner(std::cout, "Gaussian draw pipelines: ns/draw");
    Table rtable({"pipeline", "ns/draw"});
    rtable.addRow({"Rng::gaussian (scalar, blocked engine)",
                   units::fmtFixed(rngb.scalar_ns, 1)});
    rtable.addRow({"Rng::fillGaussian (bulk, bit-exact)",
                   units::fmtFixed(rngb.blocked_ns, 1)});
    rtable.addRow({"FastRng::fillGaussian (Ziggurat)",
                   units::fmtFixed(rngb.fast_ns, 1)});
    rtable.print(std::cout);
    std::cout << "\nDecode perf gates (enforced in --csv/--json): "
                 "bit-exact cache-on <= "
              << units::fmtFixed(kPreRewriteDecodeMsPerStep /
                                     kDecodeSpeedupGate,
                                 3)
              << " ms/step\n(committed pre-rewrite baseline "
              << units::fmtFixed(kPreRewriteDecodeMsPerStep, 2) << " / "
              << units::fmtFixed(kDecodeSpeedupGate, 1)
              << "x), and Fast < bit-exact. This run: "
              << (perf_ok ? "PASS" : "FAIL") << ".\n";

    printBanner(std::cout, "Tracing overhead: decode regime");
    Table ttable({"state", "ms/step", "vs untraced"});
    ttable.addRow({"tracing disabled (gated)",
                   units::fmtFixed(decode.kv_plans_ms, 3),
                   "1.00x"});
    ttable.addRow({"recorder installed",
                   units::fmtFixed(traced_ms, 3),
                   units::fmtFixed(traced_overhead, 2) + "x"});
    ttable.print(std::cout);
    std::cout << "\nDisabled-tracing gate (enforced in --csv/--json): "
                 "cache-on decode <= committed\nbaseline "
              << units::fmtFixed(kCommittedCacheOnMsPerStep, 3)
              << " ms/step x "
              << units::fmtFixed(kTracingOverheadBudget, 2)
              << " — a disabled TraceScope is one relaxed load + "
                 "branch.\nThis run: "
              << (tracing_off_free ? "PASS" : "FAIL")
              << ". Traced run dropped " << traced_dropped
              << " events (recording cost is opt-in, not gated).\n";

    printBanner(std::cout, "Fault layer: ABFT verify + recovery gate");
    Table ftable({"comparison", "bit-identical", "detected",
                  "quarantines"});
    ftable.addRow({"off vs verify-armed",
                   fault.off_vs_verify ? "yes" : "NO", "-", "-"});
    ftable.addRow({"off vs injected+recovered",
                   fault.off_vs_recovered ? "yes" : "NO",
                   std::to_string(fault.faults_detected),
                   std::to_string(fault.quarantines)});
    ftable.print(std::cout);
    std::cout
        << "\nVerification never changes results; recovery re-executes "
           "detected-faulty tiles\non healthy replicas (replica-"
           "independent noise), so both columns must be\nbit-identical "
           "to the fault-free engine. The fault-OFF hot path is one "
           "extra\nbranch per product — its cost rides the decode "
           "ms/step gate above. This run: "
        << (fault_ok ? "PASS" : "FAIL") << ".\n";
    return all_identical && decode_ok && fault_ok ? 0 : 1;
}
