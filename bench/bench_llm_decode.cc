/**
 * @file
 * Section VI-B reproduction: autoregressive LLM decode on the
 * photonic accelerator. Shows (a) the low arithmetic intensity of
 * token-by-token generation makes the workload memory-bound and
 * under-utilizes the photonic compute, (b) batching requests recovers
 * intensity — the paper's proposed mitigation — and (c) the same
 * decode traffic EXECUTING on the functional model through
 * nn::InferenceSession, with the engine's measured MACs cross-checked
 * against the analytic decodeStepWorkload() prediction step by step.
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/execution_engine.hh"
#include "nn/inference_session.hh"
#include "nn/llm_workload.hh"
#include "nn/tensor_ops.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Section VI-B: autoregressive decode on LT-B");

    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    cfg.precision_bits = 8;
    arch::LtPerformanceModel lt_model(cfg);
    const double hbm_bw = cfg.hbm_bandwidth;

    auto model = nn::bertLarge(1); // decoder-sized stand-in
    CsvWriter csv("llm_decode.csv",
                  {"batch", "context", "intensity", "compute_us",
                   "memory_us", "bound"});

    Table table({"batch", "context", "arith. intensity [MAC/B]",
                 "compute [us]", "memory [us]", "bound",
                 "tokens/s (batch)"});
    for (size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
        for (size_t ctx : {512}) {
            nn::DecodeConfig dcfg{model, ctx, batch, 8};
            nn::DecodeStep step = nn::decodeStepWorkload(dcfg);

            // Photonic compute time for the step's GEMM list.
            nn::Workload wl;
            wl.model = "decode";
            wl.ops = step.ops;
            double compute_s =
                lt_model.evaluate(wl).latency.total();
            // Off-chip time to stream weights + KV cache.
            double memory_s =
                static_cast<double>(step.totalBytes()) / hbm_bw;
            double step_s = std::max(compute_s, memory_s);
            bool memory_bound = memory_s > compute_s;

            table.addRow(
                {std::to_string(batch), std::to_string(ctx),
                 units::fmtFixed(step.arithmeticIntensity(), 2),
                 units::fmtFixed(compute_s * 1e6, 2),
                 units::fmtFixed(memory_s * 1e6, 2),
                 memory_bound ? "memory" : "compute",
                 units::fmtFixed(batch / step_s, 0)});
            csv.writeRow({static_cast<double>(batch),
                          static_cast<double>(ctx),
                          step.arithmeticIntensity(),
                          compute_s * 1e6, memory_s * 1e6,
                          memory_bound ? 1.0 : 0.0});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nShape check (paper Section VI-B): batch-1 decode is "
           "memory-bound (weights\nstream for a handful of MACs "
           "each); batching amortizes weight traffic and\nraises "
           "intensity several-fold. The per-request KV-cache stream "
           "keeps\nlong-context attention memory-bound regardless of "
           "batch — exactly why the\npaper proposes Q/K recomputation "
           "and FlashAttention-style tiling for LLMs.\n"
           "(series written to llm_decode.csv)\n\n";

    // ---- executed decode: InferenceSession on the engine ------------

    printBanner(std::cout,
                "Executed decode: InferenceSession vs analytic "
                "workload");

    nn::TransformerConfig tcfg;
    tcfg.dim = 32;
    tcfg.depth = 2;
    tcfg.heads = 2;
    tcfg.mlp_hidden = 64;
    tcfg.vocab_size = 64;
    tcfg.num_classes = 64;
    tcfg.max_tokens = 64;
    tcfg.pooling = nn::Pooling::LastToken;
    tcfg.causal = true;
    nn::TransformerClassifier lm(tcfg);

    nn::PaperModelConfig analytic;
    analytic.name = "tiny-decoder";
    analytic.dim = tcfg.dim;
    analytic.depth = tcfg.depth;
    analytic.heads = tcfg.heads;
    analytic.mlp_hidden = tcfg.mlp_hidden;
    analytic.seq_len = tcfg.max_tokens;
    analytic.patch_dim = 0;
    analytic.num_classes = tcfg.num_classes;

    const int kSteps = 24;
    // Encoded-K/V smoke (CI gate): every attention product of every
    // step must be served from the encoded cache (2 products per head
    // per layer per step), and K/V encodes must stay at the rare
    // beta-growth requants — a dead cache re-encodes every operand
    // every step (= hits-many misses) and fails loudly here. Both
    // noise samplers must pass the MACs-match and KV gates: the
    // sampler changes the noise stream, never the dataflow.
    const size_t kv_products_per_step = 2 * tcfg.heads * tcfg.depth;
    const size_t kv_expected_hits = kv_products_per_step * kSteps;
    const size_t kv_miss_budget = kv_products_per_step * 2;

    struct ExecutedRun
    {
        size_t measured_total = 0;
        size_t predicted_total = 0;
        size_t kv_hits = 0;
        size_t kv_misses = 0;
        size_t gaussian_draws = 0;
        size_t context_end = 0;
        bool all_match = true;
        bool kv_ok = false;
        double wall_s = 0.0;
    };
    auto runExecuted = [&](core::NoiseSampler sampler) {
        core::DptcConfig dptc;
        dptc.input_bits = 8;
        dptc.noise.sampler = sampler;
        nn::ExecutionEngine engine(dptc, core::EvalMode::Noisy);
        nn::InferenceSession session(lm, engine,
                                     nn::QuantConfig::w8a8());

        std::vector<int> prompt{1, 2, 3, 4, 5, 6, 7, 8};
        Matrix logits = session.prefill(prompt);

        ExecutedRun run;
        auto t0 = std::chrono::steady_clock::now();
        for (int step = 0; step < kSteps; ++step) {
            int next = static_cast<int>(nn::argmaxRow(logits, 0));
            nn::DecodeConfig dcfg{analytic, session.contextLen(), 1,
                                  8, /*include_head=*/true};
            size_t predicted = nn::decodeStepWorkload(dcfg).macs;
            engine.resetStats();
            logits = session.decodeStep(next);
            size_t measured = engine.stats().macs.load();
            run.all_match &= measured == predicted;
            run.measured_total += measured;
            run.predicted_total += predicted;
            run.kv_hits += engine.stats().kv_encode_hits.load();
            run.kv_misses += engine.stats().kv_encode_misses.load();
            run.gaussian_draws +=
                engine.stats().gaussian_draws.load();
        }
        auto t1 = std::chrono::steady_clock::now();
        run.wall_s = std::chrono::duration<double>(t1 - t0).count();
        run.context_end = session.contextLen();
        run.kv_ok = run.kv_hits == kv_expected_hits &&
                    run.kv_misses <= kv_miss_budget;
        return run;
    };

    ExecutedRun exact = runExecuted(core::NoiseSampler::BitExact);
    ExecutedRun fast = runExecuted(core::NoiseSampler::Fast);

    Table exec({"sampler", "generated tokens", "context end",
                "measured MACs", "predicted MACs", "MACs match",
                "kv enc hits/misses", "gauss draws", "sim tokens/s"});
    auto addExecRow = [&](const char *name, const ExecutedRun &run) {
        exec.addRow({name, std::to_string(kSteps),
                     std::to_string(run.context_end),
                     std::to_string(run.measured_total),
                     std::to_string(run.predicted_total),
                     run.all_match ? "yes (every step)" : "NO",
                     std::to_string(run.kv_hits) + "/" +
                         std::to_string(run.kv_misses) +
                         (run.kv_ok ? "" : " (KV CACHE DEAD)"),
                     std::to_string(run.gaussian_draws),
                     units::fmtFixed(kSteps / run.wall_s, 1)});
    };
    addExecRow("bit-exact", exact);
    addExecRow("fast", fast);
    exec.print(std::cout);

    std::cout << "\nThe K/V cache grows a row per step, so measured "
                 "MACs rise linearly with\ncontext — and equal the "
                 "analytic Section VI-B prediction exactly on\nevery "
                 "step (include_head accounts for the LM head the "
                 "session runs).\nEvery attention product is "
                 "dispatched on the encoded K/V cache (O(dk)\npacked "
                 "appends per token); K/V encodes stay at the rare "
                 "beta-growth requants.\nThe fast sampler run draws "
                 "the same per-tile noise stream addresses from\nits "
                 "Ziggurat generator: identical dataflow (MACs, KV "
                 "hits), different\nnoise bits, higher sim tokens/s. "
                 "(Draw counts differ only through the\ndata-"
                 "dependent zero-magnitude skips of encoding noise.)"
                 "\n";
    auto complain = [&](const char *name, const ExecutedRun &run) {
        if (!run.kv_ok)
            std::cerr << "KV CACHE VIOLATION (" << name
                      << "): hits=" << run.kv_hits << " (want "
                      << kv_expected_hits
                      << "), misses=" << run.kv_misses << " (budget "
                      << kv_miss_budget << ")\n";
        if (!run.all_match)
            std::cerr << "MACS MISMATCH (" << name
                      << "): measured != predicted\n";
    };
    complain("bit-exact", exact);
    complain("fast", fast);
    return exact.all_match && exact.kv_ok && fast.all_match &&
                   fast.kv_ok
               ? 0
               : 1;
}
