/**
 * @file
 * Section VI-B reproduction: autoregressive LLM decode on the
 * photonic accelerator. Shows (a) the low arithmetic intensity of
 * token-by-token generation makes the workload memory-bound and
 * under-utilizes the photonic compute, and (b) batching requests
 * recovers intensity — the paper's proposed mitigation.
 */

#include <algorithm>
#include <iostream>

#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/llm_workload.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Section VI-B: autoregressive decode on LT-B");

    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    cfg.precision_bits = 8;
    arch::LtPerformanceModel lt_model(cfg);
    const double hbm_bw = cfg.hbm_bandwidth;

    auto model = nn::bertLarge(1); // decoder-sized stand-in
    CsvWriter csv("llm_decode.csv",
                  {"batch", "context", "intensity", "compute_us",
                   "memory_us", "bound"});

    Table table({"batch", "context", "arith. intensity [MAC/B]",
                 "compute [us]", "memory [us]", "bound",
                 "tokens/s (batch)"});
    for (size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
        for (size_t ctx : {512}) {
            nn::DecodeConfig dcfg{model, ctx, batch, 8};
            nn::DecodeStep step = nn::decodeStepWorkload(dcfg);

            // Photonic compute time for the step's GEMM list.
            nn::Workload wl;
            wl.model = "decode";
            wl.ops = step.ops;
            double compute_s =
                lt_model.evaluate(wl).latency.total();
            // Off-chip time to stream weights + KV cache.
            double memory_s =
                static_cast<double>(step.totalBytes()) / hbm_bw;
            double step_s = std::max(compute_s, memory_s);
            bool memory_bound = memory_s > compute_s;

            table.addRow(
                {std::to_string(batch), std::to_string(ctx),
                 units::fmtFixed(step.arithmeticIntensity(), 2),
                 units::fmtFixed(compute_s * 1e6, 2),
                 units::fmtFixed(memory_s * 1e6, 2),
                 memory_bound ? "memory" : "compute",
                 units::fmtFixed(batch / step_s, 0)});
            csv.writeRow({static_cast<double>(batch),
                          static_cast<double>(ctx),
                          step.arithmeticIntensity(),
                          compute_s * 1e6, memory_s * 1e6,
                          memory_bound ? 1.0 : 0.0});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nShape check (paper Section VI-B): batch-1 decode is "
           "memory-bound (weights\nstream for a handful of MACs "
           "each); batching amortizes weight traffic and\nraises "
           "intensity several-fold. The per-request KV-cache stream "
           "keeps\nlong-context attention memory-bound regardless of "
           "batch — exactly why the\npaper proposes Q/K recomputation "
           "and FlashAttention-style tiling for LLMs.\n"
           "(series written to llm_decode.csv)\n";
    return 0;
}
