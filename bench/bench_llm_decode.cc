/**
 * @file
 * Section VI-B reproduction: autoregressive LLM decode on the
 * photonic accelerator. Shows (a) the low arithmetic intensity of
 * token-by-token generation makes the workload memory-bound and
 * under-utilizes the photonic compute, (b) batching requests recovers
 * intensity — the paper's proposed mitigation — and (c) the same
 * decode traffic EXECUTING on the functional model through
 * nn::InferenceSession, with the engine's measured MACs cross-checked
 * against the analytic decodeStepWorkload() prediction step by step.
 */

#include <algorithm>
#include <chrono>
#include <iostream>

#include "arch/performance_model.hh"
#include "bench_common.hh"
#include "nn/execution_engine.hh"
#include "nn/inference_session.hh"
#include "nn/llm_workload.hh"
#include "nn/tensor_ops.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Section VI-B: autoregressive decode on LT-B");

    arch::ArchConfig cfg = arch::ArchConfig::ltBase();
    cfg.precision_bits = 8;
    arch::LtPerformanceModel lt_model(cfg);
    const double hbm_bw = cfg.hbm_bandwidth;

    auto model = nn::bertLarge(1); // decoder-sized stand-in
    CsvWriter csv("llm_decode.csv",
                  {"batch", "context", "intensity", "compute_us",
                   "memory_us", "bound"});

    Table table({"batch", "context", "arith. intensity [MAC/B]",
                 "compute [us]", "memory [us]", "bound",
                 "tokens/s (batch)"});
    for (size_t batch : {1, 2, 4, 8, 16, 32, 64}) {
        for (size_t ctx : {512}) {
            nn::DecodeConfig dcfg{model, ctx, batch, 8};
            nn::DecodeStep step = nn::decodeStepWorkload(dcfg);

            // Photonic compute time for the step's GEMM list.
            nn::Workload wl;
            wl.model = "decode";
            wl.ops = step.ops;
            double compute_s =
                lt_model.evaluate(wl).latency.total();
            // Off-chip time to stream weights + KV cache.
            double memory_s =
                static_cast<double>(step.totalBytes()) / hbm_bw;
            double step_s = std::max(compute_s, memory_s);
            bool memory_bound = memory_s > compute_s;

            table.addRow(
                {std::to_string(batch), std::to_string(ctx),
                 units::fmtFixed(step.arithmeticIntensity(), 2),
                 units::fmtFixed(compute_s * 1e6, 2),
                 units::fmtFixed(memory_s * 1e6, 2),
                 memory_bound ? "memory" : "compute",
                 units::fmtFixed(batch / step_s, 0)});
            csv.writeRow({static_cast<double>(batch),
                          static_cast<double>(ctx),
                          step.arithmeticIntensity(),
                          compute_s * 1e6, memory_s * 1e6,
                          memory_bound ? 1.0 : 0.0});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nShape check (paper Section VI-B): batch-1 decode is "
           "memory-bound (weights\nstream for a handful of MACs "
           "each); batching amortizes weight traffic and\nraises "
           "intensity several-fold. The per-request KV-cache stream "
           "keeps\nlong-context attention memory-bound regardless of "
           "batch — exactly why the\npaper proposes Q/K recomputation "
           "and FlashAttention-style tiling for LLMs.\n"
           "(series written to llm_decode.csv)\n\n";

    // ---- executed decode: InferenceSession on the engine ------------

    printBanner(std::cout,
                "Executed decode: InferenceSession vs analytic "
                "workload");

    nn::TransformerConfig tcfg;
    tcfg.dim = 32;
    tcfg.depth = 2;
    tcfg.heads = 2;
    tcfg.mlp_hidden = 64;
    tcfg.vocab_size = 64;
    tcfg.num_classes = 64;
    tcfg.max_tokens = 64;
    tcfg.pooling = nn::Pooling::LastToken;
    tcfg.causal = true;
    nn::TransformerClassifier lm(tcfg);

    nn::PaperModelConfig analytic;
    analytic.name = "tiny-decoder";
    analytic.dim = tcfg.dim;
    analytic.depth = tcfg.depth;
    analytic.heads = tcfg.heads;
    analytic.mlp_hidden = tcfg.mlp_hidden;
    analytic.seq_len = tcfg.max_tokens;
    analytic.patch_dim = 0;
    analytic.num_classes = tcfg.num_classes;

    core::DptcConfig dptc;
    dptc.input_bits = 8;
    nn::ExecutionEngine engine(dptc, core::EvalMode::Noisy);
    nn::InferenceSession session(lm, engine, nn::QuantConfig::w8a8());

    std::vector<int> prompt{1, 2, 3, 4, 5, 6, 7, 8};
    Matrix logits = session.prefill(prompt);

    const int kSteps = 24;
    size_t measured_total = 0, predicted_total = 0;
    size_t kv_hits_total = 0, kv_misses_total = 0;
    bool all_match = true;
    auto t0 = std::chrono::steady_clock::now();
    for (int step = 0; step < kSteps; ++step) {
        int next = static_cast<int>(nn::argmaxRow(logits, 0));
        nn::DecodeConfig dcfg{analytic, session.contextLen(), 1, 8,
                              /*include_head=*/true};
        size_t predicted = nn::decodeStepWorkload(dcfg).macs;
        engine.resetStats();
        logits = session.decodeStep(next);
        size_t measured = engine.stats().macs.load();
        all_match &= measured == predicted;
        measured_total += measured;
        predicted_total += predicted;
        kv_hits_total += engine.stats().kv_encode_hits.load();
        kv_misses_total += engine.stats().kv_encode_misses.load();
    }
    auto t1 = std::chrono::steady_clock::now();
    double wall_s = std::chrono::duration<double>(t1 - t0).count();

    // Encoded-K/V smoke (CI gate): every attention product of every
    // step must be served from the encoded cache (2 products per head
    // per layer per step), and K/V encodes must stay at the rare
    // beta-growth requants — a dead cache re-encodes every operand
    // every step (= kv_hits_total misses) and fails loudly here.
    const size_t kv_products_per_step =
        2 * tcfg.heads * tcfg.depth;
    const size_t kv_expected_hits = kv_products_per_step * kSteps;
    const size_t kv_miss_budget = kv_products_per_step * 2;
    const bool kv_ok = kv_hits_total == kv_expected_hits &&
                       kv_misses_total <= kv_miss_budget;

    Table exec({"generated tokens", "context end", "measured MACs",
                "predicted MACs", "MACs match", "kv enc hits/misses",
                "sim tokens/s"});
    exec.addRow({std::to_string(kSteps),
                 std::to_string(session.contextLen()),
                 std::to_string(measured_total),
                 std::to_string(predicted_total),
                 all_match ? "yes (every step)" : "NO",
                 std::to_string(kv_hits_total) + "/" +
                     std::to_string(kv_misses_total) +
                     (kv_ok ? "" : " (KV CACHE DEAD)"),
                 units::fmtFixed(kSteps / wall_s, 1)});
    exec.print(std::cout);

    std::cout << "\nThe K/V cache grows a row per step, so measured "
                 "MACs rise linearly with\ncontext — and equal the "
                 "analytic Section VI-B prediction exactly on\nevery "
                 "step (include_head accounts for the LM head the "
                 "session runs).\nEvery attention product is "
                 "dispatched on the encoded K/V cache (O(dk)\npacked "
                 "appends per token); K/V encodes stay at the rare "
                 "beta-growth requants.\n";
    if (!kv_ok)
        std::cerr << "KV CACHE VIOLATION: hits=" << kv_hits_total
                  << " (want " << kv_expected_hits
                  << "), misses=" << kv_misses_total << " (budget "
                  << kv_miss_budget << ")\n";
    return all_match && kv_ok ? 0 : 1;
}
