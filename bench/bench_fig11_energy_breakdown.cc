/**
 * @file
 * Fig. 11 reproduction: per-component energy breakdown on two DeiT-T
 * example workloads — the attention QK^T of one layer and the first
 * FFN linear of one layer — comparing LT-crossbar-B (LT-B without
 * the architecture-level optimizations) against the MRR bank and the
 * MZI array. Paper normalized totals: attention QK^T — MRR 2.62x
 * (MZI cannot run it); linear — MRR 2.27x, MZI 3.54x.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "baselines/mrr_accelerator.hh"
#include "baselines/mzi_accelerator.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fig. 11: energy breakdown on DeiT-T example "
                "workloads (LT-crossbar-B vs MRR vs MZI)");

    auto deit = nn::deitTiny();
    // One layer's QK^T across the 3 heads, and one FFN1 linear.
    nn::GemmOp qkt{nn::GemmKind::QkT, deit.seq_len, deit.headDim(),
                   deit.seq_len, deit.heads, true};
    nn::GemmOp ffn1{nn::GemmKind::Ffn1, deit.seq_len, deit.dim,
                    deit.mlp_hidden, 1, false};

    arch::LtPerformanceModel lt_crossbar(
        arch::ArchConfig::ltCrossbarBase());
    baselines::MrrAccelerator mrr;
    baselines::MziAccelerator mzi;

    struct Case
    {
        std::string title;
        nn::GemmOp op;
        double paper_mrr;
        double paper_mzi;
    };
    for (const auto &[title, op, paper_mrr, paper_mzi] :
         {Case{"Attention QK^T (one layer)", qkt, 2.62, -1.0},
          Case{"Linear layer (FFN1, one layer)", ffn1, 2.27, 3.54}}) {
        printBanner(std::cout, title);
        Table table(energyBreakdownHeaders("accelerator"));
        auto lt_r = lt_crossbar.evaluateGemm(op);
        auto addRow = [&](const std::string &name,
                          const arch::EnergyBreakdown &e) {
            std::vector<std::string> cells{name};
            auto rest = energyBreakdownCells(e);
            cells.insert(cells.end(), rest.begin(), rest.end());
            table.addRow(std::move(cells));
        };
        addRow("LT-crossbar-B", lt_r.energy);
        auto mrr_r = mrr.evaluateGemm(op);
        addRow("MRR bank", mrr_r.energy);
        double mzi_ratio = -1.0;
        if (!op.dynamic) {
            auto mzi_r = mzi.evaluateGemm(op);
            addRow("MZI array", mzi_r.energy);
            mzi_ratio = mzi_r.energy.total() / lt_r.energy.total();
        }
        table.print(std::cout);
        std::cout << "normalized totals (LT-crossbar-B = 1): MRR "
                  << vsPaper(mrr_r.energy.total() /
                                 lt_r.energy.total(),
                             paper_mrr);
        if (paper_mzi > 0.0)
            std::cout << ", MZI " << vsPaper(mzi_ratio, paper_mzi);
        else
            std::cout << ", MZI: unsupported (dynamic MM)";
        std::cout << "\n";
    }

    std::cout << "\nStructural checks (paper):\n"
              << " - MRR op1-mod (ring locking) > 40% of its total\n"
              << " - MZI laser dominates its linear-layer energy\n";
    auto mrr_r = mrr.evaluateGemm(qkt);
    std::cout << "   MRR locking share: "
              << units::fmtFixed(mrr_r.energy.op1_mod /
                                     mrr_r.energy.total() * 100.0, 1)
              << " %\n";
    auto mzi_r = mzi.evaluateGemm(ffn1);
    std::cout << "   MZI laser share  : "
              << units::fmtFixed(mzi_r.energy.laser /
                                     mzi_r.energy.total() * 100.0, 1)
              << " %\n";
    return 0;
}
