/**
 * @file
 * Table I reproduction: feature comparison of photonic tensor core
 * designs, queried programmatically from each design's capability
 * descriptor.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/ptc_interface.hh"

int
main()
{
    using namespace lt;
    using namespace lt::core;

    printBanner(std::cout, "Table I: PTC design comparison");

    auto operand = [](const OperandTraits &t) {
        std::string s = t.dynamic ? "Dynamic" : "Static";
        s += t.full_range ? ", Full-range" : ", Positive-only";
        return s;
    };
    auto mark = [](bool ok) { return ok ? "yes" : "NO"; };

    Table table({"PTC design", "Operand 1", "Operand 2",
                 "Mapping cost", "Op type", "Dynamic MM (attention)",
                 "Full-range MM (no overhead)"});
    for (const auto &d : tableOnePtcDesigns()) {
        table.addRow({d.name + " " + d.citation, operand(d.operand1),
                      operand(d.operand2), toString(d.mapping_cost),
                      toString(d.operation),
                      mark(d.supportsDynamicMm()),
                      mark(d.supportsFullRangeMm())});
    }
    table.print(std::cout);

    std::cout << "\nPaper claim check: exactly one design supports both"
                 " dynamic and full-range MM (DPTC).\n";
    int both = 0;
    for (const auto &d : tableOnePtcDesigns())
        both += d.supportsDynamicMm() && d.supportsFullRangeMm();
    std::cout << "  designs with both: " << both << " -> "
              << (both == 1 ? "OK" : "MISMATCH") << "\n";
    return 0;
}
