/**
 * @file
 * Fig. 8 reproduction: LT-B power breakdown at 4-bit (paper: 14.75 W)
 * and 8-bit (paper: 50.94 W) precision; also prints LT-L totals
 * (paper: 28.06 W and 95.92 W). The paper highlights that the 8-bit
 * version consumes > 3x the 4-bit one, driven by DAC power (> 50% of
 * total) and laser power (0.77 W -> 12.3 W).
 */

#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout, "Fig. 8: LT-B power breakdown (4/8-bit)");

    ChipModel chip(ArchConfig::ltBase());
    PowerBreakdown p4 = chip.power(4);
    PowerBreakdown p8 = chip.power(8);

    Table table({"Component", "4-bit [W]", "4-bit [%]", "8-bit [W]",
                 "8-bit [%]"});
    auto row = [&](const std::string &name, double v4, double v8) {
        table.addRow({name, units::fmtFixed(v4, 3),
                      units::fmtFixed(v4 / p4.total() * 100.0, 1),
                      units::fmtFixed(v8, 3),
                      units::fmtFixed(v8 / p8.total() * 100.0, 1)});
    };
    row("laser", p4.laser, p8.laser);
    row("DAC", p4.dac, p8.dac);
    row("ADC", p4.adc, p8.adc);
    row("modulation (MZM+disk)", p4.modulation, p8.modulation);
    row("photodetector + TIA", p4.photodetector, p8.photodetector);
    row("driver overhead", p4.driver, p8.driver);
    row("memory (leakage)", p4.memory, p8.memory);
    row("digital units", p4.digital, p8.digital);
    table.addSeparator();
    row("TOTAL", p4.total(), p8.total());
    table.print(std::cout);

    std::cout << "\n4-bit total : "
              << lt::bench::vsPaper(p4.total(), 14.75) << " W\n";
    std::cout << "8-bit total : "
              << lt::bench::vsPaper(p8.total(), 50.94) << " W\n";
    std::cout << "laser 4-bit : "
              << lt::bench::vsPaper(p4.laser, 0.77) << " W\n";
    std::cout << "laser 8-bit : "
              << lt::bench::vsPaper(p8.laser, 12.3) << " W\n";
    std::cout << "8-bit / 4-bit power ratio : "
              << lt::bench::ratio(p8.total() / p4.total())
              << " (paper: > 3x)\n";
    std::cout << "8-bit DAC share           : "
              << units::fmtFixed(p8.dac / p8.total() * 100.0, 1)
              << " % (paper: > 50%)\n";

    ChipModel largeChip(ArchConfig::ltLarge());
    std::cout << "\nLT-L totals: 4-bit "
              << lt::bench::vsPaper(largeChip.power(4).total(), 28.06)
              << " W, 8-bit "
              << lt::bench::vsPaper(largeChip.power(8).total(), 95.92)
              << " W\n";
    return 0;
}
