/**
 * @file
 * Fig. 12 reproduction: energy ablation of the LT-B variants against
 * the MRR bank on the DeiT-T example workloads (one layer's QK^T and
 * the first FFN linear).
 *
 * Paper normalized totals (LT-B = 1):
 *   attention QK^T: LT-broadcast-B 5.05, MRR 5.69, LT-crossbar-B
 *   1.91, LT-B 1;
 *   linear: LT-broadcast-B 4.47, MRR 5.92, LT-crossbar-B 1.87, LT-B 1.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "baselines/mrr_accelerator.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fig. 12: LT variant ablation vs MRR (DeiT-T)");

    auto deit = nn::deitTiny();
    nn::GemmOp qkt{nn::GemmKind::QkT, deit.seq_len, deit.headDim(),
                   deit.seq_len, deit.heads, true};
    nn::GemmOp ffn1{nn::GemmKind::Ffn1, deit.seq_len, deit.dim,
                    deit.mlp_hidden, 1, false};

    arch::LtPerformanceModel lt_full(arch::ArchConfig::ltBase());
    arch::LtPerformanceModel lt_crossbar(
        arch::ArchConfig::ltCrossbarBase());
    arch::LtPerformanceModel lt_broadcast(
        arch::ArchConfig::ltBroadcastBase());
    baselines::MrrAccelerator mrr;

    struct PaperNorm
    {
        double broadcast, mrr, crossbar;
    };
    struct Case
    {
        std::string title;
        nn::GemmOp op;
        PaperNorm paper;
    };
    for (const auto &[title, op, paper] :
         {Case{"Attention QK^T (one layer)", qkt,
               PaperNorm{5.05, 5.69, 1.91}},
          Case{"Linear layer (FFN1, one layer)", ffn1,
               PaperNorm{4.47, 5.92, 1.87}}}) {
        printBanner(std::cout, title);
        double base = lt_full.evaluateGemm(op).energy.total();

        Table table(energyBreakdownHeaders("variant"));
        auto addRow = [&](const std::string &name,
                          const arch::EnergyBreakdown &e) {
            std::vector<std::string> cells{name};
            auto rest = energyBreakdownCells(e);
            cells.insert(cells.end(), rest.begin(), rest.end());
            table.addRow(std::move(cells));
        };
        auto r_bc = lt_broadcast.evaluateGemm(op);
        auto r_mrr = mrr.evaluateGemm(op);
        auto r_cb = lt_crossbar.evaluateGemm(op);
        auto r_lt = lt_full.evaluateGemm(op);
        addRow("LT-broadcast-B", r_bc.energy);
        addRow("MRR bank", r_mrr.energy);
        addRow("LT-crossbar-B", r_cb.energy);
        addRow("LT-B (full)", r_lt.energy);
        table.print(std::cout);

        std::cout << "normalized (LT-B = 1): LT-broadcast-B "
                  << vsPaper(r_bc.energy.total() / base,
                             paper.broadcast)
                  << ", MRR "
                  << vsPaper(r_mrr.energy.total() / base, paper.mrr)
                  << ",\n                       LT-crossbar-B "
                  << vsPaper(r_cb.energy.total() / base,
                             paper.crossbar)
                  << ", LT-B 1.00\n";
    }

    std::cout << "\nShape checks (paper Fig. 12):\n"
              << " - crossbar sharing removes the op1 modulation "
                 "blow-up of LT-broadcast-B\n"
              << " - inter-core broadcast + temporal accumulation "
                 "give LT-B ~4x less op2\n"
              << "   encoding and ~6x less ADC energy than "
                 "LT-crossbar-B\n";
    return 0;
}
