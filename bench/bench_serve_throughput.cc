/**
 * @file
 * Continuous-batching serve throughput: the serve::Server driving the
 * noisy photonic engine across a concurrency sweep {1, 2, 4, 8, 16}.
 *
 * For every concurrency level the bench (a) serves C requests with
 * chunked prefill + stacked-row fusion on and measures tokens/s,
 * TTFT, per-token latency percentiles, and the worst per-request
 * token gap, (b) VERIFIES the headline contract — each request's
 * per-step logits are bit-identical to a solo InferenceSession run
 * (whole-prompt prefillChunk ingestion) on a fresh same-config engine
 * — and (c) probes the dispatch bound: a fused decode step must issue
 * 2*depth gemmBatch calls (QK^T + AV) plus 6*depth+1 stacked-row
 * calls whatever the batch size, i.e. O(layers), not O(layers x
 * requests). Any mismatch exits nonzero, which is what the CI smoke
 * keys on.
 *
 * On top of the sweep, a fixed-memory-budget comparison exercises the
 * paged KV block pool (serve/kv_pool): the same concurrency and block
 * budget served twice — independent prompts vs a shared system-prompt
 * prefix — with nonzero-exit gates that (a) the shared workload uses
 * fewer blocks (one copy-on-write prefix, N-1 cache hits), (b) paged
 * resident KV bytes stay under the dense-reserve model's
 * max_tokens x concurrency footprint while tracking the tokens
 * actually cached, and (c) shared-prefix logits stay bit-identical to
 * each request run solo. It also reports the max sustainable
 * concurrency under the budget for the dense-reserve vs paged models.
 *
 * A fault-injection smoke rides along (and is the whole run under
 * --fault-smoke): the same workload served on an engine with a dead
 * shard and a stuck-at DAC channel among its replicas, with
 * nonzero-exit gates that (a) every future resolves, (b) at least one
 * replica is quarantined, and (c) the recovered results are
 * bit-identical to a fault-free rerun of the identical workload.
 *
 * Usage: bench_serve_throughput [--csv] [--json [path]]
 *                               [--concurrency N] [--pool-smoke]
 *                               [--fault-smoke] [--slo-smoke]
 *                               [--trace out.json]
 *
 * --json writes the committed BENCH_serve.json perf snapshot;
 * --concurrency restricts the sweep (the CI smoke runs one level);
 * --pool-smoke runs ONLY the pool comparison + its gates (the CI
 * memory-budget smoke); --fault-smoke runs ONLY the fault-injection
 * smoke + its gates; --slo-smoke runs ONLY a conc-16 chunked+fused
 * serve with nonzero-exit gates on the token p99 (<= half the
 * committed PR 9 baseline), the per-step dispatch counts, and
 * bit-identity; --trace serves one extra paged run at the
 * sweep's top concurrency under an obs::TraceRecorder and writes the
 * Chrome/Perfetto trace_event JSON (chrome://tracing loads it as-is),
 * printing the derived per-phase time breakdown.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "nn/batched_decoder.hh"
#include "nn/execution_engine.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "serve/kv_pool/kv_block_pool.hh"
#include "serve/server.hh"
#include "util/csv.hh"
#include "util/rng.hh"

namespace {

using namespace lt;

constexpr size_t kPromptTokens = 8;
constexpr size_t kNewTokens = 12;

/**
 * Chunked-prefill chunk size for the sweep and the SLO smoke. At the
 * sweep's top concurrency a whole-prompt prefill stalls every
 * in-flight decoder for ~kPromptTokens sequential forwards; 2-token
 * chunks bound that stall to one quarter of it per tick while keeping
 * the per-tick chunk overhead small.
 */
constexpr size_t kPrefillChunkTokens = 2;

/**
 * The SLO smoke's latency budget: the committed PR 9 BENCH_serve.json
 * conc-16 token p99 (whole-prompt prefill, per-row dispatch) was
 * 168.872 ms; chunked prefill + block-diagonal fusion must at least
 * halve it.
 */
constexpr double kSloBaselineTokenP99Ms = 168.872;
constexpr double kSloTokenP99BudgetMs = kSloBaselineTokenP99Ms / 2.0;
constexpr size_t kSloConcurrency = 16;

// Pool geometry shared by the fixed-memory-budget comparison and the
// traced run.
constexpr size_t kPoolBlockTokens = 8;  ///< k-tile aligned
constexpr size_t kPoolBlocks = 64;      ///< the fixed budget
constexpr size_t kPoolConcurrency = 8;
constexpr size_t kSharedPrefixTokens = 6;

nn::TransformerConfig
modelConfig()
{
    nn::TransformerConfig cfg;
    cfg.dim = 32;
    cfg.depth = 2;
    cfg.heads = 2;
    cfg.mlp_hidden = 64;
    cfg.vocab_size = 64;
    cfg.num_classes = 64;
    cfg.max_tokens = 64;
    cfg.pooling = nn::Pooling::LastToken;
    cfg.causal = true;
    return cfg;
}

core::DptcConfig
dptcConfig(core::NoiseSampler sampler = core::NoiseSampler::BitExact)
{
    core::DptcConfig dcfg;
    dcfg.input_bits = 8;
    dcfg.noise.sampler = sampler;
    return dcfg;
}

std::vector<int>
promptFor(uint64_t id, size_t vocab)
{
    Rng rng(0x9e4e + id);
    std::vector<int> tokens(kPromptTokens);
    for (int &t : tokens)
        t = static_cast<int>(
            rng.uniformInt(0, static_cast<int64_t>(vocab) - 1));
    return tokens;
}

struct Row
{
    size_t concurrency;
    double wall_s;
    double tokens_per_s;
    double ttft_p50_ms;
    double token_p50_ms;
    double token_p99_ms;
    size_t engine_macs;
    size_t weight_encode_hits;
    size_t weight_encode_misses;
    size_t kv_encode_hits;
    size_t kv_encode_misses;
    size_t gaussian_draws;      ///< bit-exact run, engine-wide
    double fast_tokens_per_s;   ///< same sweep, Fast noise sampler
    size_t fast_gaussian_draws;
    bool fast_bit_identical;    ///< Fast solo == Fast batched
    size_t batch_calls_per_step;   ///< gemmBatch: QK^T + AV only
    size_t stacked_calls_per_step; ///< stacked-row fused projections
    bool o_layers; ///< dispatch counts independent of batch size
    bool bit_identical;

    /** Worst per-request gap between consecutive tokens (ms) across
     *  the closed-loop clients — the p99 tail chunked prefill kills. */
    double token_max_gap_ms;
    size_t prefill_chunks; ///< chunks executed over the whole run

    // Where the run's scheduler-tick time went (cumulative ms, from
    // Metrics::onTickPhases — measured with tracing OFF) and how many
    // trace events the run dropped (0 here: the sweep never records).
    double tick_admission_ms;
    double tick_prefill_ms;
    double tick_decode_ms;
    double tick_pool_ms;
    size_t trace_dropped_events;
};

/**
 * One extra paged serve at `concurrency` under an installed
 * TraceRecorder — no solo verification inside, so the trace shows
 * pure serving — exported as Chrome trace_event JSON plus the derived
 * per-phase breakdown.
 */
struct TraceOutcome
{
    bool wrote = false;
    uint64_t dropped = 0;
    size_t lanes = 0;
    obs::PhaseBreakdown phases;
};

TraceOutcome
runTracedServe(const nn::TransformerClassifier &model,
               const nn::QuantConfig &quant, size_t concurrency,
               const std::string &path)
{
    obs::TraceRecorder recorder(1 << 16);
    obs::installRecorder(&recorder);
    {
        nn::ExecutionEngine engine(dptcConfig(),
                                   core::EvalMode::Noisy);
        serve::ServerConfig scfg;
        scfg.scheduler.max_batch = concurrency;
        scfg.quant = quant;
        scfg.kv_pool.block_tokens = kPoolBlockTokens;
        scfg.kv_pool.num_blocks = 256; // roomy: trace, don't thrash
        serve::Server server(model, engine, scfg);
        std::vector<std::future<serve::RequestResult>> futures;
        for (uint64_t id = 0; id < concurrency; ++id) {
            serve::Request req;
            req.prompt = promptFor(id, model.config().vocab_size);
            req.max_new_tokens = kNewTokens;
            req.request_id = id;
            futures.push_back(server.submit(std::move(req)));
        }
        server.runUntilIdle();
        for (auto &f : futures)
            f.get();
    }
    obs::installRecorder(nullptr);

    TraceOutcome out;
    out.wrote = obs::writeChromeTraceFile(path, recorder);
    out.dropped = recorder.droppedEvents();
    out.lanes = recorder.threadLanes();
    out.phases = obs::phaseBreakdown(recorder.snapshot());
    return out;
}

// ---- the fixed-memory-budget pool comparison --------------------------

struct PoolOutcome
{
    size_t block_tokens = kPoolBlockTokens;
    size_t total_blocks = kPoolBlocks;
    size_t block_bytes = 0;

    // Same budget, same concurrency, two workloads.
    size_t indep_peak_used_blocks = 0;
    size_t indep_peak_resident_bytes = 0;
    size_t shared_peak_used_blocks = 0;
    size_t shared_peak_resident_bytes = 0;
    size_t shared_peak_shared_blocks = 0;
    size_t prefix_hits = 0;
    size_t prefix_misses = 0;

    // The dense-reserve memory model the pool replaces: every session
    // holds max_tokens of contiguous K/V for its whole lifetime.
    size_t dense_reserve_bytes = 0;

    // Max sustainable concurrency under the same byte budget.
    size_t max_concurrency_dense = 0;
    size_t max_concurrency_paged = 0;
    size_t max_concurrency_paged_shared = 0;

    // Nonzero-exit gates.
    bool shared_uses_fewer_blocks = false;
    bool resident_under_dense_reserve = false;
    bool resident_tracks_tokens = false;
    bool hits_are_n_minus_1 = false;
    bool shared_bit_identical = false;

    bool
    ok() const
    {
        return shared_uses_fewer_blocks &&
               resident_under_dense_reserve &&
               resident_tracks_tokens && hits_are_n_minus_1 &&
               shared_bit_identical;
    }
};

PoolOutcome
runPoolComparison(const nn::TransformerClassifier &model,
                  const nn::QuantConfig &quant)
{
    PoolOutcome out;
    const size_t vocab = model.config().vocab_size;
    const std::vector<int> system_prompt = promptFor(0xF00D, vocab);

    serve::KvPoolConfig pool_cfg;
    pool_cfg.block_tokens = kPoolBlockTokens;
    pool_cfg.num_blocks = kPoolBlocks;

    auto makeRequest = [&](uint64_t id, bool shared) {
        serve::Request req;
        if (shared) {
            // Common kSharedPrefixTokens-token system prompt, then an
            // id-unique tail of the same total prompt length.
            req.prompt.assign(system_prompt.begin(),
                              system_prompt.begin() +
                                  kSharedPrefixTokens);
            std::vector<int> tail = promptFor(id, vocab);
            req.prompt.insert(req.prompt.end(), tail.begin(),
                              tail.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      kPromptTokens -
                                      kSharedPrefixTokens));
            req.shared_prefix_tokens = kSharedPrefixTokens;
        } else {
            req.prompt = promptFor(id, vocab);
        }
        req.max_new_tokens = kNewTokens;
        req.record_logits = shared; // only the shared path verifies
        req.request_id = id;
        return req;
    };

    auto serveWorkload = [&](bool shared) {
        nn::ExecutionEngine engine(dptcConfig(),
                                   core::EvalMode::Noisy);
        serve::ServerConfig scfg;
        scfg.scheduler.max_batch = kPoolConcurrency;
        scfg.quant = quant;
        scfg.kv_pool = pool_cfg;
        serve::Server server(model, engine, scfg);
        std::vector<std::future<serve::RequestResult>> futures;
        for (uint64_t id = 0; id < kPoolConcurrency; ++id)
            futures.push_back(
                server.submit(makeRequest(id, shared)));
        server.runUntilIdle();
        std::vector<serve::RequestResult> results;
        for (auto &f : futures)
            results.push_back(f.get());
        return std::make_pair(server.metrics(), std::move(results));
    };

    auto indep = serveWorkload(false);
    auto shared = serveWorkload(true);

    const serve::KvPoolStats &ip = indep.first.kv_pool;
    const serve::KvPoolStats &sp = shared.first.kv_pool;
    out.block_bytes = ip.block_bytes;
    out.indep_peak_used_blocks = ip.peak_used_blocks;
    out.indep_peak_resident_bytes = ip.peak_resident_bytes;
    out.shared_peak_used_blocks = sp.peak_used_blocks;
    out.shared_peak_resident_bytes = sp.peak_resident_bytes;
    out.shared_peak_shared_blocks = sp.peak_shared_blocks;
    out.prefix_hits = sp.prefix_hits;
    out.prefix_misses = sp.prefix_misses;

    const nn::TransformerConfig &mcfg = model.config();
    const size_t bytes_per_token_layer = 2 * mcfg.dim * sizeof(double);
    out.dense_reserve_bytes = kPoolConcurrency * mcfg.max_tokens *
                              mcfg.depth * bytes_per_token_layer;

    // Max sustainable concurrency under the SAME byte budget
    // (kPoolBlocks blocks), per memory model: dense-reserve holds
    // max_tokens per request; paged holds each request's worst case
    // (prompt tail + generation budget), and sharing additionally
    // amortizes the prefix across all requests.
    const size_t budget_blocks = kPoolBlocks;
    const size_t dense_blocks_per_req =
        mcfg.depth *
        ((mcfg.max_tokens + kPoolBlockTokens - 1) / kPoolBlockTokens);
    const size_t paged_blocks_per_req =
        mcfg.depth * ((kPromptTokens + kNewTokens +
                       kPoolBlockTokens - 1) /
                      kPoolBlockTokens);
    const size_t shared_prefix_blocks =
        mcfg.depth * ((kSharedPrefixTokens + kPoolBlockTokens - 1) /
                      kPoolBlockTokens);
    const size_t shared_tail_blocks_per_req =
        mcfg.depth *
        ((kPromptTokens - kSharedPrefixTokens + kNewTokens +
          kPoolBlockTokens - 1) /
         kPoolBlockTokens);
    out.max_concurrency_dense = budget_blocks / dense_blocks_per_req;
    out.max_concurrency_paged = budget_blocks / paged_blocks_per_req;
    out.max_concurrency_paged_shared =
        (budget_blocks - shared_prefix_blocks) /
        shared_tail_blocks_per_req;

    // Gate (a): one copy-on-write prefix instead of N private copies.
    out.shared_uses_fewer_blocks =
        out.shared_peak_used_blocks < out.indep_peak_used_blocks;
    out.hits_are_n_minus_1 =
        out.prefix_misses == 1 &&
        out.prefix_hits == kPoolConcurrency - 1;

    // Gate (b): resident KV bytes scale with the tokens actually
    // cached, not with max_tokens x concurrency.
    out.resident_under_dense_reserve =
        out.indep_peak_resident_bytes < out.dense_reserve_bytes &&
        out.shared_peak_resident_bytes < out.dense_reserve_bytes;
    const size_t expected_indep_resident =
        kPoolConcurrency * mcfg.depth *
        ((kPromptTokens + kNewTokens - 1 + kPoolBlockTokens - 1) /
         kPoolBlockTokens) *
        ip.block_bytes;
    const size_t expected_shared_resident =
        (shared_prefix_blocks +
         kPoolConcurrency * mcfg.depth *
             ((kPromptTokens - kSharedPrefixTokens + kNewTokens - 1 +
               kPoolBlockTokens - 1) /
              kPoolBlockTokens)) *
        sp.block_bytes;
    out.resident_tracks_tokens =
        out.indep_peak_resident_bytes == expected_indep_resident &&
        out.shared_peak_resident_bytes == expected_shared_resident;

    // Gate (c): the shared-prefix results are bit-identical to each
    // request run SOLO on a fresh engine (1-wide paged server).
    bool identical = true;
    for (uint64_t id = 0; id < kPoolConcurrency; ++id) {
        nn::ExecutionEngine solo_engine(dptcConfig(),
                                        core::EvalMode::Noisy);
        serve::ServerConfig solo_cfg;
        solo_cfg.scheduler.max_batch = 1;
        solo_cfg.quant = quant;
        solo_cfg.kv_pool = pool_cfg;
        serve::Server solo(model, solo_engine, solo_cfg);
        auto fut = solo.submit(makeRequest(id, true));
        solo.runUntilIdle();
        serve::RequestResult solo_result = fut.get();
        const serve::RequestResult &batched = shared.second[id];
        identical &= batched.generated == solo_result.generated;
        identical &= batched.step_logits.size() ==
                     solo_result.step_logits.size();
        for (size_t s = 0;
             identical && s < solo_result.step_logits.size(); ++s)
            identical &= batched.step_logits[s].maxAbsDiff(
                             solo_result.step_logits[s]) == 0.0;
    }
    out.shared_bit_identical = identical;
    return out;
}

// ---- the fault-injection serve smoke ----------------------------------

constexpr size_t kFaultSmokeRequests = 6;

struct FaultSmokeOutcome
{
    // Nonzero-exit gates.
    bool all_resolved = false;   ///< every future delivered a result
    bool bit_identical = false;  ///< recovered == fault-free rerun

    // Engine-side fault telemetry after the faulty run.
    size_t quarantined_replicas = 0;
    bool degraded = false;
    uint64_t faults_detected = 0;
    uint64_t fault_retries = 0;
    uint64_t quarantines = 0;

    // Serve-side counters (Server::metrics overlay).
    size_t step_retries = 0;
    size_t request_failures = 0;

    bool
    ok() const
    {
        return all_resolved && bit_identical && quarantines >= 1 &&
               faults_detected > 0 && request_failures == 0 &&
               !degraded;
    }
};

/**
 * Serve kFaultSmokeRequests through an engine carrying a dead shard
 * (replica 1) and a stuck-near-zero DAC channel (replica 2), then the
 * identical workload fault-free, and gate: every future resolves, the
 * checksum layer quarantines at least one replica, and the recovered
 * logits/tokens are bit-identical to the fault-free rerun.
 */
FaultSmokeOutcome
runFaultSmoke(const nn::TransformerClassifier &model,
              const nn::QuantConfig &quant)
{
    auto serveWith = [&](nn::ExecutionEngine &engine,
                         std::vector<serve::RequestResult> &results) {
        serve::ServerConfig scfg;
        scfg.scheduler.max_batch = kFaultSmokeRequests;
        scfg.quant = quant;
        serve::Server server(model, engine, scfg);
        std::vector<std::future<serve::RequestResult>> futures;
        for (uint64_t id = 0; id < kFaultSmokeRequests; ++id) {
            serve::Request req;
            req.prompt = promptFor(id, model.config().vocab_size);
            req.max_new_tokens = kNewTokens;
            req.record_logits = true;
            req.request_id = id;
            futures.push_back(server.submit(std::move(req)));
        }
        server.runUntilIdle();
        bool resolved = true;
        for (auto &f : futures) {
            try {
                results.push_back(f.get());
            } catch (...) {
                resolved = false;
            }
        }
        return std::make_pair(resolved, server.metrics());
    };

    nn::EngineConfig fcfg;
    fcfg.dptc = dptcConfig();
    fcfg.num_cores = 4;
    fcfg.faults.enabled = true;
    fcfg.faults.replicas.resize(3);
    fcfg.faults.replicas[1].dead = true;
    fcfg.faults.replicas[2].stuck_channel = 2; // near-zero stuck value
    nn::ExecutionEngine faulty(fcfg);

    std::vector<serve::RequestResult> faulty_results;
    auto faulty_run = serveWith(faulty, faulty_results);
    const nn::EngineStatus status = faulty.status();

    nn::EngineConfig ccfg = fcfg;
    ccfg.faults = core::FaultConfig{}; // the fault-free rerun
    nn::ExecutionEngine clean(ccfg);
    std::vector<serve::RequestResult> clean_results;
    auto clean_run = serveWith(clean, clean_results);

    FaultSmokeOutcome out;
    out.all_resolved = faulty_run.first && clean_run.first;
    out.quarantined_replicas = status.quarantined_replicas;
    out.degraded = status.degraded;
    out.faults_detected = status.faults_detected;
    out.fault_retries = status.fault_retries;
    out.quarantines = status.quarantines;
    out.step_retries = faulty_run.second.engine_step_retries;
    out.request_failures = faulty_run.second.request_failures;

    bool identical = out.all_resolved &&
                     faulty_results.size() == clean_results.size();
    for (size_t i = 0; identical && i < clean_results.size(); ++i) {
        const serve::RequestResult &f = faulty_results[i];
        const serve::RequestResult &c = clean_results[i];
        identical &= f.generated == c.generated;
        identical &= f.step_logits.size() == c.step_logits.size();
        for (size_t s = 0; identical && s < c.step_logits.size(); ++s)
            identical &=
                f.step_logits[s].maxAbsDiff(c.step_logits[s]) == 0.0;
    }
    out.bit_identical = identical;
    return out;
}

void
printFaultSmoke(std::ostream &os, const FaultSmokeOutcome &fs)
{
    os << "fault smoke: " << kFaultSmokeRequests
       << " requests on a 4-replica engine (replica 1 dead, replica "
          "2 stuck channel), detected "
       << fs.faults_detected << " faults, " << fs.fault_retries
       << " tile retries, " << fs.quarantines << " quarantine(s), "
       << fs.quarantined_replicas
       << " replica(s) out of rotation, degraded="
       << (fs.degraded ? "yes" : "no") << ", step retries "
       << fs.step_retries << ", request failures "
       << fs.request_failures << "\n"
       << "gates: all_futures_resolved="
       << (fs.all_resolved ? "ok" : "FAIL")
       << " quarantines>=1=" << (fs.quarantines >= 1 ? "ok" : "FAIL")
       << " bit_identical_to_fault_free="
       << (fs.bit_identical ? "ok" : "FAIL") << " not_degraded="
       << (!fs.degraded ? "ok" : "FAIL") << " no_request_failures="
       << (fs.request_failures == 0 ? "ok" : "FAIL") << "\n";
}

/** One decode step's engine dispatch counts at batch size n. */
struct Dispatches
{
    size_t batch_calls = 0;   ///< fused gemmBatch (QK^T + AV)
    size_t stacked_calls = 0; ///< stacked-row projections + head
};

Dispatches
probeDispatches(const nn::TransformerClassifier &model, size_t n)
{
    nn::ExecutionEngine engine(dptcConfig(), core::EvalMode::Noisy);
    std::vector<std::unique_ptr<nn::InferenceSession>> sessions;
    std::vector<nn::InferenceSession *> ptrs;
    std::vector<int> feed;
    for (uint64_t id = 0; id < n; ++id) {
        sessions.push_back(std::make_unique<nn::InferenceSession>(
            model, engine, nn::QuantConfig::w8a8(), id));
        sessions.back()->prefill(
            promptFor(id, model.config().vocab_size));
        ptrs.push_back(sessions.back().get());
        feed.push_back(static_cast<int>(id % 8));
    }
    engine.resetStats();
    nn::BatchedDecoder::step(ptrs, feed);
    Dispatches d;
    d.batch_calls = engine.stats().batch_calls.load();
    d.stacked_calls = engine.stats().stacked_calls.load();
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool json = false;
    bool pool_smoke = false;
    bool fault_smoke = false;
    bool slo_smoke = false;
    std::string json_path = "BENCH_serve.json";
    std::string trace_path;
    std::vector<size_t> sweep{1, 2, 4, 8, 16};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--concurrency" && i + 1 < argc) {
            sweep = {static_cast<size_t>(std::stoul(argv[++i]))};
        } else if (arg == "--pool-smoke") {
            pool_smoke = true;
        } else if (arg == "--fault-smoke") {
            fault_smoke = true;
        } else if (arg == "--slo-smoke") {
            slo_smoke = true;
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::cerr << "usage: bench_serve_throughput [--csv] "
                         "[--json [path]] [--concurrency N] "
                         "[--pool-smoke] [--fault-smoke] "
                         "[--slo-smoke] [--trace out.json]\n";
            return 2;
        }
    }

    nn::TransformerClassifier model(modelConfig());
    const nn::QuantConfig quant = nn::QuantConfig::w8a8();
    // Block-diagonal fusion folds the 6 projection row-batches per
    // layer plus the LM head into stacked dispatches; only QK^T and
    // AV remain as gemmBatch calls. The PR 9 baseline was 8*depth+1
    // gemmBatch calls per step.
    const size_t depth = model.config().depth;
    const size_t expected_batches = 2 * depth;
    const size_t expected_stacked = 6 * depth + 1;
    const size_t batch_dispatch_gate = 2 * depth + 3;

    std::vector<Row> rows;
    bool all_ok = true;

    if (pool_smoke) {
        // CI memory-budget smoke: just the pool comparison + gates.
        PoolOutcome pool = runPoolComparison(model, quant);
        std::cout << "kv_pool smoke: budget " << pool.total_blocks
                  << " blocks x " << pool.block_bytes
                  << " B, peak used indep/shared "
                  << pool.indep_peak_used_blocks << "/"
                  << pool.shared_peak_used_blocks
                  << " blocks, peak resident indep/shared "
                  << pool.indep_peak_resident_bytes << "/"
                  << pool.shared_peak_resident_bytes
                  << " B (dense reserve " << pool.dense_reserve_bytes
                  << " B), prefix hits/misses " << pool.prefix_hits
                  << "/" << pool.prefix_misses << "\n"
                  << "gates: shared_fewer_blocks="
                  << (pool.shared_uses_fewer_blocks ? "ok" : "FAIL")
                  << " resident_under_dense="
                  << (pool.resident_under_dense_reserve ? "ok"
                                                        : "FAIL")
                  << " resident_tracks_tokens="
                  << (pool.resident_tracks_tokens ? "ok" : "FAIL")
                  << " hits_n_minus_1="
                  << (pool.hits_are_n_minus_1 ? "ok" : "FAIL")
                  << " bit_identical="
                  << (pool.shared_bit_identical ? "ok" : "FAIL")
                  << "\n";
        return pool.ok() ? 0 : 1;
    }

    if (fault_smoke) {
        // CI robustness smoke: just the fault injection run + gates.
        FaultSmokeOutcome fs = runFaultSmoke(model, quant);
        printFaultSmoke(std::cout, fs);
        return fs.ok() ? 0 : 1;
    }

    // Serve one full sweep level through a fresh server — chunked
    // prefill + stacked-row fusion on, the new serve-path default —
    // and verify every request solo-vs-batched bit-for-bit on a
    // same-sampler solo engine. Both samplers satisfy the identity:
    // per-request noise lanes are counter-derived, so determinism
    // never depends on which generator backs the draws. The solo
    // reference ingests its prompt as ONE prefillChunk: chunked
    // ingestion is bit-identical for ANY chunking, but is a different
    // quantization schedule than the whole-sequence prefill forward.
    struct ServeOutcome
    {
        double wall_s;
        bool identical;
        double token_max_gap_ms; ///< worst request, worst gap
        serve::MetricsSnapshot snap;
    };
    auto serveOnce = [&](size_t concurrency,
                         core::NoiseSampler sampler) {
        nn::ExecutionEngine engine(dptcConfig(sampler),
                                   core::EvalMode::Noisy);
        serve::ServerConfig scfg;
        scfg.scheduler.max_batch = concurrency;
        scfg.scheduler.prefill_chunk_tokens = kPrefillChunkTokens;
        scfg.quant = quant;
        serve::Server server(model, engine, scfg);

        std::vector<std::future<serve::RequestResult>> futures;
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t id = 0; id < concurrency; ++id) {
            serve::Request req;
            req.prompt = promptFor(id, model.config().vocab_size);
            req.max_new_tokens = kNewTokens;
            req.record_logits = true;
            req.request_id = id;
            futures.push_back(server.submit(std::move(req)));
        }
        server.runUntilIdle();
        auto t1 = std::chrono::steady_clock::now();

        // Solo-vs-batched verification: greedy chain AND every step's
        // logits, bit-for-bit, per request.
        bool identical = true;
        double max_gap_ms = 0.0;
        for (uint64_t id = 0; id < concurrency; ++id) {
            serve::RequestResult result = futures[id].get();
            max_gap_ms = std::max(max_gap_ms, result.token_max_gap_ms);
            nn::ExecutionEngine solo_engine(dptcConfig(sampler),
                                            core::EvalMode::Noisy);
            nn::InferenceSession solo(model, solo_engine, quant, id);
            const std::vector<int> prompt =
                promptFor(id, model.config().vocab_size);
            Matrix logits =
                solo.prefillChunk(prompt, 0, prompt.size());
            std::vector<int> generated{
                static_cast<int>(nn::argmaxRow(logits, 0))};
            identical &=
                result.step_logits[0].maxAbsDiff(logits) == 0.0;
            while (generated.size() < kNewTokens) {
                logits = solo.decodeStep(generated.back());
                identical &=
                    result.step_logits[generated.size()].maxAbsDiff(
                        logits) == 0.0;
                generated.push_back(
                    static_cast<int>(nn::argmaxRow(logits, 0)));
            }
            identical &= result.generated == generated;
        }

        ServeOutcome outcome;
        outcome.wall_s =
            std::chrono::duration<double>(t1 - t0).count();
        outcome.identical = identical;
        outcome.token_max_gap_ms = max_gap_ms;
        outcome.snap = server.metrics();
        return outcome;
    };

    if (slo_smoke) {
        // CI latency-SLO smoke: conc-16 serve with chunked prefill +
        // stacked-row fusion on must (a) at least halve the committed
        // PR 9 token p99, (b) keep the per-step gemmBatch dispatch
        // count at the fused bound, (c) stay bit-identical to solo.
        ServeOutcome outcome =
            serveOnce(kSloConcurrency, core::NoiseSampler::BitExact);
        Dispatches d = probeDispatches(model, kSloConcurrency);
        const bool p99_ok =
            outcome.snap.token_p99_ms <= kSloTokenP99BudgetMs;
        const bool dispatch_ok =
            d.batch_calls <= batch_dispatch_gate &&
            d.stacked_calls == expected_stacked;
        std::cout << "slo smoke: concurrency " << kSloConcurrency
                  << ", prefill chunk " << kPrefillChunkTokens
                  << " tokens, token p99 "
                  << units::fmtFixed(outcome.snap.token_p99_ms, 3)
                  << " ms (budget "
                  << units::fmtFixed(kSloTokenP99BudgetMs, 3)
                  << " ms = 0.5 x " << kSloBaselineTokenP99Ms
                  << " baseline), max token gap "
                  << units::fmtFixed(outcome.token_max_gap_ms, 3)
                  << " ms, prefill chunks "
                  << outcome.snap.prefill_chunks
                  << ", dispatches/step " << d.batch_calls
                  << " batch (gate <= " << batch_dispatch_gate
                  << ") + " << d.stacked_calls << " stacked (= "
                  << expected_stacked << ")\n"
                  << "gates: token_p99<=budget="
                  << (p99_ok ? "ok" : "FAIL") << " dispatches="
                  << (dispatch_ok ? "ok" : "FAIL")
                  << " bit_identical="
                  << (outcome.identical ? "ok" : "FAIL") << "\n";
        return (p99_ok && dispatch_ok && outcome.identical) ? 0 : 1;
    }

    for (size_t concurrency : sweep) {
        ServeOutcome exact =
            serveOnce(concurrency, core::NoiseSampler::BitExact);
        ServeOutcome fast =
            serveOnce(concurrency, core::NoiseSampler::Fast);

        const serve::MetricsSnapshot &snap = exact.snap;
        Row row;
        row.concurrency = concurrency;
        row.wall_s = exact.wall_s;
        row.tokens_per_s =
            static_cast<double>(snap.tokens_generated) / row.wall_s;
        row.ttft_p50_ms = snap.ttft_p50_ms;
        row.token_p50_ms = snap.token_p50_ms;
        row.token_p99_ms = snap.token_p99_ms;
        row.engine_macs = snap.engine_macs;
        row.weight_encode_hits = snap.engine_weight_encode_hits;
        row.weight_encode_misses = snap.engine_weight_encode_misses;
        row.kv_encode_hits = snap.engine_kv_encode_hits;
        row.kv_encode_misses = snap.engine_kv_encode_misses;
        row.gaussian_draws = snap.engine_gaussian_draws;
        row.fast_tokens_per_s =
            static_cast<double>(fast.snap.tokens_generated) /
            fast.wall_s;
        row.fast_gaussian_draws = fast.snap.engine_gaussian_draws;
        row.fast_bit_identical = fast.identical;
        bool identical = exact.identical;
        Dispatches d = probeDispatches(model, concurrency);
        row.batch_calls_per_step = d.batch_calls;
        row.stacked_calls_per_step = d.stacked_calls;
        row.o_layers = d.batch_calls == expected_batches &&
                       d.stacked_calls == expected_stacked;
        row.bit_identical = identical;
        row.token_max_gap_ms = exact.token_max_gap_ms;
        row.prefill_chunks = snap.prefill_chunks;
        row.tick_admission_ms = snap.tick_admission_ms;
        row.tick_prefill_ms = snap.tick_prefill_ms;
        row.tick_decode_ms = snap.tick_decode_ms;
        row.tick_pool_ms = snap.tick_pool_ms;
        row.trace_dropped_events = snap.trace_dropped_events;
        all_ok &= row.o_layers && row.bit_identical &&
                  row.fast_bit_identical;
        rows.push_back(row);
    }

    // The paged-KV fixed-memory-budget comparison + its gates.
    PoolOutcome pool = runPoolComparison(model, quant);
    all_ok &= pool.ok();

    // The fault-injection recovery smoke + its gates.
    FaultSmokeOutcome fsmoke = runFaultSmoke(model, quant);
    all_ok &= fsmoke.ok();

    // One extra traced run at the sweep's top concurrency: the
    // Perfetto-loadable artifact plus its derived phase breakdown.
    TraceOutcome trace;
    if (!trace_path.empty()) {
        trace = runTracedServe(model, quant, sweep.back(), trace_path);
        if (!trace.wrote) {
            std::cerr << "FAILED to write trace to " << trace_path
                      << "\n";
            all_ok = false;
        }
    }

    if (csv) {
        std::cout << "concurrency,wall_s,tokens_per_s,"
                     "fast_tokens_per_s,ttft_p50_ms,"
                     "token_p50_ms,token_p99_ms,engine_macs,"
                     "weight_encode_hits,weight_encode_misses,"
                     "kv_encode_hits,kv_encode_misses,"
                     "gaussian_draws,fast_gaussian_draws,"
                     "batch_calls_per_step,stacked_calls_per_step,"
                     "token_max_gap_ms,prefill_chunks,o_layers,"
                     "bit_identical,"
                     "fast_bit_identical,tick_admission_ms,"
                     "tick_prefill_ms,tick_decode_ms,tick_pool_ms,"
                     "trace_dropped_events\n";
        for (const Row &r : rows)
            std::cout << r.concurrency << "," << r.wall_s << ","
                      << r.tokens_per_s << ","
                      << r.fast_tokens_per_s << ","
                      << r.ttft_p50_ms << ","
                      << r.token_p50_ms << "," << r.token_p99_ms
                      << "," << r.engine_macs << ","
                      << r.weight_encode_hits << ","
                      << r.weight_encode_misses << ","
                      << r.kv_encode_hits << ","
                      << r.kv_encode_misses << ","
                      << r.gaussian_draws << ","
                      << r.fast_gaussian_draws << ","
                      << r.batch_calls_per_step << ","
                      << r.stacked_calls_per_step << ","
                      << r.token_max_gap_ms << ","
                      << r.prefill_chunks << ","
                      << (r.o_layers ? 1 : 0) << ","
                      << (r.bit_identical ? 1 : 0) << ","
                      << (r.fast_bit_identical ? 1 : 0) << ","
                      << r.tick_admission_ms << ","
                      << r.tick_prefill_ms << ","
                      << r.tick_decode_ms << "," << r.tick_pool_ms
                      << "," << r.trace_dropped_events << "\n";
        std::cout << "\npool_blocks,pool_block_tokens,"
                     "indep_peak_used_blocks,shared_peak_used_blocks,"
                     "indep_peak_resident_bytes,"
                     "shared_peak_resident_bytes,dense_reserve_bytes,"
                     "prefix_hits,prefix_misses,pool_gates_ok\n"
                  << pool.total_blocks << "," << pool.block_tokens
                  << "," << pool.indep_peak_used_blocks << ","
                  << pool.shared_peak_used_blocks << ","
                  << pool.indep_peak_resident_bytes << ","
                  << pool.shared_peak_resident_bytes << ","
                  << pool.dense_reserve_bytes << ","
                  << pool.prefix_hits << "," << pool.prefix_misses
                  << "," << (pool.ok() ? 1 : 0) << "\n";
        std::cout << "\nfault_requests,fault_all_resolved,"
                     "fault_bit_identical,fault_faults_detected,"
                     "fault_tile_retries,fault_quarantines,"
                     "fault_quarantined_replicas,fault_degraded,"
                     "fault_step_retries,fault_request_failures,"
                     "fault_gates_ok\n"
                  << kFaultSmokeRequests << ","
                  << (fsmoke.all_resolved ? 1 : 0) << ","
                  << (fsmoke.bit_identical ? 1 : 0) << ","
                  << fsmoke.faults_detected << ","
                  << fsmoke.fault_retries << ","
                  << fsmoke.quarantines << ","
                  << fsmoke.quarantined_replicas << ","
                  << (fsmoke.degraded ? 1 : 0) << ","
                  << fsmoke.step_retries << ","
                  << fsmoke.request_failures << ","
                  << (fsmoke.ok() ? 1 : 0) << "\n";
    } else {
        printBanner(
            std::cout,
            "Continuous-batching serve throughput (noisy engine)");
        Table table({"concurrency", "wall [s]", "tokens/s",
                     "fast tok/s", "TTFT p50 [ms]", "token p50 [ms]",
                     "token p99 [ms]", "max gap [ms]",
                     "batch+stacked/step", "bit-identical"});
        for (const Row &r : rows)
            table.addRow(
                {std::to_string(r.concurrency),
                 units::fmtFixed(r.wall_s, 3),
                 units::fmtFixed(r.tokens_per_s, 1),
                 units::fmtFixed(r.fast_tokens_per_s, 1),
                 units::fmtFixed(r.ttft_p50_ms, 2),
                 units::fmtFixed(r.token_p50_ms, 2),
                 units::fmtFixed(r.token_p99_ms, 2),
                 units::fmtFixed(r.token_max_gap_ms, 2),
                 std::to_string(r.batch_calls_per_step) + "+" +
                     std::to_string(r.stacked_calls_per_step) +
                     (r.o_layers ? " (= 2L, 6L+1)"
                                 : " (NOT O(layers))"),
                 std::string(r.bit_identical ? "yes" : "NO") + "/" +
                     (r.fast_bit_identical ? "yes" : "NO")});
        table.print(std::cout);
        std::cout
            << "\nEvery request's logits are checked bit-for-bit "
               "against a solo session on its\nown noise lane — for "
               "the bit-exact sampler AND the fast Ziggurat sampler\n"
               "(the bit-identical column is exact/fast). Chunked "
               "prefill ("
            << kPrefillChunkTokens
            << "-token chunks)\ninterleaves prompt ingestion with "
               "decode; block-diagonal fusion stacks the\nbatch's "
               "projection rows, so a fused step dispatches 2*depth "
               "gemmBatches plus\n6*depth+1 stacked calls at every "
               "concurrency (O(layers), not O(layers x\nrequests); "
               "the PR 9 baseline was 8*depth+1 gemmBatches). Prompt "
            << kPromptTokens << " tokens,\n" << kNewTokens
            << " generated per request. Wall time includes prefills "
               "and verification-free\nserving only; the container "
               "may expose a single hardware thread.\n";

        printBanner(std::cout,
                    "Paged KV memory: fixed budget of " +
                        std::to_string(pool.total_blocks) +
                        " blocks x " +
                        std::to_string(pool.block_tokens) +
                        " tokens (" +
                        std::to_string(pool.block_bytes) + " B)");
        Table ptable({"workload", "peak used [blk]",
                      "peak resident [B]", "shared [blk]",
                      "prefix hit/miss"});
        ptable.addRow({"independent",
                       std::to_string(pool.indep_peak_used_blocks),
                       std::to_string(pool.indep_peak_resident_bytes),
                       "0", "-"});
        ptable.addRow(
            {"shared prefix",
             std::to_string(pool.shared_peak_used_blocks),
             std::to_string(pool.shared_peak_resident_bytes),
             std::to_string(pool.shared_peak_shared_blocks),
             std::to_string(pool.prefix_hits) + "/" +
                 std::to_string(pool.prefix_misses)});
        ptable.print(std::cout);
        std::cout
            << "\nDense-reserve footprint at the same concurrency: "
            << pool.dense_reserve_bytes
            << " B (max_tokens x C).\nMax sustainable concurrency "
               "under the same budget: dense-reserve "
            << pool.max_concurrency_dense << ", paged "
            << pool.max_concurrency_paged << ", paged+shared-prefix "
            << pool.max_concurrency_paged_shared
            << ".\nGates: shared uses fewer blocks "
            << (pool.shared_uses_fewer_blocks ? "ok" : "FAIL")
            << ", resident < dense reserve "
            << (pool.resident_under_dense_reserve ? "ok" : "FAIL")
            << ", resident tracks tokens "
            << (pool.resident_tracks_tokens ? "ok" : "FAIL")
            << ",\n       prefix hits = N-1 "
            << (pool.hits_are_n_minus_1 ? "ok" : "FAIL")
            << ", shared-vs-solo bit-identical "
            << (pool.shared_bit_identical ? "ok" : "FAIL") << ".\n";

        printBanner(std::cout,
                    "Fault injection: ABFT recovery under serve");
        printFaultSmoke(std::cout, fsmoke);
    }

    if (json) {
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"serve_throughput\",\n"
            << "  \"model\": \"dim32-depth2-heads2-vocab64\",\n"
            << "  \"prompt_tokens\": " << kPromptTokens << ",\n"
            << "  \"new_tokens_per_request\": " << kNewTokens << ",\n"
            << "  \"prefill_chunk_tokens\": " << kPrefillChunkTokens
            << ",\n"
            << "  \"expected_batches_per_step\": "
            << expected_batches << ",\n"
            << "  \"expected_stacked_per_step\": "
            << expected_stacked << ",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            out << "    {\"concurrency\": " << r.concurrency
                << ", \"wall_s\": " << r.wall_s
                << ", \"tokens_per_s\": " << r.tokens_per_s
                << ", \"fast_tokens_per_s\": " << r.fast_tokens_per_s
                << ", \"ttft_p50_ms\": " << r.ttft_p50_ms
                << ", \"token_p50_ms\": " << r.token_p50_ms
                << ", \"token_p99_ms\": " << r.token_p99_ms
                << ", \"engine_macs\": " << r.engine_macs
                << ", \"weight_encode_hits\": "
                << r.weight_encode_hits
                << ", \"weight_encode_misses\": "
                << r.weight_encode_misses
                << ", \"kv_encode_hits\": " << r.kv_encode_hits
                << ", \"kv_encode_misses\": " << r.kv_encode_misses
                << ", \"gaussian_draws\": " << r.gaussian_draws
                << ", \"fast_gaussian_draws\": "
                << r.fast_gaussian_draws
                << ", \"batch_calls_per_step\": "
                << r.batch_calls_per_step
                << ", \"stacked_calls_per_step\": "
                << r.stacked_calls_per_step
                << ", \"token_max_gap_ms\": " << r.token_max_gap_ms
                << ", \"prefill_chunks\": " << r.prefill_chunks
                << ", \"bit_identical\": "
                << (r.bit_identical ? "true" : "false")
                << ", \"fast_bit_identical\": "
                << (r.fast_bit_identical ? "true" : "false")
                << ",\n     \"tick_admission_ms\": "
                << r.tick_admission_ms << ", \"tick_prefill_ms\": "
                << r.tick_prefill_ms << ", \"tick_decode_ms\": "
                << r.tick_decode_ms << ", \"tick_pool_ms\": "
                << r.tick_pool_ms << ", \"trace_dropped_events\": "
                << r.trace_dropped_events << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ],\n"
            << "  \"kv_pool\": {\"block_tokens\": "
            << pool.block_tokens << ", \"num_blocks\": "
            << pool.total_blocks << ", \"block_bytes\": "
            << pool.block_bytes << ", \"concurrency\": "
            << kPoolConcurrency << ", \"shared_prefix_tokens\": "
            << kSharedPrefixTokens
            << ",\n    \"indep_peak_used_blocks\": "
            << pool.indep_peak_used_blocks
            << ", \"indep_peak_resident_bytes\": "
            << pool.indep_peak_resident_bytes
            << ", \"shared_peak_used_blocks\": "
            << pool.shared_peak_used_blocks
            << ", \"shared_peak_resident_bytes\": "
            << pool.shared_peak_resident_bytes
            << ",\n    \"shared_peak_shared_blocks\": "
            << pool.shared_peak_shared_blocks
            << ", \"prefix_hits\": " << pool.prefix_hits
            << ", \"prefix_misses\": " << pool.prefix_misses
            << ", \"dense_reserve_bytes\": "
            << pool.dense_reserve_bytes
            << ",\n    \"max_concurrency_dense\": "
            << pool.max_concurrency_dense
            << ", \"max_concurrency_paged\": "
            << pool.max_concurrency_paged
            << ", \"max_concurrency_paged_shared\": "
            << pool.max_concurrency_paged_shared
            << ",\n    \"shared_uses_fewer_blocks\": "
            << (pool.shared_uses_fewer_blocks ? "true" : "false")
            << ", \"resident_under_dense_reserve\": "
            << (pool.resident_under_dense_reserve ? "true" : "false")
            << ", \"resident_tracks_tokens\": "
            << (pool.resident_tracks_tokens ? "true" : "false")
            << ",\n    \"hits_are_n_minus_1\": "
            << (pool.hits_are_n_minus_1 ? "true" : "false")
            << ", \"shared_bit_identical\": "
            << (pool.shared_bit_identical ? "true" : "false")
            << "},\n";
        out << "  \"fault_smoke\": {\"requests\": "
            << kFaultSmokeRequests << ", \"all_resolved\": "
            << (fsmoke.all_resolved ? "true" : "false")
            << ", \"bit_identical_to_fault_free\": "
            << (fsmoke.bit_identical ? "true" : "false")
            << ",\n    \"faults_detected\": " << fsmoke.faults_detected
            << ", \"fault_tile_retries\": " << fsmoke.fault_retries
            << ", \"fault_quarantines\": " << fsmoke.quarantines
            << ", \"quarantined_replicas\": "
            << fsmoke.quarantined_replicas << ", \"degraded\": "
            << (fsmoke.degraded ? "true" : "false")
            << ",\n    \"engine_step_retries\": " << fsmoke.step_retries
            << ", \"request_failures\": " << fsmoke.request_failures
            << "}\n";
        out << "}\n";
        std::cout << "wrote " << json_path << "\n";
    }

    if (!trace_path.empty() && trace.wrote) {
        std::cout << "\nwrote " << trace_path << " (concurrency "
                  << sweep.back() << ", " << trace.lanes
                  << " thread lane(s), " << trace.dropped
                  << " dropped events) — load it in chrome://tracing "
                     "or ui.perfetto.dev\n";
        obs::writePhaseBreakdown(std::cout, trace.phases);
    }

    return all_ok ? 0 : 1;
}
