/**
 * @file
 * Continuous-batching serve throughput: the serve::Server driving the
 * noisy photonic engine across a concurrency sweep {1, 2, 4, 8, 16}.
 *
 * For every concurrency level the bench (a) serves C requests through
 * the fused BatchedDecoder path and measures tokens/s, TTFT, and
 * per-token latency percentiles, (b) VERIFIES the headline contract —
 * each request's per-step logits are bit-identical to a solo
 * InferenceSession run on a fresh same-config engine — and (c) probes
 * the dispatch bound: a fused decode step must issue the same number
 * of engine gemmBatch calls (8*depth + 1) whatever the batch size,
 * i.e. O(layers), not O(layers x requests). Any mismatch exits
 * nonzero, which is what the CI smoke keys on.
 *
 * Usage: bench_serve_throughput [--csv] [--json [path]]
 *                               [--concurrency N]
 *
 * --json writes the committed BENCH_serve.json perf snapshot;
 * --concurrency restricts the sweep (the CI smoke runs one level).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "nn/batched_decoder.hh"
#include "nn/execution_engine.hh"
#include "serve/server.hh"
#include "util/csv.hh"
#include "util/rng.hh"

namespace {

using namespace lt;

constexpr size_t kPromptTokens = 8;
constexpr size_t kNewTokens = 12;

nn::TransformerConfig
modelConfig()
{
    nn::TransformerConfig cfg;
    cfg.dim = 32;
    cfg.depth = 2;
    cfg.heads = 2;
    cfg.mlp_hidden = 64;
    cfg.vocab_size = 64;
    cfg.num_classes = 64;
    cfg.max_tokens = 64;
    cfg.pooling = nn::Pooling::LastToken;
    cfg.causal = true;
    return cfg;
}

core::DptcConfig
dptcConfig(core::NoiseSampler sampler = core::NoiseSampler::BitExact)
{
    core::DptcConfig dcfg;
    dcfg.input_bits = 8;
    dcfg.noise.sampler = sampler;
    return dcfg;
}

std::vector<int>
promptFor(uint64_t id, size_t vocab)
{
    Rng rng(0x9e4e + id);
    std::vector<int> tokens(kPromptTokens);
    for (int &t : tokens)
        t = static_cast<int>(
            rng.uniformInt(0, static_cast<int64_t>(vocab) - 1));
    return tokens;
}

struct Row
{
    size_t concurrency;
    double wall_s;
    double tokens_per_s;
    double ttft_p50_ms;
    double token_p50_ms;
    double token_p99_ms;
    size_t engine_macs;
    size_t weight_encode_hits;
    size_t weight_encode_misses;
    size_t kv_encode_hits;
    size_t kv_encode_misses;
    size_t gaussian_draws;      ///< bit-exact run, engine-wide
    double fast_tokens_per_s;   ///< same sweep, Fast noise sampler
    size_t fast_gaussian_draws;
    bool fast_bit_identical;    ///< Fast solo == Fast batched
    size_t batch_calls_per_step;
    bool o_layers; ///< dispatch count independent of batch size
    bool bit_identical;
};

/** One decode step's engine gemmBatch dispatch count at batch size n. */
size_t
probeDispatches(const nn::TransformerClassifier &model, size_t n)
{
    nn::ExecutionEngine engine(dptcConfig(), core::EvalMode::Noisy);
    std::vector<std::unique_ptr<nn::InferenceSession>> sessions;
    std::vector<nn::InferenceSession *> ptrs;
    std::vector<int> feed;
    for (uint64_t id = 0; id < n; ++id) {
        sessions.push_back(std::make_unique<nn::InferenceSession>(
            model, engine, nn::QuantConfig::w8a8(), id));
        sessions.back()->prefill(
            promptFor(id, model.config().vocab_size));
        ptrs.push_back(sessions.back().get());
        feed.push_back(static_cast<int>(id % 8));
    }
    engine.resetStats();
    nn::BatchedDecoder::step(ptrs, feed);
    return engine.stats().batch_calls.load();
}

} // namespace

int
main(int argc, char **argv)
{
    bool csv = false;
    bool json = false;
    std::string json_path = "BENCH_serve.json";
    std::vector<size_t> sweep{1, 2, 4, 8, 16};
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
        } else if (arg == "--concurrency" && i + 1 < argc) {
            sweep = {static_cast<size_t>(std::stoul(argv[++i]))};
        } else {
            std::cerr << "usage: bench_serve_throughput [--csv] "
                         "[--json [path]] [--concurrency N]\n";
            return 2;
        }
    }

    nn::TransformerClassifier model(modelConfig());
    const nn::QuantConfig quant = nn::QuantConfig::w8a8();
    const size_t expected_dispatches = 8 * model.config().depth + 1;

    std::vector<Row> rows;
    bool all_ok = true;

    // Serve one full sweep level through a fresh server and verify
    // every request solo-vs-batched bit-for-bit on a same-sampler
    // solo engine. Both samplers satisfy the identity: per-request
    // noise lanes are counter-derived, so determinism never depends
    // on which generator backs the draws.
    struct ServeOutcome
    {
        double wall_s;
        bool identical;
        serve::MetricsSnapshot snap;
    };
    auto serveOnce = [&](size_t concurrency,
                         core::NoiseSampler sampler) {
        nn::ExecutionEngine engine(dptcConfig(sampler),
                                   core::EvalMode::Noisy);
        serve::ServerConfig scfg;
        scfg.scheduler.max_batch = concurrency;
        scfg.quant = quant;
        serve::Server server(model, engine, scfg);

        std::vector<std::future<serve::RequestResult>> futures;
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t id = 0; id < concurrency; ++id) {
            serve::Request req;
            req.prompt = promptFor(id, model.config().vocab_size);
            req.max_new_tokens = kNewTokens;
            req.record_logits = true;
            req.request_id = id;
            futures.push_back(server.submit(std::move(req)));
        }
        server.runUntilIdle();
        auto t1 = std::chrono::steady_clock::now();

        // Solo-vs-batched verification: greedy chain AND every step's
        // logits, bit-for-bit, per request.
        bool identical = true;
        for (uint64_t id = 0; id < concurrency; ++id) {
            serve::RequestResult result = futures[id].get();
            nn::ExecutionEngine solo_engine(dptcConfig(sampler),
                                            core::EvalMode::Noisy);
            nn::InferenceSession solo(model, solo_engine, quant, id);
            Matrix logits =
                solo.prefill(promptFor(id, model.config().vocab_size));
            std::vector<int> generated{
                static_cast<int>(nn::argmaxRow(logits, 0))};
            identical &=
                result.step_logits[0].maxAbsDiff(logits) == 0.0;
            while (generated.size() < kNewTokens) {
                logits = solo.decodeStep(generated.back());
                identical &=
                    result.step_logits[generated.size()].maxAbsDiff(
                        logits) == 0.0;
                generated.push_back(
                    static_cast<int>(nn::argmaxRow(logits, 0)));
            }
            identical &= result.generated == generated;
        }

        ServeOutcome outcome;
        outcome.wall_s =
            std::chrono::duration<double>(t1 - t0).count();
        outcome.identical = identical;
        outcome.snap = server.metrics();
        return outcome;
    };

    for (size_t concurrency : sweep) {
        ServeOutcome exact =
            serveOnce(concurrency, core::NoiseSampler::BitExact);
        ServeOutcome fast =
            serveOnce(concurrency, core::NoiseSampler::Fast);

        const serve::MetricsSnapshot &snap = exact.snap;
        Row row;
        row.concurrency = concurrency;
        row.wall_s = exact.wall_s;
        row.tokens_per_s =
            static_cast<double>(snap.tokens_generated) / row.wall_s;
        row.ttft_p50_ms = snap.ttft_p50_ms;
        row.token_p50_ms = snap.token_p50_ms;
        row.token_p99_ms = snap.token_p99_ms;
        row.engine_macs = snap.engine_macs;
        row.weight_encode_hits = snap.engine_weight_encode_hits;
        row.weight_encode_misses = snap.engine_weight_encode_misses;
        row.kv_encode_hits = snap.engine_kv_encode_hits;
        row.kv_encode_misses = snap.engine_kv_encode_misses;
        row.gaussian_draws = snap.engine_gaussian_draws;
        row.fast_tokens_per_s =
            static_cast<double>(fast.snap.tokens_generated) /
            fast.wall_s;
        row.fast_gaussian_draws = fast.snap.engine_gaussian_draws;
        row.fast_bit_identical = fast.identical;
        bool identical = exact.identical;
        row.batch_calls_per_step = probeDispatches(model, concurrency);
        row.o_layers =
            row.batch_calls_per_step == expected_dispatches;
        row.bit_identical = identical;
        all_ok &= row.o_layers && row.bit_identical &&
                  row.fast_bit_identical;
        rows.push_back(row);
    }

    if (csv) {
        std::cout << "concurrency,wall_s,tokens_per_s,"
                     "fast_tokens_per_s,ttft_p50_ms,"
                     "token_p50_ms,token_p99_ms,engine_macs,"
                     "weight_encode_hits,weight_encode_misses,"
                     "kv_encode_hits,kv_encode_misses,"
                     "gaussian_draws,fast_gaussian_draws,"
                     "batch_calls_per_step,o_layers,bit_identical,"
                     "fast_bit_identical\n";
        for (const Row &r : rows)
            std::cout << r.concurrency << "," << r.wall_s << ","
                      << r.tokens_per_s << ","
                      << r.fast_tokens_per_s << ","
                      << r.ttft_p50_ms << ","
                      << r.token_p50_ms << "," << r.token_p99_ms
                      << "," << r.engine_macs << ","
                      << r.weight_encode_hits << ","
                      << r.weight_encode_misses << ","
                      << r.kv_encode_hits << ","
                      << r.kv_encode_misses << ","
                      << r.gaussian_draws << ","
                      << r.fast_gaussian_draws << ","
                      << r.batch_calls_per_step << ","
                      << (r.o_layers ? 1 : 0) << ","
                      << (r.bit_identical ? 1 : 0) << ","
                      << (r.fast_bit_identical ? 1 : 0) << "\n";
    } else {
        printBanner(
            std::cout,
            "Continuous-batching serve throughput (noisy engine)");
        Table table({"concurrency", "wall [s]", "tokens/s",
                     "fast tok/s", "TTFT p50 [ms]", "token p50 [ms]",
                     "token p99 [ms]", "gauss draws",
                     "gemmBatch/step", "bit-identical"});
        for (const Row &r : rows)
            table.addRow(
                {std::to_string(r.concurrency),
                 units::fmtFixed(r.wall_s, 3),
                 units::fmtFixed(r.tokens_per_s, 1),
                 units::fmtFixed(r.fast_tokens_per_s, 1),
                 units::fmtFixed(r.ttft_p50_ms, 2),
                 units::fmtFixed(r.token_p50_ms, 2),
                 units::fmtFixed(r.token_p99_ms, 2),
                 std::to_string(r.gaussian_draws),
                 std::to_string(r.batch_calls_per_step) +
                     (r.o_layers ? " (= 8L+1)" : " (NOT O(layers))"),
                 std::string(r.bit_identical ? "yes" : "NO") + "/" +
                     (r.fast_bit_identical ? "yes" : "NO")});
        table.print(std::cout);
        std::cout
            << "\nEvery request's logits are checked bit-for-bit "
               "against a solo session on its\nown noise lane — for "
               "the bit-exact sampler AND the fast Ziggurat sampler\n"
               "(the bit-identical column is exact/fast); the "
               "fused decode step dispatches\n8*depth+1 engine "
               "batches at every concurrency (O(layers), not "
               "O(layers x\nrequests)). Prompt "
            << kPromptTokens << " tokens, " << kNewTokens
            << " generated per request. Wall time\nincludes prefills "
               "and verification-free serving only; the container "
               "may\nexpose a single hardware thread.\n";
    }

    if (json) {
        std::ofstream out(json_path);
        out << "{\n  \"bench\": \"serve_throughput\",\n"
            << "  \"model\": \"dim32-depth2-heads2-vocab64\",\n"
            << "  \"prompt_tokens\": " << kPromptTokens << ",\n"
            << "  \"new_tokens_per_request\": " << kNewTokens << ",\n"
            << "  \"expected_batches_per_step\": "
            << expected_dispatches << ",\n"
            << "  \"hardware_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            out << "    {\"concurrency\": " << r.concurrency
                << ", \"wall_s\": " << r.wall_s
                << ", \"tokens_per_s\": " << r.tokens_per_s
                << ", \"fast_tokens_per_s\": " << r.fast_tokens_per_s
                << ", \"ttft_p50_ms\": " << r.ttft_p50_ms
                << ", \"token_p50_ms\": " << r.token_p50_ms
                << ", \"token_p99_ms\": " << r.token_p99_ms
                << ", \"engine_macs\": " << r.engine_macs
                << ", \"weight_encode_hits\": "
                << r.weight_encode_hits
                << ", \"weight_encode_misses\": "
                << r.weight_encode_misses
                << ", \"kv_encode_hits\": " << r.kv_encode_hits
                << ", \"kv_encode_misses\": " << r.kv_encode_misses
                << ", \"gaussian_draws\": " << r.gaussian_draws
                << ", \"fast_gaussian_draws\": "
                << r.fast_gaussian_draws
                << ", \"batch_calls_per_step\": "
                << r.batch_calls_per_step
                << ", \"bit_identical\": "
                << (r.bit_identical ? "true" : "false")
                << ", \"fast_bit_identical\": "
                << (r.fast_bit_identical ? "true" : "false") << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote " << json_path << "\n";
    }

    return all_ok ? 0 : 1;
}
