/**
 * @file
 * Fig. 7 reproduction: chip-area breakdown of LT-B (60.3 mm^2) and
 * LT-L (112.82 mm^2). The paper highlights photonic core ~20%,
 * memory ~25%, and DAC ~25% shares.
 */

#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout, "Fig. 7: area breakdown (LT-B / LT-L)");

    Table table({"Component", "LT-B [mm^2]", "LT-B [%]",
                 "LT-L [mm^2]", "LT-L [%]"});
    ChipModel base(ArchConfig::ltBase());
    ChipModel large(ArchConfig::ltLarge());
    AreaBreakdown b = base.area();
    AreaBreakdown l = large.area();

    auto row = [&](const std::string &name, double bv, double lv) {
        table.addRow({name, units::fmtFixed(bv * 1e6, 2),
                      units::fmtFixed(bv / b.total() * 100.0, 1),
                      units::fmtFixed(lv * 1e6, 2),
                      units::fmtFixed(lv / l.total() * 100.0, 1)});
    };
    row("photonic core (DPTC)", b.photonic_core, l.photonic_core);
    row("DAC", b.dac, l.dac);
    row("ADC", b.adc, l.adc);
    row("modulation (MZM+WDM)", b.modulation, l.modulation);
    row("memory", b.memory, l.memory);
    row("laser + micro-comb", b.laser_comb, l.laser_comb);
    row("digital units", b.digital, l.digital);
    row("other (TIA/PD)", b.other, l.other);
    table.addSeparator();
    row("TOTAL", b.total(), l.total());
    table.print(std::cout);

    std::cout << "\ntotal LT-B : "
              << lt::bench::vsPaper(b.total() * 1e6, 60.3) << " mm^2\n";
    std::cout << "total LT-L : "
              << lt::bench::vsPaper(l.total() * 1e6, 112.82)
              << " mm^2\n";
    std::cout << "paper share check: core ~20%, memory ~25%, DAC ~25%\n";
    return 0;
}
