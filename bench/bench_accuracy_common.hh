/**
 * @file
 * Shared machinery for the Fig. 14 / Fig. 15 accuracy benches:
 * train the two substitute models once (4-bit vision "DeiT-T
 * substitute", 8-bit sequence "BERT-base substitute" — see DESIGN.md
 * section 4), then evaluate them on the noisy photonic GEMM backend
 * under sweeping noise knobs.
 */

#ifndef LT_BENCH_BENCH_ACCURACY_COMMON_HH
#define LT_BENCH_BENCH_ACCURACY_COMMON_HH

#include <memory>

#include "nn/execution_engine.hh"
#include "nn/gemm_backend.hh"
#include "nn/transformer.hh"
#include "train/datasets.hh"
#include "train/trainer.hh"

namespace lt {
namespace bench {

/** A trained model plus its test set and digital reference accuracy. */
struct TrainedVisionTask
{
    std::unique_ptr<nn::TransformerClassifier> model;
    std::unique_ptr<train::ShapeDataset> test_set;
    nn::QuantConfig quant;
    double digital_accuracy;
};

struct TrainedSequenceTask
{
    std::unique_ptr<nn::TransformerClassifier> model;
    std::unique_ptr<train::NeedleDataset> test_set;
    nn::QuantConfig quant;
    double digital_accuracy;
};

/** Train the 4-bit vision substitute (prints progress). */
inline TrainedVisionTask
trainVisionTask(int act_weight_bits = 4)
{
    TrainedVisionTask task;
    nn::TransformerConfig cfg;
    cfg.dim = 16;
    cfg.depth = 1;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.num_classes = train::ShapeDataset::kNumClasses;
    cfg.max_tokens = train::ShapeDataset::kNumPatches + 1;
    cfg.patch_dim = train::ShapeDataset::kPatchDim;
    task.model = std::make_unique<nn::TransformerClassifier>(cfg);
    task.quant = {act_weight_bits, act_weight_bits, true};

    train::TrainerConfig tcfg;
    tcfg.epochs = 10;
    tcfg.lr = 2e-3;
    tcfg.quant = task.quant;
    tcfg.train_noise_std = 0.05; // noise-aware training
    train::Trainer trainer(*task.model, tcfg);
    train::ShapeDataset train_set(400, 1001);
    trainer.trainVision(train_set.samples());

    task.test_set = std::make_unique<train::ShapeDataset>(200, 2002);
    nn::IdealBackend ideal;
    nn::RunContext ctx{&ideal, task.quant};
    task.digital_accuracy = train::Trainer::evaluateVision(
        *task.model, task.test_set->samples(), ctx);
    return task;
}

/** Train the 8-bit sequence substitute. */
inline TrainedSequenceTask
trainSequenceTask(int act_weight_bits = 8)
{
    TrainedSequenceTask task;
    nn::TransformerConfig cfg;
    cfg.dim = 16;
    cfg.depth = 1;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.num_classes = train::NeedleDataset::kNumClasses;
    cfg.max_tokens = train::NeedleDataset::kSeqLen + 1;
    cfg.vocab_size = train::NeedleDataset::kVocab;
    task.model = std::make_unique<nn::TransformerClassifier>(cfg);
    task.quant = {act_weight_bits, act_weight_bits, true};

    train::TrainerConfig tcfg;
    tcfg.epochs = 10;
    tcfg.lr = 2e-3;
    tcfg.quant = task.quant;
    tcfg.train_noise_std = 0.05;
    train::Trainer trainer(*task.model, tcfg);
    train::NeedleDataset train_set(400, 3003);
    trainer.trainSequence(train_set.samples());

    task.test_set = std::make_unique<train::NeedleDataset>(200, 4004);
    nn::IdealBackend ideal;
    nn::RunContext ctx{&ideal, task.quant};
    task.digital_accuracy = train::Trainer::evaluateSequence(
        *task.model, task.test_set->samples(), ctx);
    return task;
}

/** Evaluate a vision task on the noisy photonic backend. */
inline double
photonicVisionAccuracy(TrainedVisionTask &task,
                       const core::NoiseConfig &noise, size_t nlambda,
                       uint64_t seed = 0xACC)
{
    core::DptcConfig dcfg;
    dcfg.nlambda = nlambda;
    dcfg.input_bits = task.quant.act_bits;
    dcfg.noise = noise;
    dcfg.seed = seed;
    nn::ExecutionEngine backend(dcfg, core::EvalMode::Noisy);
    nn::RunContext ctx{&backend, task.quant};
    return train::Trainer::evaluateVision(
        *task.model, task.test_set->samples(), ctx);
}

inline double
photonicSequenceAccuracy(TrainedSequenceTask &task,
                         const core::NoiseConfig &noise,
                         size_t nlambda, uint64_t seed = 0xACC)
{
    core::DptcConfig dcfg;
    dcfg.nlambda = nlambda;
    dcfg.input_bits = task.quant.act_bits;
    dcfg.noise = noise;
    dcfg.seed = seed;
    nn::ExecutionEngine backend(dcfg, core::EvalMode::Noisy);
    nn::RunContext ctx{&backend, task.quant};
    return train::Trainer::evaluateSequence(
        *task.model, task.test_set->samples(), ctx);
}

} // namespace bench
} // namespace lt

#endif // LT_BENCH_BENCH_ACCURACY_COMMON_HH
