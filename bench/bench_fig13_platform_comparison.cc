/**
 * @file
 * Fig. 13 reproduction: per-inference energy and throughput (FPS)
 * across CPU / GPU / Edge TPU / FPGA reference models and LT-B /
 * LT-L, on the five paper workloads (DeiT-T/S/B, BERT-base-128,
 * BERT-large-320) at 4-bit and 8-bit LT precision.
 *
 * Electronic platforms are roofline substitutes calibrated to the
 * paper's published relationships (see DESIGN.md section 4); the
 * claims checked below are the paper's: LT has the lowest energy
 * (>300x vs CPU, ~6.6x vs GPU, ~18x vs TPU, ~20x vs FPGA) and the
 * highest FPS on every workload.
 */

#include <iostream>

#include "arch/performance_model.hh"
#include "baselines/electronic_platforms.hh"
#include "bench_common.hh"
#include "nn/model_zoo.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fig. 13: energy (mJ) and FPS across platforms");

    auto platforms = baselines::figure13Platforms();
    CsvWriter csv("fig13_platforms.csv",
                  {"workload", "platform", "bits", "energy_mj", "fps"});

    for (int bits : {4, 8}) {
        printBanner(std::cout, std::to_string(bits) + "-bit LT");
        Table table({"Workload", "Platform", "Energy [mJ]", "FPS"});
        for (const auto &model : nn::figure13Models()) {
            nn::Workload wl = nn::extractWorkload(model);
            for (const auto &p : platforms) {
                table.addRow({model.name, p.name,
                              units::fmtSci(p.energyJ(wl) * 1e3, 2),
                              units::fmtSci(p.fps(wl), 2)});
                csv.writeRow({model.name, p.name,
                              std::to_string(bits),
                              units::fmtSci(p.energyJ(wl) * 1e3, 3),
                              units::fmtSci(p.fps(wl), 3)});
            }
            for (const auto &cfg_base :
                 {arch::ArchConfig::ltBase(),
                  arch::ArchConfig::ltLarge()}) {
                arch::ArchConfig cfg = cfg_base;
                cfg.precision_bits = bits;
                arch::LtPerformanceModel lt_model(cfg);
                auto r = lt_model.evaluate(wl);
                double fps = 1.0 / r.latency.total();
                table.addRow({model.name, cfg.name,
                              units::fmtSci(r.energy.total() * 1e3, 2),
                              units::fmtSci(fps, 2)});
                csv.writeRow({model.name, cfg.name,
                              std::to_string(bits),
                              units::fmtSci(r.energy.total() * 1e3, 3),
                              units::fmtSci(fps, 3)});
            }
            table.addSeparator();
        }
        table.print(std::cout);
    }

    // Paper claim summary at the 4-bit setting.
    printBanner(std::cout, "Energy-reduction ratios vs LT-B (4-bit)");
    Table summary({"Platform", "min ratio", "max ratio",
                   "paper claim"});
    arch::LtPerformanceModel lt_model(arch::ArchConfig::ltBase());
    struct Claim
    {
        const char *name;
        double value;
    };
    const Claim claims[] = {{"i7-9750H-CPU", 300.0},
                            {"A100-GPU", 6.6},
                            {"Coral-EdgeTPU", 18.0},
                            {"FPGA-ViT-Acc", 20.0}};
    for (const auto &p : platforms) {
        double mn = 1e30, mx = 0.0;
        for (const auto &model : nn::figure13Models()) {
            nn::Workload wl = nn::extractWorkload(model);
            double r = p.energyJ(wl) /
                       lt_model.evaluate(wl).energy.total();
            mn = std::min(mn, r);
            mx = std::max(mx, r);
        }
        std::string claim = "?";
        for (const auto &c : claims)
            if (p.name == c.name)
                claim = "> " + units::fmtFixed(c.value, 1) + "x";
        summary.addRow({p.name, ratio(mn, 1), ratio(mx, 1), claim});
    }
    summary.print(std::cout);
    std::cout << "\n(LT also posts the highest FPS on every workload; "
                 "full rows in fig13_platforms.csv)\n";
    return 0;
}
