/**
 * @file
 * Table IV reproduction: LT-B and LT-L configurations with their
 * modelled total chip area (paper: 60.3 and 112.82 mm^2).
 */

#include <iostream>

#include "arch/chip_model.hh"
#include "bench_common.hh"

int
main()
{
    using namespace lt;
    using namespace lt::arch;

    printBanner(std::cout, "Table IV: LT-B / LT-L configurations");

    Table table({"Config", "Nt", "Nc", "Nh", "Nv", "Nlambda",
                 "Global SRAM [MB]", "Area [mm^2] (vs paper)"});
    struct Row
    {
        ArchConfig cfg;
        double paper_mm2;
    };
    for (const auto &[cfg, paper] :
         {Row{ArchConfig::ltBase(), 60.3},
          Row{ArchConfig::ltLarge(), 112.82}}) {
        ChipModel chip(cfg);
        table.addRow({cfg.name, std::to_string(cfg.nt),
                      std::to_string(cfg.nc), std::to_string(cfg.nh),
                      std::to_string(cfg.nv),
                      std::to_string(cfg.nlambda),
                      units::fmtFixed(cfg.global_sram_bytes /
                                          units::MiB(1), 0),
                      lt::bench::vsPaper(chip.area().total() * 1e6,
                                         paper)});
    }
    table.print(std::cout);

    std::cout << "\nDerived peak throughput:\n";
    for (const auto &cfg :
         {ArchConfig::ltBase(), ArchConfig::ltLarge()}) {
        ChipModel chip(cfg);
        std::cout << "  " << cfg.name << ": "
                  << units::fmtFixed(chip.opticalTops(), 1)
                  << " TOPS peak ("
                  << cfg.macsPerCycle() << " MAC/cycle @ "
                  << units::fmtFixed(cfg.core_clock_hz / 1e9, 0)
                  << " GHz)\n";
    }
    return 0;
}
