/**
 * @file
 * Fig. 14 reproduction: dispersion robustness — accuracy of quantized
 * Transformers running on the noisy photonic backend as the number of
 * WDM wavelengths sweeps 6..26, against the digital ("GPU") reference.
 *
 * Paper setup: 4-bit DeiT-T / ImageNet and 8-bit BERT-base / SST-2
 * with input noise std 0.03 and phase noise std 2 degrees; reported
 * outcome: < 0.5% accuracy drop across the sweep. Substitute tasks
 * per DESIGN.md section 4 (synthetic shapes / needle detection).
 */

#include <iostream>

#include "bench_accuracy_common.hh"
#include "bench_common.hh"
#include "util/csv.hh"

int
main()
{
    using namespace lt;
    using namespace lt::bench;

    printBanner(std::cout,
                "Fig. 14: accuracy vs #wavelengths (dispersion)");

    std::cout << "training 4-bit vision substitute (DeiT-T stand-in)"
              << "...\n";
    TrainedVisionTask vision = trainVisionTask(4);
    std::cout << "training 8-bit sequence substitute (BERT-base "
                 "stand-in)...\n";
    TrainedSequenceTask sequence = trainSequenceTask(8);

    std::cout << "digital reference accuracy: vision "
              << units::fmtFixed(vision.digital_accuracy * 100.0, 1)
              << " %, sequence "
              << units::fmtFixed(sequence.digital_accuracy * 100.0, 1)
              << " %\n";

    core::NoiseConfig noise = core::NoiseConfig::paperDefault();
    CsvWriter csv("fig14_wavelength_accuracy.csv",
                  {"wavelengths", "vision_acc", "sequence_acc",
                   "vision_ref", "sequence_ref"});
    Table table({"#wavelengths", "vision acc [%] (4-bit)",
                 "drop [%]", "sequence acc [%] (8-bit)", "drop [%]"});
    double worst_drop = 0.0;
    for (size_t nl : {6, 10, 14, 18, 22, 26}) {
        double va = photonicVisionAccuracy(vision, noise, nl);
        double sa = photonicSequenceAccuracy(sequence, noise, nl);
        double vd = (vision.digital_accuracy - va) * 100.0;
        double sd = (sequence.digital_accuracy - sa) * 100.0;
        worst_drop = std::max({worst_drop, vd, sd});
        table.addRow({std::to_string(nl),
                      units::fmtFixed(va * 100.0, 1),
                      units::fmtFixed(vd, 1),
                      units::fmtFixed(sa * 100.0, 1),
                      units::fmtFixed(sd, 1)});
        csv.writeRow({static_cast<double>(nl), va, sa,
                      vision.digital_accuracy,
                      sequence.digital_accuracy});
    }
    table.print(std::cout);

    std::cout << "\nworst accuracy drop across the sweep: "
              << units::fmtFixed(worst_drop, 2)
              << " % (paper: < 0.5% on its tasks; our test sets are "
                 "200 samples -> 0.5% = 1 sample)\n"
              << "(series written to fig14_wavelength_accuracy.csv)\n";
    return 0;
}
