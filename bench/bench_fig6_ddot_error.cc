/**
 * @file
 * Fig. 6 reproduction: Monte-Carlo optical simulation of random
 * length-12 dot products on the DDot engine with the paper's noise
 * settings (magnitude std 0.03, phase std 2 degrees, WDM dispersion),
 * in 4-bit and 8-bit precision. The paper reports mean errors of
 * 2.6% (4-bit) and 3.4% (8-bit) from Lumerical INTERCONNECT; here the
 * transfer-matrix simulation (our Lumerical substitute) provides the
 * same statistics.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "core/ddot.hh"
#include "util/quantize.hh"
#include "util/stats.hh"

int
main()
{
    using namespace lt;
    using namespace lt::core;

    printBanner(std::cout,
                "Fig. 6: random length-12 dot-product error on DDot");

    constexpr int kTrials = 20000;
    constexpr size_t kLen = 12;

    Table table({"precision", "mean err [%]", "p50 [%]", "p95 [%]",
                 "max [%]", "paper [%]"});
    for (int bits : {4, 8}) {
        DDot ddot(kLen, NoiseConfig::paperDefault());
        Rng rng(0xF16'6000 + bits);
        SampleSet err;
        for (int t = 0; t < kTrials; ++t) {
            auto x = rng.uniformVector(kLen);
            auto y = rng.uniformVector(kLen);
            for (auto &v : x)
                v = quantizeSymmetricUnit(v, bits);
            for (auto &v : y)
                v = quantizeSymmetricUnit(v, bits);
            double exact = DDot::idealDot(x, y);
            double optic = ddot.fieldSimDot(x, y, rng);
            // Normalized by the dot-product length, in percent (the
            // paper's normalization for a length-12 product).
            err.add(std::abs(optic - exact) /
                    static_cast<double>(kLen) * 100.0);
        }
        double paper = bits == 4 ? 2.6 : 3.4;
        table.addRow({std::to_string(bits) + "-bit",
                      units::fmtFixed(err.mean(), 2),
                      units::fmtFixed(err.median(), 2),
                      units::fmtFixed(err.percentile(0.95), 2),
                      units::fmtFixed(err.percentile(1.0), 2),
                      units::fmtFixed(paper, 1)});
    }
    table.print(std::cout);
    std::cout << "\nShape check: error grows with precision (quantization"
                 " no longer masks analog noise),\nas the paper reports"
                 " (2.6% @ 4-bit vs 3.4% @ 8-bit).\n";
    return 0;
}
