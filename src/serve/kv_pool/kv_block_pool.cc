#include "serve/kv_pool/kv_block_pool.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hh"

namespace lt {
namespace serve {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

KvBlockPool::KvBlockPool(const nn::TransformerClassifier &model,
                         nn::GemmBackend &backend,
                         const nn::QuantConfig &quant,
                         const KvPoolConfig &cfg)
    : model_(model),
      backend_(backend),
      quant_(quant),
      cfg_(cfg),
      layers_(model.depth()),
      block_bytes_(cfg.block_tokens * 2 * model.config().dim *
                   sizeof(double))
{
    if (cfg_.block_tokens == 0)
        throw std::invalid_argument(
            "KvBlockPool: block_tokens must be positive");
    if (cfg_.num_blocks == 0)
        throw std::invalid_argument(
            "KvBlockPool: num_blocks must be positive (0 means "
            "paging is disabled — don't construct a pool)");
    if (layers_ == 0)
        throw std::invalid_argument(
            "KvBlockPool: model has no layers");

    // Hand out low ids first (pop_back), purely cosmetic in traces.
    free_ids_.reserve(cfg_.num_blocks);
    for (size_t i = cfg_.num_blocks; i > 0; --i)
        free_ids_.push_back(static_cast<BlockId>(i - 1));
}

size_t
KvBlockPool::blocksForTokens(size_t tokens) const
{
    if (tokens == 0)
        return 0;
    return layers_ * ceilDiv(tokens, cfg_.block_tokens);
}

bool
KvBlockPool::fitsEver(size_t prompt_tokens, size_t prefix_tokens,
                      size_t max_new_tokens) const
{
    if (prefix_tokens >= prompt_tokens && prompt_tokens > 0)
        return false;
    // Worst-case context: the whole prompt plus every generated token
    // except the last (which is returned before it is ever cached...
    // conservatively count it anyway: the session caches each decoded
    // token, so the final context is prompt + max_new - 1 ingested
    // tokens — but an admission reserves prompt + max_new to keep the
    // arithmetic obviously safe).
    const size_t tail_tokens =
        prompt_tokens - prefix_tokens + max_new_tokens;
    const size_t need =
        blocksForTokens(tail_tokens) + blocksForTokens(prefix_tokens);
    return need <= cfg_.num_blocks;
}

KvBlockPool::PrefixEntry *
KvBlockPool::findEntryLocked(uint64_t key,
                             const std::vector<int> &tokens)
{
    for (PrefixEntry &e : entries_)
        if (e.key == key && e.tokens == tokens)
            return &e;
    return nullptr;
}

size_t
KvBlockPool::evictableBlocksLocked(const PrefixEntry *keep) const
{
    size_t n = 0;
    for (const PrefixEntry &e : entries_)
        if (e.refs == 0 && &e != keep)
            n += e.blocks.size();
    return n;
}

bool
KvBlockPool::canAdmit(const std::vector<int> &prompt,
                      size_t prefix_tokens,
                      size_t max_new_tokens) const
{
    if (prefix_tokens >= prompt.size())
        return false;

    std::lock_guard<std::mutex> lock(mu_);
    const size_t tail_tokens =
        prompt.size() - prefix_tokens + max_new_tokens;
    size_t need = blocksForTokens(tail_tokens);

    const PrefixEntry *hit = nullptr;
    if (prefix_tokens > 0) {
        const std::vector<int> prefix(
            prompt.begin(),
            prompt.begin() + static_cast<std::ptrdiff_t>(prefix_tokens));
        hit = const_cast<KvBlockPool *>(this)->findEntryLocked(
            nn::hashPrefixTokens(prefix), prefix);
        if (!hit)
            need += blocksForTokens(prefix_tokens);
    }
    // A cache hit pins the entry before any eviction runs (admit bumps
    // refs first), so it must never be counted evictable here.
    return need <= freeBudgetLocked() + evictableBlocksLocked(hit);
}

bool
KvBlockPool::ensureFreeLocked(size_t need)
{
    if (need <= freeBudgetLocked())
        return true;
    // Evict idle prefixes strictly LRU (oldest last_use first) until
    // the budget covers the request.
    while (need > freeBudgetLocked()) {
        PrefixEntry *victim = nullptr;
        for (PrefixEntry &e : entries_)
            if (e.refs == 0 &&
                (!victim || e.last_use < victim->last_use))
                victim = &e;
        if (!victim)
            return false;
        obs::traceInstant(
            "pool/evict", obs::kNoRequest, "blocks",
            static_cast<int64_t>(victim->blocks.size()),
            "prefix_tokens",
            static_cast<int64_t>(victim->tokens.size()));
        recycleBlocksLocked(victim->blocks);
        counters_.evictions += 1;
        entries_.erase(entries_.begin() + (victim - entries_.data()));
    }
    return true;
}

void
KvBlockPool::allocBlocksLocked(std::vector<BlockId> &out, size_t count)
{
    // Physical ids only exist for resident blocks; reservations are
    // pure budget arithmetic until noteContext materializes them.
    for (size_t i = 0; i < count; ++i) {
        out.push_back(free_ids_.back());
        free_ids_.pop_back();
    }
}

void
KvBlockPool::recycleBlocksLocked(std::vector<BlockId> &blocks)
{
    for (BlockId id : blocks)
        free_ids_.push_back(id);
    committed_ -= blocks.size();
    resident_ -= blocks.size();
    blocks.clear();
}

void
KvBlockPool::bumpPeaksLocked()
{
    counters_.peak_used_blocks =
        std::max(counters_.peak_used_blocks, committed_);
    counters_.peak_resident_blocks =
        std::max(counters_.peak_resident_blocks, resident_);
    counters_.peak_resident_bytes =
        std::max(counters_.peak_resident_bytes,
                 resident_ * block_bytes_);
    counters_.peak_shared_blocks =
        std::max(counters_.peak_shared_blocks, sharedBlocksLocked());
}

size_t
KvBlockPool::sharedBlocksLocked() const
{
    size_t n = 0;
    for (const PrefixEntry &e : entries_)
        if (e.refs >= 2)
            n += e.blocks.size();
    return n;
}

KvBlockPool::Admission
KvBlockPool::admit(const std::vector<int> &prompt, size_t prefix_tokens,
                   size_t max_new_tokens)
{
    if (prompt.empty())
        throw std::invalid_argument("KvBlockPool::admit: empty prompt");
    if (prefix_tokens >= prompt.size())
        throw std::invalid_argument(
            "KvBlockPool::admit: shared prefix of " +
            std::to_string(prefix_tokens) +
            " tokens must leave at least one suffix token of the " +
            std::to_string(prompt.size()) + "-token prompt");

    obs::TraceScope span("pool/admit", obs::kNoRequest,
                         "prompt_tokens",
                         static_cast<int64_t>(prompt.size()),
                         "prefix_tokens",
                         static_cast<int64_t>(prefix_tokens));

    std::unique_lock<std::mutex> lock(mu_);

    Admission adm;
    const size_t tail_tokens =
        prompt.size() - prefix_tokens + max_new_tokens;
    const size_t need_tail = blocksForTokens(tail_tokens);

    if (prefix_tokens > 0) {
        std::vector<int> prefix(
            prompt.begin(),
            prompt.begin() + static_cast<std::ptrdiff_t>(prefix_tokens));
        const uint64_t key = nn::hashPrefixTokens(prefix);
        PrefixEntry *entry = findEntryLocked(key, prefix);
        if (entry) {
            // Pin the hit BEFORE any eviction below: a just-hit idle
            // entry must never become its own request's victim.
            entry->refs += 1;
            entry->last_use = ++lru_clock_;
            counters_.prefix_hits += 1;
            span.setArg(2, "prefix_hit", 1);
            adm.prefix = entry->data;
        } else {
            const size_t need_prefix = blocksForTokens(prefix_tokens);
            if (!ensureFreeLocked(need_prefix + need_tail))
                throw std::logic_error(
                    "KvBlockPool::admit without a true canAdmit: "
                    "prefix + tail reservation exceeds the budget");
            counters_.prefix_misses += 1;
            span.setArg(2, "prefix_hit", 0);
            if (ever_seen_.count(key)) {
                counters_.recomputes += 1;
                obs::traceInstant(
                    "pool/recompute", obs::kNoRequest,
                    "prefix_tokens",
                    static_cast<int64_t>(prefix_tokens));
            }
            ever_seen_.insert(key);

            // Compute the shareable K/V under the lock: admission is
            // single-consumer, and a half-registered entry must not be
            // observable. Content-addressed, so bit-equal to what any
            // solo run (or a post-eviction recompute) produces.
            std::shared_ptr<const nn::KvPrefix> data =
                nn::InferenceSession::buildKvPrefix(model_, backend_,
                                                    quant_, prefix);
            PrefixEntry fresh;
            fresh.key = key;
            fresh.tokens = std::move(prefix);
            fresh.data = data;
            allocBlocksLocked(fresh.blocks, need_prefix);
            committed_ += need_prefix;
            resident_ += need_prefix;
            fresh.refs = 1;
            fresh.last_use = ++lru_clock_;
            entries_.push_back(std::move(fresh));
            adm.prefix = std::move(data);
        }
    }

    if (!ensureFreeLocked(need_tail)) {
        // Roll back the prefix ref so a caller that swallows the
        // logic_error doesn't leak a pin.
        if (adm.prefix)
            dropPrefixRefLocked(adm);
        throw std::logic_error(
            "KvBlockPool::admit without a true canAdmit: tail "
            "reservation exceeds the budget");
    }
    adm.table.layers_ = layers_;
    adm.table.prefix_tokens_ = prefix_tokens;
    adm.table.reserved_blocks_ = need_tail;
    committed_ += need_tail;
    bumpPeaksLocked();
    return adm;
}

void
KvBlockPool::noteContext(BlockTable &table, size_t context_tokens)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (context_tokens < table.prefix_tokens_)
        throw std::logic_error(
            "KvBlockPool::noteContext: context shorter than the "
            "shared prefix");
    const size_t tail = context_tokens - table.prefix_tokens_;
    if (tail < table.tail_tokens_)
        throw std::logic_error(
            "KvBlockPool::noteContext: context shrank");
    const size_t want =
        layers_ * ceilDiv(tail, cfg_.block_tokens);
    if (want > table.reserved_blocks_)
        throw std::logic_error(
            "KvBlockPool::noteContext: context of " +
            std::to_string(context_tokens) +
            " tokens outgrew the admission reservation of " +
            std::to_string(table.reserved_blocks_) + " blocks");
    const size_t have = table.blocks_.size();
    if (want > have) {
        // Materialize within the reservation: these blocks were
        // already committed at admission, so they never touch the
        // free budget — only the resident gauge moves.
        allocBlocksLocked(table.blocks_, want - have);
        resident_ += want - have;
        obs::traceInstant("pool/materialize", obs::kNoRequest,
                          "blocks",
                          static_cast<int64_t>(want - have));
    }
    table.tail_tokens_ = tail;
    bumpPeaksLocked();
}

void
KvBlockPool::release(Admission &admission)
{
    std::unique_lock<std::mutex> lock(mu_);
    BlockTable &table = admission.table;
    if (table.reserved_blocks_ > 0 || admission.prefix)
        obs::traceInstant(
            "pool/release", obs::kNoRequest, "resident_blocks",
            static_cast<int64_t>(table.blocks_.size()),
            "reserved_blocks",
            static_cast<int64_t>(table.reserved_blocks_));
    if (table.reserved_blocks_ > 0) {
        // Return physical ids of materialized blocks, then refund the
        // still-unmaterialized remainder of the reservation.
        const size_t resident = table.blocks_.size();
        for (BlockId id : table.blocks_)
            free_ids_.push_back(id);
        table.blocks_.clear();
        resident_ -= resident;
        committed_ -= table.reserved_blocks_;
        table.reserved_blocks_ = 0;
        table.tail_tokens_ = 0;
    }
    if (admission.prefix)
        dropPrefixRefLocked(admission);
}

void
KvBlockPool::dropPrefixRefLocked(Admission &admission)
{
    // Find the entry by identity of the shared data (an evicted key
    // may have been recomputed into a NEW entry while this request
    // still mapped the old data — identity, not key, disambiguates).
    for (PrefixEntry &e : entries_) {
        if (e.data == admission.prefix) {
            if (e.refs == 0)
                throw std::logic_error(
                    "KvBlockPool: releasing a prefix with zero refs");
            e.refs -= 1;
            e.last_use = ++lru_clock_;
            admission.prefix.reset();
            return;
        }
    }
    // Entry gone: impossible today (mapped entries are never evicted),
    // but dropping the reference is still the right cleanup.
    admission.prefix.reset();
}

KvPoolStats
KvBlockPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    KvPoolStats s = counters_;
    s.total_blocks = cfg_.num_blocks;
    s.used_blocks = committed_;
    s.free_blocks = cfg_.num_blocks - committed_;
    s.resident_blocks = resident_;
    s.shared_blocks = sharedBlocksLocked();
    s.prefix_entries = entries_.size();
    s.block_bytes = block_bytes_;
    s.resident_bytes = resident_ * block_bytes_;
    return s;
}

} // namespace serve
} // namespace lt
