/**
 * @file
 * BlockTable: one request's map from its logical K/V token range to
 * the physical pool blocks backing it.
 *
 * A table is created by KvBlockPool::admit with a *reservation* (the
 * worst-case tail of the request: suffix prompt + generation budget,
 * in blocks across all layers) and materializes physical blocks
 * lazily as the context actually grows (KvBlockPool::noteContext) —
 * resident KV therefore scales with tokens used, not with
 * max_tokens × concurrency. The shared prompt prefix, if any, is NOT
 * in the table: those blocks belong to the pool's refcounted prefix
 * entry the request maps copy-on-write.
 *
 * Only the pool mutates a table (friend); requests just carry it.
 */

#ifndef LT_SERVE_KV_POOL_BLOCK_TABLE_HH
#define LT_SERVE_KV_POOL_BLOCK_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lt {
namespace serve {

/** Physical block id inside one KvBlockPool (dense, 0-based). */
using BlockId = uint32_t;

/** Per-request logical-to-physical block mapping. */
class BlockTable
{
  public:
    /** Whether admit() reserved anything into this table. */
    bool mapped() const { return reserved_blocks_ > 0; }

    /** Blocks debited from the pool budget at admission. */
    size_t reservedBlocks() const { return reserved_blocks_; }

    /** Blocks materialized so far (<= reservedBlocks()). */
    size_t residentBlocks() const { return blocks_.size(); }

    /** Tail tokens (beyond the shared prefix) noted so far. */
    size_t tailTokens() const { return tail_tokens_; }

    /** Shared-prefix tokens preceding this table's range. */
    size_t prefixTokens() const { return prefix_tokens_; }

    /** Physical ids, layer-major (ceil(tail/B) per layer). */
    const std::vector<BlockId> &blocks() const { return blocks_; }

  private:
    friend class KvBlockPool;

    size_t layers_ = 0;
    size_t prefix_tokens_ = 0;
    size_t reserved_blocks_ = 0;
    size_t tail_tokens_ = 0;
    std::vector<BlockId> blocks_;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_KV_POOL_BLOCK_TABLE_HH
