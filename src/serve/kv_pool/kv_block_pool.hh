/**
 * @file
 * KvBlockPool — the fixed-budget paged KV-cache memory manager of the
 * serve layer.
 *
 * The pool owns a fixed number of page-sized token blocks (one block =
 * block_tokens tokens of one layer's K+V, all heads) and three things
 * built on them:
 *
 *  - per-request BlockTables: admission reserves the request's
 *    worst-case tail (suffix prompt + generation budget) against the
 *    budget, and blocks materialize lazily as the context grows — so
 *    resident KV bytes track tokens actually cached, not
 *    max_tokens × concurrency (the dense-reserve model this replaces);
 *
 *  - a prefix-sharing index: requests naming a shared prompt prefix
 *    (hash over its token ids) map one refcounted, immutable
 *    nn::KvPrefix copy-on-write — a system prompt served to N users is
 *    computed and encoded ONCE (prefix_hits counts the N-1 reuses);
 *
 *  - LRU eviction with recompute-on-readmission: a prefix whose last
 *    request released it stays cached (idle) until admission pressure
 *    evicts it, and a later request for the same tokens recomputes it
 *    — bit-identically, because prefixes are content-addressed pure
 *    functions (see nn::KvPrefix). Blocks mapped by any live request
 *    (refs > 0) are never evicted.
 *
 * Budget discipline: admission is the only gate. canAdmit() answers
 * whether a request fits free + evictable-idle blocks right now (the
 * scheduler defers it FIFO otherwise); fitsEver() answers whether it
 * could fit an empty pool (submit-time std::invalid_argument
 * otherwise). Because the worst-case tail is reserved up front,
 * mid-decode exhaustion is impossible by construction.
 *
 * Threading: admit/noteContext/release are single-consumer (the
 * scheduler tick thread); stats() may be called from any thread.
 */

#ifndef LT_SERVE_KV_POOL_KV_BLOCK_POOL_HH
#define LT_SERVE_KV_POOL_KV_BLOCK_POOL_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "nn/inference_session.hh"
#include "serve/kv_pool/block_table.hh"
#include "serve/kv_pool/kv_pool_stats.hh"

namespace lt {
namespace serve {

/** Fixed-budget block pool with prefix sharing and LRU eviction. */
class KvBlockPool
{
  public:
    /**
     * @param model shared decoder (layer count / dim size the block
     *        geometry derives from; prefix computation runs on it)
     * @param backend engine prefixes are computed and encoded on
     * @param quant operand quantization of every request
     * @param cfg block size + budget; throws std::invalid_argument
     *        when block_tokens or num_blocks is zero
     */
    KvBlockPool(const nn::TransformerClassifier &model,
                nn::GemmBackend &backend, const nn::QuantConfig &quant,
                const KvPoolConfig &cfg);

    const KvPoolConfig &config() const { return cfg_; }
    size_t blockTokens() const { return cfg_.block_tokens; }
    size_t totalBlocks() const { return cfg_.num_blocks; }

    /** Dense K+V payload bytes one block holds (one layer, all heads). */
    size_t blockBytes() const { return block_bytes_; }

    /** Blocks (across ALL layers) a context of `tokens` tokens needs. */
    size_t blocksForTokens(size_t tokens) const;

    /**
     * What one admission handed out: the shared prefix mapping (null
     * when the request shares nothing) plus the request's own block
     * table. Pass back to release() when the request completes or
     * expires.
     */
    struct Admission
    {
        std::shared_ptr<const nn::KvPrefix> prefix;
        BlockTable table;
    };

    /**
     * Could this request EVER be admitted — worst-case tail plus a
     * cold prefix against the whole budget? False means submit must
     * reject (std::invalid_argument), not queue: no amount of
     * eviction frees enough blocks.
     */
    bool fitsEver(size_t prompt_tokens, size_t prefix_tokens,
                  size_t max_new_tokens) const;

    /**
     * Can this request be admitted NOW: free blocks plus evictable
     * idle prefixes cover its tail reservation (and its prefix, when
     * not already cached). The scheduler stops admitting — FIFO order
     * is preserved, nothing is dropped — while this is false.
     */
    bool canAdmit(const std::vector<int> &prompt,
                  size_t prefix_tokens, size_t max_new_tokens) const;

    /**
     * Admit one request: acquire (hit) or compute (miss) its shared
     * prefix, evicting idle prefixes LRU-first as needed, and reserve
     * its worst-case tail. Must follow a true canAdmit() on the same
     * consumer thread; throws std::logic_error if the budget cannot
     * honor the reservation (a scheduler bug, not load).
     */
    Admission admit(const std::vector<int> &prompt,
                    size_t prefix_tokens, size_t max_new_tokens);

    /**
     * Record the request's context length after prefill / each decode
     * step: materializes tail blocks (within the admission
     * reservation) so resident accounting tracks real token growth.
     */
    void noteContext(BlockTable &table, size_t context_tokens);

    /**
     * Return an admission's blocks to the pool and drop its prefix
     * reference. A prefix whose refcount reaches zero becomes an idle
     * LRU candidate but keeps its blocks until evicted — the warm
     * cache a returning prompt hits.
     */
    void release(Admission &admission);

    /** Snapshot counters + gauges (thread-safe). */
    KvPoolStats stats() const;

  private:
    /** One cached shared prefix and the blocks pinned under it. */
    struct PrefixEntry
    {
        uint64_t key = 0;         ///< hashPrefixTokens(tokens)
        std::vector<int> tokens;  ///< exact ids (collision guard)
        std::shared_ptr<const nn::KvPrefix> data;
        std::vector<BlockId> blocks;
        size_t refs = 0;
        uint64_t last_use = 0;    ///< LRU clock at last acquire/release
    };

    size_t freeBudgetLocked() const { return cfg_.num_blocks - committed_; }
    void dropPrefixRefLocked(Admission &admission);
    PrefixEntry *findEntryLocked(uint64_t key,
                                 const std::vector<int> &tokens);
    size_t evictableBlocksLocked(const PrefixEntry *keep) const;
    bool ensureFreeLocked(size_t need);
    void allocBlocksLocked(std::vector<BlockId> &out, size_t count);
    void recycleBlocksLocked(std::vector<BlockId> &blocks);
    void bumpPeaksLocked();
    size_t sharedBlocksLocked() const;

    const nn::TransformerClassifier &model_;
    nn::GemmBackend &backend_;
    nn::QuantConfig quant_;
    KvPoolConfig cfg_;
    size_t layers_;
    size_t block_bytes_;

    mutable std::mutex mu_;
    std::vector<BlockId> free_ids_;
    size_t committed_ = 0; ///< reservations + resident prefix blocks
    size_t resident_ = 0;  ///< materialized blocks (<= committed_)
    std::vector<PrefixEntry> entries_;
    std::unordered_set<uint64_t> ever_seen_; ///< recompute detection
    uint64_t lru_clock_ = 0;
    KvPoolStats counters_; ///< hits/misses/evictions/recomputes/peaks
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_KV_POOL_KV_BLOCK_POOL_HH
