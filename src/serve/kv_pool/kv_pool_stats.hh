/**
 * @file
 * Configuration and observability types of the paged KV-cache pool —
 * dependency-free so serve::Metrics can embed the stats without
 * pulling the pool (and the nn layer) into its header.
 */

#ifndef LT_SERVE_KV_POOL_KV_POOL_STATS_HH
#define LT_SERVE_KV_POOL_KV_POOL_STATS_HH

#include <cstddef>

namespace lt {
namespace serve {

/** Paged KV memory knobs (ServerConfig::kv_pool). */
struct KvPoolConfig
{
    /**
     * Tokens per block. Aligned to the DPTC core's k-tile (the packed
     * encoded-operand capacity stride EncodedOperand::reserve already
     * quantizes to), so a block boundary is also a packed-tile
     * boundary and block-sized appends never split a tile.
     */
    size_t block_tokens = 16;

    /**
     * Fixed block budget of the whole server — THE memory model: one
     * block holds block_tokens tokens of one layer's K+V (all heads).
     * 0 disables paging entirely; the serve layer then reserves the
     * historical max_tokens per session (dense-reserve mode), and
     * every paged code path is bypassed byte-for-byte.
     */
    size_t num_blocks = 0;

    bool enabled() const { return num_blocks > 0; }
};

/**
 * Point-in-time pool counters, embedded in serve::MetricsSnapshot and
 * the bench JSON snapshots. "Used" counts committed blocks — admission
 * reservations plus resident prefix entries — the quantity admission
 * gates on; "resident" counts blocks actually materialized by tokens,
 * the quantity KV bytes scale with (strictly ≤ used).
 */
struct KvPoolStats
{
    size_t total_blocks = 0;
    size_t free_blocks = 0;     ///< total - used (admission headroom)
    size_t used_blocks = 0;     ///< committed: reservations + prefixes
    size_t resident_blocks = 0; ///< materialized by actual tokens
    size_t shared_blocks = 0;   ///< blocks of prefixes with refs >= 2

    size_t prefix_entries = 0;  ///< prefixes currently cached
    size_t prefix_hits = 0;     ///< admissions served a cached prefix
    size_t prefix_misses = 0;   ///< admissions that computed one
    size_t evictions = 0;       ///< idle prefixes LRU-evicted
    size_t recomputes = 0;      ///< misses whose key was evicted before

    size_t block_bytes = 0;     ///< dense K+V payload bytes per block
    size_t resident_bytes = 0;  ///< resident_blocks * block_bytes

    size_t peak_used_blocks = 0;
    size_t peak_resident_blocks = 0;
    size_t peak_resident_bytes = 0;
    size_t peak_shared_blocks = 0;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_KV_POOL_KV_POOL_STATS_HH
