/**
 * @file
 * serve::Metrics — the serving-quality sink of the continuous-batching
 * layer: queue depth, time-to-first-token, per-token latency
 * percentiles, per-tick phase time, throughput, and (via the server)
 * engine work counters.
 *
 * The scheduler records samples as requests move through admission,
 * prefill, and fused decode; snapshot() folds them into the numbers a
 * serving dashboard would plot. Latency distributions live in bounded
 * log-scaled obs::Histograms (~2 KB each), so a long-running server's
 * metrics memory is constant no matter how many tokens it serves.
 * Thread-safe: clients may snapshot while the scheduler ticks.
 */

#ifndef LT_SERVE_METRICS_HH
#define LT_SERVE_METRICS_HH

#include <chrono>
#include <cstddef>
#include <mutex>

#include "obs/histogram.hh"
#include "serve/kv_pool/kv_pool_stats.hh"

namespace lt {
namespace serve {

/** Point-in-time summary of a server's activity. */
struct MetricsSnapshot
{
    // Request lifecycle counters.
    size_t submitted = 0;
    size_t completed = 0;
    size_t expired = 0;   ///< deadline misses (subset of completed)

    /**
     * Robustness counters. Rejections never entered the queue
     * (backpressure at max_queue_depth; an already-expired deadline
     * at submit). A request failure is a future delivered by
     * exception (per-request fault containment) — the serving thread
     * survived it. Step retries are serve-level bounded re-executions
     * after a transient nn::EngineFaultError (session replay + fused
     * step re-run), before any request is failed.
     */
    size_t rejected_queue_full = 0;
    size_t rejected_expired = 0;
    size_t request_failures = 0;
    size_t engine_step_retries = 0;

    size_t prefills = 0;
    size_t decode_ticks = 0;  ///< fused batched decode steps executed
    size_t tokens_generated = 0;

    /**
     * Chunked-prefill work (zero when
     * SchedulerConfig::prefill_chunk_tokens is 0): chunks executed and
     * prompt positions they covered (shared-prefix positions count —
     * they are covered by the first chunk, for free). prefills still
     * counts whole prompts completed, so chunks / prefills is the mean
     * chunks-per-prompt.
     */
    size_t prefill_chunks = 0;
    size_t prefill_chunk_tokens = 0;

    // Gauges at snapshot time.
    size_t queue_depth = 0;
    size_t active_requests = 0;
    size_t peak_active_requests = 0; ///< high-water concurrency

    // Latency distributions (milliseconds), estimated from the
    // bounded histograms below (log-bucket resolution ~±4.4%).
    double ttft_p50_ms = 0.0;
    double ttft_p99_ms = 0.0;
    double token_p50_ms = 0.0;
    double token_p99_ms = 0.0;

    /** Generated tokens per second of serving wall clock. */
    double tokens_per_s = 0.0;

    /**
     * Where scheduler tick time went, cumulative milliseconds since
     * start. Disjoint phases: admission bookkeeping (queue pops,
     * session construction), whole-prompt prefill, fused batched
     * decode, and KV-pool work (admit/release/noteContext) — together
     * they account for (almost) all time spent inside tick(). This is
     * the serving analogue of the paper's Fig. 10 stage breakdown and
     * the baseline the chunked-prefill scheduler work is judged
     * against.
     */
    double tick_admission_ms = 0.0;
    double tick_prefill_ms = 0.0;
    double tick_decode_ms = 0.0;
    double tick_pool_ms = 0.0;

    /**
     * Trace events lost to ring-buffer wraparound in the installed
     * obs::TraceRecorder (0 when tracing is off). Overlaid by
     * Server::metrics(); nonzero means the exported trace is missing
     * its oldest events and the ring capacity should be raised.
     */
    size_t trace_dropped_events = 0;

    // Engine work, filled by Server::metrics() from backend stats.
    size_t engine_macs = 0;
    size_t engine_gemm_calls = 0;
    size_t engine_batch_calls = 0;
    /** Stacked-row fused dispatches (block-diagonal GEMM fusion): N
     *  decode rows against one weight plan in ONE engine call. */
    size_t engine_stacked_calls = 0;

    /**
     * Encoded-operand cache effectiveness, split by operand class.
     * Weight side: hits are weight GEMMs served from a pre-encoded
     * plan, misses are plan (re)encodes — a healthy steady-state
     * decode server shows misses frozen at one-per-(layer-weight,
     * width) while hits grow with every tick. KV side: hits are
     * attention products dispatched on cached encoded K/V operands
     * (grown by O(k) packed appends), misses are K/V cache encodes
     * (prefill seeding and beta-growth requantizations) — a dead KV
     * cache shows zero hits here as loudly as a dead weight cache
     * does on the weight counters.
     */
    size_t engine_weight_encode_hits = 0;
    size_t engine_weight_encode_misses = 0;
    size_t engine_kv_encode_hits = 0;
    size_t engine_kv_encode_misses = 0;

    /**
     * Gaussian noise draws the DPTC kernels took while serving — the
     * noise pipeline's load metric (see GemmStats::gaussian_draws).
     */
    size_t engine_gaussian_draws = 0;

    /**
     * Engine fault-tolerance counters (GemmStats ABFT layer),
     * overlaid by Server::metrics(): checksum-detected faulty tiles,
     * tile re-executions on other replicas, and replicas quarantined.
     * All zero while fault injection/verification is disabled.
     */
    size_t engine_faults_detected = 0;
    size_t engine_fault_retries = 0;
    size_t engine_fault_quarantines = 0;

    /**
     * Full latency distributions (bounded log-scaled histograms) for
     * callers that want more than the p50/p99 scalars: arbitrary
     * percentiles, counts, exact min/max/mean.
     */
    obs::Histogram ttft_hist;
    obs::Histogram token_hist;

    /**
     * Paged KV-cache pool state, overlaid by Server::metrics() when
     * ServerConfig::kv_pool is enabled (all-zero otherwise): blocks
     * in use / free / resident / shared, prefix hit-miss-eviction-
     * recompute counters, and resident KV bytes — the memory story of
     * the serve layer.
     */
    KvPoolStats kv_pool;
};

/** Thread-safe metrics accumulator. */
class Metrics
{
  public:
    void onSubmit();
    void onRejectedQueueFull();
    void onRejectedExpired();
    void onRequestFailure();
    void onStepRetry();
    void onPrefill(double ttft_ms);
    /** One prefill chunk covering `tokens` prompt positions. */
    void onPrefillChunk(size_t tokens);
    void onDecodeTick(size_t batch_size, double tick_ms);
    void recordTokenLatency(double ms);
    void onComplete(bool expired);
    void setGauges(size_t queue_depth, size_t active_requests);

    /**
     * Accumulate one tick's disjoint phase times (milliseconds); the
     * scheduler calls this once per tick with the wall time spent in
     * admission bookkeeping, prefill, fused decode, and KV-pool work.
     */
    void onTickPhases(double admission_ms, double prefill_ms,
                      double decode_ms, double pool_ms);

    /**
     * Fold the samples into a snapshot. Percentiles use the
     * nearest-rank method over the bounded histograms; tokens_per_s
     * divides generated tokens by the wall time between the first
     * submission and the last recorded activity. Engine counters are
     * zero here — the Server overlays them from its backend.
     */
    MetricsSnapshot snapshot() const;

  private:
    mutable std::mutex mu_;
    MetricsSnapshot counts_; ///< counters + gauges (latencies unused)
    obs::Histogram ttft_ms_;
    obs::Histogram token_ms_;
    bool saw_activity_ = false;
    std::chrono::steady_clock::time_point first_activity_;
    std::chrono::steady_clock::time_point last_activity_;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_METRICS_HH
