/**
 * @file
 * serve::Server — the continuous-batching front door.
 *
 *   nn::TransformerClassifier model(cfg);          // causal LM
 *   nn::ExecutionEngine engine(dptc_cfg, mode);    // shared backend
 *   serve::Server server(model, engine);
 *   server.start();                                // serving thread
 *   auto fut = server.submit({prompt, 32});
 *   RequestResult r = fut.get();
 *   server.drain();
 *
 * Requests flow  submit() -> RequestQueue -> BatchScheduler::tick()
 * (admit + prefill, then ONE fused nn::BatchedDecoder step for all
 * active sessions) -> promise fulfilment. The engine therefore sees
 * O(layers) gemmBatch dispatches per decode step however many
 * requests are in flight — the whole point of the serve layer.
 *
 * Determinism contract: with a fixed QuantConfig and a fixed
 * request_id, the tokens and logits a request gets from the server
 * are bit-identical to running it alone on a fresh InferenceSession
 * against a same-config backend — at any concurrency (asserted for
 * 1..16 in tests/test_serve.cc on the noisy engine).
 *
 * Validation: submit() rejects malformed requests up front with
 * std::invalid_argument (empty prompt, zero max_new_tokens, a prompt
 * that leaves no positional-table room for generation, out-of-vocab
 * ids) and throws std::runtime_error once drained/stopped.
 */

#ifndef LT_SERVE_SERVER_HH
#define LT_SERVE_SERVER_HH

#include <atomic>
#include <future>
#include <memory>
#include <thread>

#include "nn/transformer.hh"
#include "serve/batch_scheduler.hh"
#include "serve/metrics.hh"
#include "serve/request_queue.hh"

namespace lt {
namespace serve {

/** Server-level configuration. */
struct ServerConfig
{
    SchedulerConfig scheduler{};

    /** Operand quantization applied to every request's session. */
    nn::QuantConfig quant = nn::QuantConfig::disabled();

    /** Idle poll period of the serving thread. */
    std::chrono::milliseconds idle_poll{1};

    /**
     * Paged KV-cache memory (serve/kv_pool). Disabled by default
     * (num_blocks = 0): every session reserves its own max_tokens of
     * contiguous K/V, the historical dense-reserve model, and the
     * paged code paths are bypassed entirely. Enabled, admission
     * gates on the fixed block budget, resident KV bytes track the
     * tokens actually cached, and requests may share prompt prefixes
     * copy-on-write (Request::shared_prefix_tokens).
     */
    KvPoolConfig kv_pool{};

    /**
     * Backpressure: submit() throws QueueSaturatedError (see
     * serve/errors.hh) while the queue already holds this many
     * requests, and the rejection is counted in Metrics. 0 (default)
     * = unbounded, the historical behaviour.
     */
    size_t max_queue_depth = 0;
};

/** Owns the queue, the scheduler, and (optionally) a serving thread. */
class Server
{
  public:
    /**
     * @param model causal sequence model with num_classes ==
     *        vocab_size (greedy decode feeds argmax logits back as
     *        token ids); InferenceSession's model requirements apply.
     *        Throws std::invalid_argument otherwise.
     * @param backend shared GEMM engine; all sessions multiplex onto
     *        it via their own noise lanes.
     */
    Server(const nn::TransformerClassifier &model,
           nn::GemmBackend &backend, ServerConfig cfg = {});

    /** Drains (bounded: no new work is accepted) and joins. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Validate and enqueue a request; the future resolves when it
     * completes (or expires). Thread-safe.
     */
    std::future<RequestResult> submit(Request request);

    /** Spawn the serving thread (idempotent). */
    void start();

    /**
     * Stop accepting, serve everything still queued or active, then
     * join the serving thread. After drain() every submit() throws.
     * Works in manual mode too (runs the remaining ticks inline).
     */
    void drain();

    /**
     * Manual pump for tests and single-threaded benches: tick until
     * queue and batch are empty. Returns the number of ticks run.
     * Must not race start() — use one mode per server.
     */
    size_t runUntilIdle();

    /** Snapshot serving metrics + engine work counters. */
    MetricsSnapshot metrics() const;

    size_t queueDepth() const { return queue_.depth(); }
    size_t activeRequests() const { return scheduler_.activeRequests(); }
    const nn::TransformerClassifier &model() const { return model_; }

    /** The paged KV pool, or nullptr in dense-reserve mode. */
    const KvBlockPool *kvPool() const { return pool_.get(); }

  private:
    /** submit() after trace bookkeeping: validation + enqueue. */
    std::future<RequestResult> submitValidated(Request request);
    void serveLoop();

    const nn::TransformerClassifier &model_;
    nn::GemmBackend &backend_;
    ServerConfig cfg_;
    Metrics metrics_;
    RequestQueue queue_;
    std::unique_ptr<KvBlockPool> pool_; ///< before scheduler_: it borrows
    BatchScheduler scheduler_;

    std::thread worker_;
    std::atomic<bool> running_{false};
    std::atomic<bool> drain_requested_{false};
    std::atomic<uint64_t> next_id_{0};
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_SERVER_HH
