#include "batch_scheduler.hh"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "nn/gemm_backend.hh"
#include "nn/tensor_ops.hh"
#include "obs/trace.hh"

namespace lt {
namespace serve {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

BatchScheduler::BatchScheduler(const nn::TransformerClassifier &model,
                               nn::GemmBackend &backend,
                               const nn::QuantConfig &quant,
                               const SchedulerConfig &cfg,
                               Metrics *metrics, KvBlockPool *pool)
    : model_(model), backend_(backend), quant_(quant), cfg_(cfg),
      metrics_(metrics), pool_(pool)
{
}

size_t
BatchScheduler::tick(RequestQueue &queue)
{
    // (a) Retire requests whose deadline passed mid-generation: they
    // complete now with their partial output.
    auto now = std::chrono::steady_clock::now();
    for (Active &a : active_)
        if (a.pending.deadline && now > *a.pending.deadline)
            finish(a, /*expired=*/true);
    retireFinished();

    // (b) Admission + prefill of waiting requests into free slots.
    // The admission *phase* excludes the time spent inside prefill
    // and the KV pool so the four phase figures stay disjoint.
    double prefill_ms = 0.0;
    double pool_ms = 0.0;
    auto a0 = std::chrono::steady_clock::now();
    {
        obs::TraceScope span("tick/admission", obs::kNoRequest,
                             "waiting",
                             static_cast<int64_t>(queue.depth()));
        admit(queue, prefill_ms, pool_ms);
    }
    double admission_ms =
        std::max(0.0, msSince(a0, std::chrono::steady_clock::now()) -
                          prefill_ms - pool_ms);

    // (b') Chunked mode: one prefill chunk per warming request, so a
    // long prompt never stalls the in-flight decoders for more than
    // one chunk per tick.
    if (cfg_.prefill_chunk_tokens > 0) {
        prefillChunkTick(prefill_ms, pool_ms);
        retireFinished();
    }

    // (c) One fused decode step for every active request.
    double decode_ms = decodeTick();
    retireFinished();

    if (metrics_)
        metrics_->onTickPhases(admission_ms, prefill_ms, decode_ms,
                               pool_ms);

    active_count_.store(active_.size(), std::memory_order_relaxed);
    if (metrics_)
        metrics_->setGauges(queue.depth(), active_.size());
    obs::traceCounter("queue_depth",
                      static_cast<int64_t>(queue.depth()));
    obs::traceCounter("active_requests",
                      static_cast<int64_t>(active_.size()));
    return active_.size();
}

void
BatchScheduler::admit(RequestQueue &queue, double &prefill_ms,
                      double &pool_ms)
{
    while (active_.size() < cfg_.max_batch) {
        auto now = std::chrono::steady_clock::now();
        // Pop the queue's most urgent request (priority / EDF /
        // bypass-aging order) only when it is servable this tick: an
        // expired request always pops (it retires without touching
        // the engine or the pool), otherwise the pool budget — free
        // blocks plus evictable idle prefixes — must cover its
        // worst-case reservation. An unservable candidate waits in
        // place and nothing overtakes it.
        std::optional<PendingRequest> taken =
            queue.takeIf([&](const PendingRequest &p) {
                if (p.deadline && now > *p.deadline)
                    return true;
                if (!pool_)
                    return true;
                return pool_->canAdmit(p.request.prompt,
                                       p.request.shared_prefix_tokens,
                                       p.request.max_new_tokens);
            });
        if (!taken)
            break;
        Active a;
        a.pending = std::move(*taken);

        // A request that spent its whole deadline in the queue expires
        // without touching the engine (load-shedding under backlog).
        if (a.pending.deadline && now > *a.pending.deadline) {
            finish(a, /*expired=*/true);
            continue;
        }

        obs::traceInstant(
            "req/admitted", a.pending.id, "prompt_tokens",
            static_cast<int64_t>(a.pending.request.prompt.size()),
            "max_new",
            static_cast<int64_t>(a.pending.request.max_new_tokens));

        // Per-request containment: anything thrown between admission
        // and the first token fails ONLY this request (its future
        // carries the exception, its pool blocks go back) — the
        // scheduler and every other request keep running. Transient
        // engine faults additionally get a bounded retry first.
        Matrix logits;
        const bool chunked = cfg_.prefill_chunk_tokens > 0;
        try {
            nn::SessionKvPlan plan;
            if (pool_) {
                // Reserve the worst-case tail (and acquire or compute
                // the shared prefix) up front, then prefill under a
                // plan that right-sizes the session's K/V backing to
                // the request's own context budget — resident bytes
                // track real tokens.
                auto p0 = std::chrono::steady_clock::now();
                a.admission = pool_->admit(
                    a.pending.request.prompt,
                    a.pending.request.shared_prefix_tokens,
                    a.pending.request.max_new_tokens);
                pool_ms +=
                    msSince(p0, std::chrono::steady_clock::now());
                plan.prefix = a.admission.prefix;
                plan.reserve_tokens =
                    a.pending.request.prompt.size() +
                    a.pending.request.max_new_tokens - 1;
            }
            a.plan = plan;
            if (chunked) {
                // Chunked mode defers ALL prompt ingestion to
                // prefillChunkTick: admission just builds the empty
                // session so the request holds a batch slot.
                a.session = std::make_unique<nn::InferenceSession>(
                    model_, backend_, quant_, a.pending.id);
                active_.push_back(std::move(a));
                continue;
            }
            size_t attempt = 0;
            while (true) {
                // A fresh session every attempt: a prefill that died
                // mid-layer left partially written K/V behind.
                a.session = std::make_unique<nn::InferenceSession>(
                    model_, backend_, quant_, a.pending.id);
                try {
                    obs::TraceScope span(
                        "req/prefill", a.pending.id, "prompt_tokens",
                        static_cast<int64_t>(
                            a.pending.request.prompt.size()));
                    auto f0 = std::chrono::steady_clock::now();
                    logits =
                        pool_ ? a.session->prefill(
                                    a.pending.request.prompt, plan)
                              : a.session->prefill(
                                    a.pending.request.prompt);
                    prefill_ms +=
                        msSince(f0, std::chrono::steady_clock::now());
                    break;
                } catch (const nn::EngineFaultError &) {
                    if (attempt >= cfg_.max_step_retries)
                        throw;
                    ++attempt;
                    if (metrics_)
                        metrics_->onStepRetry();
                    obs::traceInstant(
                        "fault/step_retry", a.pending.id, "attempt",
                        static_cast<int64_t>(attempt));
                    std::this_thread::sleep_for(
                        cfg_.step_retry_backoff);
                }
            }
            if (pool_) {
                auto p0 = std::chrono::steady_clock::now();
                pool_->noteContext(a.admission.table,
                                   a.session->contextLen());
                pool_ms +=
                    msSince(p0, std::chrono::steady_clock::now());
            }
        } catch (...) {
            failRequest(a, std::current_exception());
            continue;
        }
        a.last_token = std::chrono::steady_clock::now();
        a.ttft_ms = msSince(a.pending.enqueued, a.last_token);
        int first = static_cast<int>(nn::argmaxRow(logits, 0));
        a.generated.push_back(first);
        if (a.pending.request.record_logits)
            a.step_logits.push_back(std::move(logits));
        if (metrics_)
            metrics_->onPrefill(a.ttft_ms);

        if (a.generated.size() >= a.pending.request.max_new_tokens) {
            finish(a, /*expired=*/false);
            continue;
        }
        active_.push_back(std::move(a));
    }
}

void
BatchScheduler::prefillChunkTick(double &prefill_ms, double &pool_ms)
{
    const size_t chunk = cfg_.prefill_chunk_tokens;
    for (Active &a : active_) {
        if (!a.session || !a.warming())
            continue;
        const std::vector<int> &prompt = a.pending.request.prompt;
        const size_t n = prompt.size();
        const size_t begin = a.session->contextLen();
        // The first chunk covers the mapped prefix for free, plus one
        // chunk of real tokens; later chunks resume at contextLen().
        const size_t prefix =
            a.plan.prefix ? a.plan.prefix->length() : 0;
        const size_t end =
            std::min(n, (begin == 0 ? prefix : begin) + chunk);
        Matrix logits;
        try {
            obs::TraceScope span("tick/prefill_chunk", a.pending.id,
                                 "begin", static_cast<int64_t>(begin),
                                 "end", static_cast<int64_t>(end));
            size_t attempt = 0;
            while (true) {
                try {
                    auto f0 = std::chrono::steady_clock::now();
                    // A fresh (or rebuilt) session re-ingests from 0
                    // under the request's K/V plan; any chunking of
                    // the same prompt is bit-identical, so the retry
                    // that widens the chunk to [0, end) changes
                    // nothing but the schedule.
                    logits =
                        a.session->contextLen() == 0
                            ? a.session->prefillChunk(prompt, 0, end,
                                                      a.plan)
                            : a.session->prefillChunk(
                                  prompt, a.session->contextLen(),
                                  end);
                    prefill_ms += msSince(
                        f0, std::chrono::steady_clock::now());
                    break;
                } catch (const nn::EngineFaultError &) {
                    if (attempt >= cfg_.max_step_retries)
                        throw;
                    ++attempt;
                    if (metrics_)
                        metrics_->onStepRetry();
                    obs::traceInstant(
                        "fault/step_retry", a.pending.id, "attempt",
                        static_cast<int64_t>(attempt));
                    // A chunk that died mid-layer left partially
                    // written K/V behind: rebuild the session.
                    a.session =
                        std::make_unique<nn::InferenceSession>(
                            model_, backend_, quant_, a.pending.id);
                    std::this_thread::sleep_for(
                        cfg_.step_retry_backoff);
                }
            }
            if (pool_) {
                auto p0 = std::chrono::steady_clock::now();
                pool_->noteContext(a.admission.table,
                                   a.session->contextLen());
                pool_ms +=
                    msSince(p0, std::chrono::steady_clock::now());
            }
        } catch (...) {
            failRequest(a, std::current_exception());
            continue;
        }
        if (metrics_)
            metrics_->onPrefillChunk(end - begin);
        if (end < n)
            continue; // still warming; next chunk next tick
        // Prompt fully ingested: this chunk's logits are the
        // first-token logits (same bookkeeping as a whole prefill).
        a.last_token = std::chrono::steady_clock::now();
        a.ttft_ms = msSince(a.pending.enqueued, a.last_token);
        a.generated.push_back(
            static_cast<int>(nn::argmaxRow(logits, 0)));
        if (a.pending.request.record_logits)
            a.step_logits.push_back(std::move(logits));
        if (metrics_)
            metrics_->onPrefill(a.ttft_ms);
        if (a.generated.size() >= a.pending.request.max_new_tokens)
            finish(a, /*expired=*/false);
    }
}

double
BatchScheduler::decodeTick()
{
    // Warming requests (chunked prefill still ingesting their
    // prompts) hold slots but have no token to feed yet — the fused
    // step runs over the ready subset.
    std::vector<size_t> ready;
    ready.reserve(active_.size());
    for (size_t i = 0; i < active_.size(); ++i)
        if (active_[i].session && !active_[i].warming())
            ready.push_back(i);
    if (ready.empty())
        return 0.0;
    obs::TraceScope span("tick/decode", obs::kNoRequest, "batch",
                         static_cast<int64_t>(ready.size()));
    auto d0 = std::chrono::steady_clock::now();
    std::vector<nn::InferenceSession *> sessions;
    std::vector<int> feed;
    sessions.reserve(ready.size());
    feed.reserve(ready.size());
    for (size_t i : ready) {
        sessions.push_back(active_[i].session.get());
        feed.push_back(active_[i].generated.back());
    }

    // The fused step either advances EVERY session or none: a throw
    // mid-step leaves K/V partially mutated across the batch, so each
    // retry first replays all sessions from their prompts (cheap at
    // serve scale, and bit-identical thanks to the per-request noise
    // lanes) before re-running the step. Transient engine faults get
    // cfg_.max_step_retries such replays; anything else — or retry
    // exhaustion — fails the whole in-flight batch on its futures
    // while the scheduler itself keeps serving.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<Matrix> logits;
    size_t attempt = 0;
    while (true) {
        try {
            if (attempt > 0) {
                replayActiveSessions();
                sessions.clear();
                for (size_t i : ready)
                    sessions.push_back(active_[i].session.get());
            }
            logits = nn::BatchedDecoder::step(sessions, feed);
            break;
        } catch (const nn::EngineFaultError &) {
            if (attempt >= cfg_.max_step_retries) {
                failActiveBatch(std::current_exception());
                return msSince(d0, std::chrono::steady_clock::now());
            }
            ++attempt;
            if (metrics_)
                metrics_->onStepRetry();
            obs::traceInstant(
                "fault/step_retry", obs::kNoRequest, "attempt",
                static_cast<int64_t>(attempt), "batch",
                static_cast<int64_t>(ready.size()));
            std::this_thread::sleep_for(cfg_.step_retry_backoff);
        } catch (...) {
            failActiveBatch(std::current_exception());
            return msSince(d0, std::chrono::steady_clock::now());
        }
    }
    auto t1 = std::chrono::steady_clock::now();

    for (size_t k = 0; k < ready.size(); ++k) {
        Active &a = active_[ready[k]];
        a.generated.push_back(
            static_cast<int>(nn::argmaxRow(logits[k], 0)));
        if (a.pending.request.record_logits)
            a.step_logits.push_back(std::move(logits[k]));
        double gap = msSince(a.last_token, t1);
        a.token_max_gap_ms = std::max(a.token_max_gap_ms, gap);
        if (metrics_)
            metrics_->recordTokenLatency(gap);
        obs::traceInstant(
            "req/token", a.pending.id, "batch",
            static_cast<int64_t>(ready.size()), "tokens",
            static_cast<int64_t>(a.generated.size()));
        a.last_token = t1;
        if (pool_)
            // The step re-ingested one token: materialize any block
            // boundary the context just crossed (always within the
            // admission reservation, so this cannot fail under load).
            pool_->noteContext(a.admission.table,
                               a.session->contextLen());
        if (a.generated.size() >= a.pending.request.max_new_tokens)
            finish(a, /*expired=*/false);
    }
    if (metrics_)
        metrics_->onDecodeTick(ready.size(),
                               msSince(t0, t1));
    return msSince(d0, std::chrono::steady_clock::now());
}

void
BatchScheduler::finish(Active &request, bool expired)
{
    RequestResult result;
    result.request_id = request.pending.id;
    result.generated = std::move(request.generated);
    result.step_logits = std::move(request.step_logits);
    result.expired = expired;
    result.total_ms = msSince(request.pending.enqueued,
                              std::chrono::steady_clock::now());
    // An expired-in-queue request never produced a first token; its
    // TTFT is the (missed) total.
    result.ttft_ms =
        result.generated.empty() ? result.total_ms : request.ttft_ms;
    result.token_max_gap_ms = request.token_max_gap_ms;
    obs::traceInstant(
        expired ? "req/expired" : "req/complete", request.pending.id,
        "tokens", static_cast<int64_t>(result.generated.size()));
    request.session.reset();
    request.generated.clear();
    request.step_logits.clear();
    if (pool_)
        // Return the blocks and drop the prefix ref (a no-op for the
        // empty admission of an expired-in-queue request). The prefix
        // itself stays cached, idle, until LRU eviction needs it.
        pool_->release(request.admission);
    request.pending.promise.set_value(std::move(result));
    if (metrics_)
        metrics_->onComplete(expired);
}

void
BatchScheduler::failRequest(Active &request, std::exception_ptr err)
{
    obs::traceInstant(
        "req/failed", request.pending.id, "tokens",
        static_cast<int64_t>(request.generated.size()));
    request.session.reset();
    request.generated.clear();
    request.step_logits.clear();
    if (pool_)
        // Same release path as finish(): blocks return to the free
        // list, the prefix ref drops (no-op for a default-constructed
        // admission that never made it through pool_->admit).
        pool_->release(request.admission);
    request.pending.promise.set_exception(std::move(err));
    if (metrics_)
        metrics_->onRequestFailure();
}

void
BatchScheduler::failActiveBatch(std::exception_ptr err)
{
    for (Active &a : active_)
        if (a.session)
            failRequest(a, err);
    // retireFinished() in tick() sweeps the now-session-less entries.
}

void
BatchScheduler::replayActiveSessions()
{
    obs::traceInstant("fault/replay", obs::kNoRequest, "batch",
                      static_cast<int64_t>(active_.size()));
    for (Active &a : active_) {
        // Warming requests weren't in the failed fused step and their
        // partial K/V is intact — prefillChunkTick owns their retry.
        if (!a.session || a.warming())
            continue;
        a.session = std::make_unique<nn::InferenceSession>(
            model_, backend_, quant_, a.pending.id);
        // Re-ingest the prompt under the request's stored K/V plan,
        // through the same path it originally took (whole-sequence vs
        // chunked ingestion are different quantization schedules).
        if (cfg_.prefill_chunk_tokens > 0)
            a.session->prefillChunk(a.pending.request.prompt, 0,
                                    a.pending.request.prompt.size(),
                                    a.plan);
        else
            a.session->prefill(a.pending.request.prompt, a.plan);
        // Re-ingest every generated token except the last: that one
        // is the feed of the step being retried. The replayed logits
        // are discarded — identical to the ones already recorded.
        for (size_t i = 0; i + 1 < a.generated.size(); ++i)
            a.session->decodeStep(a.generated[i]);
        if (pool_)
            pool_->noteContext(a.admission.table,
                               a.session->contextLen());
    }
}

void
BatchScheduler::retireFinished()
{
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](const Active &a) {
                                     return a.session == nullptr;
                                 }),
                  active_.end());
}

} // namespace serve
} // namespace lt
