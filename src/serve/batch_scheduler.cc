#include "batch_scheduler.hh"

#include <algorithm>
#include <utility>

#include "nn/tensor_ops.hh"

namespace lt {
namespace serve {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

BatchScheduler::BatchScheduler(const nn::TransformerClassifier &model,
                               nn::GemmBackend &backend,
                               const nn::QuantConfig &quant,
                               const SchedulerConfig &cfg,
                               Metrics *metrics)
    : model_(model), backend_(backend), quant_(quant), cfg_(cfg),
      metrics_(metrics)
{
}

size_t
BatchScheduler::tick(RequestQueue &queue)
{
    // (a) Retire requests whose deadline passed mid-generation: they
    // complete now with their partial output.
    auto now = std::chrono::steady_clock::now();
    for (Active &a : active_)
        if (a.pending.deadline && now > *a.pending.deadline)
            finish(a, /*expired=*/true);
    retireFinished();

    // (b) Admission + prefill of waiting requests into free slots.
    admit(queue);

    // (c) One fused decode step for every active request.
    decodeTick();
    retireFinished();

    active_count_.store(active_.size(), std::memory_order_relaxed);
    if (metrics_)
        metrics_->setGauges(queue.depth(), active_.size());
    return active_.size();
}

void
BatchScheduler::admit(RequestQueue &queue)
{
    if (active_.size() >= cfg_.max_batch)
        return;
    std::vector<PendingRequest> taken =
        queue.take(cfg_.max_batch - active_.size());
    for (PendingRequest &pending : taken) {
        Active a;
        a.pending = std::move(pending);

        // A request that spent its whole deadline in the queue expires
        // without touching the engine (load-shedding under backlog).
        auto now = std::chrono::steady_clock::now();
        if (a.pending.deadline && now > *a.pending.deadline) {
            finish(a, /*expired=*/true);
            continue;
        }

        a.session = std::make_unique<nn::InferenceSession>(
            model_, backend_, quant_, a.pending.id);
        Matrix logits = a.session->prefill(a.pending.request.prompt);
        a.last_token = std::chrono::steady_clock::now();
        a.ttft_ms = msSince(a.pending.enqueued, a.last_token);
        int first = static_cast<int>(nn::argmaxRow(logits, 0));
        a.generated.push_back(first);
        if (a.pending.request.record_logits)
            a.step_logits.push_back(std::move(logits));
        if (metrics_)
            metrics_->onPrefill(a.ttft_ms);

        if (a.generated.size() >= a.pending.request.max_new_tokens) {
            finish(a, /*expired=*/false);
            continue;
        }
        active_.push_back(std::move(a));
    }
}

void
BatchScheduler::decodeTick()
{
    if (active_.empty())
        return;
    std::vector<nn::InferenceSession *> sessions;
    std::vector<int> feed;
    sessions.reserve(active_.size());
    feed.reserve(active_.size());
    for (Active &a : active_) {
        sessions.push_back(a.session.get());
        feed.push_back(a.generated.back());
    }

    auto t0 = std::chrono::steady_clock::now();
    std::vector<Matrix> logits =
        nn::BatchedDecoder::step(sessions, feed);
    auto t1 = std::chrono::steady_clock::now();

    for (size_t i = 0; i < active_.size(); ++i) {
        Active &a = active_[i];
        a.generated.push_back(
            static_cast<int>(nn::argmaxRow(logits[i], 0)));
        if (a.pending.request.record_logits)
            a.step_logits.push_back(std::move(logits[i]));
        if (metrics_)
            metrics_->recordTokenLatency(msSince(a.last_token, t1));
        a.last_token = t1;
        if (a.generated.size() >= a.pending.request.max_new_tokens)
            finish(a, /*expired=*/false);
    }
    if (metrics_)
        metrics_->onDecodeTick(active_.size(),
                               msSince(t0, t1));
}

void
BatchScheduler::finish(Active &request, bool expired)
{
    RequestResult result;
    result.request_id = request.pending.id;
    result.generated = std::move(request.generated);
    result.step_logits = std::move(request.step_logits);
    result.expired = expired;
    result.total_ms = msSince(request.pending.enqueued,
                              std::chrono::steady_clock::now());
    // An expired-in-queue request never produced a first token; its
    // TTFT is the (missed) total.
    result.ttft_ms =
        result.generated.empty() ? result.total_ms : request.ttft_ms;
    request.session.reset();
    request.generated.clear();
    request.step_logits.clear();
    request.pending.promise.set_value(std::move(result));
    if (metrics_)
        metrics_->onComplete(expired);
}

void
BatchScheduler::retireFinished()
{
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](const Active &a) {
                                     return a.session == nullptr;
                                 }),
                  active_.end());
}

} // namespace serve
} // namespace lt
