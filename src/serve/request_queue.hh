/**
 * @file
 * Thread-safe request queue between submitting clients and the
 * scheduler tick.
 *
 * Clients call submit() from any thread and hold the returned future;
 * the scheduler (one consumer) drains with take() each tick and
 * blocks in waitForWork() while idle. close() flips the queue into a
 * rejecting state for the server's drain/shutdown path — submissions
 * after close throw, which is the "submit after drain" misuse
 * contract tests/test_serve.cc pins down.
 */

#ifndef LT_SERVE_REQUEST_QUEUE_HH
#define LT_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.hh"

namespace lt {
namespace serve {

/** A queued request with its promise and submission timestamps. */
struct PendingRequest
{
    Request request;
    uint64_t id = 0;
    std::promise<RequestResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /** Absolute deadline (enqueued + Request::deadline), if any. */
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /** Times a later-queued request was popped over this one —
     *  takeIf's starvation-freedom counter (bypass aging). */
    size_t bypassed = 0;
};

/** MPSC queue: many submitting threads, one scheduler consumer. */
class RequestQueue
{
  public:
    /**
     * Enqueue a request (id pre-assigned by the server) and return
     * the future its result will arrive on. Throws std::runtime_error
     * once the queue is closed, and DeadlineExpiredError (see
     * serve/errors.hh) when the request's relative deadline is
     * already non-positive — expire-on-submit, so a dead-on-arrival
     * request never occupies a queue slot.
     */
    std::future<RequestResult> submit(Request request, uint64_t id);

    /** Pop up to max_requests in FIFO order (non-blocking). */
    std::vector<PendingRequest> take(size_t max_requests);

    /**
     * After this many bypasses a waiting entry is served next
     * regardless of class — the aging bound that makes the
     * priority/EDF order below starvation-free.
     */
    static constexpr size_t kStarvationBypassLimit = 8;

    /**
     * Pop the most urgent request iff `pred` accepts it; nullopt when
     * the queue is empty or that candidate is rejected.
     *
     * Urgency order: any entry bypassed kStarvationBypassLimit times
     * wins outright (oldest such first); otherwise the highest
     * Request::priority class wins, ties broken earliest-deadline-
     * first within the class (a finite deadline beats none), and
     * remaining ties stay FIFO. With all-default requests (priority
     * 0, no deadlines) this degenerates to the historical strict
     * FIFO. A pred-rejected candidate is never overtaken — the paged
     * scheduler's no-starvation admission order (a big request
     * waiting for pool blocks keeps its turn) — so urgency reorders
     * only who gets the NEXT free slot. Popping a non-front entry
     * bumps the `bypassed` count of everything queued before it.
     */
    std::optional<PendingRequest>
    takeIf(const std::function<bool(const PendingRequest &)> &pred);

    /**
     * Block until the queue is non-empty, closed, or `timeout`
     * elapsed. Returns true when work is available.
     */
    bool waitForWork(std::chrono::milliseconds timeout);

    /** Reject all future submits (drained queues stay drained). */
    void close();

    bool closed() const;
    size_t depth() const;
    bool empty() const { return depth() == 0; }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<PendingRequest> queue_;
    bool closed_ = false;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_REQUEST_QUEUE_HH
