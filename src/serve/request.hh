/**
 * @file
 * Request/result types of the continuous-batching serve layer.
 *
 * A request is a prompt plus a generation budget (and optionally a
 * deadline); the server answers with the greedy-decoded tokens and,
 * when asked, every step's logits — the artifact the bit-identity
 * contract is asserted on (serve/server.hh).
 */

#ifndef LT_SERVE_REQUEST_HH
#define LT_SERVE_REQUEST_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/linalg.hh"

namespace lt {
namespace serve {

/** One generation request submitted to the server. */
struct Request
{
    /** Prompt token ids (must be non-empty and in-vocabulary). */
    std::vector<int> prompt;

    /**
     * Tokens to generate (> 0). The first comes from the prefill
     * logits; each later one from a decode step that re-ingests its
     * predecessor — so the request consumes
     * prompt.size() + max_new_tokens - 1 positions of the model's
     * positional table (validated at submit).
     */
    size_t max_new_tokens = 0;

    /**
     * Optional completion deadline, relative to submission. A request
     * that misses it completes early with RequestResult::expired set
     * and whatever tokens it generated so far.
     */
    std::optional<std::chrono::milliseconds> deadline;

    /**
     * Keep every step's logits in the result ([0] = prefill, then one
     * per decode step; generated[k] = argmax of step_logits[k]). Off
     * by default — it is the bit-identity test hook, not a serving
     * feature.
     */
    bool record_logits = false;

    /**
     * Noise lane of the request (see InferenceSession). Defaults to a
     * server-assigned sequential id; fix it to make a server run
     * reproducible against a solo InferenceSession with the same id.
     */
    std::optional<uint64_t> request_id;

    /**
     * Scheduling priority class (higher = more urgent). The queue
     * serves the highest priority class first; within a class,
     * requests with the earliest deadline go first (EDF) and
     * deadline-less requests fall back to FIFO order. Bypass aging
     * bounds starvation: an entry overtaken too many times is served
     * next regardless of class (RequestQueue::kStarvationBypassLimit).
     * 0 (the default) keeps the historical all-FIFO behavior when no
     * request sets a priority or a deadline.
     */
    int priority = 0;

    /**
     * Leading prompt tokens shared with other requests (a system
     * prompt, few-shot header, ...). On a paged server
     * (ServerConfig::kv_pool) those positions are served from ONE
     * refcounted, copy-on-write KV prefix — computed once, mapped by
     * every request naming the same tokens — without changing the
     * request's logits (the prefix is content-addressed; see
     * nn::KvPrefix). Must leave at least one suffix token. 0 (the
     * default) shares nothing; nonzero requires paging and throws
     * std::invalid_argument at submit otherwise.
     */
    size_t shared_prefix_tokens = 0;
};

/** What the server promises back for one request. */
struct RequestResult
{
    uint64_t request_id = 0;

    /** Greedy-decoded tokens, at most max_new_tokens. */
    std::vector<int> generated;

    /** Per-step logits when Request::record_logits was set. */
    std::vector<Matrix> step_logits;

    /** Deadline missed: `generated` holds the partial output. */
    bool expired = false;

    /** Submit -> first generated token (prefill complete). */
    double ttft_ms = 0.0;

    /** Submit -> completion. */
    double total_ms = 0.0;

    /**
     * Largest gap between consecutive generated tokens (ms) — the
     * stall a whole-prompt prefill of a co-scheduled request injects
     * into this request's token stream, and the figure chunked
     * prefill (SchedulerConfig::prefill_chunk_tokens) bounds. 0 for
     * requests that generated fewer than two tokens.
     */
    double token_max_gap_ms = 0.0;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_REQUEST_HH
