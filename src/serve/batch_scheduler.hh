/**
 * @file
 * BatchScheduler: the continuous-batching loop of the serve layer.
 *
 * Every tick() (a) retires requests that missed their deadline,
 * (b) admits waiting requests into free slots and runs their prefills
 * — or, with SchedulerConfig::prefill_chunk_tokens set, runs at most
 * ONE prefill chunk per warming request (chunked prefill, the token-
 * tail killer) — then (c) advances every ready session one decode
 * step together through nn::BatchedDecoder, so the engine sees one
 * stacked-row fused dispatch per projection per layer (O(layers)
 * dispatches) no matter how many requests are in flight. Requests
 * join and leave the running batch between any two ticks; the batch
 * never drains to admit new work (continuous batching, not static
 * batching).
 *
 * Decoding is greedy: token 0 is the argmax of the prefill logits,
 * token k the argmax of the decode step that re-ingested token k-1.
 * Because every session decodes on its own request_id noise lane, the
 * tokens (and logits) of a request are bit-identical to a solo
 * InferenceSession run — whatever the concurrency mix was.
 *
 * Single-consumer: tick() must be called from one thread at a time
 * (serve::Server owns that thread; tests may tick manually).
 *
 * Observability: when an obs::TraceRecorder is installed, every tick
 * emits "tick/admission", per-chunk "tick/prefill_chunk" (chunked
 * mode), and "tick/decode" phase spans, per-request
 * lifecycle events ("req/admitted", "req/prefill" span, "req/token"
 * per decode tick, "req/complete" / "req/expired"), and queue-depth /
 * active-request counter tracks. Independent of tracing, the tick's
 * disjoint phase wall times (admission bookkeeping, prefill, fused
 * decode, KV-pool work) accumulate into Metrics::onTickPhases.
 */

#ifndef LT_SERVE_BATCH_SCHEDULER_HH
#define LT_SERVE_BATCH_SCHEDULER_HH

#include <atomic>
#include <memory>
#include <vector>

#include "nn/batched_decoder.hh"
#include "serve/kv_pool/kv_block_pool.hh"
#include "serve/metrics.hh"
#include "serve/request_queue.hh"

namespace lt {
namespace serve {

/** Continuous-batching knobs. */
struct SchedulerConfig
{
    /**
     * Max concurrent decode sessions (the admission bound). Mirrors
     * the batch the accelerator's SRAM/HBM budget would sustain;
     * bench_serve_throughput sweeps it 1..16.
     */
    size_t max_batch = 8;

    /**
     * Bounded retries after a transient nn::EngineFaultError during
     * prefill or a fused decode step, before the affected request(s)
     * are failed on their futures. Each decode-step retry replays the
     * active sessions from their prompts (deterministic noise lanes
     * make the replay bit-identical), so the re-run starts from
     * consistent KV state even when the failed step died mid-layer.
     */
    size_t max_step_retries = 2;

    /** Backoff between engine-fault retries (gives quarantine and
     *  transient upsets time to clear). */
    std::chrono::milliseconds step_retry_backoff{1};

    /**
     * Chunked prefill: ingest each admitted prompt in chunks of at
     * most this many tokens, ONE chunk per request per tick, between
     * admission and the fused decode step — so a new prompt never
     * stalls the in-flight decoders for more than one chunk (the
     * token-p99 tail killer at high concurrency). 0 = the historical
     * whole-prompt prefill at admission time.
     *
     * Chunks ingest through the incremental decode path, so a
     * request's logits are bit-identical for ANY chunk size — but
     * chunked ingestion is a different (per-token) quantization
     * schedule than the whole-sequence prefill forward, so solo
     * reference runs must use prefillChunk too (the serve benches
     * do). With a shared prefix the mapped positions are free: the
     * first chunk covers the prefix plus one chunk of real tokens.
     */
    size_t prefill_chunk_tokens = 0;
};

/** Admits, prefills, and lockstep-decodes concurrent requests. */
class BatchScheduler
{
  public:
    /**
     * @param model shared decoder (InferenceSession's requirements)
     * @param backend shared GEMM engine for every session
     * @param quant operand quantization applied to every request
     * @param metrics optional sink (may be nullptr)
     * @param pool optional paged KV pool (may be nullptr = the
     *        historical dense-reserve mode). With a pool, admission
     *        gates on the free-block budget instead of slot count
     *        alone — the queue's most urgent request (priority/EDF
     *        order, see RequestQueue::takeIf) waits without being
     *        overtaken until enough blocks are free or evictable,
     *        prefills run under a right-sized SessionKvPlan, and
     *        completion/expiry releases the request's blocks.
     */
    BatchScheduler(const nn::TransformerClassifier &model,
                   nn::GemmBackend &backend,
                   const nn::QuantConfig &quant,
                   const SchedulerConfig &cfg,
                   Metrics *metrics = nullptr,
                   KvBlockPool *pool = nullptr);

    /**
     * One scheduler tick: expire, admit + prefill, fused decode step,
     * retire finished requests. Returns the number of requests still
     * active afterwards (0 = idle).
     */
    size_t tick(RequestQueue &queue);

    /**
     * Requests in flight as of the last completed tick. Safe to poll
     * from other threads while the serving thread ticks (mid-tick
     * admissions/retirements become visible at tick end).
     */
    size_t
    activeRequests() const
    {
        return active_count_.load(std::memory_order_relaxed);
    }

    const SchedulerConfig &config() const { return cfg_; }

  private:
    /** One admitted request mid-generation. */
    struct Active
    {
        PendingRequest pending;
        std::unique_ptr<nn::InferenceSession> session;
        std::vector<int> generated;
        std::vector<Matrix> step_logits;
        std::chrono::steady_clock::time_point last_token;
        double ttft_ms = 0.0; ///< submit -> prefill completion
        /** Largest gap between consecutive emitted tokens — the
         *  stall metric chunked prefill exists to bound. */
        double token_max_gap_ms = 0.0;
        /** The session's K/V plan (prefix + reservation): chunked
         *  prefill resumes under it, fault replay rebuilds from it. */
        nn::SessionKvPlan plan;
        /** Pool blocks + shared prefix (paged mode only). */
        KvBlockPool::Admission admission;

        /** Still ingesting its prompt (no first token yet): occupies
         *  a batch slot but does not decode. */
        bool warming() const { return generated.empty(); }
    };

    /** Admit + prefill; accumulates prefill / KV-pool wall time into
     *  the out-params for the tick's phase accounting. */
    void admit(RequestQueue &queue, double &prefill_ms,
               double &pool_ms);
    /** One prefill chunk for every warming request (chunked mode).
     *  Chunk wall time lands in prefill_ms — per-chunk, in the tick
     *  it actually ran, not under admission. */
    void prefillChunkTick(double &prefill_ms, double &pool_ms);
    /** One fused decode step; returns its wall time in ms. */
    double decodeTick();
    void finish(Active &request, bool expired);
    void retireFinished();

    /** Fail ONE request: release its pool blocks, deliver `err` on
     *  its future, count it. The server stays alive. */
    void failRequest(Active &request, std::exception_ptr err);
    /** Fail every in-flight request with `err` (decode-step retries
     *  exhausted, or a non-transient batch-wide exception). */
    void failActiveBatch(std::exception_ptr err);
    /** Rebuild every active session from its prompt and replay the
     *  tokens generated so far — bit-identical thanks to per-request
     *  noise lanes — to restore consistent KV state after a decode
     *  step died mid-flight. */
    void replayActiveSessions();

    const nn::TransformerClassifier &model_;
    nn::GemmBackend &backend_;
    nn::QuantConfig quant_;
    SchedulerConfig cfg_;
    Metrics *metrics_;
    KvBlockPool *pool_;
    std::vector<Active> active_;

    /** active_.size() snapshot for cross-thread introspection. */
    std::atomic<size_t> active_count_{0};
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_BATCH_SCHEDULER_HH
