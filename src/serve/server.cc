#include "server.hh"

#include <stdexcept>
#include <string>

#include "obs/trace.hh"
#include "serve/errors.hh"

namespace lt {
namespace serve {

Server::Server(const nn::TransformerClassifier &model,
               nn::GemmBackend &backend, ServerConfig cfg)
    : model_(model), backend_(backend), cfg_(cfg),
      pool_(cfg.kv_pool.enabled()
                ? std::make_unique<KvBlockPool>(model, backend,
                                                cfg.quant, cfg.kv_pool)
                : nullptr),
      scheduler_(model, backend, cfg.quant, cfg.scheduler, &metrics_,
                 pool_.get())
{
    const nn::TransformerConfig &mcfg = model.config();
    if (mcfg.vocab_size == 0 || !mcfg.causal)
        throw std::invalid_argument(
            "serve::Server requires a causal sequence model "
            "(vocab_size > 0, TransformerConfig::causal)");
    if (mcfg.num_classes != mcfg.vocab_size)
        throw std::invalid_argument(
            "serve::Server requires an LM head (num_classes == "
            "vocab_size): greedy decode feeds argmax logits back as "
            "token ids");
    if (cfg_.scheduler.max_batch == 0)
        throw std::invalid_argument(
            "serve::Server: max_batch must be positive");
}

Server::~Server()
{
    try {
        drain();
    } catch (...) {
        // Destructor must not throw; a drain failure here means
        // promises were already broken and futures will surface it.
    }
}

std::future<RequestResult>
Server::submit(Request request)
{
    // Caller-assigned id if any; validation rejections happen before
    // the server assigns one.
    const uint64_t trace_id =
        request.request_id ? *request.request_id : obs::kNoRequest;
    try {
        return submitValidated(std::move(request));
    } catch (const std::invalid_argument &) {
        obs::traceInstant("req/rejected", trace_id);
        throw;
    } catch (const SubmitRejectedError &) {
        // Typed rejections (backpressure, dead-on-arrival deadline);
        // counted by submitValidated, traced uniformly here.
        obs::traceInstant("req/rejected", trace_id);
        throw;
    }
}

std::future<RequestResult>
Server::submitValidated(Request request)
{
    const nn::TransformerConfig &mcfg = model_.config();
    if (request.prompt.empty())
        throw std::invalid_argument(
            "serve::Server::submit: empty prompt");
    if (request.max_new_tokens == 0)
        throw std::invalid_argument(
            "serve::Server::submit: max_new_tokens must be positive "
            "(a request that generates nothing is not a request)");
    // The request consumes prompt + (max_new_tokens - 1) positions:
    // the final token is returned without being re-ingested. A prompt
    // already at max_tokens therefore leaves no room to decode.
    if (request.prompt.size() + request.max_new_tokens - 1 >
        mcfg.max_tokens)
        throw std::invalid_argument(
            "serve::Server::submit: prompt of " +
            std::to_string(request.prompt.size()) + " tokens + " +
            std::to_string(request.max_new_tokens) +
            " generated tokens exceeds the positional table "
            "(max_tokens = " +
            std::to_string(mcfg.max_tokens) + ")");
    for (int t : request.prompt)
        if (t < 0 || static_cast<size_t>(t) >= mcfg.vocab_size)
            throw std::invalid_argument(
                "serve::Server::submit: prompt token " +
                std::to_string(t) + " outside vocabulary of " +
                std::to_string(mcfg.vocab_size));
    if (request.shared_prefix_tokens > 0) {
        if (!pool_)
            throw std::invalid_argument(
                "serve::Server::submit: shared_prefix_tokens requires "
                "paged KV memory (enable ServerConfig::kv_pool)");
        if (request.shared_prefix_tokens >= request.prompt.size())
            throw std::invalid_argument(
                "serve::Server::submit: shared prefix of " +
                std::to_string(request.shared_prefix_tokens) +
                " tokens must leave at least one suffix token of the " +
                std::to_string(request.prompt.size()) +
                "-token prompt");
    }
    // A request whose worst-case footprint exceeds the WHOLE block
    // budget would wedge the FIFO queue forever — reject it now, at
    // submit, rather than let it starve everything behind it.
    if (pool_ && !pool_->fitsEver(request.prompt.size(),
                                  request.shared_prefix_tokens,
                                  request.max_new_tokens))
        throw std::invalid_argument(
            "serve::Server::submit: request needs " +
            std::to_string(pool_->blocksForTokens(
                request.prompt.size() - request.shared_prefix_tokens +
                request.max_new_tokens) +
                pool_->blocksForTokens(request.shared_prefix_tokens)) +
            " KV blocks but the pool only has " +
            std::to_string(pool_->totalBlocks()) +
            " — it can never be admitted");

    // Expire-on-submit: counted here, enforced in RequestQueue::submit
    // as well (direct queue users get the same contract).
    if (request.deadline &&
        *request.deadline <= std::chrono::milliseconds::zero()) {
        metrics_.onRejectedExpired();
        throw DeadlineExpiredError(
            "serve::Server::submit: deadline already expired at "
            "submission");
    }
    // Backpressure: shed load at the front door once the queue is
    // saturated, with a retryable typed error. The depth check is
    // racy across submitters by design — the bound is a watermark,
    // not a hard capacity.
    if (cfg_.max_queue_depth > 0 &&
        queue_.depth() >= cfg_.max_queue_depth) {
        metrics_.onRejectedQueueFull();
        throw QueueSaturatedError(
            "serve::Server::submit: queue saturated (" +
            std::to_string(cfg_.max_queue_depth) +
            " requests waiting) — retry after backoff");
    }

    uint64_t id = request.request_id
                      ? *request.request_id
                      : next_id_.fetch_add(1);
    obs::traceInstant(
        "req/submit", id, "prompt_tokens",
        static_cast<int64_t>(request.prompt.size()), "max_new",
        static_cast<int64_t>(request.max_new_tokens));
    std::future<RequestResult> future =
        queue_.submit(std::move(request), id);
    obs::traceInstant("req/queued", id, "depth",
                      static_cast<int64_t>(queue_.depth()));
    metrics_.onSubmit(); // only requests the queue actually accepted
    return future;
}

void
Server::start()
{
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true))
        return;
    worker_ = std::thread([this] { serveLoop(); });
}

void
Server::serveLoop()
{
    while (true) {
        size_t active = 0;
        try {
            active = scheduler_.tick(queue_);
        } catch (...) {
            // The scheduler contains per-request and per-step
            // failures itself; anything escaping tick() is a bug —
            // but the serving thread must survive it (requests whose
            // promises broke surface the failure on their futures).
            // Back off so a persistent fault cannot spin the loop.
            obs::traceInstant("serve/tick_exception",
                              obs::kNoRequest);
            std::this_thread::sleep_for(cfg_.idle_poll);
            active = scheduler_.activeRequests();
        }
        if (active == 0 && queue_.empty()) {
            if (drain_requested_.load())
                break;
            queue_.waitForWork(cfg_.idle_poll);
        }
    }
}

void
Server::drain()
{
    drain_requested_.store(true);
    queue_.close(); // reject new submits; wake the serving thread
    if (running_.load()) {
        worker_.join();
        running_.store(false);
    } else {
        runUntilIdle();
    }
}

size_t
Server::runUntilIdle()
{
    if (running_.load())
        throw std::logic_error(
            "Server::runUntilIdle while the serving thread runs — "
            "use one pump per server");
    size_t ticks = 0;
    while (scheduler_.tick(queue_) > 0 || !queue_.empty())
        ++ticks;
    return ticks;
}

MetricsSnapshot
Server::metrics() const
{
    MetricsSnapshot snap = metrics_.snapshot();
    const nn::GemmStats &stats = backend_.stats();
    snap.engine_macs = stats.macs.load(std::memory_order_relaxed);
    snap.engine_gemm_calls =
        stats.calls.load(std::memory_order_relaxed);
    snap.engine_batch_calls =
        stats.batch_calls.load(std::memory_order_relaxed);
    snap.engine_stacked_calls =
        stats.stacked_calls.load(std::memory_order_relaxed);
    snap.engine_weight_encode_hits =
        stats.weight_encode_hits.load(std::memory_order_relaxed);
    snap.engine_weight_encode_misses =
        stats.weight_encode_misses.load(std::memory_order_relaxed);
    snap.engine_kv_encode_hits =
        stats.kv_encode_hits.load(std::memory_order_relaxed);
    snap.engine_kv_encode_misses =
        stats.kv_encode_misses.load(std::memory_order_relaxed);
    snap.engine_gaussian_draws =
        stats.gaussian_draws.load(std::memory_order_relaxed);
    snap.engine_faults_detected =
        stats.faults_detected.load(std::memory_order_relaxed);
    snap.engine_fault_retries =
        stats.fault_retries.load(std::memory_order_relaxed);
    snap.engine_fault_quarantines =
        stats.fault_quarantines.load(std::memory_order_relaxed);
    if (pool_)
        snap.kv_pool = pool_->stats();
    if (obs::TraceRecorder *rec = obs::recorder())
        snap.trace_dropped_events = rec->droppedEvents();
    return snap;
}

} // namespace serve
} // namespace lt
