#include "metrics.hh"

#include <algorithm>
#include <cmath>

namespace lt {
namespace serve {

namespace {

/** Nearest-rank percentile of an unsorted sample set. */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = std::ceil(p / 100.0 *
                            static_cast<double>(samples.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

} // namespace

void
Metrics::onSubmit()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto now = std::chrono::steady_clock::now();
    if (!saw_activity_) {
        saw_activity_ = true;
        first_activity_ = now;
    }
    last_activity_ = now;
    counts_.submitted += 1;
}

void
Metrics::onPrefill(double ttft_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.prefills += 1;
    counts_.tokens_generated += 1; // the prefill's argmax token
    ttft_ms_.push_back(ttft_ms);
}

void
Metrics::onDecodeTick(size_t batch_size, double tick_ms)
{
    (void)tick_ms;
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.decode_ticks += 1;
    counts_.tokens_generated += batch_size;
}

void
Metrics::recordTokenLatency(double ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    token_ms_.push_back(ms);
}

void
Metrics::onComplete(bool expired)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.completed += 1;
    if (expired)
        counts_.expired += 1;
}

void
Metrics::setGauges(size_t queue_depth, size_t active_requests)
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.queue_depth = queue_depth;
    counts_.active_requests = active_requests;
    counts_.peak_active_requests =
        std::max(counts_.peak_active_requests, active_requests);
}

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap = counts_;
    snap.ttft_p50_ms = percentile(ttft_ms_, 50.0);
    snap.ttft_p99_ms = percentile(ttft_ms_, 99.0);
    snap.token_p50_ms = percentile(token_ms_, 50.0);
    snap.token_p99_ms = percentile(token_ms_, 99.0);
    if (saw_activity_) {
        double wall_s = std::chrono::duration<double>(last_activity_ -
                                                      first_activity_)
                            .count();
        if (wall_s > 0.0)
            snap.tokens_per_s =
                static_cast<double>(snap.tokens_generated) / wall_s;
    }
    return snap;
}

} // namespace serve
} // namespace lt
