#include "metrics.hh"

#include <algorithm>

namespace lt {
namespace serve {

void
Metrics::onSubmit()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto now = std::chrono::steady_clock::now();
    if (!saw_activity_) {
        saw_activity_ = true;
        first_activity_ = now;
    }
    last_activity_ = now;
    counts_.submitted += 1;
}

void
Metrics::onRejectedQueueFull()
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.rejected_queue_full += 1;
}

void
Metrics::onRejectedExpired()
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.rejected_expired += 1;
}

void
Metrics::onRequestFailure()
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.request_failures += 1;
}

void
Metrics::onStepRetry()
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.engine_step_retries += 1;
}

void
Metrics::onPrefill(double ttft_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.prefills += 1;
    counts_.tokens_generated += 1; // the prefill's argmax token
    ttft_ms_.add(ttft_ms);
}

void
Metrics::onPrefillChunk(size_t tokens)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.prefill_chunks += 1;
    counts_.prefill_chunk_tokens += tokens;
}

void
Metrics::onDecodeTick(size_t batch_size, double tick_ms)
{
    (void)tick_ms;
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.decode_ticks += 1;
    counts_.tokens_generated += batch_size;
}

void
Metrics::recordTokenLatency(double ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    token_ms_.add(ms);
}

void
Metrics::onComplete(bool expired)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ = std::chrono::steady_clock::now();
    counts_.completed += 1;
    if (expired)
        counts_.expired += 1;
}

void
Metrics::setGauges(size_t queue_depth, size_t active_requests)
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.queue_depth = queue_depth;
    counts_.active_requests = active_requests;
    counts_.peak_active_requests =
        std::max(counts_.peak_active_requests, active_requests);
}

void
Metrics::onTickPhases(double admission_ms, double prefill_ms,
                      double decode_ms, double pool_ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    counts_.tick_admission_ms += admission_ms;
    counts_.tick_prefill_ms += prefill_ms;
    counts_.tick_decode_ms += decode_ms;
    counts_.tick_pool_ms += pool_ms;
}

MetricsSnapshot
Metrics::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap = counts_;
    snap.ttft_p50_ms = ttft_ms_.percentile(50.0);
    snap.ttft_p99_ms = ttft_ms_.percentile(99.0);
    snap.token_p50_ms = token_ms_.percentile(50.0);
    snap.token_p99_ms = token_ms_.percentile(99.0);
    snap.ttft_hist = ttft_ms_;
    snap.token_hist = token_ms_;
    if (saw_activity_) {
        double wall_s = std::chrono::duration<double>(last_activity_ -
                                                      first_activity_)
                            .count();
        if (wall_s > 0.0)
            snap.tokens_per_s =
                static_cast<double>(snap.tokens_generated) / wall_s;
    }
    return snap;
}

} // namespace serve
} // namespace lt
