/**
 * @file
 * Typed serve-layer errors.
 *
 * Submit-time rejections get their own exception types so clients can
 * tell backpressure ("slow down, try again") from a hopeless request
 * (std::invalid_argument) and from an already-dead deadline — each is
 * counted separately in serve::Metrics. Both derive from
 * SubmitRejectedError, which Server::submit traces as "req/rejected".
 */

#ifndef LT_SERVE_ERRORS_HH
#define LT_SERVE_ERRORS_HH

#include <stdexcept>
#include <string>

namespace lt {
namespace serve {

/** Base of typed submit-time rejections (queue never saw the request). */
class SubmitRejectedError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * ServerConfig::max_queue_depth reached: the server is saturated and
 * sheds load at the front door. Retry after backoff.
 */
class QueueSaturatedError : public SubmitRejectedError
{
  public:
    using SubmitRejectedError::SubmitRejectedError;
};

/**
 * The request's deadline had already elapsed at submit time (a
 * non-positive relative deadline): it could never complete, so it is
 * rejected immediately instead of occupying a queue slot until the
 * scheduler sheds it.
 */
class DeadlineExpiredError : public SubmitRejectedError
{
  public:
    using SubmitRejectedError::SubmitRejectedError;
};

} // namespace serve
} // namespace lt

#endif // LT_SERVE_ERRORS_HH
