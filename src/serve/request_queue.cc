#include "request_queue.hh"

#include <stdexcept>
#include <utility>

#include "serve/errors.hh"

namespace lt {
namespace serve {

std::future<RequestResult>
RequestQueue::submit(Request request, uint64_t id)
{
    // Expire-on-submit: a non-positive relative deadline can never be
    // met — reject it here instead of letting it occupy a queue slot
    // until the scheduler's tick-time expiry sheds it.
    if (request.deadline &&
        *request.deadline <= std::chrono::milliseconds::zero())
        throw DeadlineExpiredError(
            "RequestQueue::submit: deadline already expired at "
            "submission");

    PendingRequest pending;
    pending.request = std::move(request);
    pending.id = id;
    pending.enqueued = std::chrono::steady_clock::now();
    if (pending.request.deadline)
        pending.deadline = pending.enqueued + *pending.request.deadline;
    std::future<RequestResult> future = pending.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            throw std::runtime_error(
                "RequestQueue::submit after close (the server was "
                "drained or stopped)");
        queue_.push_back(std::move(pending));
    }
    cv_.notify_all();
    return future;
}

std::vector<PendingRequest>
RequestQueue::take(size_t max_requests)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PendingRequest> taken;
    while (!queue_.empty() && taken.size() < max_requests) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return taken;
}

std::optional<PendingRequest>
RequestQueue::takeIf(
    const std::function<bool(const PendingRequest &)> &pred)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty() || !pred(queue_.front()))
        return std::nullopt;
    std::optional<PendingRequest> taken(std::move(queue_.front()));
    queue_.pop_front();
    return taken;
}

bool
RequestQueue::waitForWork(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [&] { return !queue_.empty() || closed_; });
    return !queue_.empty();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

} // namespace serve
} // namespace lt
