#include "request_queue.hh"

#include <stdexcept>
#include <utility>

#include "serve/errors.hh"

namespace lt {
namespace serve {

std::future<RequestResult>
RequestQueue::submit(Request request, uint64_t id)
{
    // Expire-on-submit: a non-positive relative deadline can never be
    // met — reject it here instead of letting it occupy a queue slot
    // until the scheduler's tick-time expiry sheds it.
    if (request.deadline &&
        *request.deadline <= std::chrono::milliseconds::zero())
        throw DeadlineExpiredError(
            "RequestQueue::submit: deadline already expired at "
            "submission");

    PendingRequest pending;
    pending.request = std::move(request);
    pending.id = id;
    pending.enqueued = std::chrono::steady_clock::now();
    if (pending.request.deadline)
        pending.deadline = pending.enqueued + *pending.request.deadline;
    std::future<RequestResult> future = pending.promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_)
            throw std::runtime_error(
                "RequestQueue::submit after close (the server was "
                "drained or stopped)");
        queue_.push_back(std::move(pending));
    }
    cv_.notify_all();
    return future;
}

std::vector<PendingRequest>
RequestQueue::take(size_t max_requests)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PendingRequest> taken;
    while (!queue_.empty() && taken.size() < max_requests) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }
    return taken;
}

std::optional<PendingRequest>
RequestQueue::takeIf(
    const std::function<bool(const PendingRequest &)> &pred)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty())
        return std::nullopt;

    // Starvation aging first: an entry overtaken too many times is
    // the candidate no matter its class (oldest such wins).
    size_t pick = 0;
    bool aged = false;
    for (size_t i = 0; i < queue_.size() && !aged; ++i)
        if (queue_[i].bypassed >= kStarvationBypassLimit) {
            pick = i;
            aged = true;
        }
    if (!aged) {
        // Highest priority class; EDF within the class (finite
        // deadline beats none); FIFO on full ties (the scan keeps the
        // earlier entry unless the later one is strictly better).
        for (size_t i = 1; i < queue_.size(); ++i) {
            const PendingRequest &best = queue_[pick];
            const PendingRequest &cand = queue_[i];
            if (cand.request.priority != best.request.priority) {
                if (cand.request.priority > best.request.priority)
                    pick = i;
                continue;
            }
            if (cand.deadline &&
                (!best.deadline || *cand.deadline < *best.deadline))
                pick = i;
        }
    }

    // A rejected candidate keeps its claim on the next free slot:
    // nothing overtakes it while `pred` (the pool budget) says no.
    if (!pred(queue_[pick]))
        return std::nullopt;
    std::optional<PendingRequest> taken(std::move(queue_[pick]));
    for (size_t i = 0; i < pick; ++i)
        queue_[i].bypassed += 1;
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(pick));
    return taken;
}

bool
RequestQueue::waitForWork(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout,
                 [&] { return !queue_.empty() || closed_; });
    return !queue_.empty();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cv_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
}

size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

} // namespace serve
} // namespace lt
