/**
 * @file
 * FaultModel: deterministic, counter-addressed discrete-fault
 * injection for the DPTC core replicas.
 *
 * The paper's Gaussian noise pipeline models the *analog* imprecision
 * of a healthy device; real photonic parts additionally exhibit
 * discrete failures — a dead core, a DAC channel stuck at a rail, a
 * transient accumulator upset, a calibration table that drifted. The
 * FaultModel injects those at the engine's dispatch boundary, after a
 * replica's tile kernel has produced its (noisy) output region, so the
 * hot kernels stay untouched and the off path costs exactly one
 * branch per product.
 *
 * Addressing discipline: whether a fault fires on a given tile is a
 * pure function of (fault seed, replica, stream seed, tile) through
 * the same deriveSeed() chain the noise pipeline uses — independent
 * of thread count, call history, and wall clock. Combined with the
 * engine's tile-indexed replica assignment, an injected-fault run is
 * exactly reproducible, which is what lets tests pin recovery
 * bit-identity against the fault-free run.
 */

#ifndef LT_CORE_FAULT_MODEL_HH
#define LT_CORE_FAULT_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/linalg.hh"

namespace lt {
namespace core {

/** Discrete fault classes a core replica can exhibit. */
enum class FaultKind
{
    DeadShard,     ///< replica produces all-zero tile outputs
    StuckChannel,  ///< one DAC/output channel pinned at a rail value
    BitFlip,       ///< transient bit-flip in a digital accumulator
    Drift,         ///< calibration drift: multiplicative tile gain
};

/** Fault behaviour of ONE core replica (default: healthy). */
struct ReplicaFaultConfig
{
    /** DeadShard: the replica's tile outputs are zeroed. */
    bool dead = false;

    /**
     * StuckChannel: output column (stuck_channel mod tile width)
     * of every affected tile is pinned at stuck_value * scale —
     * a rail in the physical output domain (scale = beta_a * beta_b,
     * so the pinned value survives operand renormalization).
     * Negative = no stuck channel.
     */
    int stuck_channel = -1;
    double stuck_value = 4.0;

    /**
     * BitFlip: probability (per activated tile) of flipping one high
     * exponent bit of one accumulator word — the classic SEU model.
     */
    double bitflip_prob = 0.0;

    /** Drift: multiplicative gain on the tile output (1.0 = none). */
    double drift_gain = 1.0;

    /**
     * Per-tile activation probability of this replica's faults. 1.0
     * makes a persistent (hard) fault; < 1 models intermittents.
     */
    double activation_prob = 1.0;

    /** True when any fault kind is configured. */
    bool
    faulty() const
    {
        return dead || stuck_channel >= 0 || bitflip_prob > 0.0 ||
               drift_gain != 1.0;
    }
};

/** Engine-level fault-injection configuration. Off by default. */
struct FaultConfig
{
    /**
     * Master switch. False keeps the engine on the exact pre-fault
     * code path (one branch per product, no per-tile work): every
     * golden digest and perf baseline is unchanged.
     */
    bool enabled = false;

    /** Base seed of the fault-activation hash chain. */
    uint64_t seed = 0x4641'554cULL; // "FAUL"

    /**
     * Per-replica fault behaviour, indexed by engine replica id.
     * Replicas beyond the vector (or with default entries) are
     * healthy.
     */
    std::vector<ReplicaFaultConfig> replicas;

    /** The replica's config, or nullptr when it is healthy. */
    const ReplicaFaultConfig *
    replica(size_t i) const
    {
        if (i >= replicas.size() || !replicas[i].faulty())
            return nullptr;
        return &replicas[i];
    }
};

/**
 * Applies configured faults to output tile regions. Stateless apart
 * from its config; safe to call concurrently from engine shards.
 */
class FaultModel
{
  public:
    FaultModel() = default;
    explicit FaultModel(const FaultConfig &cfg) : cfg_(cfg) {}

    bool
    enabled() const
    {
        return cfg_.enabled;
    }

    const FaultConfig &config() const { return cfg_; }

    /**
     * Possibly corrupt the tile output region
     * out[row0..row0+rows) x [col0..col0+cols) as replica `replica`
     * would. The activation decision and every stochastic choice
     * inside derive from (seed, replica, stream_seed, tile) — the
     * noise pipeline's counter-addressing discipline — so injection
     * is bit-reproducible at any thread count. `scale` is the
     * product's beta_a * beta_b (rails pin in the physical domain).
     * Returns true when the region was modified.
     */
    bool corruptTile(size_t replica, uint64_t stream_seed, size_t tile,
                     Matrix &out, size_t row0, size_t rows,
                     size_t col0, size_t cols, double scale) const;

  private:
    FaultConfig cfg_;
};

} // namespace core
} // namespace lt

#endif // LT_CORE_FAULT_MODEL_HH
