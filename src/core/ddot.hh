/**
 * @file
 * DDot: the dynamically-operated full-range optical dot-product engine
 * (paper Section III-A).
 *
 * Two length-N vectors are encoded onto N WDM wavelengths (one (x_i,
 * y_i) pair per wavelength), interfered in a 3 dB directional coupler
 * with a -90 degree phase shifter, and read out with a balanced
 * photodetector pair. The differential photocurrent is proportional to
 * x . y (Eq. 5); signs ride on optical phase, so operands and outputs
 * are full-range.
 *
 * Three evaluation paths are provided, from most to least physical:
 *  - fieldSimDot(): complex transfer-matrix simulation of the actual
 *    circuit (the Lumerical-INTERCONNECT substitute) including
 *    dispersion and encoding noise.
 *  - analyticNoisyDot(): the paper's Eq. 9 closed form with the same
 *    noise; equals fieldSimDot() to numerical precision.
 *  - idealDot(): exact arithmetic dot product.
 */

#ifndef LT_CORE_DDOT_HH
#define LT_CORE_DDOT_HH

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "core/noise_model.hh"
#include "photonics/coupler.hh"
#include "photonics/phase_shifter.hh"
#include "photonics/wavelength.hh"
#include "util/fast_rng.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace lt {
namespace core {

/**
 * Caller-owned workspace of the packed noise pipeline: one allocation
 * per kernel shard (never per tile or dot product) backing the bulk
 * draw buffers of analyticNoisyDotPacked and the per-slice systematic
 * eps batch of the DPTC kernel. Layout over one vector:
 *
 *   [0, 3n)      per-element stddevs (x-mag, y-mag, phase interleaved)
 *   [3n, 6n)     the matching bulk draws
 *   [6n, 6n+e)   per-slice systematic eps draws (e = nh * nv)
 *
 * where n is the wavelength count. The phase-only path reuses the
 * stddev region as its dphi buffer (the two paths are exclusive).
 */
struct NoiseScratch
{
    void
    ensure(size_t nlambda, size_t eps_capacity)
    {
        nlambda_ = nlambda;
        buf_.resize(6 * nlambda + eps_capacity);
    }

    double *stds() { return buf_.data(); }
    double *draws() { return buf_.data() + 3 * nlambda_; }
    double *dphi() { return buf_.data(); }
    double *eps() { return buf_.data() + 6 * nlambda_; }

  private:
    std::vector<double> buf_;
    size_t nlambda_ = 0;
};

/**
 * Per-wavelength circuit coefficients, precomputed from the coupler and
 * phase-shifter dispersion models over a WDM grid.
 */
struct ChannelCoefficients
{
    double t;            ///< coupler transmission sqrt(1 - kappa)
    double k;            ///< coupler cross-coupling sqrt(kappa)
    double phase_error;  ///< dispersion-induced PS phase error [rad]
};

/** The DDot dot-product engine over a fixed WDM grid. */
class DDot
{
  public:
    /**
     * @param num_wavelengths WDM parallelism (vector length per shot)
     * @param noise noise configuration (Section III-C)
     */
    explicit DDot(size_t num_wavelengths,
                  const NoiseConfig &noise = NoiseConfig::paperDefault());

    size_t numWavelengths() const { return channels_.size(); }
    const NoiseConfig &noiseConfig() const { return noise_; }
    const std::vector<ChannelCoefficients> &channels() const
    {
        return channels_;
    }

    /**
     * Exact dot product (no optics). Inputs may be any length <= the
     * wavelength count; both spans must have equal length.
     */
    static double idealDot(std::span<const double> x,
                           std::span<const double> y);

    /**
     * Transfer-matrix (field-level) simulation of the circuit:
     * per-wavelength interference through PS + DC, WDM intensity
     * accumulation on the two photodiodes, balanced subtraction.
     * Inputs must be pre-normalized to [-1, 1].
     */
    double fieldSimDot(std::span<const double> x,
                       std::span<const double> y, Rng &rng) const;

    /** The paper's Eq. 9 closed form with identical noise draws. */
    double analyticNoisyDot(std::span<const double> x,
                            std::span<const double> y, Rng &rng) const;

    /**
     * The hot-loop form of analyticNoisyDot(): identical arithmetic
     * and RNG draw order (bit-identical results for RngT = Rng),
     * restructured for the packed tile kernel — per-channel
     * coefficients come from flat precomputed arrays instead of the
     * struct vector, the noiseless per-channel gain is hoisted when
     * encoding noise is off, and every stochastic path draws in bulk:
     * phase-only dots batch through fillGaussian, and the full
     * encoding-noise path hoists the |x[i]|-scaled magnitude stddevs
     * into array form and takes ONE fillGaussianScaled call for the
     * whole dot product (x-mag, y-mag, phase interleaved in
     * drawEncoding order) instead of 3 scalar draws per MAC.
     * `scratch` must have been ensure()d for >= n wavelengths.
     *
     * Instantiated for Rng (bit-exact) and FastRng (the Fast sampler
     * of NoiseSampler — same draw order, different stream).
     */
    template <typename RngT>
    double analyticNoisyDotPacked(const double *x, const double *y,
                                  size_t n, RngT &rng,
                                  NoiseScratch &scratch) const;

    /**
     * Two encoding-noise-free packed dots sharing one x row. Each
     * accumulator follows exactly the arithmetic and association
     * order of analyticNoisyDotPacked's noiseless branch, so each
     * result is bit-identical to the corresponding single call — the
     * pairing only interleaves the two independent accumulation
     * chains so they pipeline instead of serializing on FP-add
     * latency. Callers must only use this when
     * noise.enable_encoding_noise is false (the branch that takes no
     * draws).
     */
    void noiselessDotPackedPair(const double *x, const double *y0,
                                const double *y1, size_t n,
                                double &io0, double &io1) const;

    /**
     * Per-channel noiseless contribution coefficients, exposing the
     * multiplicative factor 2*t*k*(-sin phi) and additive factor
     * (2k^2 - 1)/2 for channel i (used by tests and the fast GEMM
     * path in nn/).
     */
    double multiplicativeGain(size_t channel) const;
    double additiveGain(size_t channel) const;

  private:
    NoiseConfig noise_;
    std::vector<ChannelCoefficients> channels_;

    // Flat per-channel coefficient arrays mirroring channels_,
    // precomputed once so the packed kernel never re-derives them:
    //   mult_base_[i]  = 2 * t_i * k_i
    //   add_coef_[i]   = 2 * k_i^2 - 1
    //   phase_base_[i] = -pi/2 + phase_error_i
    //   mult_noiseless_[i] = mult_base_[i] * (-sin(phase_base_[i]))
    // (the exact subexpressions analyticNoisyDot computes, in the
    // same association order, so reuse is bit-identical).
    std::vector<double> mult_base_;
    std::vector<double> add_coef_;
    std::vector<double> phase_base_;
    std::vector<double> mult_noiseless_;
};

// Defined in the header so the packed tile kernel's slice loop can
// inline it: the call fires once per output element per k-slice, and a
// cross-TU call was a measurable fraction of decode time.
template <typename RngT>
inline double
DDot::analyticNoisyDotPacked(const double *x, const double *y, size_t n,
                             RngT &rng, NoiseScratch &scratch) const
{
    if (n > channels_.size())
        lt_panic("analyticNoisyDotPacked: vector length exceeds "
                 "wavelengths");

    double io = 0.0;
    if (!noise_.enable_encoding_noise) {
        // No draws at all: the whole per-channel gain is static and
        // was hoisted into mult_noiseless_ at construction.
        for (size_t i = 0; i < n; ++i) {
            double add = add_coef_[i] * (x[i] * x[i] - y[i] * y[i]) /
                         2.0;
            io += mult_noiseless_[i] * x[i] * y[i] + add;
        }
        return io;
    }

    const double mag = noise_.magnitude_noise_std;
    const double phase_std = noise_.phaseNoiseStdRad();
    if (mag == 0.0) {
        // Magnitude draws have zero std, so they return the mean
        // without consuming engine state: the engine sequence is
        // exactly n constant-std phase draws — one bulk fill.
        double *dphi = scratch.dphi();
        rng.fillGaussian(std::span<double>(dphi, n), 0.0, phase_std);
        for (size_t i = 0; i < n; ++i) {
            double xh = x[i] + 0.0; // the zero magnitude draw
            double yh = y[i] + 0.0;
            double phi = phase_base_[i] + dphi[i];
            double mult = mult_base_[i] * (-std::sin(phi));
            double add = add_coef_[i] * (xh * xh - yh * yh) / 2.0;
            io += mult * xh * yh + add;
        }
        return io;
    }

    // Full encoding noise: hoist the |value|-scaled stddevs into array
    // form — interleaved exactly in drawEncoding()'s draw order
    // (x magnitude, y magnitude, phase drift per element) — and take
    // ONE bulk scaled fill for the whole dot product. Zero-magnitude
    // elements keep the no-consume rule inside fillGaussianScaled, so
    // the engine sequence matches the 3-scalar-draws-per-MAC loop
    // bit-for-bit.
    double *stds = scratch.stds();
    double *draws = scratch.draws();
    for (size_t i = 0; i < n; ++i) {
        stds[3 * i] = mag * std::abs(x[i]);
        stds[3 * i + 1] = mag * std::abs(y[i]);
        stds[3 * i + 2] = phase_std;
    }
    rng.fillGaussianScaled(std::span<double>(draws, 3 * n),
                           std::span<const double>(stds, 3 * n), 0.0);
    for (size_t i = 0; i < n; ++i) {
        double xh = x[i] + draws[3 * i];
        double yh = y[i] + draws[3 * i + 1];
        double phi = phase_base_[i] + draws[3 * i + 2];
        double mult = mult_base_[i] * (-std::sin(phi));
        double add = add_coef_[i] * (xh * xh - yh * yh) / 2.0;
        io += mult * xh * yh + add;
    }
    return io;
}

inline void
DDot::noiselessDotPackedPair(const double *x, const double *y0,
                             const double *y1, size_t n, double &io0,
                             double &io1) const
{
    double a0 = 0.0;
    double a1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double xi = x[i];
        double x2 = xi * xi;
        double add0 = add_coef_[i] * (x2 - y0[i] * y0[i]) / 2.0;
        double add1 = add_coef_[i] * (x2 - y1[i] * y1[i]) / 2.0;
        a0 += mult_noiseless_[i] * xi * y0[i] + add0;
        a1 += mult_noiseless_[i] * xi * y1[i] + add1;
    }
    io0 = a0;
    io1 = a1;
}

} // namespace core
} // namespace lt

#endif // LT_CORE_DDOT_HH
