/**
 * @file
 * DDot: the dynamically-operated full-range optical dot-product engine
 * (paper Section III-A).
 *
 * Two length-N vectors are encoded onto N WDM wavelengths (one (x_i,
 * y_i) pair per wavelength), interfered in a 3 dB directional coupler
 * with a -90 degree phase shifter, and read out with a balanced
 * photodetector pair. The differential photocurrent is proportional to
 * x . y (Eq. 5); signs ride on optical phase, so operands and outputs
 * are full-range.
 *
 * Three evaluation paths are provided, from most to least physical:
 *  - fieldSimDot(): complex transfer-matrix simulation of the actual
 *    circuit (the Lumerical-INTERCONNECT substitute) including
 *    dispersion and encoding noise.
 *  - analyticNoisyDot(): the paper's Eq. 9 closed form with the same
 *    noise; equals fieldSimDot() to numerical precision.
 *  - idealDot(): exact arithmetic dot product.
 */

#ifndef LT_CORE_DDOT_HH
#define LT_CORE_DDOT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "core/noise_model.hh"
#include "photonics/coupler.hh"
#include "photonics/phase_shifter.hh"
#include "photonics/wavelength.hh"
#include "util/rng.hh"

namespace lt {
namespace core {

/**
 * Per-wavelength circuit coefficients, precomputed from the coupler and
 * phase-shifter dispersion models over a WDM grid.
 */
struct ChannelCoefficients
{
    double t;            ///< coupler transmission sqrt(1 - kappa)
    double k;            ///< coupler cross-coupling sqrt(kappa)
    double phase_error;  ///< dispersion-induced PS phase error [rad]
};

/** The DDot dot-product engine over a fixed WDM grid. */
class DDot
{
  public:
    /**
     * @param num_wavelengths WDM parallelism (vector length per shot)
     * @param noise noise configuration (Section III-C)
     */
    explicit DDot(size_t num_wavelengths,
                  const NoiseConfig &noise = NoiseConfig::paperDefault());

    size_t numWavelengths() const { return channels_.size(); }
    const NoiseConfig &noiseConfig() const { return noise_; }
    const std::vector<ChannelCoefficients> &channels() const
    {
        return channels_;
    }

    /**
     * Exact dot product (no optics). Inputs may be any length <= the
     * wavelength count; both spans must have equal length.
     */
    static double idealDot(std::span<const double> x,
                           std::span<const double> y);

    /**
     * Transfer-matrix (field-level) simulation of the circuit:
     * per-wavelength interference through PS + DC, WDM intensity
     * accumulation on the two photodiodes, balanced subtraction.
     * Inputs must be pre-normalized to [-1, 1].
     */
    double fieldSimDot(std::span<const double> x,
                       std::span<const double> y, Rng &rng) const;

    /** The paper's Eq. 9 closed form with identical noise draws. */
    double analyticNoisyDot(std::span<const double> x,
                            std::span<const double> y, Rng &rng) const;

    /**
     * Per-channel noiseless contribution coefficients, exposing the
     * multiplicative factor 2*t*k*(-sin phi) and additive factor
     * (2k^2 - 1)/2 for channel i (used by tests and the fast GEMM
     * path in nn/).
     */
    double multiplicativeGain(size_t channel) const;
    double additiveGain(size_t channel) const;

  private:
    NoiseConfig noise_;
    std::vector<ChannelCoefficients> channels_;
};

} // namespace core
} // namespace lt

#endif // LT_CORE_DDOT_HH
