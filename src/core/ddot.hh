/**
 * @file
 * DDot: the dynamically-operated full-range optical dot-product engine
 * (paper Section III-A).
 *
 * Two length-N vectors are encoded onto N WDM wavelengths (one (x_i,
 * y_i) pair per wavelength), interfered in a 3 dB directional coupler
 * with a -90 degree phase shifter, and read out with a balanced
 * photodetector pair. The differential photocurrent is proportional to
 * x . y (Eq. 5); signs ride on optical phase, so operands and outputs
 * are full-range.
 *
 * Three evaluation paths are provided, from most to least physical:
 *  - fieldSimDot(): complex transfer-matrix simulation of the actual
 *    circuit (the Lumerical-INTERCONNECT substitute) including
 *    dispersion and encoding noise.
 *  - analyticNoisyDot(): the paper's Eq. 9 closed form with the same
 *    noise; equals fieldSimDot() to numerical precision.
 *  - idealDot(): exact arithmetic dot product.
 */

#ifndef LT_CORE_DDOT_HH
#define LT_CORE_DDOT_HH

#include <cstddef>
#include <span>
#include <vector>

#include "core/noise_model.hh"
#include "photonics/coupler.hh"
#include "photonics/phase_shifter.hh"
#include "photonics/wavelength.hh"
#include "util/rng.hh"

namespace lt {
namespace core {

/**
 * Per-wavelength circuit coefficients, precomputed from the coupler and
 * phase-shifter dispersion models over a WDM grid.
 */
struct ChannelCoefficients
{
    double t;            ///< coupler transmission sqrt(1 - kappa)
    double k;            ///< coupler cross-coupling sqrt(kappa)
    double phase_error;  ///< dispersion-induced PS phase error [rad]
};

/** The DDot dot-product engine over a fixed WDM grid. */
class DDot
{
  public:
    /**
     * @param num_wavelengths WDM parallelism (vector length per shot)
     * @param noise noise configuration (Section III-C)
     */
    explicit DDot(size_t num_wavelengths,
                  const NoiseConfig &noise = NoiseConfig::paperDefault());

    size_t numWavelengths() const { return channels_.size(); }
    const NoiseConfig &noiseConfig() const { return noise_; }
    const std::vector<ChannelCoefficients> &channels() const
    {
        return channels_;
    }

    /**
     * Exact dot product (no optics). Inputs may be any length <= the
     * wavelength count; both spans must have equal length.
     */
    static double idealDot(std::span<const double> x,
                           std::span<const double> y);

    /**
     * Transfer-matrix (field-level) simulation of the circuit:
     * per-wavelength interference through PS + DC, WDM intensity
     * accumulation on the two photodiodes, balanced subtraction.
     * Inputs must be pre-normalized to [-1, 1].
     */
    double fieldSimDot(std::span<const double> x,
                       std::span<const double> y, Rng &rng) const;

    /** The paper's Eq. 9 closed form with identical noise draws. */
    double analyticNoisyDot(std::span<const double> x,
                            std::span<const double> y, Rng &rng) const;

    /**
     * The hot-loop form of analyticNoisyDot(): identical arithmetic
     * and RNG draw order (bit-identical results), restructured for
     * the packed tile kernel — per-channel coefficients come from
     * flat precomputed arrays instead of the struct vector, the
     * noiseless per-channel gain is hoisted when encoding noise is
     * off, and when only phase drift is active the draws batch
     * through Rng::fillGaussian into `dphi_scratch` (caller-owned,
     * at least n doubles; may be null when encoding noise is off).
     */
    double analyticNoisyDotPacked(const double *x, const double *y,
                                  size_t n, Rng &rng,
                                  double *dphi_scratch) const;

    /**
     * Per-channel noiseless contribution coefficients, exposing the
     * multiplicative factor 2*t*k*(-sin phi) and additive factor
     * (2k^2 - 1)/2 for channel i (used by tests and the fast GEMM
     * path in nn/).
     */
    double multiplicativeGain(size_t channel) const;
    double additiveGain(size_t channel) const;

  private:
    NoiseConfig noise_;
    std::vector<ChannelCoefficients> channels_;

    // Flat per-channel coefficient arrays mirroring channels_,
    // precomputed once so the packed kernel never re-derives them:
    //   mult_base_[i]  = 2 * t_i * k_i
    //   add_coef_[i]   = 2 * k_i^2 - 1
    //   phase_base_[i] = -pi/2 + phase_error_i
    //   mult_noiseless_[i] = mult_base_[i] * (-sin(phase_base_[i]))
    // (the exact subexpressions analyticNoisyDot computes, in the
    // same association order, so reuse is bit-identical).
    std::vector<double> mult_base_;
    std::vector<double> add_coef_;
    std::vector<double> phase_base_;
    std::vector<double> mult_noiseless_;
};

} // namespace core
} // namespace lt

#endif // LT_CORE_DDOT_HH
