/**
 * @file
 * Capability descriptors for photonic tensor core designs (Table I).
 *
 * Each PTC design is summarized by the properties the paper compares:
 * operand dynamism, operand range, mapping/programming cost class, and
 * whether the engine performs MVM or one-shot MM. The Table I bench
 * queries these descriptors programmatically.
 */

#ifndef LT_CORE_PTC_INTERFACE_HH
#define LT_CORE_PTC_INTERFACE_HH

#include <string>
#include <vector>

namespace lt {
namespace core {

/** How costly it is to (re)program one operand into the PTC. */
enum class MappingCost { Low, Medium, High };

/** MVM (one output vector per pass) vs one-shot MM. */
enum class OperationType { MVM, MM };

/** One operand's characteristics. */
struct OperandTraits
{
    bool dynamic;     ///< can be switched at computing speed
    bool full_range;  ///< supports signed values natively
};

/** Everything Table I records about one PTC design. */
struct PtcCapabilities
{
    std::string name;
    std::string citation;
    OperandTraits operand1;
    OperandTraits operand2;
    MappingCost mapping_cost;
    OperationType operation;

    /** Dynamic MM (attention) needs both operands dynamic. */
    bool
    supportsDynamicMm() const
    {
        return operand1.dynamic && operand2.dynamic;
    }

    /** Overhead-free full-range MM needs both operands full-range. */
    bool
    supportsFullRangeMm() const
    {
        return operand1.full_range && operand2.full_range;
    }
};

/** The five designs compared in Table I, in the paper's column order. */
std::vector<PtcCapabilities> tableOnePtcDesigns();

const char *toString(MappingCost cost);
const char *toString(OperationType op);

} // namespace core
} // namespace lt

#endif // LT_CORE_PTC_INTERFACE_HH
