#include "calibration.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace core {

double
ChannelCalibration::meanGain() const
{
    if (gain.empty())
        return 1.0;
    double s = 0.0;
    for (double g : gain)
        s += g;
    return s / static_cast<double>(gain.size());
}

double
ChannelCalibration::additiveCorrection(std::span<const double> x,
                                       std::span<const double> y) const
{
    if (x.size() != y.size())
        lt_panic("additiveCorrection length mismatch");
    if (x.size() > additive.size())
        lt_panic("additiveCorrection: vector exceeds calibration size");
    double corr = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        corr += additive[i] * (x[i] * x[i] - y[i] * y[i]);
    return corr;
}

ChannelCalibration
calibrateDDot(const DDot &ddot, Rng &rng, int probes)
{
    const size_t n = ddot.numWavelengths();
    ChannelCalibration cal;
    cal.gain.assign(n, 1.0);
    cal.additive.assign(n, 0.0);

    std::vector<double> probe(n, 0.0);
    std::vector<double> zero(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        probe[i] = 1.0;
        double gain_acc = 0.0;
        double add_acc = 0.0;
        for (int p = 0; p < probes; ++p) {
            // (e_i, e_i): the x^2 - y^2 term cancels -> pure gain.
            gain_acc += ddot.analyticNoisyDot(probe, probe, rng);
            // (e_i, 0): no xy term -> pure additive coefficient.
            add_acc += ddot.analyticNoisyDot(probe, zero, rng);
        }
        probe[i] = 0.0;
        double g = gain_acc / probes;
        if (g <= 0.0)
            lt_fatal("calibration probe on channel ", i,
                     " returned non-positive gain ", g);
        cal.gain[i] = g;
        cal.additive[i] = add_acc / probes;
    }
    return cal;
}

double
calibratedNoisyDot(const DDot &ddot, const ChannelCalibration &cal,
                   std::span<const double> x, std::span<const double> y,
                   Rng &rng)
{
    if (x.size() != y.size())
        lt_panic("calibratedNoisyDot length mismatch");
    if (x.size() > cal.channels())
        lt_panic("calibratedNoisyDot: vector exceeds calibration size");
    // Per-channel gain compensation: pre-scale both operands by
    // 1/sqrt(g_i) so the interference product comes out at unit gain;
    // the additive correction then uses the *scaled* encodings (the
    // values the modulators actually carry).
    std::vector<double> xs(x.size()), ys(y.size());
    for (size_t i = 0; i < x.size(); ++i) {
        double comp = 1.0 / std::sqrt(cal.gain[i]);
        xs[i] = x[i] * comp;
        ys[i] = y[i] * comp;
    }
    double raw = ddot.analyticNoisyDot(xs, ys, rng);
    return raw - cal.additiveCorrection(xs, ys);
}

} // namespace core
} // namespace lt
