#include "ddot.hh"

#include <cmath>
#include <complex>

#include "photonics/photodetector.hh"
#include "photonics/transfer_matrix.hh"
#include "util/logging.hh"

namespace lt {
namespace core {

namespace {

/** Draw the per-element encoding noise (magnitude drift + phase). */
struct EncodingDraw
{
    double x_hat;      ///< magnitude-perturbed x
    double y_hat;      ///< magnitude-perturbed y
    double dphi_d;     ///< relative phase drift [rad]
};

EncodingDraw
drawEncoding(double x, double y, const NoiseConfig &cfg, Rng &rng)
{
    EncodingDraw d{x, y, 0.0};
    if (cfg.enable_encoding_noise) {
        // Magnitude drift scales with |value| (paper Section III-C).
        d.x_hat = x + rng.gaussian(0.0, cfg.magnitude_noise_std *
                                            std::abs(x));
        d.y_hat = y + rng.gaussian(0.0, cfg.magnitude_noise_std *
                                            std::abs(y));
        d.dphi_d = rng.gaussian(0.0, cfg.phaseNoiseStdRad());
    }
    return d;
}

} // namespace

DDot::DDot(size_t num_wavelengths, const NoiseConfig &noise)
    : noise_(noise)
{
    if (num_wavelengths == 0)
        lt_fatal("DDot requires at least one wavelength");
    photonics::WdmGrid grid(num_wavelengths);
    photonics::DirectionalCoupler coupler;
    photonics::PhaseShifter shifter(-M_PI / 2.0);

    channels_.reserve(num_wavelengths);
    for (size_t i = 0; i < num_wavelengths; ++i) {
        ChannelCoefficients c{};
        if (noise_.enable_dispersion) {
            double lambda = grid.wavelength(i);
            c.t = coupler.transmission(lambda);
            c.k = coupler.crossCoupling(lambda);
            c.phase_error = shifter.phaseError(lambda);
        } else {
            c.t = std::sqrt(0.5);
            c.k = std::sqrt(0.5);
            c.phase_error = 0.0;
        }
        channels_.push_back(c);
    }

    mult_base_.reserve(num_wavelengths);
    add_coef_.reserve(num_wavelengths);
    phase_base_.reserve(num_wavelengths);
    mult_noiseless_.reserve(num_wavelengths);
    for (const ChannelCoefficients &c : channels_) {
        mult_base_.push_back(2.0 * c.t * c.k);
        add_coef_.push_back(2.0 * c.k * c.k - 1.0);
        phase_base_.push_back(-M_PI / 2.0 + c.phase_error);
        mult_noiseless_.push_back(mult_base_.back() *
                                  (-std::sin(phase_base_.back())));
    }
}

double
DDot::idealDot(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size())
        lt_panic("idealDot length mismatch: ", x.size(), " vs ", y.size());
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        acc += x[i] * y[i];
    return acc;
}

double
DDot::fieldSimDot(std::span<const double> x, std::span<const double> y,
                  Rng &rng) const
{
    if (x.size() != y.size())
        lt_panic("fieldSimDot length mismatch");
    if (x.size() > channels_.size())
        lt_panic("fieldSimDot: vector length ", x.size(),
                 " exceeds wavelength count ", channels_.size());

    using photonics::Complex;
    double i_plus = 0.0;   // photocurrent at the '+' photodiode
    double i_minus = 0.0;  // photocurrent at the '-' photodiode
    for (size_t i = 0; i < x.size(); ++i) {
        const auto &ch = channels_[i];
        EncodingDraw d = drawEncoding(x[i], y[i], noise_, rng);

        // Port a carries y_hat; port b carries x_hat behind the -90
        // degree shifter (plus dispersion error plus encoding phase
        // drift). Only the relative phase matters (Section III-C).
        double psi = -M_PI / 2.0 + ch.phase_error + d.dphi_d;
        Complex ea(d.y_hat, 0.0);
        Complex eb = std::polar(d.x_hat, psi);

        // Directional coupler [[t, jk], [jk, t]].
        Complex jk(0.0, ch.k);
        Complex z0 = ch.t * ea + jk * eb;
        Complex z1 = jk * ea + ch.t * eb;

        // WDM channels do not interfere: intensities accumulate.
        i_plus += photonics::power(z0);
        i_minus += photonics::power(z1);
    }
    // Balanced detection; the 1/2 normalizes so ideal optics give x.y.
    return 0.5 * (i_plus - i_minus);
}

double
DDot::analyticNoisyDot(std::span<const double> x,
                       std::span<const double> y, Rng &rng) const
{
    if (x.size() != y.size())
        lt_panic("analyticNoisyDot length mismatch");
    if (x.size() > channels_.size())
        lt_panic("analyticNoisyDot: vector length exceeds wavelengths");

    double io = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const auto &ch = channels_[i];
        EncodingDraw d = drawEncoding(x[i], y[i], noise_, rng);
        double phi = -M_PI / 2.0 + ch.phase_error + d.dphi_d;
        // Paper Eq. 9: per-channel output of the balanced detector.
        double mult = 2.0 * ch.t * ch.k * (-std::sin(phi));
        double add = (2.0 * ch.k * ch.k - 1.0) *
                     (d.x_hat * d.x_hat - d.y_hat * d.y_hat) / 2.0;
        io += mult * d.x_hat * d.y_hat + add;
    }
    return io;
}

double
DDot::multiplicativeGain(size_t channel) const
{
    const auto &ch = channels_.at(channel);
    double phi = -M_PI / 2.0 + ch.phase_error;
    return 2.0 * ch.t * ch.k * (-std::sin(phi));
}

double
DDot::additiveGain(size_t channel) const
{
    const auto &ch = channels_.at(channel);
    return (2.0 * ch.k * ch.k - 1.0) / 2.0;
}

} // namespace core
} // namespace lt
