/**
 * @file
 * Noise configuration for the photonic computing path (Section III-C).
 *
 * Three non-idealities are modelled, exactly as in the paper:
 *  1. Optical encoding noise — per-element magnitude drift
 *     dx ~ N(0, (sigma_mag * |x|)^2) and relative phase drift between
 *     the two operands dphi_d ~ N(0, sigma_phase^2).
 *  2. WDM dispersion — wavelength-dependent coupler kappa(lambda) and
 *     phase-shifter phi(lambda), deterministic per channel.
 *  3. Systematic output noise — a multiplicative term on each DPTC
 *     output, Io_hat = Io * (1 + eps), eps ~ N(0, sigma_sys^2),
 *     standing in for photodetection noise and imperfect coupling.
 */

#ifndef LT_CORE_NOISE_MODEL_HH
#define LT_CORE_NOISE_MODEL_HH

#include <cmath>
#include <cstddef>

namespace lt {
namespace core {

/**
 * Which draw pipeline the stochastic noise terms sample from.
 *
 *  - BitExact (default): the blocked reimplementation of
 *    std::normal_distribution over std::mt19937_64 (util/rng.hh) —
 *    every noise stream is bit-identical to the historical per-call
 *    std:: path, so all golden digests apply.
 *  - Fast: the Ziggurat sampler over a counter-based generator
 *    (util/fast_rng.hh) — statistically equivalent (moment/KS-gated)
 *    and still deterministic per (seed, stream, tile) and
 *    thread-count-invariant, but NOT draw-sequence-compatible with
 *    BitExact: results differ bitwise, so bit-identity gates pinned
 *    to the BitExact stream do not apply. Fast applies to the packed
 *    counter-seeded tile kernel (the engine path); the reference
 *    kernel, the stateful Dptc::multiply(), and channel-calibrated
 *    dots always draw BitExact.
 */
enum class NoiseSampler
{
    BitExact,
    Fast,
};

/** Knobs for every stochastic / dispersive effect in the optical path. */
struct NoiseConfig
{
    /** Relative magnitude-drift std (paper default 0.03). */
    double magnitude_noise_std = 0.03;

    /** Operand relative phase-drift std in degrees (paper default 2). */
    double phase_noise_std_deg = 2.0;

    /** Systematic multiplicative output noise std (paper: 0.05). */
    double systematic_output_std = 0.05;

    /** Model wavelength-dependent kappa / phase (WDM dispersion). */
    bool enable_dispersion = true;

    /** Enable stochastic encoding noise (magnitude + phase). */
    bool enable_encoding_noise = true;

    /** Enable the systematic output term. */
    bool enable_systematic_noise = true;

    /** Draw pipeline for the stochastic terms (see NoiseSampler). */
    NoiseSampler sampler = NoiseSampler::BitExact;

    double
    phaseNoiseStdRad() const
    {
        return phase_noise_std_deg * M_PI / 180.0;
    }

    /** An all-off configuration (ideal optics). */
    static NoiseConfig
    ideal()
    {
        NoiseConfig cfg;
        cfg.magnitude_noise_std = 0.0;
        cfg.phase_noise_std_deg = 0.0;
        cfg.systematic_output_std = 0.0;
        cfg.enable_dispersion = false;
        cfg.enable_encoding_noise = false;
        cfg.enable_systematic_noise = false;
        return cfg;
    }

    /** The paper's default evaluation setting. */
    static NoiseConfig
    paperDefault()
    {
        return NoiseConfig{};
    }
};

} // namespace core
} // namespace lt

#endif // LT_CORE_NOISE_MODEL_HH
