/**
 * @file
 * DPTC: the dynamically-operated photonic tensor core (Section III-B).
 *
 * An Nv x Nh crossbar of DDot engines sharing modulated WDM signals via
 * intra-core optical broadcast. One DPTC invocation computes a one-shot
 * [Nh, Nlambda] x [Nlambda, Nv] matrix multiply; arbitrary GEMMs are
 * tiled over invocations with digital accumulation (output-stationary).
 *
 * The functional model follows the paper's software stack: operands are
 * scaled into [-1, 1] by their max-abs (beta normalization), quantized
 * to the DAC precision, pushed through the noisy DDot transfer (Eq. 9),
 * and the per-output systematic multiplicative noise is applied.
 */

#ifndef LT_CORE_DPTC_HH
#define LT_CORE_DPTC_HH

#include <cstdint>
#include <memory>

#include "core/calibration.hh"
#include "core/ddot.hh"
#include "core/noise_model.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace core {

/** Functional-evaluation fidelity for a DPTC multiply. */
enum class EvalMode
{
    Ideal,      ///< exact arithmetic, no quantization, no noise
    Quantized,  ///< beta-normalized + DAC quantization, ideal optics
    Noisy,      ///< quantization + Eq. 9 noise + systematic output term
};

/** Geometry and precision of one DPTC core. */
struct DptcConfig
{
    size_t nh = 12;       ///< horizontal input waveguides
    size_t nv = 12;       ///< vertical input waveguides
    size_t nlambda = 12;  ///< WDM wavelengths per waveguide
    int input_bits = 4;   ///< operand DAC precision
    NoiseConfig noise = NoiseConfig::paperDefault();
    uint64_t seed = 0x4c54'2024ULL;

    /**
     * Apply the per-channel dispersion calibration (gain pre-scaling
     * plus digital additive correction — see core/calibration.hh) to
     * every noisy dot product. The noise-mitigation extension of
     * Section V-E ([20], [56]).
     */
    bool channel_calibration = false;

    /** MACs performed by one invocation. */
    size_t
    macsPerShot() const
    {
        return nh * nv * nlambda;
    }
};

/** Functional model of one DPTC core. */
class Dptc
{
  public:
    explicit Dptc(const DptcConfig &cfg);

    const DptcConfig &config() const { return cfg_; }
    const DDot &ddot() const { return ddot_; }

    /**
     * One-shot matrix multiply: a is [nh, nlambda], b is [nlambda, nv].
     * Dimension mismatches are fatal (caller tiles larger GEMMs).
     */
    Matrix multiply(const Matrix &a, const Matrix &b, EvalMode mode);

    /**
     * Arbitrary GEMM [m, k] x [k, n] tiled over DPTC invocations with
     * digital accumulation of partial products (OS dataflow).
     */
    Matrix gemm(const Matrix &a, const Matrix &b, EvalMode mode);

    /** Number of one-shot invocations a tiled [m,k]x[k,n] GEMM needs. */
    size_t invocationsFor(size_t m, size_t k, size_t n) const;

    Rng &rng() { return rng_; }

  private:
    /**
     * Core of multiply() on pre-normalized (and pre-quantized) operands;
     * `scale` multiplies every output (beta_a * beta_b).
     */
    void multiplyNormalized(const Matrix &a_hat, const Matrix &b_hat,
                            size_t row0, size_t col0, size_t k0,
                            EvalMode mode, double scale, Matrix &out);

    DptcConfig cfg_;
    DDot ddot_;
    Rng rng_;
    ChannelCalibration calibration_; ///< used when configured
};

} // namespace core
} // namespace lt

#endif // LT_CORE_DPTC_HH
