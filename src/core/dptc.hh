/**
 * @file
 * DPTC: the dynamically-operated photonic tensor core (Section III-B).
 *
 * An Nv x Nh crossbar of DDot engines sharing modulated WDM signals via
 * intra-core optical broadcast. One DPTC invocation computes a one-shot
 * [Nh, Nlambda] x [Nlambda, Nv] matrix multiply; arbitrary GEMMs are
 * tiled over invocations with digital accumulation (output-stationary).
 *
 * The functional model follows the paper's software stack: operands are
 * scaled into [-1, 1] by their max-abs (beta normalization), quantized
 * to the DAC precision, pushed through the noisy DDot transfer (Eq. 9),
 * and the per-output systematic multiplicative noise is applied.
 */

#ifndef LT_CORE_DPTC_HH
#define LT_CORE_DPTC_HH

#include <cstdint>
#include <memory>

#include "core/calibration.hh"
#include "core/ddot.hh"
#include "core/encoded_operand.hh"
#include "core/noise_model.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace core {

/** Functional-evaluation fidelity for a DPTC multiply. */
enum class EvalMode
{
    Ideal,      ///< exact arithmetic, no quantization, no noise
    Quantized,  ///< beta-normalized + DAC quantization, ideal optics
    Noisy,      ///< quantization + Eq. 9 noise + systematic output term
};

/** Geometry and precision of one DPTC core. */
struct DptcConfig
{
    size_t nh = 12;       ///< horizontal input waveguides
    size_t nv = 12;       ///< vertical input waveguides
    size_t nlambda = 12;  ///< WDM wavelengths per waveguide
    int input_bits = 4;   ///< operand DAC precision
    NoiseConfig noise = NoiseConfig::paperDefault();
    uint64_t seed = 0x4c54'2024ULL;

    /**
     * Apply the per-channel dispersion calibration (gain pre-scaling
     * plus digital additive correction — see core/calibration.hh) to
     * every noisy dot product. The noise-mitigation extension of
     * Section V-E ([20], [56]).
     */
    bool channel_calibration = false;

    /** MACs performed by one invocation. */
    size_t
    macsPerShot() const
    {
        return nh * nv * nlambda;
    }
};

/** Functional model of one DPTC core. */
class Dptc
{
  public:
    explicit Dptc(const DptcConfig &cfg);

    const DptcConfig &config() const { return cfg_; }
    const DDot &ddot() const { return ddot_; }

    /**
     * One-shot matrix multiply: a is [nh, nlambda], b is [nlambda, nv].
     * Dimension mismatches are fatal (caller tiles larger GEMMs).
     * Noise draws advance the core's stateful member RNG.
     */
    Matrix multiply(const Matrix &a, const Matrix &b, EvalMode mode);

    /**
     * Arbitrary GEMM [m, k] x [k, n] tiled over DPTC invocations with
     * digital accumulation of partial products (OS dataflow).
     *
     * Noise is seeded per output tile from (stream seed, tile index)
     * — see deriveSeed() — so the result is a pure function of
     * (operands, config, stream): bit-identical whether the tiles run
     * sequentially here or sharded across the ExecutionEngine's
     * worker cores. This entry point always uses stream seed
     * DptcConfig::seed; the engine derives a fresh stream per call so
     * repeated GEMMs draw independent noise. The view overload
     * encodes strided/transposed operands in place; results are
     * bit-identical to materializing the views first.
     */
    Matrix gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                EvalMode mode) const;

    Matrix
    gemm(const Matrix &a, const Matrix &b, EvalMode mode) const
    {
        return gemm(a.view(), b.view(), mode);
    }

    /**
     * REFERENCE KERNEL: process output tiles [tile_begin, tile_end)
     * of a tiled GEMM on pre-normalized dense operands, accumulating
     * every k-slice of each output tile into `out` (which must be
     * [a_hat.rows(), b_hat.cols()], zero-filled in the covered
     * region). Output tiles are numbered row-major: tile =
     * tr * ceil(n/nv) + tc.
     *
     * Each output tile draws its noise from an Rng seeded
     * deriveSeed(stream_seed, tile); its k-slices consume that stream
     * in fixed ascending order (a tile never spans shards).
     *
     * This is the pre-packing implementation (strided B-column
     * gathers, per-slice scratch), kept as the golden reference the
     * packed overload below is pinned bit-identical against (tests)
     * and as the "cache off" column of bench_engine_scaling's
     * decode-regime scenario. Hot paths use the EncodedOperand
     * overload.
     *
     * @param scale multiplies every output (beta_a * beta_b; 1 for
     *        Ideal mode on raw operands)
     * @param stream_seed base seed of this GEMM's noise stream
     */
    void gemmTiles(const Matrix &a_hat, const Matrix &b_hat,
                   EvalMode mode, double scale, size_t tile_begin,
                   size_t tile_end, Matrix &out,
                   uint64_t stream_seed) const;

    /**
     * PACKED KERNEL: same contract as the reference gemmTiles, on
     * pre-encoded operands (Dptc::encode). Bit-identical to the
     * reference kernel — element visit order and RNG draw order are
     * preserved exactly — but cache-friendly: the x row-slice is one
     * contiguous pointer, every B-tile column is a contiguous packed
     * run (packed once at encode time instead of re-gathered Nh times
     * per tile), per-channel noise coefficients come from flat
     * arrays, and the only scratch (the bulk phase-draw buffer) is a
     * per-call workspace hoisted out of the hot loop — no allocations
     * per tile or k-slice. Thread-safe for disjoint tile ranges; this
     * is the unit the ExecutionEngine shards across core replicas.
     *
     * `scale` is normally a.beta() * b.beta(); operands must have
     * been encoded for this core's geometry and mode (fatal
     * otherwise).
     *
     * Noise draws follow cfg_.noise.sampler: BitExact replays the
     * historical std:: stream bit-for-bit through the blocked Rng
     * pipeline (per-slice systematic eps draws and per-dot encoding
     * draws batch through bulk fills, sequence-exact); Fast runs the
     * Ziggurat sampler seeded by the SAME deriveSeed(stream, tile)
     * scheme — still thread-count-invariant and deterministic, not
     * stream-compatible. When `gaussian_draws` is non-null the
     * Gaussian draws this call takes are added to it (the engine
     * folds shard counts into GemmStats::gaussian_draws).
     */
    void gemmTiles(const EncodedOperand &a, const EncodedOperand &b,
                   EvalMode mode, double scale, size_t tile_begin,
                   size_t tile_end, Matrix &out, uint64_t stream_seed,
                   uint64_t *gaussian_draws = nullptr) const;

    /**
     * STACKED-ROW KERNEL: one row of a stacked A-side operand
     * (encodeStackedRows) against a shared B-side plan, over column
     * tiles [tile_begin, tile_end). The row is executed EXACTLY as if
     * it were the single row of its own [1, k] encode: tile indices,
     * per-tile noise seeding (deriveSeed(stream_seed, tc)), k-slice
     * order, and draw counts all match the solo product, so the
     * stacked dispatch is bit-identical per row to N independent
     * row-GEMMs — each row just carries its own stream seed (the
     * request's noise lane) into one shared dispatch. `scale` is
     * a.rowBeta(row) * b.beta(). Writes accumulate into out's row
     * `row`; `out` must be [a.rows(), b.cols()] and zero-filled in the
     * covered region. Thread-safe for disjoint (row, tile) regions.
     */
    void gemmRowStackedTiles(const EncodedOperand &a, size_t row,
                             const EncodedOperand &b, EvalMode mode,
                             double scale, size_t tile_begin,
                             size_t tile_end, Matrix &out,
                             uint64_t stream_seed,
                             uint64_t *gaussian_draws = nullptr) const;

    /**
     * Prepare one operand for the packed kernel: beta normalization
     * (maxAbs), DAC quantization to input_bits, and the side-specific
     * packed layout, fused in one pass. Ideal mode encodes raw values
     * with beta = 1 and no quantization. This is the single encoding
     * implementation behind multiply(), gemm(), and the
     * ExecutionEngine (and the unit the nn-layer WeightPlan caches
     * hold on to across calls). The view overload reads strided /
     * transposed operands in place (the decode K cache encodes its
     * packed K^T straight from the row-major K mirror); encoding a
     * view is bit-identical to encoding its materialized copy.
     */
    EncodedOperand encode(const ConstMatrixView &m, OperandSide side,
                          EvalMode mode) const;

    EncodedOperand
    encode(const Matrix &m, OperandSide side, EvalMode mode) const
    {
        return encode(m.view(), side, mode);
    }

    /**
     * Encode N single-row operands as one stacked [N, k] A-side
     * operand for gemmRowStackedTiles: row r is beta-normalized and
     * quantized against its OWN max-abs (recorded as rowBeta(r)), so
     * every stored row is bit-identical to the row of a solo [1, k]
     * encode of the same values. The shared beta() is meaningless for
     * a stacked operand (set to 1.0); consumers scale per row.
     */
    EncodedOperand
    encodeStackedRows(const std::vector<ConstMatrixView> &rows,
                      EvalMode mode) const;

    /** True when `op` was encoded compatibly with this core + mode. */
    bool acceptsEncoded(const EncodedOperand &op, EvalMode mode) const;

    /** Output-tile count of a tiled [m,k]x[k,n] GEMM (rows x cols). */
    size_t
    outputTilesFor(size_t m, size_t n) const
    {
        auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
        return cdiv(m, cfg_.nh) * cdiv(n, cfg_.nv);
    }

    /** Number of one-shot invocations a tiled [m,k]x[k,n] GEMM needs. */
    size_t invocationsFor(size_t m, size_t k, size_t n) const;

    /** Max absolute value of an operand (beta normalization factor). */
    static double maxAbs(const ConstMatrixView &m);

    static double
    maxAbs(const Matrix &m)
    {
        return maxAbs(m.view());
    }

    /**
     * Scale into [-1, 1] by beta and quantize to `bits` (the shared
     * operand-preparation step of multiply()/gemm(), exposed so the
     * ExecutionEngine normalizes once per GEMM, not once per tile).
     */
    static Matrix normalizeQuantize(const Matrix &m, double beta,
                                    int bits);

    Rng &rng() { return rng_; }

  private:
    /**
     * One core invocation on pre-normalized (and pre-quantized)
     * operands; `scale` multiplies every output (beta_a * beta_b).
     * All noise draws come from `rng`, which the caller seeds — either
     * the stateful member (multiply()) or a per-tile counter-derived
     * generator (gemm()/gemmTiles()).
     */
    void multiplyNormalized(const Matrix &a_hat, const Matrix &b_hat,
                            size_t row0, size_t col0, size_t k0,
                            EvalMode mode, double scale, Rng &rng,
                            Matrix &out) const;

    /**
     * One (output tile, k-slice) of the packed kernel: rows/cols
     * bounded by the operand edges, x and y read as contiguous
     * pointers into the encoded layouts. `scratch` is the caller's
     * per-shard noise workspace (ensure()d for nlambda wavelengths
     * and nh*nv eps draws). RNG draw order matches
     * multiplyNormalized exactly for RngT = Rng: when the slice's
     * only stochastic term is the systematic output noise, its
     * rows*cols eps draws batch through one bulk fill (the draws are
     * consecutive in the stream, so this is sequence-exact).
     * Instantiated for Rng and FastRng; the channel-calibrated path
     * is BitExact-only. `max_rows` caps the row-tile height (cfg_.nh
     * for full tiles; 1 for the stacked-row kernel, whose operand
     * holds other requests' rows below r0).
     */
    template <typename RngT>
    void packedSlice(const EncodedOperand &a, const EncodedOperand &b,
                     size_t r0, size_t max_rows, size_t tc, size_t tk,
                     EvalMode mode, double scale, RngT &rng,
                     Matrix &out, NoiseScratch &scratch) const;

    DptcConfig cfg_;
    DDot ddot_;
    Rng rng_;
    ChannelCalibration calibration_; ///< used when configured
};

} // namespace core
} // namespace lt

#endif // LT_CORE_DPTC_HH
