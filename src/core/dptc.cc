#include "dptc.hh"

#include <algorithm>
#include <cmath>
#include <span>
#include <type_traits>
#include <vector>

#include "util/logging.hh"
#include "util/quantize.hh"

namespace lt {
namespace core {

double
Dptc::maxAbs(const ConstMatrixView &m)
{
    double beta = 0.0;
    if (m.rowsContiguous()) {
        // Contiguous logical rows: walk each row's run directly (the
        // dense-Matrix fast path, ld == cols for a full view).
        for (size_t r = 0; r < m.rows(); ++r) {
            const double *row = m.rowPtr(r);
            for (size_t c = 0; c < m.cols(); ++c)
                beta = std::max(beta, std::abs(row[c]));
        }
        return beta;
    }
    // Transposed views: the underlying storage rows are the logical
    // columns; max is order-insensitive, so walk storage order.
    for (size_t c = 0; c < m.cols(); ++c) {
        const double *col = m.colPtr(c);
        for (size_t r = 0; r < m.rows(); ++r)
            beta = std::max(beta, std::abs(col[r]));
    }
    return beta;
}

Matrix
Dptc::normalizeQuantize(const Matrix &m, double beta, int bits)
{
    Matrix out(m.rows(), m.cols());
    if (beta <= 0.0)
        return out;
    for (size_t i = 0; i < m.data().size(); ++i)
        out.data()[i] =
            quantizeSymmetricUnit(m.data()[i] / beta, bits);
    return out;
}

EncodedOperand
Dptc::encode(const ConstMatrixView &m, OperandSide side,
             EvalMode mode) const
{
    EncodedOperand op;
    op.rows_ = m.rows();
    op.cols_ = m.cols();
    op.side_ = side;
    if (mode == EvalMode::Ideal) {
        // Raw values, unit scale: x / 1.0 quantized to 0 bits is x.
        op.beta_ = 1.0;
        op.bits_ = 0;
        op.dynamic_beta_ = false;
    } else {
        op.beta_ = maxAbs(m);
        op.bits_ = cfg_.input_bits;
        op.dynamic_beta_ = true;
    }

    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    // One quantization rule for fresh encodes AND incremental appends
    // (beta_/bits_ are set above, so the operand's own quantizer is
    // exactly the element map appendColumn/appendRow will apply).
    auto q = [&](double v) { return op.quantizeValue(v); };

    if (side == OperandSide::A) {
        // Row-major panels: identical layout to the dense operand, so
        // a row's k-slice is one contiguous pointer.
        op.data_.resize(m.rows() * m.cols());
        for (size_t r = 0; r < m.rows(); ++r)
            for (size_t c = 0; c < m.cols(); ++c)
                op.data_[r * m.cols() + c] = q(m(r, c));
        return op;
    }

    // B side: pack each (column tile, k-slice) block as contiguous
    // columns. Blocks are padded to nv x nlambda so indexing is
    // uniform; padding is zero and never read (the kernel bounds its
    // loops by the true operand edges).
    op.nv_ = cfg_.nv;
    op.nlambda_ = cfg_.nlambda;
    op.tiles_k_ = cdiv(m.rows(), cfg_.nlambda);
    op.tiles_k_cap_ = op.tiles_k_;
    const size_t tiles_c = cdiv(m.cols(), cfg_.nv);
    op.data_.assign(tiles_c * op.tiles_k_ * cfg_.nv * cfg_.nlambda,
                    0.0);
    for (size_t k = 0; k < m.rows(); ++k) {
        const size_t tk = k / cfg_.nlambda;
        const size_t ki = k % cfg_.nlambda;
        for (size_t c = 0; c < m.cols(); ++c) {
            const size_t tc = c / cfg_.nv;
            const size_t ci = c % cfg_.nv;
            op.data_[((tc * op.tiles_k_ + tk) * cfg_.nv + ci) *
                         cfg_.nlambda +
                     ki] = q(m(k, c));
        }
    }
    return op;
}

bool
Dptc::acceptsEncoded(const EncodedOperand &op, EvalMode mode) const
{
    const int bits = mode == EvalMode::Ideal ? 0 : cfg_.input_bits;
    if (op.bits_ != bits)
        return false;
    if (op.side_ == OperandSide::B)
        return op.nv_ == cfg_.nv && op.nlambda_ == cfg_.nlambda;
    return true;
}

Dptc::Dptc(const DptcConfig &cfg)
    : cfg_(cfg), ddot_(cfg.nlambda, cfg.noise), rng_(cfg.seed)
{
    if (cfg.nh == 0 || cfg.nv == 0 || cfg.nlambda == 0)
        lt_fatal("DptcConfig dimensions must be positive");
    if (cfg.channel_calibration) {
        Rng probe_rng(cfg.seed ^ 0xCA11ULL);
        calibration_ = calibrateDDot(ddot_, probe_rng, 64);
    }
}

void
Dptc::multiplyNormalized(const Matrix &a_hat, const Matrix &b_hat,
                         size_t row0, size_t col0, size_t k0,
                         EvalMode mode, double scale, Rng &rng,
                         Matrix &out) const
{
    const size_t rows = std::min(cfg_.nh, a_hat.rows() - row0);
    const size_t cols = std::min(cfg_.nv, b_hat.cols() - col0);
    const size_t depth = std::min(cfg_.nlambda, a_hat.cols() - k0);

    std::vector<double> x(depth), y(depth);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < depth; ++i)
            x[i] = a_hat(row0 + r, k0 + i);
        for (size_t c = 0; c < cols; ++c) {
            for (size_t i = 0; i < depth; ++i)
                y[i] = b_hat(k0 + i, col0 + c);
            double io;
            if (mode == EvalMode::Noisy) {
                io = cfg_.channel_calibration
                         ? calibratedNoisyDot(ddot_, calibration_, x,
                                              y, rng)
                         : ddot_.analyticNoisyDot(x, y, rng);
                if (cfg_.noise.enable_systematic_noise) {
                    double eps = rng.gaussian(
                        0.0, cfg_.noise.systematic_output_std);
                    io *= (1.0 + eps);
                }
            } else {
                io = DDot::idealDot(x, y);
            }
            out(row0 + r, col0 + c) += io * scale;
        }
    }
}

Matrix
Dptc::multiply(const Matrix &a, const Matrix &b, EvalMode mode)
{
    if (a.rows() > cfg_.nh || a.cols() > cfg_.nlambda ||
        b.rows() != a.cols() || b.cols() > cfg_.nv) {
        lt_fatal("Dptc::multiply shape [", a.rows(), ",", a.cols(),
                 "]x[", b.rows(), ",", b.cols(),
                 "] exceeds core geometry [", cfg_.nh, ",", cfg_.nlambda,
                 "]x[", cfg_.nlambda, ",", cfg_.nv, "]");
    }
    // One shared encoding implementation (encode() handles the
    // Ideal-mode raw/unit-beta case too); noise draws advance the
    // stateful member RNG exactly as before (always BitExact — the
    // member Rng IS the historical stream).
    EncodedOperand ea = encode(a, OperandSide::A, mode);
    EncodedOperand eb = encode(b, OperandSide::B, mode);
    Matrix out(a.rows(), b.cols(), 0.0);
    NoiseScratch scratch;
    scratch.ensure(cfg_.nlambda, cfg_.nh * cfg_.nv);
    packedSlice(ea, eb, 0, cfg_.nh, 0, 0, mode,
                ea.beta() * eb.beta(), rng_, out, scratch);
    return out;
}

void
Dptc::gemmTiles(const Matrix &a_hat, const Matrix &b_hat, EvalMode mode,
                double scale, size_t tile_begin, size_t tile_end,
                Matrix &out, uint64_t stream_seed) const
{
    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    const size_t tiles_c = cdiv(b_hat.cols(), cfg_.nv);
    const size_t tiles_k = cdiv(a_hat.cols(), cfg_.nlambda);

    Rng unused(0); // non-noisy modes never draw from it
    for (size_t t = tile_begin; t < tile_end; ++t) {
        const size_t r0 = (t / tiles_c) * cfg_.nh;
        const size_t c0 = (t % tiles_c) * cfg_.nv;
        if (mode == EvalMode::Noisy) {
            // Counter-based seeding: (stream, output-tile index)
            // alone determines the tile's noise; its k-slices consume
            // the stream in fixed ascending order.
            Rng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                multiplyNormalized(a_hat, b_hat, r0, c0,
                                   tk * cfg_.nlambda, mode, scale,
                                   tile_rng, out);
        } else {
            for (size_t tk = 0; tk < tiles_k; ++tk)
                multiplyNormalized(a_hat, b_hat, r0, c0,
                                   tk * cfg_.nlambda, mode, scale,
                                   unused, out);
        }
    }
}

template <typename RngT>
void
Dptc::packedSlice(const EncodedOperand &a, const EncodedOperand &b,
                  size_t r0, size_t max_rows, size_t tc, size_t tk,
                  EvalMode mode, double scale, RngT &rng, Matrix &out,
                  NoiseScratch &scratch) const
{
    const size_t k0 = tk * cfg_.nlambda;
    const size_t c0 = tc * cfg_.nv;
    const size_t rows = std::min(max_rows, a.rows() - r0);
    const size_t cols = std::min(cfg_.nv, b.cols() - c0);
    const size_t depth = std::min(cfg_.nlambda, a.cols() - k0);

    const bool calibrated = cfg_.channel_calibration;
    const bool systematic = cfg_.noise.enable_systematic_noise;
    const double sys_std = cfg_.noise.systematic_output_std;

    if (mode == EvalMode::Noisy && systematic && !calibrated &&
        !cfg_.noise.enable_encoding_noise) {
        // The slice's ONLY stochastic term is the per-output
        // systematic eps: the stream sequence is exactly rows*cols
        // consecutive constant-std draws in (r, c) order, so batch
        // them through one bulk fill (sequence-exact) instead of a
        // scalar draw per output — the dominant-draw path of the
        // decode serving regime (encoding noise off).
        double *eps = scratch.eps();
        rng.fillGaussian(std::span<double>(eps, rows * cols), 0.0,
                         sys_std);
        size_t idx = 0;
        for (size_t r = 0; r < rows; ++r) {
            const double *x = a.row(r0 + r) + k0;
            size_t c = 0;
            // Column pairs: the dots take no draws here (encoding
            // noise is off), so two independent accumulation chains
            // can pipeline; each result is bit-identical to the
            // single-dot call.
            for (; c + 1 < cols; c += 2) {
                const double *y0 = b.tileColumn(tc, tk, c);
                const double *y1 = b.tileColumn(tc, tk, c + 1);
                double io0;
                double io1;
                ddot_.noiselessDotPackedPair(x, y0, y1, depth, io0,
                                             io1);
                io0 *= (1.0 + eps[idx]);
                io1 *= (1.0 + eps[idx + 1]);
                idx += 2;
                out(r0 + r, c0 + c) += io0 * scale;
                out(r0 + r, c0 + c + 1) += io1 * scale;
            }
            for (; c < cols; ++c) {
                const double *y = b.tileColumn(tc, tk, c);
                double io = ddot_.analyticNoisyDotPacked(x, y, depth,
                                                         rng, scratch);
                io *= (1.0 + eps[idx++]);
                out(r0 + r, c0 + c) += io * scale;
            }
        }
        return;
    }

    for (size_t r = 0; r < rows; ++r) {
        // Hoisted x gather: one contiguous slice of the A panel,
        // shared by every column of this (tile, k-slice).
        const double *x = a.row(r0 + r) + k0;
        for (size_t c = 0; c < cols; ++c) {
            const double *y = b.tileColumn(tc, tk, c);
            double io;
            if (mode == EvalMode::Noisy) {
                if (calibrated) {
                    // Calibration probes draw from the historical
                    // stream; the calibrated dot is BitExact-only.
                    if constexpr (std::is_same_v<RngT, Rng>) {
                        io = calibratedNoisyDot(
                            ddot_, calibration_,
                            std::span<const double>(x, depth),
                            std::span<const double>(y, depth), rng);
                    } else {
                        lt_fatal("packedSlice: channel calibration "
                                 "requires the BitExact sampler");
                    }
                } else {
                    io = ddot_.analyticNoisyDotPacked(x, y, depth, rng,
                                                      scratch);
                }
                if (systematic) {
                    double eps = rng.gaussian(0.0, sys_std);
                    io *= (1.0 + eps);
                }
            } else {
                io = DDot::idealDot(
                    std::span<const double>(x, depth),
                    std::span<const double>(y, depth));
            }
            out(r0 + r, c0 + c) += io * scale;
        }
    }
}

void
Dptc::gemmTiles(const EncodedOperand &a, const EncodedOperand &b,
                EvalMode mode, double scale, size_t tile_begin,
                size_t tile_end, Matrix &out, uint64_t stream_seed,
                uint64_t *gaussian_draws) const
{
    if (a.side() != OperandSide::A || b.side() != OperandSide::B ||
        !acceptsEncoded(a, mode) || !acceptsEncoded(b, mode))
        lt_fatal("Dptc::gemmTiles: operands not encoded for this "
                 "core geometry/mode");
    if (a.cols() != b.rows())
        lt_fatal("Dptc::gemmTiles inner dimension mismatch: ",
                 a.cols(), " vs ", b.rows());

    auto cdiv = [](size_t x, size_t y) { return (x + y - 1) / y; };
    const size_t tiles_c = cdiv(b.cols(), cfg_.nv);
    const size_t tiles_k = cdiv(a.cols(), cfg_.nlambda);

    // Per-shard workspace: the bulk noise-draw buffers, allocated once
    // per call (one call per shard under the ExecutionEngine) — the
    // hot loop itself never allocates.
    NoiseScratch scratch;
    scratch.ensure(cfg_.nlambda, cfg_.nh * cfg_.nv);
    uint64_t draws = 0;

    const bool fast = mode == EvalMode::Noisy &&
                      cfg_.noise.sampler == NoiseSampler::Fast &&
                      !cfg_.channel_calibration;

    Rng unused(0); // non-noisy modes never draw from it
    for (size_t t = tile_begin; t < tile_end; ++t) {
        const size_t r0 = (t / tiles_c) * cfg_.nh;
        const size_t tc = t % tiles_c;
        if (fast) {
            // Fast sampler, same counter-based addressing: the tile's
            // noise is a pure function of (stream, tile index), so
            // results stay thread-count-invariant — just on the
            // Ziggurat stream instead of the bit-exact one.
            FastRng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, r0, cfg_.nh, tc, tk, mode, scale,
                            tile_rng, out, scratch);
            draws += tile_rng.drawCount();
        } else if (mode == EvalMode::Noisy) {
            // Counter-based seeding, identical to the reference
            // kernel: (stream, output-tile index) alone determines
            // the tile's noise; its k-slices consume the stream in
            // fixed ascending order.
            Rng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, r0, cfg_.nh, tc, tk, mode, scale,
                            tile_rng, out, scratch);
            draws += tile_rng.drawCount();
        } else {
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, r0, cfg_.nh, tc, tk, mode, scale,
                            unused, out, scratch);
        }
    }
    if (gaussian_draws != nullptr)
        *gaussian_draws += draws;
}

EncodedOperand
Dptc::encodeStackedRows(const std::vector<ConstMatrixView> &rows,
                        EvalMode mode) const
{
    if (rows.empty())
        lt_fatal("Dptc::encodeStackedRows: empty row set");
    const size_t k = rows.front().cols();
    EncodedOperand op;
    op.rows_ = rows.size();
    op.cols_ = k;
    op.side_ = OperandSide::A;
    // The shared beta is meaningless for a stacked operand: every row
    // carries its own solo-encode beta, and consumers scale per row.
    op.beta_ = 1.0;
    op.bits_ = mode == EvalMode::Ideal ? 0 : cfg_.input_bits;
    op.dynamic_beta_ = false;
    op.row_betas_.resize(rows.size());
    op.data_.resize(rows.size() * k);
    for (size_t r = 0; r < rows.size(); ++r) {
        const ConstMatrixView &m = rows[r];
        if (m.rows() != 1 || m.cols() != k)
            lt_fatal("Dptc::encodeStackedRows: row ", r, " is [",
                     m.rows(), ",", m.cols(), "], want [1,", k, "]");
        // Per-row beta = the row's own max-abs: exactly what a solo
        // [1, k] encode of this row would have used, so the stored
        // quantized values are bit-identical to the solo encode.
        const double beta = mode == EvalMode::Ideal ? 1.0 : maxAbs(m);
        op.row_betas_[r] = beta;
        for (size_t c = 0; c < k; ++c)
            op.data_[r * k + c] =
                beta > 0.0
                    ? quantizeSymmetricUnit(m(0, c) / beta, op.bits_)
                    : 0.0;
    }
    return op;
}

void
Dptc::gemmRowStackedTiles(const EncodedOperand &a, size_t row,
                          const EncodedOperand &b, EvalMode mode,
                          double scale, size_t tile_begin,
                          size_t tile_end, Matrix &out,
                          uint64_t stream_seed,
                          uint64_t *gaussian_draws) const
{
    if (a.side() != OperandSide::A || b.side() != OperandSide::B ||
        !acceptsEncoded(a, mode) || !acceptsEncoded(b, mode))
        lt_fatal("Dptc::gemmRowStackedTiles: operands not encoded "
                 "for this core geometry/mode");
    if (a.cols() != b.rows())
        lt_fatal("Dptc::gemmRowStackedTiles inner dimension "
                 "mismatch: ", a.cols(), " vs ", b.rows());
    if (row >= a.rows())
        lt_fatal("Dptc::gemmRowStackedTiles: row ", row,
                 " out of range [0, ", a.rows(), ")");

    auto cdiv = [](size_t x, size_t y) { return (x + y - 1) / y; };
    const size_t tiles_k = cdiv(a.cols(), cfg_.nlambda);

    NoiseScratch scratch;
    scratch.ensure(cfg_.nlambda, cfg_.nh * cfg_.nv);
    uint64_t draws = 0;

    const bool fast = mode == EvalMode::Noisy &&
                      cfg_.noise.sampler == NoiseSampler::Fast &&
                      !cfg_.channel_calibration;

    Rng unused(0); // non-noisy modes never draw from it
    for (size_t t = tile_begin; t < tile_end; ++t) {
        // A solo [1, k] product has a single row tile, so its output
        // tile index IS the column-tile index: seeding tile t from
        // (stream, t) replays the solo product's per-tile noise
        // streams exactly — the stacked row only changes WHERE the
        // outputs land (row `row` of the tall result), never what
        // noise they draw.
        if (fast) {
            FastRng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, row, 1, t, tk, mode, scale,
                            tile_rng, out, scratch);
            draws += tile_rng.drawCount();
        } else if (mode == EvalMode::Noisy) {
            Rng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, row, 1, t, tk, mode, scale,
                            tile_rng, out, scratch);
            draws += tile_rng.drawCount();
        } else {
            for (size_t tk = 0; tk < tiles_k; ++tk)
                packedSlice(a, b, row, 1, t, tk, mode, scale, unused,
                            out, scratch);
        }
    }
    if (gaussian_draws != nullptr)
        *gaussian_draws += draws;
}

Matrix
Dptc::gemm(const ConstMatrixView &a, const ConstMatrixView &b,
           EvalMode mode) const
{
    if (a.cols() != b.rows())
        lt_fatal("Dptc::gemm inner dimension mismatch: ", a.cols(),
                 " vs ", b.rows());
    Matrix out(a.rows(), b.cols(), 0.0);
    const size_t tiles = outputTilesFor(a.rows(), b.cols());
    EncodedOperand ea = encode(a, OperandSide::A, mode);
    EncodedOperand eb = encode(b, OperandSide::B, mode);
    gemmTiles(ea, eb, mode, ea.beta() * eb.beta(), 0, tiles, out,
              cfg_.seed);
    return out;
}

size_t
Dptc::invocationsFor(size_t m, size_t k, size_t n) const
{
    auto ceil_div = [](size_t a, size_t b) { return (a + b - 1) / b; };
    return ceil_div(m, cfg_.nh) * ceil_div(k, cfg_.nlambda) *
           ceil_div(n, cfg_.nv);
}

} // namespace core
} // namespace lt
