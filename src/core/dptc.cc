#include "dptc.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"
#include "util/quantize.hh"

namespace lt {
namespace core {

double
Dptc::maxAbs(const Matrix &m)
{
    double beta = 0.0;
    for (double v : m.data())
        beta = std::max(beta, std::abs(v));
    return beta;
}

Matrix
Dptc::normalizeQuantize(const Matrix &m, double beta, int bits)
{
    Matrix out(m.rows(), m.cols());
    if (beta <= 0.0)
        return out;
    for (size_t i = 0; i < m.data().size(); ++i)
        out.data()[i] =
            quantizeSymmetricUnit(m.data()[i] / beta, bits);
    return out;
}

Dptc::Dptc(const DptcConfig &cfg)
    : cfg_(cfg), ddot_(cfg.nlambda, cfg.noise), rng_(cfg.seed)
{
    if (cfg.nh == 0 || cfg.nv == 0 || cfg.nlambda == 0)
        lt_fatal("DptcConfig dimensions must be positive");
    if (cfg.channel_calibration) {
        Rng probe_rng(cfg.seed ^ 0xCA11ULL);
        calibration_ = calibrateDDot(ddot_, probe_rng, 64);
    }
}

void
Dptc::multiplyNormalized(const Matrix &a_hat, const Matrix &b_hat,
                         size_t row0, size_t col0, size_t k0,
                         EvalMode mode, double scale, Rng &rng,
                         Matrix &out) const
{
    const size_t rows = std::min(cfg_.nh, a_hat.rows() - row0);
    const size_t cols = std::min(cfg_.nv, b_hat.cols() - col0);
    const size_t depth = std::min(cfg_.nlambda, a_hat.cols() - k0);

    std::vector<double> x(depth), y(depth);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < depth; ++i)
            x[i] = a_hat(row0 + r, k0 + i);
        for (size_t c = 0; c < cols; ++c) {
            for (size_t i = 0; i < depth; ++i)
                y[i] = b_hat(k0 + i, col0 + c);
            double io;
            if (mode == EvalMode::Noisy) {
                io = cfg_.channel_calibration
                         ? calibratedNoisyDot(ddot_, calibration_, x,
                                              y, rng)
                         : ddot_.analyticNoisyDot(x, y, rng);
                if (cfg_.noise.enable_systematic_noise) {
                    double eps = rng.gaussian(
                        0.0, cfg_.noise.systematic_output_std);
                    io *= (1.0 + eps);
                }
            } else {
                io = DDot::idealDot(x, y);
            }
            out(row0 + r, col0 + c) += io * scale;
        }
    }
}

Matrix
Dptc::multiply(const Matrix &a, const Matrix &b, EvalMode mode)
{
    if (a.rows() > cfg_.nh || a.cols() > cfg_.nlambda ||
        b.rows() != a.cols() || b.cols() > cfg_.nv) {
        lt_fatal("Dptc::multiply shape [", a.rows(), ",", a.cols(),
                 "]x[", b.rows(), ",", b.cols(),
                 "] exceeds core geometry [", cfg_.nh, ",", cfg_.nlambda,
                 "]x[", cfg_.nlambda, ",", cfg_.nv, "]");
    }
    if (mode == EvalMode::Ideal) {
        Matrix out(a.rows(), b.cols(), 0.0);
        multiplyNormalized(a, b, 0, 0, 0, mode, 1.0, rng_, out);
        return out;
    }
    double beta_a = maxAbs(a);
    double beta_b = maxAbs(b);
    Matrix a_hat = normalizeQuantize(a, beta_a, cfg_.input_bits);
    Matrix b_hat = normalizeQuantize(b, beta_b, cfg_.input_bits);
    Matrix out(a.rows(), b.cols(), 0.0);
    multiplyNormalized(a_hat, b_hat, 0, 0, 0, mode, beta_a * beta_b,
                       rng_, out);
    return out;
}

void
Dptc::gemmTiles(const Matrix &a_hat, const Matrix &b_hat, EvalMode mode,
                double scale, size_t tile_begin, size_t tile_end,
                Matrix &out, uint64_t stream_seed) const
{
    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    const size_t tiles_c = cdiv(b_hat.cols(), cfg_.nv);
    const size_t tiles_k = cdiv(a_hat.cols(), cfg_.nlambda);

    Rng unused(0); // non-noisy modes never draw from it
    for (size_t t = tile_begin; t < tile_end; ++t) {
        const size_t r0 = (t / tiles_c) * cfg_.nh;
        const size_t c0 = (t % tiles_c) * cfg_.nv;
        if (mode == EvalMode::Noisy) {
            // Counter-based seeding: (stream, output-tile index)
            // alone determines the tile's noise; its k-slices consume
            // the stream in fixed ascending order.
            Rng tile_rng(deriveSeed(stream_seed, t));
            for (size_t tk = 0; tk < tiles_k; ++tk)
                multiplyNormalized(a_hat, b_hat, r0, c0,
                                   tk * cfg_.nlambda, mode, scale,
                                   tile_rng, out);
        } else {
            for (size_t tk = 0; tk < tiles_k; ++tk)
                multiplyNormalized(a_hat, b_hat, r0, c0,
                                   tk * cfg_.nlambda, mode, scale,
                                   unused, out);
        }
    }
}

Matrix
Dptc::gemm(const Matrix &a, const Matrix &b, EvalMode mode) const
{
    if (a.cols() != b.rows())
        lt_fatal("Dptc::gemm inner dimension mismatch: ", a.cols(),
                 " vs ", b.rows());
    Matrix out(a.rows(), b.cols(), 0.0);
    const size_t tiles = outputTilesFor(a.rows(), b.cols());
    if (mode == EvalMode::Ideal) {
        gemmTiles(a, b, mode, 1.0, 0, tiles, out, cfg_.seed);
        return out;
    }

    double beta_a = maxAbs(a);
    double beta_b = maxAbs(b);
    Matrix a_hat = normalizeQuantize(a, beta_a, cfg_.input_bits);
    Matrix b_hat = normalizeQuantize(b, beta_b, cfg_.input_bits);
    gemmTiles(a_hat, b_hat, mode, beta_a * beta_b, 0, tiles, out,
              cfg_.seed);
    return out;
}

size_t
Dptc::invocationsFor(size_t m, size_t k, size_t n) const
{
    auto ceil_div = [](size_t a, size_t b) { return (a + b - 1) / b; };
    return ceil_div(m, cfg_.nh) * ceil_div(k, cfg_.nlambda) *
           ceil_div(n, cfg_.nv);
}

} // namespace core
} // namespace lt
