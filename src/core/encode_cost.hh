/**
 * @file
 * Operand-encoding cost model (paper Eq. 6).
 *
 * For a [Nh, Nlambda] x [Nlambda, Nv] one-shot MM, the crossbar's
 * intra-core broadcast lets every modulated WDM signal feed a whole
 * row/column of DDot units, so only (Nh*Nlambda + Nlambda*Nv) scalar
 * encodings (DAC conversions + MZM modulations) are needed, versus
 * 2*Nh*Nv*Nlambda for unshared per-engine modulation — a saving of
 * 2*Nh*Nv / (Nh + Nv) (12x at Nh = Nv = 12).
 */

#ifndef LT_CORE_ENCODE_COST_HH
#define LT_CORE_ENCODE_COST_HH

#include <cstddef>

namespace lt {
namespace core {

/** Scalar encodings per shot with crossbar operand sharing (Eq. 6). */
inline size_t
sharedEncodingOps(size_t nh, size_t nv, size_t nlambda)
{
    return nh * nlambda + nlambda * nv;
}

/** Scalar encodings per shot without sharing (per-DDot modulation). */
inline size_t
unsharedEncodingOps(size_t nh, size_t nv, size_t nlambda)
{
    return 2 * nh * nv * nlambda;
}

/** Encoding-cost reduction factor 2*Nh*Nv / (Nh + Nv). */
inline double
sharingFactor(size_t nh, size_t nv)
{
    return 2.0 * static_cast<double>(nh) * static_cast<double>(nv) /
           static_cast<double>(nh + nv);
}

} // namespace core
} // namespace lt

#endif // LT_CORE_ENCODE_COST_HH
