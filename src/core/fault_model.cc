#include "fault_model.hh"

#include <cstring>

#include "util/rng.hh"

namespace lt {
namespace core {

bool
FaultModel::corruptTile(size_t replica, uint64_t stream_seed,
                        size_t tile, Matrix &out, size_t row0,
                        size_t rows, size_t col0, size_t cols,
                        double scale) const
{
    if (!cfg_.enabled)
        return false;
    const ReplicaFaultConfig *rc = cfg_.replica(replica);
    if (rc == nullptr)
        return false;

    // One decision stream per (replica, GEMM stream, tile): the same
    // deriveSeed chain the noise pipeline addresses tiles with, so
    // whether (and how) a fault fires never depends on thread count
    // or call interleaving.
    Rng rng(deriveSeed(deriveSeed(cfg_.seed, replica),
                       deriveSeed(stream_seed, tile)));
    if (rc->activation_prob < 1.0 &&
        !rng.bernoulli(rc->activation_prob))
        return false;

    // A dead shard dominates every other kind: the replica produced
    // nothing, so the accumulated region is simply zero.
    if (rc->dead) {
        for (size_t r = 0; r < rows; ++r)
            for (size_t c = 0; c < cols; ++c)
                out(row0 + r, col0 + c) = 0.0;
        return true;
    }

    bool injected = false;
    if (rc->drift_gain != 1.0) {
        for (size_t r = 0; r < rows; ++r)
            for (size_t c = 0; c < cols; ++c)
                out(row0 + r, col0 + c) *= rc->drift_gain;
        injected = true;
    }
    if (rc->stuck_channel >= 0 && cols > 0) {
        const size_t c =
            static_cast<size_t>(rc->stuck_channel) % cols;
        for (size_t r = 0; r < rows; ++r)
            out(row0 + r, col0 + c) = rc->stuck_value * scale;
        injected = true;
    }
    if (rc->bitflip_prob > 0.0 && rng.bernoulli(rc->bitflip_prob) &&
        rows > 0 && cols > 0) {
        const size_t r = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(rows) - 1));
        const size_t c = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(cols) - 1));
        double &v = out(row0 + r, col0 + c);
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        bits ^= uint64_t{1} << 59; // high exponent bit: x 2^(+-128)
        std::memcpy(&v, &bits, sizeof(bits));
        injected = true;
    }
    return injected;
}

} // namespace core
} // namespace lt
