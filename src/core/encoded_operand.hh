/**
 * @file
 * EncodedOperand: a GEMM operand prepared once for the DPTC datapath.
 *
 * The paper's DPTC is *dynamically operated*: operands stream through
 * DAC + MZM encoding every shot, so a stationary operand (layer
 * weights during decode) costs the same to re-encode on every GEMM —
 * in the software model that was a full maxAbs + normalizeQuantize
 * pass over the weight matrix per call, plus a strided re-gather of
 * every B-tile column inside the tile kernel. An EncodedOperand is
 * the once-per-weight-version result of that preparation:
 *
 *  - beta:   the max-abs normalization scale (Section III-B),
 *  - data:   the beta-normalized, DAC-quantized values, laid out for
 *            the tile kernel:
 *              A side — row-major panels (a row's k-slice is one
 *              contiguous read, exactly the hoisted x-gather),
 *              B side — column-major-packed tiles: for each (output
 *              column tile, k-slice) block, the up-to-Nv columns are
 *              stored as contiguous length-Nlambda runs, so the hot
 *              loop reads each y-vector as a straight pointer walk
 *              instead of Nh strided gathers per tile.
 *
 * Dptc::encode() is the only producer; Dptc::gemmTiles() (the packed
 * overload) is the consumer. Encoding is pure and deterministic, so a
 * GEMM on pre-encoded operands is bit-identical to encoding inline.
 */

#ifndef LT_CORE_ENCODED_OPERAND_HH
#define LT_CORE_ENCODED_OPERAND_HH

#include <cstddef>
#include <vector>

#include "util/linalg.hh"

namespace lt {
namespace core {

/** Which side of the product an operand was packed for. */
enum class OperandSide
{
    A,  ///< left operand [m, k]: row-major panels
    B,  ///< right operand [k, n]: column-major-packed tiles
};

/** A beta-normalized, quantized, kernel-layout GEMM operand. */
class EncodedOperand
{
  public:
    EncodedOperand() = default;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Max-abs normalization scale (1.0 for Ideal-mode encodes). */
    double beta() const { return beta_; }

    /** DAC width the values were quantized to (0 = raw, Ideal mode). */
    int bits() const { return bits_; }

    OperandSide side() const { return side_; }

    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** A side: pointer to the contiguous row `r` (length cols()). */
    const double *
    row(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /**
     * B side: pointer to the contiguous packed column `c` (local to
     * the tile, length nlambda) of k-slice `tk` in column tile `tc`.
     */
    const double *
    tileColumn(size_t tc, size_t tk, size_t c) const
    {
        return data_.data() +
               ((tc * tiles_k_ + tk) * nv_ + c) * nlambda_;
    }

    /** B-side packing geometry (0 on A-side operands). */
    size_t packedNv() const { return nv_; }
    size_t packedNlambda() const { return nlambda_; }

    /**
     * Unpack to a dense [rows, cols] matrix of the normalized,
     * quantized values (what Dptc::normalizeQuantize would return).
     * Test/diagnostic helper, not a hot path.
     */
    Matrix normalized() const;

  private:
    friend class Dptc;

    size_t rows_ = 0;
    size_t cols_ = 0;
    double beta_ = 0.0;
    int bits_ = 0;
    OperandSide side_ = OperandSide::A;

    // B-side tile geometry the data was packed for.
    size_t nv_ = 0;
    size_t nlambda_ = 0;
    size_t tiles_k_ = 0;

    std::vector<double> data_;
};

} // namespace core
} // namespace lt

#endif // LT_CORE_ENCODED_OPERAND_HH
