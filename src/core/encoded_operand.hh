/**
 * @file
 * EncodedOperand: a GEMM operand prepared once for the DPTC datapath.
 *
 * The paper's DPTC is *dynamically operated*: operands stream through
 * DAC + MZM encoding every shot, so a stationary operand (layer
 * weights during decode) costs the same to re-encode on every GEMM —
 * in the software model that was a full maxAbs + normalizeQuantize
 * pass over the weight matrix per call, plus a strided re-gather of
 * every B-tile column inside the tile kernel. An EncodedOperand is
 * the once-per-weight-version result of that preparation:
 *
 *  - beta:   the max-abs normalization scale (Section III-B),
 *  - data:   the beta-normalized, DAC-quantized values, laid out for
 *            the tile kernel:
 *              A side — row-major panels (a row's k-slice is one
 *              contiguous read, exactly the hoisted x-gather),
 *              B side — column-major-packed tiles: for each (output
 *              column tile, k-slice) block, the up-to-Nv columns are
 *              stored as contiguous length-Nlambda runs, so the hot
 *              loop reads each y-vector as a straight pointer walk
 *              instead of Nh strided gathers per tile.
 *
 * Dptc::encode() is the only producer of fresh encodings; B-side
 * operands additionally support *incremental growth* for the decode
 * K/V caches: appendColumn()/appendRow() quantize one new K column /
 * V row straight into the packed layout (one contiguous nlambda-run
 * per k-slice for a column append) without touching the existing
 * blocks, and reserve() pre-sizes the packed storage for a maximum
 * context so the block backing pointers stay stable across a whole
 * decode. Growth is bit-compatible with re-encoding the grown dense
 * operand from scratch as long as beta still covers the new values;
 * when it does not, the owner rebuilds via Dptc::encode (the KV-cache
 * requantization path). Dptc::gemmTiles() (the packed overload) is
 * the consumer. Encoding is pure and deterministic, so a GEMM on
 * pre-encoded operands is bit-identical to encoding inline.
 */

#ifndef LT_CORE_ENCODED_OPERAND_HH
#define LT_CORE_ENCODED_OPERAND_HH

#include <cstddef>
#include <vector>

#include "util/linalg.hh"

namespace lt {
namespace core {

/** Which side of the product an operand was packed for. */
enum class OperandSide
{
    A,  ///< left operand [m, k]: row-major panels
    B,  ///< right operand [k, n]: column-major-packed tiles
};

/**
 * What an encoding caches for — attribution for the GemmStats
 * encode-counter split (weight-plan hits/misses vs activation/KV
 * hits/misses), so a dead KV cache fails loudly in the same counters
 * a dead weight cache does.
 */
enum class OperandKind
{
    Transient,  ///< encoded inline for one product, never cached
    Weight,     ///< a static-weight plan (nn WeightPlanCache)
    KvCache,    ///< a growing decode K/V operand (AttentionKvCache)
};

/** A beta-normalized, quantized, kernel-layout GEMM operand. */
class EncodedOperand
{
  public:
    EncodedOperand() = default;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Max-abs normalization scale (1.0 for Ideal-mode encodes). */
    double beta() const { return beta_; }

    /**
     * Per-row normalization scale of a stacked A-side operand
     * (Dptc::encodeStackedRows): row r was quantized against its OWN
     * max-abs — exactly the beta a solo single-row encode of that row
     * would have used — so a stacked product can reproduce each
     * request's solo results bit-identically. Plain encodes have no
     * per-row betas and fall back to the shared beta().
     */
    double
    rowBeta(size_t r) const
    {
        return row_betas_.empty() ? beta_ : row_betas_[r];
    }

    /** DAC width the values were quantized to (0 = raw, Ideal mode). */
    int bits() const { return bits_; }

    OperandSide side() const { return side_; }

    OperandKind kind() const { return kind_; }
    void setKind(OperandKind kind) { kind_ = kind; }

    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** A side: pointer to the contiguous row `r` (length cols()). */
    const double *
    row(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /**
     * B side: pointer to the contiguous packed column `c` (local to
     * the tile, length nlambda) of k-slice `tk` in column tile `tc`.
     */
    const double *
    tileColumn(size_t tc, size_t tk, size_t c) const
    {
        return data_.data() +
               ((tc * tiles_k_cap_ + tk) * nv_ + c) * nlambda_;
    }

    /** B-side packing geometry (0 on A-side operands). */
    size_t packedNv() const { return nv_; }
    size_t packedNlambda() const { return nlambda_; }

    /**
     * B-side k-tile capacity: the stride (in k-slices) between
     * consecutive column-tile blocks. encode() sets it to the exact
     * k-tile count; reserve() raises it so row appends never
     * re-stride the packed blocks.
     */
    size_t packedKTileCapacity() const { return tiles_k_cap_; }

    // ---- incremental B-side growth (decode K/V caches) ------------

    /**
     * Pre-size the packed storage of a B-side operand for growth to
     * [max_rows, max_cols]: the k-tile stride is raised to cover
     * max_rows (re-packing the existing blocks once, here, instead of
     * on every append) and the full block footprint is allocated
     * zero-filled, so every subsequent appendColumn/appendRow up to
     * the reserved shape writes in place — the backing pointers of
     * all packed blocks are stable across the whole decode.
     */
    void reserve(size_t max_rows, size_t max_cols);

    /**
     * Append one column (length rows()) to a B-side operand, growing
     * cols() by one. `vals` are in the same (pre-normalization)
     * domain encode() consumed; each value is beta-normalized and
     * quantized exactly as a fresh encode would, and written as one
     * contiguous nlambda-run per k-slice of the column's tile — O(k)
     * work, no re-stride of existing blocks.
     *
     * Returns false (without writing) when a value's magnitude
     * exceeds beta(): the append would disagree with a fresh
     * re-encode of the grown operand (whose beta would be larger), so
     * the owner must rebuild via Dptc::encode instead.
     */
    bool appendColumn(const double *vals, size_t n);

    /**
     * Append one row (length cols()) to a B-side operand, growing
     * rows() by one — the V-cache append. Same beta contract as
     * appendColumn. Crossing into a k-slice beyond the reserved
     * k-tile capacity re-strides the packed blocks (geometric
     * growth); reserve() up front keeps appends re-stride-free.
     */
    bool appendRow(const double *vals, size_t n);

    /**
     * Re-quantize a B-side operand in place from its dense source
     * (same or grown shape) under a new beta, preserving the reserved
     * packed capacity — the KV-cache beta-growth path: when a new
     * token's magnitude outgrows the cached beta, every stored value
     * changes, but the backing blocks need not move. Bit-identical to
     * a fresh encode of `m` when new_beta == maxAbs(m).
     */
    void requantize(const ConstMatrixView &m, double new_beta);

    /**
     * Unpack to a dense [rows, cols] matrix of the normalized,
     * quantized values (what Dptc::normalizeQuantize would return).
     * Test/diagnostic helper, not a hot path.
     */
    Matrix normalized() const;

    /**
     * Backing-store pointer (test/diagnostic: the packed-block
     * pointer-stability assertions of the decode caches).
     */
    const double *packedData() const { return data_.data(); }

  private:
    friend class Dptc;

    /** Beta-normalize + DAC-quantize one raw value. */
    double quantizeValue(double v) const;

    /** Grow the k-tile stride to `new_cap`, re-packing blocks. */
    void growKTileCapacity(size_t new_cap);

    /** Column-tile blocks the current storage can hold. */
    size_t
    blockCapacity() const
    {
        const size_t block = tiles_k_cap_ * nv_ * nlambda_;
        return block == 0 ? 0 : data_.size() / block;
    }

    size_t rows_ = 0;
    size_t cols_ = 0;
    double beta_ = 0.0;
    int bits_ = 0;

    /**
     * Per-row betas of a stacked A-side encode (empty otherwise).
     * See rowBeta().
     */
    std::vector<double> row_betas_;

    /**
     * True when beta was derived from the operand's max-abs (any
     * non-Ideal encode): growth past it must rebuild. Ideal-mode
     * encodes pin beta to 1.0 whatever the values, so appends never
     * invalidate them.
     */
    bool dynamic_beta_ = false;
    OperandSide side_ = OperandSide::A;
    OperandKind kind_ = OperandKind::Transient;

    // B-side tile geometry the data was packed for.
    size_t nv_ = 0;
    size_t nlambda_ = 0;
    size_t tiles_k_ = 0;      ///< k-tiles actually populated
    size_t tiles_k_cap_ = 0;  ///< k-tile stride between blocks

    std::vector<double> data_;
};

} // namespace core
} // namespace lt

#endif // LT_CORE_ENCODED_OPERAND_HH
