#include "ptc_interface.hh"

namespace lt {
namespace core {

std::vector<PtcCapabilities>
tableOnePtcDesigns()
{
    // Column order and properties exactly as in paper Table I.
    return {
        {"MZI array", "Shen+ [47]",
         {false, true},   // operand 1: static, full-range
         {true, true},    // operand 2: dynamic, full-range
         MappingCost::High, OperationType::MVM},
        {"PCM crossbar", "Feldmann+ [16]",
         {false, false},  // static, positive-only
         {true, false},   // dynamic, positive-only
         MappingCost::Medium, OperationType::MM},
        {"MRR bank 1", "Tait+ [52]",
         {true, true},    // dynamic, full-range
         {true, false},   // dynamic, positive-only
         MappingCost::Low, OperationType::MVM},
        {"MRR bank 2", "Sunny+ [51]",
         {true, false},
         {true, false},
         MappingCost::Low, OperationType::MVM},
        {"DPTC (ours)", "this work",
         {true, true},
         {true, true},
         MappingCost::Low, OperationType::MM},
    };
}

const char *
toString(MappingCost cost)
{
    switch (cost) {
      case MappingCost::Low:
        return "Low";
      case MappingCost::Medium:
        return "Medium";
      case MappingCost::High:
        return "High";
    }
    return "?";
}

const char *
toString(OperationType op)
{
    switch (op) {
      case OperationType::MVM:
        return "MVM";
      case OperationType::MM:
        return "MM";
    }
    return "?";
}

} // namespace core
} // namespace lt
