/**
 * @file
 * Per-wavelength calibration — the "more advanced noise-mitigation
 * techniques" extension the paper points to ([20], [56]).
 *
 * The deterministic part of the DDot non-ideality (Eq. 9) has two
 * pieces per channel i:
 *   - a multiplicative gain g_i = 2 t_i k_i |sin phi_i| (second-order
 *     small: the design point sits at a local optimum), and
 *   - an additive term a_i (x_i^2 - y_i^2) with
 *     a_i = (2 k_i^2 - 1) / 2 (FIRST-order in the kappa dispersion —
 *     this is what dominates at high wavelength counts).
 *
 * Both are static, so a calibration phase can measure them with basis
 * probes: (e_i, e_i) returns g_i; (e_i, 0) returns a_i. At run time
 * the controller already knows the encoded values, so it can subtract
 * sum_i a_i (x_i^2 - y_i^2) digitally — and because operands are
 * broadcast across the crossbar, the per-vector correction term is
 * computed once and reused across a whole row/column of outputs
 * (O(N) amortized, like the encoding itself). Stochastic encoding
 * noise is zero-mean and remains uncorrected.
 */

#ifndef LT_CORE_CALIBRATION_HH
#define LT_CORE_CALIBRATION_HH

#include <vector>

#include "core/ddot.hh"

namespace lt {
namespace core {

/** Measured per-channel calibration coefficients. */
struct ChannelCalibration
{
    std::vector<double> gain;     ///< g_i from (e_i, e_i) probes
    std::vector<double> additive; ///< a_i from (e_i, 0) probes

    size_t channels() const { return gain.size(); }

    /** Mean multiplicative gain (used for global rescaling). */
    double meanGain() const;

    /** The deterministic additive error of one operand pair. */
    double additiveCorrection(std::span<const double> x,
                              std::span<const double> y) const;
};

/**
 * Probe a DDot with basis vectors to measure each channel's gain and
 * additive coefficient. Probing averages `probes` repetitions so the
 * stochastic encoding noise integrates out (a real system would do
 * the same during its calibration phase).
 */
ChannelCalibration calibrateDDot(const DDot &ddot, Rng &rng,
                                 int probes = 64);

/**
 * Calibrated noisy dot product: evaluate the regular Eq. 9 path, then
 * subtract the measured additive correction and rescale by the mean
 * gain.
 */
double calibratedNoisyDot(const DDot &ddot,
                          const ChannelCalibration &cal,
                          std::span<const double> x,
                          std::span<const double> y, Rng &rng);

} // namespace core
} // namespace lt

#endif // LT_CORE_CALIBRATION_HH
