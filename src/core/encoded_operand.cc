#include "encoded_operand.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/quantize.hh"

namespace lt {
namespace core {

double
EncodedOperand::quantizeValue(double v) const
{
    // Matches Dptc::encode element-for-element: all-zero operands
    // (beta == 0) encode to zeros.
    return beta_ > 0.0 ? quantizeSymmetricUnit(v / beta_, bits_) : 0.0;
}

void
EncodedOperand::growKTileCapacity(size_t new_cap)
{
    if (new_cap <= tiles_k_cap_)
        return;
    // Re-stride the column-tile blocks onto the wider k stride. This
    // is the cold path reserve() exists to avoid: with the decode
    // caches reserved at prefill, appends never land here.
    const size_t blocks = blockCapacity();
    const size_t old_block = tiles_k_cap_ * nv_ * nlambda_;
    const size_t new_block = new_cap * nv_ * nlambda_;
    std::vector<double> grown(blocks * new_block, 0.0);
    for (size_t tc = 0; tc < blocks; ++tc)
        std::copy(data_.begin() + tc * old_block,
                  data_.begin() + tc * old_block + old_block,
                  grown.begin() + tc * new_block);
    data_ = std::move(grown);
    tiles_k_cap_ = new_cap;
}

void
EncodedOperand::reserve(size_t max_rows, size_t max_cols)
{
    if (side_ != OperandSide::B)
        lt_fatal("EncodedOperand::reserve: only B-side operands grow");
    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    growKTileCapacity(
        std::max(tiles_k_cap_, cdiv(std::max(max_rows, rows_),
                                    nlambda_)));
    const size_t blocks =
        std::max(blockCapacity(),
                 cdiv(std::max(max_cols, cols_), nv_));
    data_.resize(blocks * tiles_k_cap_ * nv_ * nlambda_, 0.0);
}

bool
EncodedOperand::appendColumn(const double *vals, size_t n)
{
    if (side_ != OperandSide::B)
        lt_fatal("EncodedOperand::appendColumn: A-side operands are "
                 "row-major panels, not packed columns");
    if (n != rows_)
        lt_fatal("EncodedOperand::appendColumn: column of ", n,
                 " values on a ", rows_, "-row operand");
    if (dynamic_beta_)
        for (size_t k = 0; k < n; ++k)
            if (std::abs(vals[k]) > beta_)
                return false; // fresh re-encode would pick a new beta
    const size_t tc = cols_ / nv_;
    const size_t ci = cols_ % nv_;
    if (tc >= blockCapacity()) {
        // Unreserved growth: extend by whole blocks, geometrically,
        // so repeated appends stay amortized O(k).
        const size_t block = tiles_k_cap_ * nv_ * nlambda_;
        const size_t want = (tc + 1) * block;
        if (data_.capacity() < want)
            data_.reserve(std::max(want, 2 * data_.capacity()));
        data_.resize(want, 0.0);
    }
    // One contiguous nlambda-run per k-slice: the packed layout's
    // append is a straight quantize-and-store walk.
    for (size_t tk = 0; tk * nlambda_ < rows_; ++tk) {
        double *run =
            data_.data() +
            ((tc * tiles_k_cap_ + tk) * nv_ + ci) * nlambda_;
        const size_t depth = std::min(nlambda_, rows_ - tk * nlambda_);
        for (size_t ki = 0; ki < depth; ++ki)
            run[ki] = quantizeValue(vals[tk * nlambda_ + ki]);
    }
    cols_ += 1;
    return true;
}

bool
EncodedOperand::appendRow(const double *vals, size_t n)
{
    if (side_ != OperandSide::B)
        lt_fatal("EncodedOperand::appendRow: A-side operands are "
                 "row-major panels; append to the dense mirror");
    if (n != cols_)
        lt_fatal("EncodedOperand::appendRow: row of ", n,
                 " values on a ", cols_, "-column operand");
    if (dynamic_beta_)
        for (size_t c = 0; c < n; ++c)
            if (std::abs(vals[c]) > beta_)
                return false;
    const size_t tk = rows_ / nlambda_;
    const size_t ki = rows_ % nlambda_;
    if (tk >= tiles_k_cap_)
        growKTileCapacity(std::max<size_t>(tk + 1, 2 * tiles_k_cap_));
    if (blockCapacity() == 0 && cols_ > 0)
        data_.resize(((cols_ - 1) / nv_ + 1) * tiles_k_cap_ * nv_ *
                         nlambda_,
                     0.0);
    for (size_t c = 0; c < cols_; ++c)
        data_[(((c / nv_) * tiles_k_cap_ + tk) * nv_ + c % nv_) *
                  nlambda_ +
              ki] = quantizeValue(vals[c]);
    rows_ += 1;
    tiles_k_ = tk + 1;
    return true;
}

void
EncodedOperand::requantize(const ConstMatrixView &m, double new_beta)
{
    if (side_ != OperandSide::B)
        lt_fatal("EncodedOperand::requantize: only B-side operands "
                 "grow in place");
    if (m.rows() < rows_ || m.cols() < cols_)
        lt_fatal("EncodedOperand::requantize only grows: [", rows_,
                 ",", cols_, "] -> [", m.rows(), ",", m.cols(), "]");
    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    rows_ = m.rows();
    cols_ = m.cols();
    beta_ = new_beta;
    tiles_k_ = cdiv(rows_, nlambda_);
    growKTileCapacity(tiles_k_);
    const size_t blocks =
        std::max(blockCapacity(), cdiv(cols_, nv_));
    data_.resize(blocks * tiles_k_cap_ * nv_ * nlambda_, 0.0);
    for (size_t k = 0; k < rows_; ++k) {
        const size_t tk = k / nlambda_;
        const size_t ki = k % nlambda_;
        for (size_t c = 0; c < cols_; ++c)
            data_[(((c / nv_) * tiles_k_cap_ + tk) * nv_ + c % nv_) *
                      nlambda_ +
                  ki] = quantizeValue(m(k, c));
    }
}

Matrix
EncodedOperand::normalized() const
{
    Matrix out(rows_, cols_, 0.0);
    if (side_ == OperandSide::A) {
        for (size_t i = 0; i < out.data().size(); ++i)
            out.data()[i] = data_[i];
        return out;
    }
    for (size_t k = 0; k < rows_; ++k) {
        const size_t tk = k / nlambda_;
        const size_t ki = k % nlambda_;
        for (size_t c = 0; c < cols_; ++c) {
            const size_t tc = c / nv_;
            const size_t ci = c % nv_;
            out(k, c) =
                data_[((tc * tiles_k_cap_ + tk) * nv_ + ci) *
                          nlambda_ +
                      ki];
        }
    }
    return out;
}

} // namespace core
} // namespace lt
