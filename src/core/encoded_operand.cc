#include "encoded_operand.hh"

namespace lt {
namespace core {

Matrix
EncodedOperand::normalized() const
{
    Matrix out(rows_, cols_, 0.0);
    if (side_ == OperandSide::A) {
        for (size_t i = 0; i < out.data().size(); ++i)
            out.data()[i] = data_[i];
        return out;
    }
    for (size_t k = 0; k < rows_; ++k) {
        const size_t tk = k / nlambda_;
        const size_t ki = k % nlambda_;
        for (size_t c = 0; c < cols_; ++c) {
            const size_t tc = c / nv_;
            const size_t ci = c % nv_;
            out(k, c) =
                data_[((tc * tiles_k_ + tk) * nv_ + ci) * nlambda_ +
                      ki];
        }
    }
    return out;
}

} // namespace core
} // namespace lt
