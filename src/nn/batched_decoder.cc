#include "batched_decoder.hh"

#include <stdexcept>
#include <string>

#include "obs/trace.hh"

namespace lt {
namespace nn {

std::vector<Matrix>
BatchedDecoder::step(const std::vector<InferenceSession *> &sessions,
                     const std::vector<int> &tokens)
{
    const size_t n = sessions.size();
    if (n == 0)
        throw std::invalid_argument(
            "BatchedDecoder::step on an empty batch");
    if (tokens.size() != n)
        throw std::invalid_argument(
            "BatchedDecoder::step: " + std::to_string(tokens.size()) +
            " tokens for " + std::to_string(n) + " sessions");

    // Validate everything BEFORE mutating any session: a failed batch
    // must not leave some K/V caches advanced and others not.
    const TransformerClassifier *model = nullptr;
    GemmBackend *backend = nullptr;
    for (size_t i = 0; i < n; ++i) {
        InferenceSession *s = sessions[i];
        if (s == nullptr)
            throw std::invalid_argument(
                "BatchedDecoder::step: null session");
        for (size_t j = 0; j < i; ++j)
            if (sessions[j] == s)
                throw std::invalid_argument(
                    "BatchedDecoder::step: session appears twice in "
                    "one batch (it would decode two tokens at once)");
        if (i == 0) {
            model = s->model_;
            backend = s->ctx_.backend;
        } else if (s->model_ != model) {
            throw std::invalid_argument(
                "BatchedDecoder::step: all sessions must share one "
                "model (the fused projections read one weight set)");
        } else if (s->ctx_.backend != backend) {
            throw std::invalid_argument(
                "BatchedDecoder::step: all sessions must share one "
                "backend");
        }
        if (s->len_ == 0)
            throw std::invalid_argument(
                "BatchedDecoder::step: session " + std::to_string(i) +
                " is not prefilled — a fresh session's first token is "
                "full-sequence prefill traffic, not a decode step");
        if (s->len_ + 1 > model->config().max_tokens)
            throw std::invalid_argument(
                "BatchedDecoder::step: session " + std::to_string(i) +
                " would decode past the positional table: context of " +
                std::to_string(s->len_ + 1) + " tokens exceeds "
                "max_tokens = " +
                std::to_string(model->config().max_tokens));
    }
    const TransformerConfig &cfg = model->config();

    obs::TraceScope span("decoder/step", obs::kNoRequest, "batch",
                         static_cast<int64_t>(n), "layers",
                         static_cast<int64_t>(model->depth()));

    // Embed each request's new token at ITS position (identical to
    // the row the solo decodeStep builds).
    std::vector<Matrix> xs(n);
    std::vector<RunContext *> ctxs(n);
    for (size_t i = 0; i < n; ++i) {
        InferenceSession &s = *sessions[i];
        xs[i] = model->token_embed_->embedRow(tokens[i]);
        for (size_t c = 0; c < cfg.dim; ++c)
            xs[i](0, c) += model->pos_(s.len_, c);
        ctxs[i] = &s.ctx_;
    }

    // Lockstep through the layers: every projection and both dynamic
    // attention products fuse the N requests into one gemmBatch.
    std::vector<AttentionKvCache *> kvs(n);
    for (size_t l = 0; l < model->depth(); ++l) {
        for (size_t i = 0; i < n; ++i)
            kvs[i] = &sessions[i]->kv_[l];
        xs = model->block(l).decodeStepBatch(xs, kvs, ctxs);
    }

    // Final LN + pooling per request (row-wise), then the LM head as
    // one fused batch — the session's logitsFromNormedRow, verbatim.
    LayerNormCache ln_scratch;
    std::vector<Matrix> pooled(n);
    for (size_t i = 0; i < n; ++i) {
        InferenceSession &s = *sessions[i];
        Matrix normed = model->final_ln_.forward(xs[i], ln_scratch);
        if (cfg.pooling == Pooling::Mean) {
            pooled[i] = Matrix(1, cfg.dim);
            for (size_t c = 0; c < cfg.dim; ++c) {
                s.pooled_sum_(0, c) += normed(0, c);
                pooled[i](0, c) = s.pooled_sum_(0, c) /
                                  static_cast<double>(s.len_ + 1);
            }
        } else {
            pooled[i] = std::move(normed);
        }
    }
    std::vector<Matrix> logits = model->head_.forwardBatch(pooled, ctxs);

    for (size_t i = 0; i < n; ++i) {
        sessions[i]->tokens_.push_back(tokens[i]);
        sessions[i]->len_ += 1;
    }
    return logits;
}

} // namespace nn
} // namespace lt
