#include "pruning.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace nn {

PaperModelConfig
prunedModel(const PaperModelConfig &model, const PruningConfig &pruning)
{
    if (!pruning.valid())
        lt_fatal("pruning keep-ratios must be in (0, 1]");
    PaperModelConfig out = model;
    out.name = model.name + "-pruned";

    // Head pruning removes whole heads; the per-head dim dk stays.
    size_t dk = model.headDim();
    out.heads = std::max<size_t>(
        1, static_cast<size_t>(
               std::llround(model.heads * pruning.head_keep)));

    // Channel pruning shrinks dk (token-embedding channels); keep at
    // least one channel per head.
    size_t dk_kept = std::max<size_t>(
        1,
        static_cast<size_t>(std::llround(dk * pruning.channel_keep)));
    out.dim = out.heads * dk_kept;
    // FFN hidden keeps the model's expansion ratio.
    double ratio = static_cast<double>(model.mlp_hidden) /
                   static_cast<double>(model.dim);
    out.mlp_hidden = static_cast<size_t>(
        std::llround(ratio * static_cast<double>(out.dim)));

    // Token pruning shortens the sequence (CLS always kept).
    out.seq_len = std::max<size_t>(
        2, static_cast<size_t>(
               std::llround(model.seq_len * pruning.token_keep)));
    return out;
}

Workload
prunedWorkload(const PaperModelConfig &model,
               const PruningConfig &pruning)
{
    return extractWorkload(prunedModel(model, pruning));
}

} // namespace nn
} // namespace lt
