#include "tensor_ops.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hh"

namespace lt {
namespace nn {

void
addInPlace(Matrix &out, const Matrix &in)
{
    if (out.rows() != in.rows() || out.cols() != in.cols())
        lt_panic("addInPlace shape mismatch");
    for (size_t i = 0; i < out.data().size(); ++i)
        out.data()[i] += in.data()[i];
}

Matrix
scaled(const Matrix &a, double s)
{
    Matrix out = a;
    for (double &v : out.data())
        v *= s;
    return out;
}

void
appendRow(Matrix &m, const Matrix &row)
{
    if (row.rows() != 1)
        lt_panic("appendRow expects a [1, n] row");
    if (m.rows() == 0) {
        m = row;
        return;
    }
    if (m.cols() != row.cols())
        lt_panic("appendRow width mismatch: ", m.cols(), " vs ",
                 row.cols());
    const size_t r = m.rows();
    m.resizeRows(r + 1); // in place: amortized O(1) once reserved
    for (size_t c = 0; c < m.cols(); ++c)
        m(r, c) = row(0, c);
}

void
appendColumn(Matrix &m, const Matrix &row)
{
    if (row.rows() != 1)
        lt_panic("appendColumn expects a [1, n] row");
    if (m.rows() == 0) {
        m = row.transposed();
        return;
    }
    if (m.rows() != row.cols())
        lt_panic("appendColumn height mismatch: ", m.rows(), " vs ",
                 row.cols());
    const size_t c = m.cols();
    m.resizeCols(c + 1); // in-place re-stride: no realloc once reserved
    for (size_t r = 0; r < m.rows(); ++r)
        m(r, c) = row(0, r);
}

Matrix
sliceCols(const Matrix &m, size_t c0, size_t cols)
{
    if (c0 + cols > m.cols())
        lt_panic("sliceCols out of range");
    Matrix out(m.rows(), cols);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < cols; ++c)
            out(r, c) = m(r, c0 + c);
    return out;
}

void
pasteCols(Matrix &m, const Matrix &block, size_t c0)
{
    if (block.rows() != m.rows() || c0 + block.cols() > m.cols())
        lt_panic("pasteCols shape mismatch");
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < block.cols(); ++c)
            m(r, c0 + c) = block(r, c);
}

Matrix
rowSoftmax(const Matrix &scores)
{
    Matrix p(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        double mx = scores(r, 0);
        for (size_t c = 1; c < scores.cols(); ++c)
            mx = std::max(mx, scores(r, c));
        double denom = 0.0;
        for (size_t c = 0; c < scores.cols(); ++c) {
            double e = std::exp(scores(r, c) - mx);
            p(r, c) = e;
            denom += e;
        }
        for (size_t c = 0; c < scores.cols(); ++c)
            p(r, c) /= denom;
    }
    return p;
}

Matrix
rowSoftmaxBackward(const Matrix &p, const Matrix &dp)
{
    if (p.rows() != dp.rows() || p.cols() != dp.cols())
        lt_panic("rowSoftmaxBackward shape mismatch");
    Matrix ds(p.rows(), p.cols());
    for (size_t r = 0; r < p.rows(); ++r) {
        double dot = 0.0;
        for (size_t c = 0; c < p.cols(); ++c)
            dot += dp(r, c) * p(r, c);
        for (size_t c = 0; c < p.cols(); ++c)
            ds(r, c) = p(r, c) * (dp(r, c) - dot);
    }
    return ds;
}

namespace {
constexpr double kGeluC = 0.7978845608028654; // sqrt(2/pi)
constexpr double kGeluA = 0.044715;
} // namespace

Matrix
gelu(const Matrix &x)
{
    Matrix y(x.rows(), x.cols());
    for (size_t i = 0; i < x.data().size(); ++i) {
        double v = x.data()[i];
        double u = kGeluC * (v + kGeluA * v * v * v);
        y.data()[i] = 0.5 * v * (1.0 + std::tanh(u));
    }
    return y;
}

Matrix
geluBackward(const Matrix &x, const Matrix &dy)
{
    if (x.rows() != dy.rows() || x.cols() != dy.cols())
        lt_panic("geluBackward shape mismatch");
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < x.data().size(); ++i) {
        double v = x.data()[i];
        double u = kGeluC * (v + kGeluA * v * v * v);
        double th = std::tanh(u);
        double du = kGeluC * (1.0 + 3.0 * kGeluA * v * v);
        double grad = 0.5 * (1.0 + th) + 0.5 * v * (1.0 - th * th) * du;
        dx.data()[i] = grad * dy.data()[i];
    }
    return dx;
}

size_t
argmaxRow(const Matrix &m, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < m.cols(); ++c)
        if (m(row, c) > m(row, best))
            best = c;
    return best;
}

} // namespace nn
} // namespace lt
