/**
 * @file
 * Paper benchmark model configurations (Section V-A: DeiT and BERT).
 *
 * These describe the *workload* dimensions of the paper's evaluation
 * models — they are not trainable networks. The workload extractor
 * turns them into the exact GEMM list the accelerator simulators cost
 * out (Table V, Fig. 13).
 */

#ifndef LT_NN_MODEL_ZOO_HH
#define LT_NN_MODEL_ZOO_HH

#include <cstddef>
#include <string>
#include <vector>

namespace lt {
namespace nn {

/** Dimensions of one encoder-only Transformer benchmark model. */
struct PaperModelConfig
{
    std::string name;
    size_t dim;         ///< embedding dimension
    size_t depth;       ///< number of encoder blocks
    size_t heads;       ///< attention heads
    size_t mlp_hidden;  ///< FFN hidden dimension (4x dim)
    size_t seq_len;     ///< tokens (197 for 224x224 DeiT, CLS incl.)
    size_t patch_dim;   ///< flattened patch size (vision models only)
    size_t num_classes; ///< classifier width

    size_t headDim() const { return dim / heads; }
};

/** DeiT-Tiny @ 224x224: dim 192, 12 layers, 3 heads, 197 tokens. */
PaperModelConfig deitTiny();

/** DeiT-Small @ 224x224: dim 384, 12 layers, 6 heads. */
PaperModelConfig deitSmall();

/** DeiT-Base @ 224x224: dim 768, 12 layers, 12 heads. */
PaperModelConfig deitBase();

/** BERT-base with a chosen sequence length (paper uses 128). */
PaperModelConfig bertBase(size_t seq_len = 128);

/** BERT-large with a chosen sequence length (paper uses 320). */
PaperModelConfig bertLarge(size_t seq_len = 320);

/** The five workloads of Fig. 13, in the paper's order. */
std::vector<PaperModelConfig> figure13Models();

} // namespace nn
} // namespace lt

#endif // LT_NN_MODEL_ZOO_HH
