/**
 * @file
 * Fake-quantization for low-bit Transformer training and inference.
 *
 * The paper applies low-bit quantization to both weights and
 * activations (following LSQ [15]) and trains with noise injected.
 * We implement per-tensor symmetric fake quantization with a dynamic
 * max-abs scale and straight-through gradients (quantization is
 * invisible to the backward pass).
 */

#ifndef LT_NN_QUANT_HH
#define LT_NN_QUANT_HH

#include "util/linalg.hh"

namespace lt {
namespace nn {

/** Bit widths for the quantized datapath. */
struct QuantConfig
{
    int weight_bits = 8;
    int act_bits = 8;
    bool enabled = true;

    static QuantConfig
    disabled()
    {
        QuantConfig q;
        q.enabled = false;
        return q;
    }

    static QuantConfig
    w4a4()
    {
        return {4, 4, true};
    }

    static QuantConfig
    w8a8()
    {
        return {8, 8, true};
    }
};

/**
 * Per-tensor symmetric fake quantization: scale by max-abs into
 * [-1, 1], snap to the b-bit grid, scale back. Identity when bits <= 0
 * or the tensor is all-zero.
 */
Matrix fakeQuant(const Matrix &m, int bits);

/** Max-abs of a matrix (the dynamic quantization scale). */
double tensorScale(const Matrix &m);

} // namespace nn
} // namespace lt

#endif // LT_NN_QUANT_HH
