/**
 * @file
 * ExecutionEngine: the multi-core, batched GEMM execution layer.
 *
 * The Lightening-Transformer accelerator is an array of Nt x Nc DPTC
 * tensor cores, each computing one-shot [Nh, Nlambda] x [Nlambda, Nv]
 * tiles in parallel (paper Section IV). This engine is the software
 * mirror of that layout: it owns a pool of identical DPTC core
 * replicas, shards a tiled GEMM's output tiles across them on the
 * global thread pool, and accumulates k-slices digitally per output
 * tile (output-stationary, like the hardware).
 *
 * Determinism: every output tile seeds its noise from (stream, tile
 * index) — see Dptc::gemmTiles — so results are bit-identical at any
 * thread count. Streams come in two flavours:
 *
 *  - stream-addressed calls (gemm/gemmBatch with explicit stream ids,
 *    used by the stateless model forwards via RunContext::stream) are
 *    pure functions of (operands, config, stream): independent of
 *    engine call history and of how many requests run concurrently;
 *  - legacy stream-less calls consume an internal counter in call
 *    order, so a freshly-constructed engine replays the exact same
 *    sequence of noisy results for the same sequence of calls, while
 *    distinct calls draw independent noise.
 */

#ifndef LT_NN_EXECUTION_ENGINE_HH
#define LT_NN_EXECUTION_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/dptc.hh"
#include "nn/gemm_backend.hh"

namespace lt {
namespace nn {

/** Engine geometry and evaluation fidelity. */
struct EngineConfig
{
    core::DptcConfig dptc;
    core::EvalMode mode = core::EvalMode::Noisy;

    /**
     * DPTC core replicas to shard tiles across. Mirrors
     * arch::ArchConfig's cores per chip (LT-B: nt * nc = 4 * 2 = 8,
     * Table IV); 0 means one replica per thread-pool worker.
     */
    size_t num_cores = 8;

    /**
     * Serve pre-encoded weight operands (supportsWeightPlans()). Off
     * forces the nn layers down the per-call re-encode path — the
     * "cache off" side of the cached-vs-uncached identity tests and
     * of bench_engine_scaling's decode-regime scenario. Results are
     * bit-identical either way.
     */
    bool weight_plans = true;

    /**
     * Serve encoded K/V cache operands (supportsKvPlans()): the
     * decode path keeps per-head K^T/V encoded and appends one
     * packed column/row per token instead of re-encoding the whole
     * cache every step. Off forces per-step K/V re-encodes (the PR 4
     * steady state — the baseline column of bench_engine_scaling's
     * decode scenario). Results are bit-identical either way.
     */
    bool kv_plans = true;
};

/** Multi-core tiled GEMM executor over DPTC replicas. */
class ExecutionEngine : public GemmBackend
{
  public:
    explicit ExecutionEngine(const EngineConfig &cfg);
    ExecutionEngine(const core::DptcConfig &dcfg, core::EvalMode mode,
                    size_t num_cores = 8);

    /**
     * Tiled [m,k] x [k,n] product: operands are beta-normalized and
     * quantized once, then output tiles are sharded across the core
     * replicas. Bit-identical at any thread count; consumes the next
     * internal stream id, so repeated calls draw fresh noise.
     */
    Matrix gemm(const Matrix &a, const Matrix &b) override;

    /**
     * Stream-addressed product: noise depends only on (operands,
     * config, stream) — the engine's internal counter is untouched,
     * so concurrent requests with their own NoiseStream lanes get
     * results identical to running alone.
     */
    Matrix gemm(const Matrix &a, const Matrix &b,
                uint64_t stream) override;

    /**
     * Batched execution: run many independent products in one call.
     * Large batches shard whole products across cores (the serving
     * regime: many small GEMMs); small batches run each product with
     * intra-GEMM tile parallelism. Stream ids are assigned to the
     * products in order before dispatch, so results match gemm()
     * called per product in order on an engine with the same call
     * history — regardless of which core runs which product.
     */
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
        override;

    /** Stream-addressed batch: product i draws from streams[i]. */
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- stride-aware operand views ------------------------------
    // Views execute natively: operands are encoded straight from the
    // viewed storage (Dptc::encode reads through the leading
    // dimension / transposed flag), so a transposed or column-block
    // operand costs no materialized copy — and results are
    // bit-identical to passing the materialized equivalent.

    Matrix gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                uint64_t stream) override;

    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<ConstMatrixView,
                                          ConstMatrixView>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- pre-encoded weight operands -----------------------------
    // The decode/serve steady state: the stationary operand of every
    // projection GEMM is encoded once (encodeWeight) and reused, so a
    // step re-encodes only its activations. Bit-identical to the
    // dense-operand calls (encoding is deterministic).

    bool supportsWeightPlans() const override
    {
        return cfg_.weight_plans;
    }

    /** Encode a weight once (counts one weight_encode_miss). */
    core::EncodedOperand encodeWeight(const Matrix &w) override;

    /**
     * Stream-addressed product against a pre-encoded right operand
     * (counts one weight/kv encode hit by the operand's kind). The
     * activation is encoded per call.
     */
    Matrix gemm(const Matrix &a, const core::EncodedOperand &w,
                uint64_t stream) override;

    /** Stream-addressed batch against pre-encoded right operands. */
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<const Matrix *,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;

    /** View-A variant of the pre-encoded batch. */
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<ConstMatrixView,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- encoded K/V caches --------------------------------------

    bool supportsKvPlans() const override { return cfg_.kv_plans; }

    /**
     * (Re)build a growing K/V operand's encoding: a fresh packed
     * encode when `op` is empty or was packed for another geometry,
     * an in-place requantization (capacity preserved) otherwise.
     * Counts one kv_encode_miss either way.
     */
    void encodeKvInto(core::EncodedOperand &op, const ConstMatrixView &m,
                      core::OperandSide side) override;

    core::EvalMode mode() const { return cfg_.mode; }
    size_t numCores() const { return cores_.size(); }

    /** Core replica i (replica 0 is the pre-refactor single core). */
    core::Dptc &core(size_t i = 0) { return cores_.at(i); }
    const core::Dptc &core(size_t i = 0) const { return cores_.at(i); }

  private:
    /**
     * One product in the unified batch representation: a left
     * operand view plus either a right operand view (encoded per
     * call) or a pre-encoded operand (weight plan / encoded K-V
     * cache).
     */
    struct ProductRef
    {
        ConstMatrixView a;
        ConstMatrixView b;                  ///< right operand view…
        const core::EncodedOperand *b_plan; ///< …or pre-encoded form
    };

    Matrix gemmOneProduct(const core::EncodedOperand &a,
                          const core::EncodedOperand &b,
                          bool parallel_tiles, const core::Dptc &proto,
                          uint64_t stream_seed);

    Matrix runProduct(const ProductRef &p, bool parallel_tiles,
                      const core::Dptc &proto, uint64_t stream_seed);

    std::vector<Matrix>
    gemmBatchImpl(const std::vector<ProductRef> &products,
                  const std::function<uint64_t(size_t)> &streamOf);

    void validateEncoded(const ConstMatrixView &a,
                         const core::EncodedOperand &w) const;

    /** Count one encoded-dispatch hit on the kind-matched counter. */
    void recordEncodedHit(const core::EncodedOperand &w);

    EngineConfig cfg_;

    /**
     * One Dptc per shard. The replicas are functionally identical
     * today (gemmTiles is const and counter-seeded), but they mirror
     * the hardware's per-core state — per-core calibration tables and
     * device variations land here in later PRs — and fix the shard
     * count.
     */
    std::vector<core::Dptc> cores_;

    /** Next internal stream id, consumed in (stream-less) call order. */
    std::atomic<uint64_t> next_stream_{0};
};

} // namespace nn
} // namespace lt

#endif // LT_NN_EXECUTION_ENGINE_HH
