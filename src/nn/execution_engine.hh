/**
 * @file
 * ExecutionEngine: the multi-core, batched GEMM execution layer.
 *
 * The Lightening-Transformer accelerator is an array of Nt x Nc DPTC
 * tensor cores, each computing one-shot [Nh, Nlambda] x [Nlambda, Nv]
 * tiles in parallel (paper Section IV). This engine is the software
 * mirror of that layout: it owns a pool of identical DPTC core
 * replicas, shards a tiled GEMM's output tiles across them on the
 * global thread pool, and accumulates k-slices digitally per output
 * tile (output-stationary, like the hardware).
 *
 * Determinism: every output tile seeds its noise from (stream, tile
 * index) — see Dptc::gemmTiles — so results are bit-identical at any
 * thread count. Streams come in two flavours:
 *
 *  - stream-addressed calls (gemm/gemmBatch with explicit stream ids,
 *    used by the stateless model forwards via RunContext::stream) are
 *    pure functions of (operands, config, stream): independent of
 *    engine call history and of how many requests run concurrently;
 *  - legacy stream-less calls consume an internal counter in call
 *    order, so a freshly-constructed engine replays the exact same
 *    sequence of noisy results for the same sequence of calls, while
 *    distinct calls draw independent noise.
 */

#ifndef LT_NN_EXECUTION_ENGINE_HH
#define LT_NN_EXECUTION_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/dptc.hh"
#include "core/fault_model.hh"
#include "nn/gemm_backend.hh"

namespace lt {
namespace nn {

/**
 * Detection and recovery knobs of the engine's ABFT layer. Active
 * whenever fault injection is enabled (EngineConfig::faults) or
 * `verify` is set explicitly; otherwise the engine stays on the exact
 * pre-fault code path.
 */
struct FaultPolicy
{
    /**
     * Verify tile checksums even with injection off — the deployment
     * posture for real (non-simulated) device faults. Verification
     * never changes results; it only arms detection/recovery.
     */
    bool verify = false;

    /**
     * Every checksum compares a deviation from the digital recompute
     * against the element's PHYSICAL noise basis
     * sigma^2 = scale^2 * (sum_slices partial^2 + sum_j (a_j b_j)^2):
     * the kernel's stochastic terms multiply each k-slice partial dot
     * and each analog product, not the final accumulated value, so
     * output-anchored envelopes misfire on cancellation-heavy columns
     * (logits columns ride ~0.1 outputs on ~0.5 partials). All three
     * tolerances are calibrated against the empirical worst case at
     * DOUBLE the paper's noise across serve workloads and random
     * sweeps with both samplers; tighten only with lighter noise.
     */

    /**
     * Per-column signed-sum multiplier: |sum_obs - sum_exp| vs the
     * RSS of the column's element bases. Distributed bias along a
     * column accumulates linearly while the envelope grows as
     * sqrt(rows). Measured legit max 0.40 at 2x paper noise.
     */
    double tolerance = 1.0;

    /**
     * Per-element multiplier: |obs - exp| vs the element's own basis.
     * The localized-fault detector (dead tile, stuck channel, bit
     * flip, strong drift). Measured legit max 0.46 at 2x paper noise.
     */
    double elem_tolerance = 1.0;

    /**
     * Tile-deviation multiplier: ||O - D||_F vs the RSS of all
     * element bases. Legitimate per-element deviations are
     * independent draws at a small fraction of their basis, so this
     * ratio concentrates with tile size; coherent corruption spread
     * thinly across the tile (mild calibration drift) does not. The
     * check adds a (1 + 2/sqrt(N)) small-tile relaxation in code.
     * Measured legit max 0.21 at 2x paper noise.
     */
    double norm_tolerance = 0.30;

    /** Absolute slack added to every checksum comparison. */
    double abs_tolerance = 1e-9;

    /**
     * Re-executions of a detected-faulty tile (each on a different
     * healthy replica) before the product gives up with
     * EngineFaultError.
     */
    size_t max_tile_retries = 3;

    /**
     * Detected faults on one replica before it is quarantined and the
     * engine reshards over the survivors.
     */
    size_t quarantine_threshold = 3;
};

/** Replica-health snapshot of a fault-tolerant engine. */
struct EngineStatus
{
    size_t total_replicas = 0;
    size_t healthy_replicas = 0;
    size_t quarantined_replicas = 0;

    /**
     * Every replica quarantined: products execute on the digital
     * reference kernel (bit-identical results, photonic speedup
     * forfeited) instead of aborting.
     */
    bool degraded = false;

    uint64_t faults_detected = 0;
    uint64_t fault_retries = 0;
    uint64_t quarantines = 0;
};

/** Engine geometry and evaluation fidelity. */
struct EngineConfig
{
    core::DptcConfig dptc;
    core::EvalMode mode = core::EvalMode::Noisy;

    /**
     * DPTC core replicas to shard tiles across. Mirrors
     * arch::ArchConfig's cores per chip (LT-B: nt * nc = 4 * 2 = 8,
     * Table IV); 0 means one replica per thread-pool worker.
     */
    size_t num_cores = 8;

    /**
     * Serve pre-encoded weight operands (supportsWeightPlans()). Off
     * forces the nn layers down the per-call re-encode path — the
     * "cache off" side of the cached-vs-uncached identity tests and
     * of bench_engine_scaling's decode-regime scenario. Results are
     * bit-identical either way.
     */
    bool weight_plans = true;

    /**
     * Serve encoded K/V cache operands (supportsKvPlans()): the
     * decode path keeps per-head K^T/V encoded and appends one
     * packed column/row per token instead of re-encoding the whole
     * cache every step. Off forces per-step K/V re-encodes (the PR 4
     * steady state — the baseline column of bench_engine_scaling's
     * decode scenario). Results are bit-identical either way.
     */
    bool kv_plans = true;

    /**
     * Fuse N requests' single-row projections into one stacked
     * dispatch (supportsRowStacking()): the serve decode fusion that
     * lets one DPTC tile carry rows from several requests. Off forces
     * the per-row gemmBatch path — the "fusion off" baseline of
     * bench_serve_throughput's dispatch-count comparison. Results are
     * bit-identical either way (per-row betas + per-row stream
     * seeding reproduce each solo product exactly).
     */
    bool row_stacking = true;

    /**
     * Per-replica fault injection (core::FaultModel). Disabled by
     * default: the engine takes the exact pre-fault dispatch path
     * (one branch per product) and every golden digest and perf
     * baseline is unchanged.
     */
    core::FaultConfig faults{};

    /** Detection/recovery knobs (active when faults or verify are). */
    FaultPolicy fault_policy{};
};

/** Multi-core tiled GEMM executor over DPTC replicas. */
class ExecutionEngine : public GemmBackend
{
  public:
    explicit ExecutionEngine(const EngineConfig &cfg);
    ExecutionEngine(const core::DptcConfig &dcfg, core::EvalMode mode,
                    size_t num_cores = 8);

    /**
     * Tiled [m,k] x [k,n] product: operands are beta-normalized and
     * quantized once, then output tiles are sharded across the core
     * replicas. Bit-identical at any thread count; consumes the next
     * internal stream id, so repeated calls draw fresh noise.
     */
    Matrix gemm(const Matrix &a, const Matrix &b) override;

    /**
     * Stream-addressed product: noise depends only on (operands,
     * config, stream) — the engine's internal counter is untouched,
     * so concurrent requests with their own NoiseStream lanes get
     * results identical to running alone.
     */
    Matrix gemm(const Matrix &a, const Matrix &b,
                uint64_t stream) override;

    /**
     * Batched execution: run many independent products in one call.
     * Large batches shard whole products across cores (the serving
     * regime: many small GEMMs); small batches run each product with
     * intra-GEMM tile parallelism. Stream ids are assigned to the
     * products in order before dispatch, so results match gemm()
     * called per product in order on an engine with the same call
     * history — regardless of which core runs which product.
     */
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
        override;

    /** Stream-addressed batch: product i draws from streams[i]. */
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- stride-aware operand views ------------------------------
    // Views execute natively: operands are encoded straight from the
    // viewed storage (Dptc::encode reads through the leading
    // dimension / transposed flag), so a transposed or column-block
    // operand costs no materialized copy — and results are
    // bit-identical to passing the materialized equivalent.

    Matrix gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                uint64_t stream) override;

    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<ConstMatrixView,
                                          ConstMatrixView>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- pre-encoded weight operands -----------------------------
    // The decode/serve steady state: the stationary operand of every
    // projection GEMM is encoded once (encodeWeight) and reused, so a
    // step re-encodes only its activations. Bit-identical to the
    // dense-operand calls (encoding is deterministic).

    bool supportsWeightPlans() const override
    {
        return cfg_.weight_plans;
    }

    /** Encode a weight once (counts one weight_encode_miss). */
    core::EncodedOperand encodeWeight(const Matrix &w) override;

    /**
     * Stream-addressed product against a pre-encoded right operand
     * (counts one weight/kv encode hit by the operand's kind). The
     * activation is encoded per call.
     */
    Matrix gemm(const Matrix &a, const core::EncodedOperand &w,
                uint64_t stream) override;

    /** Stream-addressed batch against pre-encoded right operands. */
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<const Matrix *,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;

    /** View-A variant of the pre-encoded batch. */
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<ConstMatrixView,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;

    // ---- stacked-row fused dispatch ------------------------------
    // Block-diagonal fusion for the serve decode regime: N requests'
    // [1, k] rows execute as one tall dispatch against the shared
    // pre-encoded weight, sharding (row, column-tile) units across
    // the replicas. Row i keeps its own beta and its own stream
    // seed, so result i is bit-identical to gemm(rows[i], w,
    // streams[i]) — the fusion changes dispatch count and tile
    // occupancy, never values.

    bool
    supportsRowStacking() const override
    {
        return cfg_.weight_plans && cfg_.row_stacking;
    }

    std::vector<Matrix>
    gemmRowStacked(const std::vector<ConstMatrixView> &rows,
                   const core::EncodedOperand &w,
                   const std::vector<uint64_t> &streams) override;

    // ---- encoded K/V caches --------------------------------------

    bool supportsKvPlans() const override { return cfg_.kv_plans; }

    /**
     * (Re)build a growing K/V operand's encoding: a fresh packed
     * encode when `op` is empty or was packed for another geometry,
     * an in-place requantization (capacity preserved) otherwise.
     * Counts one kv_encode_miss either way.
     */
    void encodeKvInto(core::EncodedOperand &op, const ConstMatrixView &m,
                      core::OperandSide side) override;

    core::EvalMode mode() const { return cfg_.mode; }
    size_t numCores() const { return cores_.size(); }

    /**
     * Replica-health + fault-counter snapshot. Cheap and thread-safe;
     * all-healthy and all-zero while the fault layer is inactive.
     */
    EngineStatus status() const;

    /** Core replica i (replica 0 is the pre-refactor single core). */
    core::Dptc &core(size_t i = 0) { return cores_.at(i); }
    const core::Dptc &core(size_t i = 0) const { return cores_.at(i); }

  private:
    /**
     * One product in the unified batch representation: a left
     * operand view plus either a right operand view (encoded per
     * call) or a pre-encoded operand (weight plan / encoded K-V
     * cache).
     */
    struct ProductRef
    {
        ConstMatrixView a;
        ConstMatrixView b;                  ///< right operand view…
        const core::EncodedOperand *b_plan; ///< …or pre-encoded form
    };

    Matrix gemmOneProduct(const core::EncodedOperand &a,
                          const core::EncodedOperand &b,
                          bool parallel_tiles, const core::Dptc &proto,
                          uint64_t stream_seed);

    // ---- fault-tolerant dispatch (active iff fault_active_) ------

    /**
     * Checked twin of gemmOneProduct: tiles run one at a time on
     * tile-indexed healthy replicas, each followed by injection (when
     * configured) and ABFT checksum verification, with bounded
     * retries on other replicas and a digital reference fallback once
     * every replica is quarantined.
     */
    Matrix gemmOneProductChecked(const core::EncodedOperand &a,
                                 const core::EncodedOperand &b,
                                 bool parallel_tiles,
                                 uint64_t stream_seed);

    /** Execute + verify + recover ONE output tile. */
    void runTileChecked(const core::EncodedOperand &a,
                        const core::EncodedOperand &b, double scale,
                        size_t tile, Matrix &out, uint64_t stream_seed,
                        const std::vector<size_t> &healthy);

    /**
     * ABFT verification of one tile region: per-column checksums
     * against the digitally recomputed quantized product (the
     * quantization cancels exactly — only legitimate noise remains)
     * plus a Frobenius-norm energy check. Returns true when the
     * region is within the calibrated envelope.
     */
    bool verifyTile(const core::EncodedOperand &a,
                    const core::EncodedOperand &b, double scale,
                    size_t tc, const Matrix &out, size_t row0,
                    size_t rows, size_t col0, size_t cols) const;

    /** Count a fault against `replica`; quarantine on threshold. */
    void recordReplicaFault(size_t replica);

    /** Copy of the healthy replica list (empty = degraded). */
    std::vector<size_t> healthySnapshot() const;

    Matrix runProduct(const ProductRef &p, bool parallel_tiles,
                      const core::Dptc &proto, uint64_t stream_seed);

    std::vector<Matrix>
    gemmBatchImpl(const std::vector<ProductRef> &products,
                  const std::function<uint64_t(size_t)> &streamOf);

    void validateEncoded(const ConstMatrixView &a,
                         const core::EncodedOperand &w) const;

    /** Count one encoded-dispatch hit on the kind-matched counter. */
    void recordEncodedHit(const core::EncodedOperand &w);

    EngineConfig cfg_;

    /**
     * One Dptc per shard. The replicas are functionally identical
     * today (gemmTiles is const and counter-seeded), but they mirror
     * the hardware's per-core state — per-core calibration tables and
     * device variations land here in later PRs — and fix the shard
     * count.
     */
    std::vector<core::Dptc> cores_;

    /** Next internal stream id, consumed in (stream-less) call order. */
    std::atomic<uint64_t> next_stream_{0};

    // ---- fault-tolerance state -----------------------------------

    core::FaultModel fault_model_;

    /**
     * True when injection or verification is configured: the single
     * per-product branch that selects the checked dispatch path. The
     * false side is the exact pre-fault code — provably zero hot-loop
     * cost (bench_engine_scaling gates it).
     */
    bool fault_active_ = false;

    mutable std::mutex health_mu_;
    std::vector<uint32_t> replica_faults_;      ///< per-replica count
    std::vector<uint8_t> replica_quarantined_;  ///< 1 = quarantined
    std::vector<size_t> healthy_;               ///< surviving replicas
};

} // namespace nn
} // namespace lt

#endif // LT_NN_EXECUTION_ENGINE_HH
