/**
 * @file
 * Model checkpoint serialization.
 *
 * The paper's artifact ships trained checkpoints so users can skip the
 * multi-day quantization-aware training; this module provides the same
 * workflow for the in-repo models. Format: a small binary header
 * (magic, version, the TransformerConfig fields) followed by every
 * parameter tensor in visitParams order as float64 blobs. Loading
 * verifies the stored configuration matches the target model exactly.
 */

#ifndef LT_NN_SERIALIZATION_HH
#define LT_NN_SERIALIZATION_HH

#include <string>

#include "nn/transformer.hh"

namespace lt {
namespace nn {

/** Write a model checkpoint; returns false on I/O failure. */
bool saveCheckpoint(TransformerClassifier &model,
                    const std::string &path);

/**
 * Load a checkpoint into an existing model. The model must have been
 * constructed with the same TransformerConfig that was saved; any
 * architecture mismatch is fatal (it would silently corrupt weights).
 * Returns false on I/O failure.
 */
bool loadCheckpoint(TransformerClassifier &model,
                    const std::string &path);

} // namespace nn
} // namespace lt

#endif // LT_NN_SERIALIZATION_HH
