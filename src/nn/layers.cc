#include "layers.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/logging.hh"

namespace lt {
namespace nn {

// ------------------------------------------------------- WeightPlanCache

std::shared_ptr<const core::EncodedOperand>
WeightPlanCache::fetch(GemmBackend &backend, int bits, uint64_t version,
                       const std::function<Matrix()> &materialize)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry &e : entries_) {
        if (e.backend_uid != backend.uid() || e.bits != bits)
            continue;
        if (e.version == version)
            return e.plan;
        // Stale: the weight changed since this plan was encoded.
        // Re-encode in place (encodeWeight counts the miss).
        e.version = version;
        e.plan = std::make_shared<const core::EncodedOperand>(
            backend.encodeWeight(materialize()));
        return e.plan;
    }
    // Bound the footprint: transient backends (an engine per eval
    // run) must not accumulate dead plans — evict the oldest entry.
    if (entries_.size() >= kMaxEntries)
        entries_.erase(entries_.begin());
    entries_.push_back(
        Entry{backend.uid(), bits, version,
              std::make_shared<const core::EncodedOperand>(
                  backend.encodeWeight(materialize()))});
    return entries_.back().plan;
}

void
WeightPlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

// ---------------------------------------------------------------- Linear

Linear::Linear(size_t in, size_t out, Rng &rng, bool bias)
    : w_(in, out), b_(1, out, 0.0), dw_(in, out, 0.0), db_(1, out, 0.0),
      has_bias_(bias)
{
    // Xavier-uniform initialization.
    double limit = std::sqrt(6.0 / static_cast<double>(in + out));
    for (double &v : w_.data())
        v = rng.uniform(-limit, limit);
}

void
Linear::addBias(Matrix &y) const
{
    if (!has_bias_)
        return;
    for (size_t r = 0; r < y.rows(); ++r)
        for (size_t c = 0; c < y.cols(); ++c)
            y(r, c) += b_(0, c);
}

std::shared_ptr<const core::EncodedOperand>
Linear::planFor(GemmBackend &backend, const QuantConfig &quant) const
{
    const int bits = quant.enabled ? quant.weight_bits : -1;
    return plans_.fetch(backend, bits, weightVersion(), [&] {
        return quant.enabled ? fakeQuant(w_, quant.weight_bits) : w_;
    });
}

Matrix
Linear::forward(const Matrix &x, LinearCache &cache,
                RunContext &ctx) const
{
    if (x.cols() != w_.rows())
        lt_panic("Linear forward: input dim ", x.cols(),
                 " != weight rows ", w_.rows());
    if (ctx.inference && ctx.backend->supportsWeightPlans()) {
        // Steady-state inference: the static weight comes from the
        // version-keyed plan cache — zero fakeQuant / maxAbs /
        // quantize / pack work on it per step — and the backward
        // caches are skipped. Bit-identical to the generic path
        // below (encoding is deterministic).
        auto plan = planFor(*ctx.backend, ctx.quant);
        const Matrix *xq = &x;
        Matrix xq_store;
        if (ctx.quant.enabled) {
            xq_store = fakeQuant(x, ctx.quant.act_bits);
            xq = &xq_store;
        }
        Matrix y = ctx.backend->gemm(*xq, *plan, ctx.stream.next());
        addBias(y);
        return y;
    }
    cache.x = ctx.quant.enabled ? fakeQuant(x, ctx.quant.act_bits) : x;
    cache.wq =
        ctx.quant.enabled ? fakeQuant(w_, ctx.quant.weight_bits) : w_;
    Matrix y =
        ctx.backend->gemm(cache.x, cache.wq, ctx.stream.next());
    addBias(y);
    return y;
}

std::vector<Matrix>
Linear::forwardBatch(const std::vector<Matrix> &xs,
                     const std::vector<RunContext *> &ctxs) const
{
    if (xs.size() != ctxs.size())
        lt_panic("Linear::forwardBatch: ", xs.size(), " inputs for ",
                 ctxs.size(), " contexts");
    if (xs.empty())
        return {};
    GemmBackend *backend = ctxs.front()->backend;

    // Validate and quantize the activations, and draw exactly the one
    // stream id per context the solo forward makes, in index order.
    std::vector<Matrix> xq(xs.size());
    std::vector<const Matrix *> act(xs.size());
    std::vector<uint64_t> streams;
    streams.reserve(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        if (xs[i].cols() != w_.rows())
            lt_panic("Linear::forwardBatch: input dim ", xs[i].cols(),
                     " != weight rows ", w_.rows());
        if (ctxs[i]->backend != backend)
            lt_panic("Linear::forwardBatch: contexts disagree on the "
                     "backend");
        act[i] = &xs[i];
        if (ctxs[i]->quant.enabled) {
            xq[i] = fakeQuant(xs[i], ctxs[i]->quant.act_bits);
            act[i] = &xq[i];
        }
        streams.push_back(ctxs[i]->stream.next());
    }

    // Group the contexts by weight width once (key -1 = quantization
    // disabled), so the shared static weight is prepared exactly once
    // per distinct width regardless of which representation the
    // backend executes (fakeQuant and encoding are deterministic, so
    // one preparation equals the per-call work of the solo forward
    // bit-for-bit).
    auto keyOf = [](const QuantConfig &q) {
        return q.enabled ? q.weight_bits : -1;
    };
    std::vector<int> keys;
    std::vector<size_t> key_idx(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
        int key = keyOf(ctxs[i]->quant);
        auto it = std::find(keys.begin(), keys.end(), key);
        key_idx[i] = static_cast<size_t>(it - keys.begin());
        if (it == keys.end())
            keys.push_back(key);
    }

    // The serving entry point is inference-only by contract, so when
    // the backend executes encoded operands the weight comes from the
    // version-keyed plan cache: zero re-encodes in steady state.
    // Results are bit-identical to the dense fallback.
    std::vector<Matrix> ys;
    if (backend->supportsWeightPlans()) {
        std::vector<std::shared_ptr<const core::EncodedOperand>> plans;
        plans.reserve(keys.size());
        for (int key : keys) {
            QuantConfig q;
            q.enabled = key >= 0;
            q.weight_bits = key;
            plans.push_back(planFor(*backend, q));
        }
        // Decode-regime fusion: when every activation is a single row
        // and all contexts share one weight plan, stack the N rows
        // into ONE dispatch — one DPTC tile carries several requests'
        // rows instead of N near-empty row-GEMMs. Bit-identical per
        // row (per-row betas + per-row stream seeding), so the branch
        // is purely a dispatch-count/occupancy optimization.
        bool all_rows = keys.size() == 1;
        for (size_t i = 0; all_rows && i < xs.size(); ++i)
            all_rows = act[i]->rows() == 1;
        if (all_rows && backend->supportsRowStacking()) {
            std::vector<ConstMatrixView> rows;
            rows.reserve(xs.size());
            for (size_t i = 0; i < xs.size(); ++i)
                rows.push_back(act[i]->view());
            ys = backend->gemmRowStacked(rows, *plans[0], streams);
        } else {
            std::vector<
                std::pair<const Matrix *, const core::EncodedOperand *>>
                products;
            products.reserve(xs.size());
            for (size_t i = 0; i < xs.size(); ++i)
                products.emplace_back(act[i], plans[key_idx[i]].get());
            ys = backend->gemmBatch(products, streams);
        }
    } else {
        // Dense fallback: one quantized weight per distinct width
        // (built before taking pointers — the vector must not grow
        // while product pointers into it are live; key -1 uses the
        // raw weight in place).
        std::vector<Matrix> wq(keys.size());
        std::vector<const Matrix *> dense(keys.size(), &w_);
        for (size_t k = 0; k < keys.size(); ++k)
            if (keys[k] >= 0) {
                wq[k] = fakeQuant(w_, keys[k]);
                dense[k] = &wq[k];
            }
        std::vector<std::pair<const Matrix *, const Matrix *>>
            products;
        products.reserve(xs.size());
        for (size_t i = 0; i < xs.size(); ++i)
            products.emplace_back(act[i], dense[key_idx[i]]);
        ys = backend->gemmBatch(products, streams);
    }

    for (Matrix &y : ys)
        addBias(y);
    return ys;
}

Matrix
Linear::backward(const Matrix &dy, const LinearCache &cache)
{
    // STE: gradients flow through the quantizer unchanged; the matmul
    // gradients use the quantized forward values.
    Matrix dx = dy * cache.wq.transposed();
    Matrix dw = cache.x.transposed() * dy;
    addInPlace(dw_, dw);
    if (has_bias_) {
        for (size_t r = 0; r < dy.rows(); ++r)
            for (size_t c = 0; c < dy.cols(); ++c)
                db_(0, c) += dy(r, c);
    }
    return dx;
}

void
Linear::zeroGrad()
{
    for (double &v : dw_.data())
        v = 0.0;
    for (double &v : db_.data())
        v = 0.0;
}

void
Linear::visitParams(const ParamVisitor &fn)
{
    // The visitor holds mutable weight refs (optimizer steps,
    // checkpoint loads): assume an update and invalidate cached
    // plans by bumping the version.
    version_.fetch_add(1, std::memory_order_relaxed);
    fn(w_, dw_);
    if (has_bias_)
        fn(b_, db_);
}

// ------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(size_t dim, double eps)
    : gamma_(1, dim, 1.0), beta_(1, dim, 0.0), dgamma_(1, dim, 0.0),
      dbeta_(1, dim, 0.0), eps_(eps)
{
}

Matrix
LayerNorm::forward(const Matrix &x, LayerNormCache &cache) const
{
    const size_t rows = x.rows();
    const size_t dim = x.cols();
    cache.xhat = Matrix(rows, dim);
    cache.inv_std.assign(rows, 0.0);
    Matrix y(rows, dim);
    for (size_t r = 0; r < rows; ++r) {
        double mean = 0.0;
        for (size_t c = 0; c < dim; ++c)
            mean += x(r, c);
        mean /= static_cast<double>(dim);
        double var = 0.0;
        for (size_t c = 0; c < dim; ++c) {
            double d = x(r, c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(dim);
        double inv_std = 1.0 / std::sqrt(var + eps_);
        cache.inv_std[r] = inv_std;
        for (size_t c = 0; c < dim; ++c) {
            double xh = (x(r, c) - mean) * inv_std;
            cache.xhat(r, c) = xh;
            y(r, c) = gamma_(0, c) * xh + beta_(0, c);
        }
    }
    return y;
}

Matrix
LayerNorm::backward(const Matrix &dy, const LayerNormCache &cache)
{
    const size_t rows = dy.rows();
    const size_t dim = dy.cols();
    Matrix dx(rows, dim);
    for (size_t r = 0; r < rows; ++r) {
        double sum_dxhat = 0.0;
        double sum_dxhat_xhat = 0.0;
        for (size_t c = 0; c < dim; ++c) {
            double dxhat = dy(r, c) * gamma_(0, c);
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * cache.xhat(r, c);
            dgamma_(0, c) += dy(r, c) * cache.xhat(r, c);
            dbeta_(0, c) += dy(r, c);
        }
        double inv_n = 1.0 / static_cast<double>(dim);
        for (size_t c = 0; c < dim; ++c) {
            double dxhat = dy(r, c) * gamma_(0, c);
            dx(r, c) = cache.inv_std[r] *
                       (dxhat - inv_n * sum_dxhat -
                        cache.xhat(r, c) * inv_n * sum_dxhat_xhat);
        }
    }
    return dx;
}

void
LayerNorm::zeroGrad()
{
    for (double &v : dgamma_.data())
        v = 0.0;
    for (double &v : dbeta_.data())
        v = 0.0;
}

void
LayerNorm::visitParams(const ParamVisitor &fn)
{
    fn(gamma_, dgamma_);
    fn(beta_, dbeta_);
}

// ------------------------------------------------------------------ Gelu

Matrix
Gelu::forward(const Matrix &x, GeluCache &cache) const
{
    cache.x = x;
    return gelu(x);
}

Matrix
Gelu::backward(const Matrix &dy, const GeluCache &cache) const
{
    return geluBackward(cache.x, dy);
}

// ------------------------------------------- MultiHeadSelfAttention

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t dim, size_t heads,
                                               Rng &rng, bool causal)
    : dim_(dim), heads_(heads), dk_(dim / heads), causal_(causal),
      wq_(dim, dim, rng), wk_(dim, dim, rng), wv_(dim, dim, rng),
      wo_(dim, dim, rng)
{
    if (dim % heads != 0)
        lt_fatal("attention dim ", dim, " not divisible by heads ",
                 heads);
}

Matrix
MultiHeadSelfAttention::forward(const Matrix &x, AttentionCache &cache,
                                RunContext &ctx) const
{
    const size_t tokens = x.rows();
    Matrix q = wq_.forward(x, cache.wq, ctx);
    Matrix k = wk_.forward(x, cache.wk, ctx);
    Matrix v = wv_.forward(x, cache.wv, ctx);

    cache.q.assign(heads_, Matrix());
    cache.k.assign(heads_, Matrix());
    cache.v.assign(heads_, Matrix());
    cache.p.assign(heads_, Matrix());

    // Per-head operands first, so the dynamic MMs can run as one
    // batch on the execution engine (each head's product keeps its
    // own noise stream — batching never changes results).
    for (size_t h = 0; h < heads_; ++h) {
        Matrix qh = sliceCols(q, h * dk_, dk_);
        Matrix kh = sliceCols(k, h * dk_, dk_);
        Matrix vh = sliceCols(v, h * dk_, dk_);
        if (ctx.quant.enabled) {
            // Dynamic operands are quantized at the DAC just like
            // weights (both are activations in attention).
            qh = fakeQuant(qh, ctx.quant.act_bits);
            kh = fakeQuant(kh, ctx.quant.act_bits);
            vh = fakeQuant(vh, ctx.quant.act_bits);
        }
        cache.q[h] = std::move(qh);
        cache.k[h] = std::move(kh);
        cache.v[h] = std::move(vh);
    }

    // QK^T: the first dynamic MM, batched over heads. The transposed
    // K operand is a stride-aware view of the cached K — no
    // materialized K^T copy. Stream ids are drawn per product in
    // head order before dispatch.
    std::vector<std::pair<ConstMatrixView, ConstMatrixView>> qk_ops;
    std::vector<uint64_t> qk_streams;
    qk_ops.reserve(heads_);
    qk_streams.reserve(heads_);
    for (size_t h = 0; h < heads_; ++h) {
        qk_ops.emplace_back(cache.q[h].view(),
                            cache.k[h].transposedView());
        qk_streams.push_back(ctx.stream.next());
    }
    std::vector<Matrix> scores =
        ctx.backend->gemmBatch(qk_ops, qk_streams);

    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));
    for (size_t h = 0; h < heads_; ++h) {
        for (double &s : scores[h].data())
            s *= inv_sqrt_dk;
        if (causal_) {
            // Token i attends only to j <= i: mask the future to -inf
            // before the softmax (exactly what the incremental decode
            // path never computes).
            for (size_t r = 0; r < tokens; ++r)
                for (size_t c = r + 1; c < tokens; ++c)
                    scores[h](r, c) =
                        -std::numeric_limits<double>::infinity();
        }
        Matrix p = rowSoftmax(scores[h]);
        cache.p[h] = ctx.quant.enabled
                         ? fakeQuant(p, ctx.quant.act_bits)
                         : std::move(p);
    }

    // AV: the second dynamic MM, batched over heads.
    std::vector<std::pair<const Matrix *, const Matrix *>> av_ops;
    std::vector<uint64_t> av_streams;
    av_ops.reserve(heads_);
    av_streams.reserve(heads_);
    for (size_t h = 0; h < heads_; ++h) {
        av_ops.emplace_back(&cache.p[h], &cache.v[h]);
        av_streams.push_back(ctx.stream.next());
    }
    std::vector<Matrix> ctx_heads =
        ctx.backend->gemmBatch(av_ops, av_streams);

    Matrix context(tokens, dim_, 0.0);
    for (size_t h = 0; h < heads_; ++h)
        pasteCols(context, ctx_heads[h], h * dk_);
    return wo_.forward(context, cache.wo, ctx);
}

Matrix
MultiHeadSelfAttention::backward(const Matrix &dy,
                                 const AttentionCache &cache)
{
    Matrix dcontext = wo_.backward(dy, cache.wo);
    const size_t tokens = dcontext.rows();
    Matrix dq(tokens, dim_, 0.0);
    Matrix dk_full(tokens, dim_, 0.0);
    Matrix dv(tokens, dim_, 0.0);
    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));

    for (size_t h = 0; h < heads_; ++h) {
        Matrix dctx_h = sliceCols(dcontext, h * dk_, dk_);
        const Matrix &p = cache.p[h];
        const Matrix &qh = cache.q[h];
        const Matrix &kh = cache.k[h];
        const Matrix &vh = cache.v[h];

        Matrix dp = dctx_h * vh.transposed();
        Matrix dvh = p.transposed() * dctx_h;
        Matrix dscores = rowSoftmaxBackward(p, dp);
        for (double &s : dscores.data())
            s *= inv_sqrt_dk;
        Matrix dqh = dscores * kh;
        Matrix dkh = dscores.transposed() * qh;

        pasteCols(dq, dqh, h * dk_);
        pasteCols(dk_full, dkh, h * dk_);
        pasteCols(dv, dvh, h * dk_);
    }

    Matrix dx = wq_.backward(dq, cache.wq);
    addInPlace(dx, wk_.backward(dk_full, cache.wk));
    addInPlace(dx, wv_.backward(dv, cache.wv));
    return dx;
}

bool
MultiHeadSelfAttention::prepareKvEncoded(AttentionKvCache &kv,
                                         GemmBackend &backend) const
{
    if (!backend.supportsKvPlans()) {
        kv.ek_t.clear();
        kv.ev.clear();
        kv.encoded_backend_uid = 0;
        return false;
    }
    if (kv.encoded_backend_uid != backend.uid() ||
        kv.ek_t.size() != heads_ || kv.ev.size() != heads_) {
        // Re-home: encodings packed for another backend's core
        // geometry are dropped; syncKvEncodedHead rebuilds them from
        // the dense mirrors on the next append.
        kv.ek_t.assign(heads_, core::EncodedOperand());
        kv.ev.assign(heads_, core::EncodedOperand());
        kv.encoded_backend_uid = backend.uid();
    }
    return true;
}

void
MultiHeadSelfAttention::syncKvEncodedHead(AttentionKvCache &kv,
                                          size_t h,
                                          const Matrix &k_row,
                                          const Matrix &v_row,
                                          GemmBackend &backend) const
{
    // K^T mirror: the new token is one packed column — one contiguous
    // nlambda-run per k-slice. appendColumn refuses when the cached
    // beta no longer covers the row (a fresh encode would pick a new
    // beta); encodeKvInto then requantizes in place from the dense
    // mirror, preserving the reserved packed capacity.
    core::EncodedOperand &ekt = kv.ek_t[h];
    const Matrix &k_h = kv.k[h];
    const bool k_in_sync =
        ekt.rows() == dk_ && ekt.cols() + 1 == k_h.rows();
    if (!(k_in_sync && ekt.appendColumn(k_row.data().data(), dk_))) {
        backend.encodeKvInto(ekt, k_h.transposedView(),
                             core::OperandSide::B);
        if (kv.reserved_tokens > 0)
            ekt.reserve(dk_, kv.reserved_tokens);
    }

    // V mirror: the new token is one packed row.
    core::EncodedOperand &ev_h = kv.ev[h];
    const Matrix &v_h = kv.v[h];
    const bool v_in_sync =
        ev_h.cols() == dk_ && ev_h.rows() + 1 == v_h.rows();
    if (!(v_in_sync && ev_h.appendRow(v_row.data().data(), dk_))) {
        backend.encodeKvInto(ev_h, v_h.view(), core::OperandSide::B);
        if (kv.reserved_tokens > 0)
            ev_h.reserve(kv.reserved_tokens, dk_);
    }
}

Matrix
MultiHeadSelfAttention::decodeStep(const Matrix &x,
                                   AttentionKvCache &kv,
                                   AttentionCache &scratch,
                                   RunContext &ctx) const
{
    if (!causal_)
        throw std::invalid_argument(
            "decodeStep requires causal attention: a K/V cache only "
            "holds the past");
    if (x.rows() != 1 || x.cols() != dim_)
        throw std::invalid_argument(
            "decodeStep expects one [1, dim] token row");

    Matrix q = wq_.forward(x, scratch.wq, ctx);
    Matrix k = wk_.forward(x, scratch.wk, ctx);
    Matrix v = wv_.forward(x, scratch.wv, ctx);

    if (kv.k.size() != heads_) {
        kv.k.assign(heads_, Matrix());
        kv.v.assign(heads_, Matrix());
        kv.tokens = 0;
    }
    const bool encoded = prepareKvEncoded(kv, *ctx.backend);

    // Append this token's per-head K/V to the cache — an amortized
    // O(dk) row write to each dense mirror, plus (on encoded-operand
    // backends) an O(dk) packed append to the encoded mirrors — and
    // build the per-head query rows, all in the quantized operand
    // domain.
    std::vector<Matrix> qh(heads_);
    for (size_t h = 0; h < heads_; ++h) {
        Matrix q_row = sliceCols(q, h * dk_, dk_);
        Matrix k_row = sliceCols(k, h * dk_, dk_);
        Matrix v_row = sliceCols(v, h * dk_, dk_);
        if (ctx.quant.enabled) {
            q_row = fakeQuant(q_row, ctx.quant.act_bits);
            k_row = fakeQuant(k_row, ctx.quant.act_bits);
            v_row = fakeQuant(v_row, ctx.quant.act_bits);
        }
        appendRow(kv.k[h], k_row);
        appendRow(kv.v[h], v_row);
        if (encoded)
            syncKvEncodedHead(kv, h, k_row, v_row, *ctx.backend);
        qh[h] = std::move(q_row);
    }
    kv.tokens += 1;

    // QK^T against the cache: per head a skinny [1, dk] x [dk, t] row
    // — the low-intensity decode traffic — batched on the backend.
    // Encoded-operand backends dispatch straight on the cached packed
    // K^T (zero re-encodes); others read K through a transposed view
    // (zero re-strided copies). Bit-identical either way.
    //
    // With a shared prefix segment attached, every head contributes
    // TWO products — segment K^T first, then the private tail K^T —
    // whose score rows concatenate into one context-wide row before a
    // single softmax. With no segment the loops below degenerate to
    // exactly the historical one-product-per-head path: same operands,
    // same dispatch, same stream draws.
    const KvLayerSegment *seg = kv.segment.get();
    if (seg && seg->k.size() != heads_)
        throw std::invalid_argument(
            "decodeStep: shared K/V segment holds " +
            std::to_string(seg->k.size()) +
            " heads for an attention of " + std::to_string(heads_));
    const size_t p_tokens = seg ? seg->tokens : 0;
    const size_t per_head = seg ? 2 : 1;
    // Segment encodings are immutable; dispatch on them only when they
    // were packed for THIS backend's core geometry. A mismatch demotes
    // the whole step to dense views — values are bit-identical either
    // way (the encoded/dense parity contract), only the dispatch path
    // differs.
    const bool seg_encoded =
        seg == nullptr ||
        (seg->encoded_backend_uid == ctx.backend->uid() &&
         seg->ek_t.size() == heads_ && seg->ev.size() == heads_);
    const bool dispatch_encoded = encoded && seg_encoded;

    std::vector<uint64_t> qk_streams;
    qk_streams.reserve(heads_ * per_head);
    for (size_t h = 0; h < heads_ * per_head; ++h)
        qk_streams.push_back(ctx.stream.next());
    std::vector<Matrix> scores;
    if (dispatch_encoded) {
        std::vector<
            std::pair<ConstMatrixView, const core::EncodedOperand *>>
            qk_ops;
        qk_ops.reserve(heads_ * per_head);
        for (size_t h = 0; h < heads_; ++h) {
            if (seg)
                qk_ops.emplace_back(qh[h].view(), &seg->ek_t[h]);
            qk_ops.emplace_back(qh[h].view(), &kv.ek_t[h]);
        }
        scores = ctx.backend->gemmBatch(qk_ops, qk_streams);
    } else {
        std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
            qk_ops;
        qk_ops.reserve(heads_ * per_head);
        for (size_t h = 0; h < heads_; ++h) {
            if (seg)
                qk_ops.emplace_back(qh[h].view(),
                                    seg->k[h].transposedView());
            qk_ops.emplace_back(qh[h].view(),
                                kv.k[h].transposedView());
        }
        scores = ctx.backend->gemmBatch(qk_ops, qk_streams);
    }

    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));
    std::vector<Matrix> probs(heads_);
    for (size_t h = 0; h < heads_; ++h) {
        Matrix row;
        if (seg) {
            // One score row over the whole context — segment columns,
            // then tail columns — so the softmax (and its
            // quantization) spans shared and private positions
            // together, as a contiguous cache would.
            row = Matrix(1, p_tokens + kv.tokens);
            const Matrix &s_seg = scores[h * 2];
            const Matrix &s_tail = scores[h * 2 + 1];
            for (size_t c = 0; c < p_tokens; ++c)
                row(0, c) = s_seg(0, c);
            for (size_t c = 0; c < kv.tokens; ++c)
                row(0, p_tokens + c) = s_tail(0, c);
        } else {
            row = std::move(scores[h]);
        }
        for (double &s : row.data())
            s *= inv_sqrt_dk;
        Matrix p = rowSoftmax(row);
        probs[h] = ctx.quant.enabled
                       ? fakeQuant(p, ctx.quant.act_bits)
                       : std::move(p);
    }

    // AV against the cache: [1, t] x [t, dk] per head, on the cached
    // encoded V when available. The segment's probability columns and
    // the tail's are leading-dimension views of the one quantized row,
    // and each head's context is the fixed-order sum segment + tail.
    std::vector<uint64_t> av_streams;
    av_streams.reserve(heads_ * per_head);
    for (size_t h = 0; h < heads_ * per_head; ++h)
        av_streams.push_back(ctx.stream.next());
    std::vector<Matrix> ctx_heads;
    if (dispatch_encoded) {
        std::vector<
            std::pair<ConstMatrixView, const core::EncodedOperand *>>
            av_ops;
        av_ops.reserve(heads_ * per_head);
        for (size_t h = 0; h < heads_; ++h) {
            if (seg) {
                av_ops.emplace_back(probs[h].colsView(0, p_tokens),
                                    &seg->ev[h]);
                av_ops.emplace_back(
                    probs[h].colsView(p_tokens, kv.tokens),
                    &kv.ev[h]);
            } else {
                av_ops.emplace_back(probs[h].view(), &kv.ev[h]);
            }
        }
        ctx_heads = ctx.backend->gemmBatch(av_ops, av_streams);
    } else {
        std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
            av_ops;
        av_ops.reserve(heads_ * per_head);
        for (size_t h = 0; h < heads_; ++h) {
            if (seg) {
                av_ops.emplace_back(probs[h].colsView(0, p_tokens),
                                    seg->v[h].view());
                av_ops.emplace_back(
                    probs[h].colsView(p_tokens, kv.tokens),
                    kv.v[h].view());
            } else {
                av_ops.emplace_back(probs[h].view(), kv.v[h].view());
            }
        }
        ctx_heads = ctx.backend->gemmBatch(av_ops, av_streams);
    }

    Matrix context(1, dim_, 0.0);
    for (size_t h = 0; h < heads_; ++h) {
        if (seg) {
            Matrix head_ctx = std::move(ctx_heads[h * 2]);
            addInPlace(head_ctx, ctx_heads[h * 2 + 1]);
            pasteCols(context, head_ctx, h * dk_);
        } else {
            pasteCols(context, ctx_heads[h], h * dk_);
        }
    }
    return wo_.forward(context, scratch.wo, ctx);
}

std::vector<Matrix>
MultiHeadSelfAttention::decodeStepBatch(
    const std::vector<Matrix> &xs,
    const std::vector<AttentionKvCache *> &kvs,
    const std::vector<RunContext *> &ctxs) const
{
    if (!causal_)
        throw std::invalid_argument(
            "decodeStepBatch requires causal attention: a K/V cache "
            "only holds the past");
    const size_t n = xs.size();
    if (kvs.size() != n || ctxs.size() != n)
        lt_panic("decodeStepBatch: ", n, " rows vs ", kvs.size(),
                 " caches vs ", ctxs.size(), " contexts");
    if (n == 0)
        return {};
    for (const Matrix &x : xs)
        if (x.rows() != 1 || x.cols() != dim_)
            throw std::invalid_argument(
                "decodeStepBatch expects one [1, dim] token row per "
                "request");
    GemmBackend *backend = ctxs.front()->backend;

    // Q/K/V projections, each fused across the N requests (request i
    // draws its wq, then wk, then wv stream — the solo order).
    std::vector<Matrix> q = wq_.forwardBatch(xs, ctxs);
    std::vector<Matrix> k = wk_.forwardBatch(xs, ctxs);
    std::vector<Matrix> v = wv_.forwardBatch(xs, ctxs);

    // Per request: append this token's per-head K/V to ITS cache and
    // build the per-head query rows, in the quantized operand domain
    // (identical to the solo decodeStep mutation, encoded mirrors
    // included).
    const bool encoded = backend->supportsKvPlans();
    std::vector<std::vector<Matrix>> qh(n);
    for (size_t i = 0; i < n; ++i) {
        AttentionKvCache &kv = *kvs[i];
        if (kv.k.size() != heads_) {
            kv.k.assign(heads_, Matrix());
            kv.v.assign(heads_, Matrix());
            kv.tokens = 0;
        }
        prepareKvEncoded(kv, *backend);
        qh[i].resize(heads_);
        for (size_t h = 0; h < heads_; ++h) {
            Matrix q_row = sliceCols(q[i], h * dk_, dk_);
            Matrix k_row = sliceCols(k[i], h * dk_, dk_);
            Matrix v_row = sliceCols(v[i], h * dk_, dk_);
            if (ctxs[i]->quant.enabled) {
                int bits = ctxs[i]->quant.act_bits;
                q_row = fakeQuant(q_row, bits);
                k_row = fakeQuant(k_row, bits);
                v_row = fakeQuant(v_row, bits);
            }
            appendRow(kv.k[h], k_row);
            appendRow(kv.v[h], v_row);
            if (encoded)
                syncKvEncodedHead(kv, h, k_row, v_row, *backend);
            qh[i][h] = std::move(q_row);
        }
        kv.tokens += 1;
    }

    // All QK^T rows in one batch. Request i draws its head streams in
    // head order — and, when it carries a shared prefix segment, its
    // segment stream before its tail stream per head — exactly as
    // solo; the (i, h) grouping of the dispatch is invisible to the
    // stream-addressed backend. Encoded-K/V backends dispatch on the
    // cached packed K^T; others read each K mirror through a
    // transposed view. Requests with and without segments mix freely
    // in one batch: op_base[i] indexes request i's products.
    std::vector<const KvLayerSegment *> segs(n);
    std::vector<size_t> op_base(n);
    size_t total_ops = 0;
    bool all_segs_encoded = true;
    for (size_t i = 0; i < n; ++i) {
        segs[i] = kvs[i]->segment.get();
        if (segs[i] && segs[i]->k.size() != heads_)
            throw std::invalid_argument(
                "decodeStepBatch: request " + std::to_string(i) +
                "'s shared K/V segment holds " +
                std::to_string(segs[i]->k.size()) +
                " heads for an attention of " +
                std::to_string(heads_));
        if (segs[i] &&
            !(segs[i]->encoded_backend_uid == backend->uid() &&
              segs[i]->ek_t.size() == heads_ &&
              segs[i]->ev.size() == heads_))
            all_segs_encoded = false;
        op_base[i] = total_ops;
        total_ops += heads_ * (segs[i] ? 2 : 1);
    }
    // One foreign-geometry segment demotes the whole batch to dense
    // dispatch — values are bit-identical either way, and a mixed
    // encoded/dense operand vector is not a batch the backend API
    // expresses.
    const bool dispatch_encoded = encoded && all_segs_encoded;

    std::vector<uint64_t> qk_streams;
    qk_streams.reserve(total_ops);
    for (size_t i = 0; i < n; ++i)
        for (size_t h = 0; h < heads_ * (segs[i] ? 2 : 1); ++h)
            qk_streams.push_back(ctxs[i]->stream.next());
    std::vector<Matrix> scores;
    if (dispatch_encoded) {
        std::vector<
            std::pair<ConstMatrixView, const core::EncodedOperand *>>
            qk_ops;
        qk_ops.reserve(total_ops);
        for (size_t i = 0; i < n; ++i)
            for (size_t h = 0; h < heads_; ++h) {
                if (segs[i])
                    qk_ops.emplace_back(qh[i][h].view(),
                                        &segs[i]->ek_t[h]);
                qk_ops.emplace_back(qh[i][h].view(),
                                    &kvs[i]->ek_t[h]);
            }
        scores = backend->gemmBatch(qk_ops, qk_streams);
    } else {
        std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
            qk_ops;
        qk_ops.reserve(total_ops);
        for (size_t i = 0; i < n; ++i)
            for (size_t h = 0; h < heads_; ++h) {
                if (segs[i])
                    qk_ops.emplace_back(
                        qh[i][h].view(),
                        segs[i]->k[h].transposedView());
                qk_ops.emplace_back(qh[i][h].view(),
                                    kvs[i]->k[h].transposedView());
            }
        scores = backend->gemmBatch(qk_ops, qk_streams);
    }

    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));
    std::vector<Matrix> probs(n * heads_);
    for (size_t i = 0; i < n; ++i) {
        const size_t p_tokens = segs[i] ? segs[i]->tokens : 0;
        for (size_t h = 0; h < heads_; ++h) {
            Matrix row;
            if (segs[i]) {
                // Concatenate segment + tail score columns, then one
                // softmax over the whole context (see decodeStep).
                row = Matrix(1, p_tokens + kvs[i]->tokens);
                const Matrix &s_seg = scores[op_base[i] + h * 2];
                const Matrix &s_tail = scores[op_base[i] + h * 2 + 1];
                for (size_t c = 0; c < p_tokens; ++c)
                    row(0, c) = s_seg(0, c);
                for (size_t c = 0; c < kvs[i]->tokens; ++c)
                    row(0, p_tokens + c) = s_tail(0, c);
            } else {
                row = std::move(scores[op_base[i] + h]);
            }
            for (double &e : row.data())
                e *= inv_sqrt_dk;
            Matrix p = rowSoftmax(row);
            probs[i * heads_ + h] =
                ctxs[i]->quant.enabled
                    ? fakeQuant(p, ctxs[i]->quant.act_bits)
                    : std::move(p);
        }
    }

    // All AV rows in one batch, on the cached encoded V when
    // available; segment and tail probability columns are
    // leading-dimension views of each quantized row.
    std::vector<uint64_t> av_streams;
    av_streams.reserve(total_ops);
    for (size_t i = 0; i < n; ++i)
        for (size_t h = 0; h < heads_ * (segs[i] ? 2 : 1); ++h)
            av_streams.push_back(ctxs[i]->stream.next());
    std::vector<Matrix> ctx_heads;
    if (dispatch_encoded) {
        std::vector<
            std::pair<ConstMatrixView, const core::EncodedOperand *>>
            av_ops;
        av_ops.reserve(total_ops);
        for (size_t i = 0; i < n; ++i) {
            const size_t p_tokens = segs[i] ? segs[i]->tokens : 0;
            for (size_t h = 0; h < heads_; ++h) {
                const Matrix &p = probs[i * heads_ + h];
                if (segs[i]) {
                    av_ops.emplace_back(p.colsView(0, p_tokens),
                                        &segs[i]->ev[h]);
                    av_ops.emplace_back(
                        p.colsView(p_tokens, kvs[i]->tokens),
                        &kvs[i]->ev[h]);
                } else {
                    av_ops.emplace_back(p.view(), &kvs[i]->ev[h]);
                }
            }
        }
        ctx_heads = backend->gemmBatch(av_ops, av_streams);
    } else {
        std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
            av_ops;
        av_ops.reserve(total_ops);
        for (size_t i = 0; i < n; ++i) {
            const size_t p_tokens = segs[i] ? segs[i]->tokens : 0;
            for (size_t h = 0; h < heads_; ++h) {
                const Matrix &p = probs[i * heads_ + h];
                if (segs[i]) {
                    av_ops.emplace_back(p.colsView(0, p_tokens),
                                        segs[i]->v[h].view());
                    av_ops.emplace_back(
                        p.colsView(p_tokens, kvs[i]->tokens),
                        kvs[i]->v[h].view());
                } else {
                    av_ops.emplace_back(p.view(), kvs[i]->v[h].view());
                }
            }
        }
        ctx_heads = backend->gemmBatch(av_ops, av_streams);
    }

    std::vector<Matrix> contexts(n);
    for (size_t i = 0; i < n; ++i) {
        contexts[i] = Matrix(1, dim_, 0.0);
        for (size_t h = 0; h < heads_; ++h) {
            if (segs[i]) {
                Matrix head_ctx =
                    std::move(ctx_heads[op_base[i] + h * 2]);
                addInPlace(head_ctx,
                           ctx_heads[op_base[i] + h * 2 + 1]);
                pasteCols(contexts[i], head_ctx, h * dk_);
            } else {
                pasteCols(contexts[i], ctx_heads[op_base[i] + h],
                          h * dk_);
            }
        }
    }
    return wo_.forwardBatch(contexts, ctxs);
}

void
MultiHeadSelfAttention::seedKvCache(const AttentionCache &cache,
                                    AttentionKvCache &kv) const
{
    // Both mirrors keep the forward's row-major [tokens, dk] layout —
    // no transpose at all; the QK^T dispatch reads K through a
    // transposed view, and decode appends rows.
    kv.k = cache.k;
    kv.v = cache.v;
    kv.tokens = cache.k.empty() ? 0 : cache.k.front().rows();
    kv.ek_t.clear();
    kv.ev.clear();
    kv.encoded_backend_uid = 0;
}

void
MultiHeadSelfAttention::seedKvCache(const AttentionCache &cache,
                                    AttentionKvCache &kv,
                                    GemmBackend &backend) const
{
    seedKvCache(cache, kv);
    if (!prepareKvEncoded(kv, backend))
        return;
    // Encode the prompt's K/V once, here, so every decode step is an
    // append: the prefill cost the paper's encoded-operand case
    // amortizes (counts 2 * heads kv_encode misses per layer).
    for (size_t h = 0; h < heads_; ++h) {
        backend.encodeKvInto(kv.ek_t[h], kv.k[h].transposedView(),
                             core::OperandSide::B);
        backend.encodeKvInto(kv.ev[h], kv.v[h].view(),
                             core::OperandSide::B);
    }
}

void
MultiHeadSelfAttention::zeroGrad()
{
    wq_.zeroGrad();
    wk_.zeroGrad();
    wv_.zeroGrad();
    wo_.zeroGrad();
}

void
MultiHeadSelfAttention::visitParams(const ParamVisitor &fn)
{
    wq_.visitParams(fn);
    wk_.visitParams(fn);
    wv_.visitParams(fn);
    wo_.visitParams(fn);
}

// ----------------------------------------------------------- FeedForward

FeedForward::FeedForward(size_t dim, size_t hidden, Rng &rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng)
{
}

Matrix
FeedForward::forward(const Matrix &x, FeedForwardCache &cache,
                     RunContext &ctx) const
{
    return fc2_.forward(
        act_.forward(fc1_.forward(x, cache.fc1, ctx), cache.act),
        cache.fc2, ctx);
}

std::vector<Matrix>
FeedForward::forwardBatch(const std::vector<Matrix> &xs,
                          const std::vector<RunContext *> &ctxs) const
{
    std::vector<Matrix> h = fc1_.forwardBatch(xs, ctxs);
    for (Matrix &row : h)
        row = gelu(row); // same elementwise map Gelu::forward applies
    return fc2_.forwardBatch(h, ctxs);
}

Matrix
FeedForward::backward(const Matrix &dy, const FeedForwardCache &cache)
{
    return fc1_.backward(
        act_.backward(fc2_.backward(dy, cache.fc2), cache.act),
        cache.fc1);
}

void
FeedForward::zeroGrad()
{
    fc1_.zeroGrad();
    fc2_.zeroGrad();
}

void
FeedForward::visitParams(const ParamVisitor &fn)
{
    fc1_.visitParams(fn);
    fc2_.visitParams(fn);
}

// ------------------------------------------------------ TransformerBlock

TransformerBlock::TransformerBlock(size_t dim, size_t heads,
                                   size_t mlp_hidden, Rng &rng,
                                   bool causal)
    : ln1_(dim), attn_(dim, heads, rng, causal), ln2_(dim),
      ffn_(dim, mlp_hidden, rng)
{
}

Matrix
TransformerBlock::forward(const Matrix &x, TransformerBlockCache &cache,
                          RunContext &ctx) const
{
    // x' = x + MHA(LN(x))
    Matrix h =
        attn_.forward(ln1_.forward(x, cache.ln1), cache.attn, ctx);
    addInPlace(h, x);
    // y = x' + FFN(LN(x'))
    Matrix y = ffn_.forward(ln2_.forward(h, cache.ln2), cache.ffn, ctx);
    addInPlace(y, h);
    return y;
}

Matrix
TransformerBlock::backward(const Matrix &dy,
                           const TransformerBlockCache &cache)
{
    // Through the FFN residual.
    Matrix dh = ln2_.backward(ffn_.backward(dy, cache.ffn), cache.ln2);
    addInPlace(dh, dy);
    // Through the attention residual.
    Matrix dx =
        ln1_.backward(attn_.backward(dh, cache.attn), cache.ln1);
    addInPlace(dx, dh);
    return dx;
}

Matrix
TransformerBlock::decodeStep(const Matrix &x, AttentionKvCache &kv,
                             TransformerBlockCache &scratch,
                             RunContext &ctx) const
{
    // LayerNorm, FFN, and the residuals are row-wise: running them on
    // the single new row matches the full-sequence forward exactly.
    Matrix h = attn_.decodeStep(ln1_.forward(x, scratch.ln1), kv,
                                scratch.attn, ctx);
    addInPlace(h, x);
    Matrix y =
        ffn_.forward(ln2_.forward(h, scratch.ln2), scratch.ffn, ctx);
    addInPlace(y, h);
    return y;
}

std::vector<Matrix>
TransformerBlock::decodeStepBatch(
    const std::vector<Matrix> &xs,
    const std::vector<AttentionKvCache *> &kvs,
    const std::vector<RunContext *> &ctxs) const
{
    const size_t n = xs.size();
    // LayerNorm and the residual adds are row-wise pure functions: run
    // them per request (scratch caches are inference-discarded).
    LayerNormCache ln_scratch;
    std::vector<Matrix> normed(n);
    for (size_t i = 0; i < n; ++i)
        normed[i] = ln1_.forward(xs[i], ln_scratch);
    std::vector<Matrix> h = attn_.decodeStepBatch(normed, kvs, ctxs);
    for (size_t i = 0; i < n; ++i)
        addInPlace(h[i], xs[i]);
    for (size_t i = 0; i < n; ++i)
        normed[i] = ln2_.forward(h[i], ln_scratch);
    std::vector<Matrix> y = ffn_.forwardBatch(normed, ctxs);
    for (size_t i = 0; i < n; ++i)
        addInPlace(y[i], h[i]);
    return y;
}

void
TransformerBlock::zeroGrad()
{
    ln1_.zeroGrad();
    attn_.zeroGrad();
    ln2_.zeroGrad();
    ffn_.zeroGrad();
}

void
TransformerBlock::visitParams(const ParamVisitor &fn)
{
    ln1_.visitParams(fn);
    attn_.visitParams(fn);
    ln2_.visitParams(fn);
    ffn_.visitParams(fn);
}

// -------------------------------------------------------- TokenEmbedding

TokenEmbedding::TokenEmbedding(size_t vocab, size_t dim, Rng &rng)
    : table_(vocab, dim), dtable_(vocab, dim, 0.0)
{
    for (double &v : table_.data())
        v = rng.gaussian(0.0, 0.02);
}

Matrix
TokenEmbedding::forward(const std::vector<int> &tokens,
                        TokenEmbeddingCache &cache) const
{
    cache.tokens = tokens;
    Matrix out(tokens.size(), table_.cols());
    for (size_t t = 0; t < tokens.size(); ++t) {
        int id = tokens[t];
        if (id < 0 || static_cast<size_t>(id) >= table_.rows())
            throw std::invalid_argument(
                "token id " + std::to_string(id) +
                " outside vocabulary of " +
                std::to_string(table_.rows()));
        for (size_t c = 0; c < table_.cols(); ++c)
            out(t, c) = table_(static_cast<size_t>(id), c);
    }
    return out;
}

Matrix
TokenEmbedding::embedRow(int token) const
{
    if (token < 0 || static_cast<size_t>(token) >= table_.rows())
        throw std::invalid_argument(
            "token id " + std::to_string(token) +
            " outside vocabulary of " + std::to_string(table_.rows()));
    Matrix out(1, table_.cols());
    for (size_t c = 0; c < table_.cols(); ++c)
        out(0, c) = table_(static_cast<size_t>(token), c);
    return out;
}

void
TokenEmbedding::backward(const Matrix &dy,
                         const TokenEmbeddingCache &cache)
{
    if (dy.rows() != cache.tokens.size())
        lt_panic("TokenEmbedding backward shape mismatch");
    for (size_t t = 0; t < cache.tokens.size(); ++t) {
        auto id = static_cast<size_t>(cache.tokens[t]);
        for (size_t c = 0; c < table_.cols(); ++c)
            dtable_(id, c) += dy(t, c);
    }
}

void
TokenEmbedding::zeroGrad()
{
    for (double &v : dtable_.data())
        v = 0.0;
}

void
TokenEmbedding::visitParams(const ParamVisitor &fn)
{
    fn(table_, dtable_);
}

} // namespace nn
} // namespace lt
