#include "layers.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace nn {

// ---------------------------------------------------------------- Linear

Linear::Linear(size_t in, size_t out, Rng &rng, bool bias)
    : w_(in, out), b_(1, out, 0.0), dw_(in, out, 0.0), db_(1, out, 0.0),
      has_bias_(bias)
{
    // Xavier-uniform initialization.
    double limit = std::sqrt(6.0 / static_cast<double>(in + out));
    for (double &v : w_.data())
        v = rng.uniform(-limit, limit);
}

Matrix
Linear::forward(const Matrix &x, RunContext &ctx)
{
    if (x.cols() != w_.rows())
        lt_panic("Linear forward: input dim ", x.cols(),
                 " != weight rows ", w_.rows());
    cached_x_ = ctx.quant.enabled ? fakeQuant(x, ctx.quant.act_bits) : x;
    cached_wq_ =
        ctx.quant.enabled ? fakeQuant(w_, ctx.quant.weight_bits) : w_;
    Matrix y = ctx.backend->gemm(cached_x_, cached_wq_);
    if (has_bias_) {
        for (size_t r = 0; r < y.rows(); ++r)
            for (size_t c = 0; c < y.cols(); ++c)
                y(r, c) += b_(0, c);
    }
    return y;
}

Matrix
Linear::backward(const Matrix &dy)
{
    // STE: gradients flow through the quantizer unchanged; the matmul
    // gradients use the quantized forward values.
    Matrix dx = dy * cached_wq_.transposed();
    Matrix dw = cached_x_.transposed() * dy;
    addInPlace(dw_, dw);
    if (has_bias_) {
        for (size_t r = 0; r < dy.rows(); ++r)
            for (size_t c = 0; c < dy.cols(); ++c)
                db_(0, c) += dy(r, c);
    }
    return dx;
}

void
Linear::zeroGrad()
{
    for (double &v : dw_.data())
        v = 0.0;
    for (double &v : db_.data())
        v = 0.0;
}

void
Linear::visitParams(const ParamVisitor &fn)
{
    fn(w_, dw_);
    if (has_bias_)
        fn(b_, db_);
}

// ------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(size_t dim, double eps)
    : gamma_(1, dim, 1.0), beta_(1, dim, 0.0), dgamma_(1, dim, 0.0),
      dbeta_(1, dim, 0.0), eps_(eps)
{
}

Matrix
LayerNorm::forward(const Matrix &x)
{
    const size_t rows = x.rows();
    const size_t dim = x.cols();
    cached_xhat_ = Matrix(rows, dim);
    cached_inv_std_.assign(rows, 0.0);
    Matrix y(rows, dim);
    for (size_t r = 0; r < rows; ++r) {
        double mean = 0.0;
        for (size_t c = 0; c < dim; ++c)
            mean += x(r, c);
        mean /= static_cast<double>(dim);
        double var = 0.0;
        for (size_t c = 0; c < dim; ++c) {
            double d = x(r, c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(dim);
        double inv_std = 1.0 / std::sqrt(var + eps_);
        cached_inv_std_[r] = inv_std;
        for (size_t c = 0; c < dim; ++c) {
            double xh = (x(r, c) - mean) * inv_std;
            cached_xhat_(r, c) = xh;
            y(r, c) = gamma_(0, c) * xh + beta_(0, c);
        }
    }
    return y;
}

Matrix
LayerNorm::backward(const Matrix &dy)
{
    const size_t rows = dy.rows();
    const size_t dim = dy.cols();
    Matrix dx(rows, dim);
    for (size_t r = 0; r < rows; ++r) {
        double sum_dxhat = 0.0;
        double sum_dxhat_xhat = 0.0;
        for (size_t c = 0; c < dim; ++c) {
            double dxhat = dy(r, c) * gamma_(0, c);
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * cached_xhat_(r, c);
            dgamma_(0, c) += dy(r, c) * cached_xhat_(r, c);
            dbeta_(0, c) += dy(r, c);
        }
        double inv_n = 1.0 / static_cast<double>(dim);
        for (size_t c = 0; c < dim; ++c) {
            double dxhat = dy(r, c) * gamma_(0, c);
            dx(r, c) = cached_inv_std_[r] *
                       (dxhat - inv_n * sum_dxhat -
                        cached_xhat_(r, c) * inv_n * sum_dxhat_xhat);
        }
    }
    return dx;
}

void
LayerNorm::zeroGrad()
{
    for (double &v : dgamma_.data())
        v = 0.0;
    for (double &v : dbeta_.data())
        v = 0.0;
}

void
LayerNorm::visitParams(const ParamVisitor &fn)
{
    fn(gamma_, dgamma_);
    fn(beta_, dbeta_);
}

// ------------------------------------------------------------------ Gelu

Matrix
Gelu::forward(const Matrix &x)
{
    cached_x_ = x;
    return gelu(x);
}

Matrix
Gelu::backward(const Matrix &dy)
{
    return geluBackward(cached_x_, dy);
}

// ------------------------------------------- MultiHeadSelfAttention

MultiHeadSelfAttention::MultiHeadSelfAttention(size_t dim, size_t heads,
                                               Rng &rng)
    : dim_(dim), heads_(heads), dk_(dim / heads),
      wq_(dim, dim, rng), wk_(dim, dim, rng), wv_(dim, dim, rng),
      wo_(dim, dim, rng)
{
    if (dim % heads != 0)
        lt_fatal("attention dim ", dim, " not divisible by heads ",
                 heads);
}

Matrix
MultiHeadSelfAttention::forward(const Matrix &x, RunContext &ctx)
{
    const size_t tokens = x.rows();
    Matrix q = wq_.forward(x, ctx);
    Matrix k = wk_.forward(x, ctx);
    Matrix v = wv_.forward(x, ctx);

    cached_q_.assign(heads_, Matrix());
    cached_k_.assign(heads_, Matrix());
    cached_v_.assign(heads_, Matrix());
    cached_p_.assign(heads_, Matrix());

    // Per-head operands first, so the dynamic MMs can run as one
    // batch on the execution engine (each head's product keeps its
    // own noise stream — batching never changes results).
    std::vector<Matrix> kh_t(heads_);
    for (size_t h = 0; h < heads_; ++h) {
        Matrix qh = sliceCols(q, h * dk_, dk_);
        Matrix kh = sliceCols(k, h * dk_, dk_);
        Matrix vh = sliceCols(v, h * dk_, dk_);
        if (ctx.quant.enabled) {
            // Dynamic operands are quantized at the DAC just like
            // weights (both are activations in attention).
            qh = fakeQuant(qh, ctx.quant.act_bits);
            kh = fakeQuant(kh, ctx.quant.act_bits);
            vh = fakeQuant(vh, ctx.quant.act_bits);
        }
        kh_t[h] = kh.transposed();
        cached_q_[h] = std::move(qh);
        cached_k_[h] = std::move(kh);
        cached_v_[h] = std::move(vh);
    }

    // QK^T: the first dynamic MM, batched over heads.
    std::vector<std::pair<const Matrix *, const Matrix *>> qk_ops;
    qk_ops.reserve(heads_);
    for (size_t h = 0; h < heads_; ++h)
        qk_ops.emplace_back(&cached_q_[h], &kh_t[h]);
    std::vector<Matrix> scores = ctx.backend->gemmBatch(qk_ops);

    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));
    for (size_t h = 0; h < heads_; ++h) {
        for (double &s : scores[h].data())
            s *= inv_sqrt_dk;
        Matrix p = rowSoftmax(scores[h]);
        cached_p_[h] = ctx.quant.enabled
                           ? fakeQuant(p, ctx.quant.act_bits)
                           : std::move(p);
    }

    // AV: the second dynamic MM, batched over heads.
    std::vector<std::pair<const Matrix *, const Matrix *>> av_ops;
    av_ops.reserve(heads_);
    for (size_t h = 0; h < heads_; ++h)
        av_ops.emplace_back(&cached_p_[h], &cached_v_[h]);
    std::vector<Matrix> ctx_heads = ctx.backend->gemmBatch(av_ops);

    Matrix context(tokens, dim_, 0.0);
    for (size_t h = 0; h < heads_; ++h)
        pasteCols(context, ctx_heads[h], h * dk_);
    return wo_.forward(context, ctx);
}

Matrix
MultiHeadSelfAttention::backward(const Matrix &dy)
{
    Matrix dcontext = wo_.backward(dy);
    const size_t tokens = dcontext.rows();
    Matrix dq(tokens, dim_, 0.0);
    Matrix dk_full(tokens, dim_, 0.0);
    Matrix dv(tokens, dim_, 0.0);
    double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(dk_));

    for (size_t h = 0; h < heads_; ++h) {
        Matrix dctx_h = sliceCols(dcontext, h * dk_, dk_);
        const Matrix &p = cached_p_[h];
        const Matrix &qh = cached_q_[h];
        const Matrix &kh = cached_k_[h];
        const Matrix &vh = cached_v_[h];

        Matrix dp = dctx_h * vh.transposed();
        Matrix dvh = p.transposed() * dctx_h;
        Matrix dscores = rowSoftmaxBackward(p, dp);
        for (double &s : dscores.data())
            s *= inv_sqrt_dk;
        Matrix dqh = dscores * kh;
        Matrix dkh = dscores.transposed() * qh;

        pasteCols(dq, dqh, h * dk_);
        pasteCols(dk_full, dkh, h * dk_);
        pasteCols(dv, dvh, h * dk_);
    }

    Matrix dx = wq_.backward(dq);
    addInPlace(dx, wk_.backward(dk_full));
    addInPlace(dx, wv_.backward(dv));
    return dx;
}

void
MultiHeadSelfAttention::zeroGrad()
{
    wq_.zeroGrad();
    wk_.zeroGrad();
    wv_.zeroGrad();
    wo_.zeroGrad();
}

void
MultiHeadSelfAttention::visitParams(const ParamVisitor &fn)
{
    wq_.visitParams(fn);
    wk_.visitParams(fn);
    wv_.visitParams(fn);
    wo_.visitParams(fn);
}

// ----------------------------------------------------------- FeedForward

FeedForward::FeedForward(size_t dim, size_t hidden, Rng &rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng)
{
}

Matrix
FeedForward::forward(const Matrix &x, RunContext &ctx)
{
    return fc2_.forward(act_.forward(fc1_.forward(x, ctx)), ctx);
}

Matrix
FeedForward::backward(const Matrix &dy)
{
    return fc1_.backward(act_.backward(fc2_.backward(dy)));
}

void
FeedForward::zeroGrad()
{
    fc1_.zeroGrad();
    fc2_.zeroGrad();
}

void
FeedForward::visitParams(const ParamVisitor &fn)
{
    fc1_.visitParams(fn);
    fc2_.visitParams(fn);
}

// ------------------------------------------------------ TransformerBlock

TransformerBlock::TransformerBlock(size_t dim, size_t heads,
                                   size_t mlp_hidden, Rng &rng)
    : ln1_(dim), attn_(dim, heads, rng), ln2_(dim),
      ffn_(dim, mlp_hidden, rng)
{
}

Matrix
TransformerBlock::forward(const Matrix &x, RunContext &ctx)
{
    // x' = x + MHA(LN(x))
    Matrix h = attn_.forward(ln1_.forward(x), ctx);
    addInPlace(h, x);
    // y = x' + FFN(LN(x'))
    Matrix y = ffn_.forward(ln2_.forward(h), ctx);
    addInPlace(y, h);
    return y;
}

Matrix
TransformerBlock::backward(const Matrix &dy)
{
    // Through the FFN residual.
    Matrix dh = ln2_.backward(ffn_.backward(dy));
    addInPlace(dh, dy);
    // Through the attention residual.
    Matrix dx = ln1_.backward(attn_.backward(dh));
    addInPlace(dx, dh);
    return dx;
}

void
TransformerBlock::zeroGrad()
{
    ln1_.zeroGrad();
    attn_.zeroGrad();
    ln2_.zeroGrad();
    ffn_.zeroGrad();
}

void
TransformerBlock::visitParams(const ParamVisitor &fn)
{
    ln1_.visitParams(fn);
    attn_.visitParams(fn);
    ln2_.visitParams(fn);
    ffn_.visitParams(fn);
}

// -------------------------------------------------------- TokenEmbedding

TokenEmbedding::TokenEmbedding(size_t vocab, size_t dim, Rng &rng)
    : table_(vocab, dim), dtable_(vocab, dim, 0.0)
{
    for (double &v : table_.data())
        v = rng.gaussian(0.0, 0.02);
}

Matrix
TokenEmbedding::forward(const std::vector<int> &tokens)
{
    cached_tokens_ = tokens;
    Matrix out(tokens.size(), table_.cols());
    for (size_t t = 0; t < tokens.size(); ++t) {
        int id = tokens[t];
        if (id < 0 || static_cast<size_t>(id) >= table_.rows())
            lt_fatal("token id ", id, " outside vocab ", table_.rows());
        for (size_t c = 0; c < table_.cols(); ++c)
            out(t, c) = table_(static_cast<size_t>(id), c);
    }
    return out;
}

void
TokenEmbedding::backward(const Matrix &dy)
{
    if (dy.rows() != cached_tokens_.size())
        lt_panic("TokenEmbedding backward shape mismatch");
    for (size_t t = 0; t < cached_tokens_.size(); ++t) {
        auto id = static_cast<size_t>(cached_tokens_[t]);
        for (size_t c = 0; c < table_.cols(); ++c)
            dtable_(id, c) += dy(t, c);
    }
}

void
TokenEmbedding::zeroGrad()
{
    for (double &v : dtable_.data())
        v = 0.0;
}

void
TokenEmbedding::visitParams(const ParamVisitor &fn)
{
    fn(table_, dtable_);
}

} // namespace nn
} // namespace lt
