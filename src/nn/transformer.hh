/**
 * @file
 * A complete encoder-only Transformer classifier with manual backprop,
 * supporting both a vision input path (patch embedding, the DeiT
 * substitute) and a token-sequence input path (token embedding, the
 * BERT substitute), plus a causal decoder mode that InferenceSession
 * (nn/inference_session.hh) drives incrementally with a K/V cache.
 *
 * The forward API is stateless: every forward is a const, pure
 * function of (weights, input, workspace) — callers own the
 * ActivationWorkspace that holds the per-request caches, so one model
 * object serves many concurrent requests. `forward*Batch` exploits
 * that by running samples concurrently on the thread pool with one
 * workspace and one NoiseStream lane per sample; results are
 * bit-identical to the sequential per-sample reference at any thread
 * count. All GEMMs run on the RunContext backend, so the same trained
 * model can be evaluated on ideal arithmetic or on the noisy photonic
 * DPTC model (the paper's Fig. 14/15 methodology).
 */

#ifndef LT_NN_TRANSFORMER_HH
#define LT_NN_TRANSFORMER_HH

#include <memory>
#include <optional>
#include <vector>

#include "nn/activation_workspace.hh"
#include "nn/layers.hh"

namespace lt {
namespace nn {

class InferenceSession;
class BatchedDecoder;

/** How the final token representation is pooled for classification. */
enum class Pooling { ClsToken, Mean, LastToken };

/** Configuration of a (small) trainable Transformer classifier. */
struct TransformerConfig
{
    size_t dim = 32;
    size_t depth = 2;
    size_t heads = 2;
    size_t mlp_hidden = 64;
    size_t num_classes = 4;

    /** Token count the positional table covers (incl. CLS if used). */
    size_t max_tokens = 17;

    Pooling pooling = Pooling::ClsToken;

    /**
     * Causal (decoder) attention: token i attends only to j <= i.
     * Required for InferenceSession's incremental K/V-cache decode;
     * incompatible with ClsToken pooling (a front CLS token would see
     * nothing under the mask).
     */
    bool causal = false;

    /** Vision mode: flattened patch length (> 0 enables this path). */
    size_t patch_dim = 0;

    /** Sequence mode: vocabulary size (> 0 enables this path). */
    size_t vocab_size = 0;

    uint64_t seed = 0x5eed;
};

/** Encoder-only Transformer with a linear classification head. */
class TransformerClassifier
{
  public:
    explicit TransformerClassifier(const TransformerConfig &cfg);

    const TransformerConfig &config() const { return cfg_; }

    /**
     * Vision forward: patches is [num_patches, patch_dim]; returns
     * logits [1, num_classes]. Pure function of (weights, input,
     * workspace); throws std::invalid_argument when the patch count
     * exceeds the positional table (max_tokens) or the patch width
     * does not match the configuration.
     */
    Matrix forwardVision(const Matrix &patches,
                         ActivationWorkspace &ws,
                         RunContext &ctx) const;

    /**
     * Sequence forward: token ids -> logits [1, num_classes]. Throws
     * std::invalid_argument on too many tokens or out-of-vocab ids.
     */
    Matrix forwardSequence(const std::vector<int> &tokens,
                           ActivationWorkspace &ws,
                           RunContext &ctx) const;

    /**
     * Batched vision inference, genuinely parallel across samples:
     * each sample gets its own workspace and its own NoiseStream lane,
     * and the samples are sharded across the global thread pool (the
     * per-sample GEMMs then run inline on their shard). Equivalent, at
     * any thread count and bit-exactly, to the sequential reference
     *
     *   NoiseStream lanes(ctx.stream.next());
     *   for i: forwardVision(batch[i], fresh_ws,
     *            RunContext{ctx.backend, ctx.quant, lanes.lane(i)});
     *
     * Inference-only (workspaces are discarded).
     */
    std::vector<Matrix>
    forwardVisionBatch(const std::vector<const Matrix *> &batch,
                       RunContext &ctx) const;

    /** Convenience overload over owned matrices. */
    std::vector<Matrix>
    forwardVisionBatch(const std::vector<Matrix> &batch,
                       RunContext &ctx) const;

    /** Batched sequence inference (see forwardVisionBatch). */
    std::vector<Matrix> forwardSequenceBatch(
        const std::vector<const std::vector<int> *> &batch,
        RunContext &ctx) const;

    /** Convenience overload over owned token vectors. */
    std::vector<Matrix>
    forwardSequenceBatch(const std::vector<std::vector<int>> &batch,
                         RunContext &ctx) const;

    /**
     * Backward from dL/dlogits through the whole network, using the
     * caches the forward wrote into `ws`.
     */
    void backward(const Matrix &dlogits, const ActivationWorkspace &ws);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    /** Total scalar parameter count. */
    size_t numParams();

    size_t depth() const { return blocks_.size(); }
    const TransformerBlock &block(size_t i) const { return *blocks_[i]; }

  private:
    friend class InferenceSession;
    friend class BatchedDecoder;

    Matrix forwardCommon(Matrix x, ActivationWorkspace &ws,
                         RunContext &ctx) const;

    TransformerConfig cfg_;
    Rng init_rng_;

    std::optional<Linear> patch_embed_;
    std::optional<TokenEmbedding> token_embed_;
    Matrix cls_;   ///< [1, dim] learned CLS token
    Matrix dcls_;
    Matrix pos_;   ///< [max_tokens, dim] learned positions
    Matrix dpos_;

    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    LayerNorm final_ln_;
    Linear head_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_TRANSFORMER_HH
