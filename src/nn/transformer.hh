/**
 * @file
 * A complete encoder-only Transformer classifier with manual backprop,
 * supporting both a vision input path (patch embedding, the DeiT
 * substitute) and a token-sequence input path (token embedding, the
 * BERT substitute). All GEMMs run on the RunContext backend, so the
 * same trained model can be evaluated on ideal arithmetic or on the
 * noisy photonic DPTC model (the paper's Fig. 14/15 methodology).
 */

#ifndef LT_NN_TRANSFORMER_HH
#define LT_NN_TRANSFORMER_HH

#include <memory>
#include <optional>
#include <vector>

#include "nn/layers.hh"

namespace lt {
namespace nn {

/** How the final token representation is pooled for classification. */
enum class Pooling { ClsToken, Mean };

/** Configuration of a (small) trainable Transformer classifier. */
struct TransformerConfig
{
    size_t dim = 32;
    size_t depth = 2;
    size_t heads = 2;
    size_t mlp_hidden = 64;
    size_t num_classes = 4;

    /** Token count the positional table covers (incl. CLS if used). */
    size_t max_tokens = 17;

    Pooling pooling = Pooling::ClsToken;

    /** Vision mode: flattened patch length (> 0 enables this path). */
    size_t patch_dim = 0;

    /** Sequence mode: vocabulary size (> 0 enables this path). */
    size_t vocab_size = 0;

    uint64_t seed = 0x5eed;
};

/** Encoder-only Transformer with a linear classification head. */
class TransformerClassifier
{
  public:
    explicit TransformerClassifier(const TransformerConfig &cfg);

    const TransformerConfig &config() const { return cfg_; }

    /**
     * Vision forward: patches is [num_patches, patch_dim]; returns
     * logits [1, num_classes].
     */
    Matrix forwardVision(const Matrix &patches, RunContext &ctx);

    /** Sequence forward: token ids; returns logits [1, num_classes]. */
    Matrix forwardSequence(const std::vector<int> &tokens,
                           RunContext &ctx);

    /**
     * Batched vision inference: one logits matrix per sample, equal to
     * calling forwardVision() per sample in order. Layer forward
     * caches make the model object stateful, so samples stream through
     * sequentially; the parallel axis is the execution engine sharding
     * each sample's GEMM tiles (and per-head attention batches) across
     * its cores. Inference-only: afterwards the backward caches refer
     * to the last sample.
     */
    std::vector<Matrix>
    forwardVisionBatch(const std::vector<const Matrix *> &batch,
                       RunContext &ctx);

    /** Convenience overload over owned matrices. */
    std::vector<Matrix>
    forwardVisionBatch(const std::vector<Matrix> &batch,
                       RunContext &ctx);

    /** Batched sequence inference (see forwardVisionBatch). */
    std::vector<Matrix> forwardSequenceBatch(
        const std::vector<const std::vector<int> *> &batch,
        RunContext &ctx);

    /** Convenience overload over owned token vectors. */
    std::vector<Matrix>
    forwardSequenceBatch(const std::vector<std::vector<int>> &batch,
                         RunContext &ctx);

    /** Backward from dL/dlogits through the whole network. */
    void backward(const Matrix &dlogits);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    /** Total scalar parameter count. */
    size_t numParams();

  private:
    Matrix forwardCommon(Matrix x, RunContext &ctx);

    TransformerConfig cfg_;
    Rng init_rng_;

    std::optional<Linear> patch_embed_;
    std::optional<TokenEmbedding> token_embed_;
    Matrix cls_;   ///< [1, dim] learned CLS token
    Matrix dcls_;
    Matrix pos_;   ///< [max_tokens, dim] learned positions
    Matrix dpos_;

    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    LayerNorm final_ln_;
    Linear head_;

    // Forward caches.
    size_t cached_tokens_ = 0;
    Matrix cached_pooled_in_;  ///< final-LN output (for mean pooling)
    bool last_was_vision_ = false;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_TRANSFORMER_HH
