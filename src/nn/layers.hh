/**
 * @file
 * Transformer building-block layers with manual backward passes.
 *
 * Every layer follows the same contract:
 *  - forward(x, ctx) runs the layer, caching what backward needs;
 *  - backward(dy) returns dL/dx and accumulates parameter gradients;
 *  - visitParams(fn) exposes (param, grad) pairs to the optimizer.
 *
 * All matrix products route through the RunContext's GemmBackend, so a
 * model built from these layers can execute on exact arithmetic or on
 * the noisy photonic DPTC functional model. Quantization follows the
 * paper's noise-aware training recipe: weights and activations are
 * fake-quantized in forward, gradients pass straight through (STE).
 */

#ifndef LT_NN_LAYERS_HH
#define LT_NN_LAYERS_HH

#include <functional>
#include <vector>

#include "nn/gemm_backend.hh"
#include "nn/quant.hh"
#include "nn/tensor_ops.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace nn {

/** Execution context threaded through every forward pass. */
struct RunContext
{
    GemmBackend *backend;
    QuantConfig quant;
};

/** Callback type used to expose (parameter, gradient) pairs. */
using ParamVisitor = std::function<void(Matrix &, Matrix &)>;

/** Fully-connected layer Y = X W + b. */
class Linear
{
  public:
    Linear(size_t in, size_t out, Rng &rng, bool bias = true);

    Matrix forward(const Matrix &x, RunContext &ctx);
    Matrix backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    size_t inFeatures() const { return w_.rows(); }
    size_t outFeatures() const { return w_.cols(); }

    Matrix &weight() { return w_; }
    Matrix &bias() { return b_; }

  private:
    Matrix w_;   ///< [in, out]
    Matrix b_;   ///< [1, out]
    Matrix dw_;
    Matrix db_;
    Matrix cached_x_;  ///< quantized input from forward
    Matrix cached_wq_; ///< quantized weight from forward
    bool has_bias_;
};

/** Per-row layer normalization with learned gamma/beta. */
class LayerNorm
{
  public:
    explicit LayerNorm(size_t dim, double eps = 1e-5);

    Matrix forward(const Matrix &x);
    Matrix backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    Matrix gamma_;  ///< [1, dim]
    Matrix beta_;   ///< [1, dim]
    Matrix dgamma_;
    Matrix dbeta_;
    Matrix cached_xhat_;
    std::vector<double> cached_inv_std_;
    double eps_;
};

/** GELU activation (stateless apart from the forward cache). */
class Gelu
{
  public:
    Matrix forward(const Matrix &x);
    Matrix backward(const Matrix &dy);

  private:
    Matrix cached_x_;
};

/**
 * Multi-head self-attention (paper Eq. 2). The QK^T and AV products
 * are the *dynamic* matrix multiplies that motivate the whole paper;
 * they execute on the RunContext backend exactly like weight GEMMs.
 */
class MultiHeadSelfAttention
{
  public:
    MultiHeadSelfAttention(size_t dim, size_t heads, Rng &rng);

    Matrix forward(const Matrix &x, RunContext &ctx);
    Matrix backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    size_t heads() const { return heads_; }
    size_t headDim() const { return dk_; }

  private:
    size_t dim_;
    size_t heads_;
    size_t dk_;
    Linear wq_, wk_, wv_, wo_;

    // Forward caches (per head).
    std::vector<Matrix> cached_q_;  ///< quantized per-head Q
    std::vector<Matrix> cached_k_;
    std::vector<Matrix> cached_v_;
    std::vector<Matrix> cached_p_;  ///< attention probabilities
};

/** Feed-forward network: Linear -> GELU -> Linear. */
class FeedForward
{
  public:
    FeedForward(size_t dim, size_t hidden, Rng &rng);

    Matrix forward(const Matrix &x, RunContext &ctx);
    Matrix backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    Linear fc1_;
    Gelu act_;
    Linear fc2_;
};

/**
 * Pre-LN encoder block (paper Eq. 1):
 *   x' = x + MHA(LN(x));  y = x' + FFN(LN(x')).
 */
class TransformerBlock
{
  public:
    TransformerBlock(size_t dim, size_t heads, size_t mlp_hidden,
                     Rng &rng);

    Matrix forward(const Matrix &x, RunContext &ctx);
    Matrix backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    LayerNorm ln1_;
    MultiHeadSelfAttention attn_;
    LayerNorm ln2_;
    FeedForward ffn_;
};

/** Learned token-id embedding table (BERT-substitute input path). */
class TokenEmbedding
{
  public:
    TokenEmbedding(size_t vocab, size_t dim, Rng &rng);

    /** Look up a token sequence -> [seq, dim]. */
    Matrix forward(const std::vector<int> &tokens);
    void backward(const Matrix &dy);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    Matrix table_;  ///< [vocab, dim]
    Matrix dtable_;
    std::vector<int> cached_tokens_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_LAYERS_HH
