/**
 * @file
 * Transformer building-block layers with manual backward passes.
 *
 * Every layer follows the same contract:
 *  - forward(x, cache, ctx) is a *pure function* of (weights, input):
 *    it is const on the layer and writes what backward needs into the
 *    caller-owned cache (see nn/activation_workspace.hh), so one
 *    weight set can serve many concurrent requests, each with its own
 *    workspace;
 *  - backward(dy, cache) returns dL/dx and accumulates parameter
 *    gradients (training is the one stateful client);
 *  - visitParams(fn) exposes (param, grad) pairs to the optimizer.
 *
 * All matrix products route through the RunContext's GemmBackend, so a
 * model built from these layers can execute on exact arithmetic or on
 * the noisy photonic DPTC functional model. Each product draws its
 * noise-stream id from the RunContext's NoiseStream in fixed call
 * order, making noisy results independent of thread scheduling and of
 * concurrent requests. Quantization follows the paper's noise-aware
 * training recipe: weights and activations are fake-quantized in
 * forward, gradients pass straight through (STE).
 */

#ifndef LT_NN_LAYERS_HH
#define LT_NN_LAYERS_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/activation_workspace.hh"
#include "nn/gemm_backend.hh"
#include "nn/quant.hh"
#include "nn/tensor_ops.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace nn {

/**
 * Execution context threaded through every forward pass: which GEMM
 * backend runs the products, how operands are quantized, and which
 * noise stream the products draw from. Copy a context and give it a
 * distinct stream lane (NoiseStream::lane) to run requests
 * concurrently with decorrelated, scheduling-independent noise.
 */
struct RunContext
{
    GemmBackend *backend;
    QuantConfig quant;
    NoiseStream stream{};

    /**
     * Inference-only pass: layers may serve static weights from
     * their version-keyed WeightPlan caches (fake-quantized and
     * encoded once on the backend, reused across steps) and skip
     * writing the backward caches. Results are bit-identical either
     * way — stream-addressed products are pure functions of
     * (operands, config, stream) — but calling backward() on caches
     * written under this flag is invalid. Set by InferenceSession and
     * the serve layer; the *Batch serving entry points are
     * inference-only by contract and use plans regardless.
     */
    bool inference = false;
};

/** Callback type used to expose (parameter, gradient) pairs. */
using ParamVisitor = std::function<void(Matrix &, Matrix &)>;

/**
 * Version-keyed cache of encoded static-weight operands ("weight
 * plans"). A plan is the once-per-weight-version result of
 * fake-quantizing a layer weight and encoding it on a backend
 * (GemmBackend::encodeWeight): beta + DAC-quantized values in the
 * packed tile layout. Keyed by (backend identity, fakeQuant weight
 * width, weight version) — a Trainer weight update bumps the layer's
 * version (see Linear::visitParams), so the next inference fetch
 * re-encodes instead of serving a stale plan. Backends are identified
 * by their process-unique uid (not their address), so a cache can
 * never hand a plan encoded for a destroyed backend to a new one
 * reusing its storage; the entry list is capped (oldest evicted), so
 * transient backends cannot grow it without bound.
 *
 * Thread-safe (concurrent batch samples share one layer). Copying or
 * moving a layer does not copy its plans — they re-materialize on
 * first use against whatever backend the copy runs on.
 */
class WeightPlanCache
{
  public:
    WeightPlanCache() = default;
    WeightPlanCache(const WeightPlanCache &) noexcept {}
    WeightPlanCache(WeightPlanCache &&) noexcept {}
    WeightPlanCache &
    operator=(const WeightPlanCache &) noexcept
    {
        clear();
        return *this;
    }
    WeightPlanCache &
    operator=(WeightPlanCache &&) noexcept
    {
        clear();
        return *this;
    }

    /**
     * Return the plan for (backend, bits, version), calling
     * materialize() for the (fake-quantized) dense weight and
     * encoding it on the backend only on a miss. `bits` is the
     * fakeQuant weight width, or -1 when quantization is disabled.
     * Hit/miss lands on the backend's GemmStats weight_encode_*
     * counters (misses via encodeWeight, hits when the returned plan
     * is executed).
     */
    std::shared_ptr<const core::EncodedOperand>
    fetch(GemmBackend &backend, int bits, uint64_t version,
          const std::function<Matrix()> &materialize);

    void clear();

  private:
    /** Distinct (backend, width) pairs to retain; oldest evicted. */
    static constexpr size_t kMaxEntries = 4;

    struct Entry
    {
        uint64_t backend_uid;
        int bits;
        uint64_t version;
        std::shared_ptr<const core::EncodedOperand> plan;
    };

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
};

/** Fully-connected layer Y = X W + b. */
class Linear
{
  public:
    Linear(size_t in, size_t out, Rng &rng, bool bias = true);

    Matrix forward(const Matrix &x, LinearCache &cache,
                   RunContext &ctx) const;
    Matrix backward(const Matrix &dy, const LinearCache &cache);

    /**
     * Serving entry point: run xs[i] through this layer under
     * ctxs[i]'s quantization and noise lane, with the N products fused
     * into ONE stream-addressed gemmBatch on the shared backend.
     * Result i is bit-identical to forward(xs[i], cache, *ctxs[i])
     * (stream-addressed products are pure functions of (operands,
     * config, stream), so fusing never changes values). Each ctx draws
     * exactly one stream id, in index order — the same draw the solo
     * forward makes. Inference-only: no backward caches are written.
     * All ctxs must share one backend.
     */
    std::vector<Matrix>
    forwardBatch(const std::vector<Matrix> &xs,
                 const std::vector<RunContext *> &ctxs) const;

    void zeroGrad();

    /**
     * Expose (param, grad) pairs. Handing out mutable weight refs
     * counts as a weight update: the weight version is bumped, so
     * cached WeightPlans for the old values are invalidated (the
     * Trainer's optimizer step goes through here).
     */
    void visitParams(const ParamVisitor &fn);

    size_t inFeatures() const { return w_.rows(); }
    size_t outFeatures() const { return w_.cols(); }

    /** Mutable weight access bumps the version (plan invalidation). */
    Matrix &
    weight()
    {
        version_.fetch_add(1, std::memory_order_relaxed);
        return w_;
    }
    Matrix &
    bias()
    {
        version_.fetch_add(1, std::memory_order_relaxed);
        return b_;
    }

    /** Monotonic weight-version counter keying the plan cache. */
    uint64_t
    weightVersion() const
    {
        return version_.load(std::memory_order_relaxed);
    }

  private:
    /** Fetch (or build) this layer's weight plan for ctx's backend. */
    std::shared_ptr<const core::EncodedOperand>
    planFor(GemmBackend &backend, const QuantConfig &quant) const;

    void addBias(Matrix &y) const;

    Matrix w_;   ///< [in, out]
    Matrix b_;   ///< [1, out]
    Matrix dw_;
    Matrix db_;
    bool has_bias_;

    /**
     * Atomic so a weight update on one thread (checkpoint hot-reload,
     * optimizer step) and a concurrent inference thread's plan lookup
     * are an ordering question, not a data race: the reader sees
     * either the old or the new version, never a torn value.
     */
    std::atomic<uint64_t> version_{0};
    mutable WeightPlanCache plans_;
};

/** Per-row layer normalization with learned gamma/beta. */
class LayerNorm
{
  public:
    explicit LayerNorm(size_t dim, double eps = 1e-5);

    Matrix forward(const Matrix &x, LayerNormCache &cache) const;
    Matrix backward(const Matrix &dy, const LayerNormCache &cache);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    Matrix gamma_;  ///< [1, dim]
    Matrix beta_;   ///< [1, dim]
    Matrix dgamma_;
    Matrix dbeta_;
    double eps_;
};

/** GELU activation (stateless; the cache holds the forward input). */
class Gelu
{
  public:
    Matrix forward(const Matrix &x, GeluCache &cache) const;
    Matrix backward(const Matrix &dy, const GeluCache &cache) const;
};

/**
 * Multi-head self-attention (paper Eq. 2). The QK^T and AV products
 * are the *dynamic* matrix multiplies that motivate the whole paper;
 * they execute on the RunContext backend exactly like weight GEMMs.
 * With `causal`, token i attends only to tokens <= i (decoder mode) —
 * the configuration incremental decode requires.
 */
class MultiHeadSelfAttention
{
  public:
    MultiHeadSelfAttention(size_t dim, size_t heads, Rng &rng,
                           bool causal = false);

    Matrix forward(const Matrix &x, AttentionCache &cache,
                   RunContext &ctx) const;
    Matrix backward(const Matrix &dy, const AttentionCache &cache);

    /**
     * Incremental decode: run ONE new token row [1, dim] against the
     * session's growing K/V cache. The row's K/V are appended to the
     * cache (in the quantized domain the cache stores), and the
     * per-head QK^T / AV score and context rows execute as one
     * gemmBatch on the backend — this is the skinny, memory-bound
     * traffic of paper Section VI-B actually running on the engine.
     * Requires causal attention (the cache only holds the past).
     */
    Matrix decodeStep(const Matrix &x, AttentionKvCache &kv,
                      AttentionCache &scratch, RunContext &ctx) const;

    /**
     * Cross-request lockstep decode: one new token row per request,
     * each against its own K/V cache and noise lane, with the
     * same-shape projection row-GEMMs of all N requests fused into
     * single gemmBatch calls (one per projection, one for all N*heads
     * QK^T rows, one for all N*heads AV rows). Result i and the
     * mutation of kvs[i] are bit-identical to
     * decodeStep(xs[i], *kvs[i], scratch, *ctxs[i]) running alone —
     * the continuous-batching correctness contract. All ctxs must
     * share one backend.
     */
    std::vector<Matrix>
    decodeStepBatch(const std::vector<Matrix> &xs,
                    const std::vector<AttentionKvCache *> &kvs,
                    const std::vector<RunContext *> &ctxs) const;

    /**
     * Seed a decode K/V cache from a prefill forward's caches (the
     * per-head quantized K/V the forward already materialized).
     * Dense mirrors only; any previous encoded mirrors are dropped.
     */
    void seedKvCache(const AttentionCache &cache,
                     AttentionKvCache &kv) const;

    /**
     * Seed and, when the backend executes encoded K/V operands,
     * build the encoded mirrors up front (counts the per-head
     * kv_encode misses here, at prefill, so steady-state decode
     * performs zero K/V encodes).
     */
    void seedKvCache(const AttentionCache &cache, AttentionKvCache &kv,
                     GemmBackend &backend) const;

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    size_t heads() const { return heads_; }
    size_t headDim() const { return dk_; }
    bool causal() const { return causal_; }

  private:
    /**
     * Activate (or deactivate) kv's encoded mirrors for `backend`:
     * sizes the per-head operand vectors and re-homes them when the
     * cache last ran on a different backend. Returns whether encoded
     * dispatch is in effect.
     */
    bool prepareKvEncoded(AttentionKvCache &kv,
                          GemmBackend &backend) const;

    /**
     * Bring head h's encoded mirrors up to date after the dense
     * appends of one token: the O(dk) packed append when the cached
     * beta still covers the new row, a full (counted) rebuild —
     * requantization in place — when it does not or the mirror is
     * out of sync.
     */
    void syncKvEncodedHead(AttentionKvCache &kv, size_t h,
                           const Matrix &k_row, const Matrix &v_row,
                           GemmBackend &backend) const;

    size_t dim_;
    size_t heads_;
    size_t dk_;
    bool causal_;
    Linear wq_, wk_, wv_, wo_;
};

/** Feed-forward network: Linear -> GELU -> Linear. */
class FeedForward
{
  public:
    FeedForward(size_t dim, size_t hidden, Rng &rng);

    Matrix forward(const Matrix &x, FeedForwardCache &cache,
                   RunContext &ctx) const;
    Matrix backward(const Matrix &dy, const FeedForwardCache &cache);

    /**
     * Serving entry point: xs[i] under ctxs[i], both projections fused
     * across requests (one gemmBatch per Linear). Bit-identical per
     * request to the solo forward; inference-only.
     */
    std::vector<Matrix>
    forwardBatch(const std::vector<Matrix> &xs,
                 const std::vector<RunContext *> &ctxs) const;

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    Linear fc1_;
    Gelu act_;
    Linear fc2_;
};

/**
 * Pre-LN encoder block (paper Eq. 1):
 *   x' = x + MHA(LN(x));  y = x' + FFN(LN(x')).
 */
class TransformerBlock
{
  public:
    TransformerBlock(size_t dim, size_t heads, size_t mlp_hidden,
                     Rng &rng, bool causal = false);

    Matrix forward(const Matrix &x, TransformerBlockCache &cache,
                   RunContext &ctx) const;
    Matrix backward(const Matrix &dy,
                    const TransformerBlockCache &cache);

    /** Incremental decode of one token row (see attention). */
    Matrix decodeStep(const Matrix &x, AttentionKvCache &kv,
                      TransformerBlockCache &scratch,
                      RunContext &ctx) const;

    /**
     * Cross-request lockstep decode of one token row per request (see
     * MultiHeadSelfAttention::decodeStepBatch): LayerNorms and
     * residuals run row-wise per request, every projection fuses
     * across requests. Bit-identical per request to the solo
     * decodeStep.
     */
    std::vector<Matrix>
    decodeStepBatch(const std::vector<Matrix> &xs,
                    const std::vector<AttentionKvCache *> &kvs,
                    const std::vector<RunContext *> &ctxs) const;

    const MultiHeadSelfAttention &attention() const { return attn_; }

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

  private:
    LayerNorm ln1_;
    MultiHeadSelfAttention attn_;
    LayerNorm ln2_;
    FeedForward ffn_;
};

/** Learned token-id embedding table (BERT-substitute input path). */
class TokenEmbedding
{
  public:
    TokenEmbedding(size_t vocab, size_t dim, Rng &rng);

    /**
     * Look up a token sequence -> [seq, dim]. Ids outside the
     * vocabulary throw std::invalid_argument.
     */
    Matrix forward(const std::vector<int> &tokens,
                   TokenEmbeddingCache &cache) const;

    /** Single-token lookup -> [1, dim] (incremental decode). */
    Matrix embedRow(int token) const;

    void backward(const Matrix &dy, const TokenEmbeddingCache &cache);

    void zeroGrad();
    void visitParams(const ParamVisitor &fn);

    size_t vocabSize() const { return table_.rows(); }

  private:
    Matrix table_;  ///< [vocab, dim]
    Matrix dtable_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_LAYERS_HH
