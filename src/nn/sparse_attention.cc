#include "sparse_attention.hh"

#include <cmath>
#include <limits>
#include <utility>

#include "nn/tensor_ops.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace lt {
namespace nn {

namespace {

void
validate(const Matrix &q, const Matrix &k, const Matrix &v,
         const WindowAttentionConfig &cfg)
{
    if (cfg.window == 0 || cfg.window % 2 == 0)
        lt_fatal("window size must be odd and positive, got ",
                 cfg.window);
    if (cfg.block == 0)
        lt_fatal("block size must be positive");
    if (q.rows() != cfg.seq_len || k.rows() != cfg.seq_len ||
        v.rows() != cfg.seq_len)
        lt_panic("window attention: sequence length mismatch");
    if (q.cols() != cfg.head_dim || k.cols() != cfg.head_dim ||
        v.cols() != cfg.head_dim)
        lt_panic("window attention: head dim mismatch");
}

} // namespace

Matrix
windowAttentionDense(const Matrix &q, const Matrix &k, const Matrix &v,
                     const WindowAttentionConfig &cfg)
{
    validate(q, k, v, cfg);
    const double inv_sqrt_dk =
        1.0 / std::sqrt(static_cast<double>(cfg.head_dim));
    Matrix scores(cfg.seq_len, cfg.seq_len,
                  -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < cfg.seq_len; ++i) {
        for (size_t j = cfg.windowStart(i); j < cfg.windowEnd(i); ++j) {
            double s = 0.0;
            for (size_t c = 0; c < cfg.head_dim; ++c)
                s += q(i, c) * k(j, c);
            scores(i, j) = s * inv_sqrt_dk;
        }
    }
    Matrix p = rowSoftmax(scores);
    return p * v;
}

namespace {

/** One Q chunk's geometry: its rows and the key span they touch. */
struct ChunkSpan
{
    size_t q0, q1;       ///< query rows [q0, q1)
    size_t span0, span1; ///< union of the rows' windows (key span)

    size_t rows() const { return q1 - q0; }
    size_t span() const { return span1 - span0; }
};

/** The chunk starting at q0 (shared by both execution pipelines). */
ChunkSpan
chunkSpanAt(const WindowAttentionConfig &cfg, size_t q0)
{
    ChunkSpan ch;
    ch.q0 = q0;
    ch.q1 = std::min(q0 + cfg.block, cfg.seq_len);
    ch.span0 = cfg.windowStart(q0);
    ch.span1 = cfg.windowEnd(ch.q1 - 1);
    return ch;
}

/**
 * Mask span entries outside each row's own window to -inf (the span
 * covers the chunk's union, not each row's window). `scores` is the
 * chunk-local [rows, span] score matrix.
 */
void
maskOutOfWindow(const WindowAttentionConfig &cfg, const ChunkSpan &ch,
                Matrix &scores)
{
    for (size_t i = ch.q0; i < ch.q1; ++i) {
        size_t w0 = cfg.windowStart(i);
        size_t w1 = cfg.windowEnd(i);
        for (size_t j = ch.span0; j < ch.span1; ++j) {
            if (j < w0 || j >= w1)
                scores(i - ch.q0, j - ch.span0) =
                    -std::numeric_limits<double>::infinity();
        }
    }
}

/**
 * The host (backend-free) chunk pipeline: scores, mask, softmax, AV
 * for one Q chunk. Writes only output rows [q0, q1) — chunks are
 * independent, which is what lets windowAttentionBlocked shard them.
 */
void
chunkPipelineHost(const Matrix &q, const Matrix &k, const Matrix &v,
                  const WindowAttentionConfig &cfg, size_t chunk_q0,
                  Matrix &out)
{
    const double inv_sqrt_dk =
        1.0 / std::sqrt(static_cast<double>(cfg.head_dim));
    ChunkSpan ch = chunkSpanAt(cfg, chunk_q0);
    size_t q0 = ch.q0, q1 = ch.q1;
    size_t span0 = ch.span0, span1 = ch.span1;
    size_t span = ch.span();

    // Chunked dense QK^T on the gathered span.
    Matrix scores(q1 - q0, span);
    for (size_t i = q0; i < q1; ++i) {
        for (size_t j = span0; j < span1; ++j) {
            double s = 0.0;
            for (size_t c = 0; c < cfg.head_dim; ++c)
                s += q(i, c) * k(j, c);
            scores(i - q0, j - span0) = s * inv_sqrt_dk;
        }
    }
    maskOutOfWindow(cfg, ch, scores);
    Matrix p = rowSoftmax(scores);
    // Compressed AV: multiply against the gathered V rows.
    for (size_t i = 0; i < p.rows(); ++i) {
        for (size_t c = 0; c < cfg.head_dim; ++c) {
            double s = 0.0;
            for (size_t j = 0; j < span; ++j)
                s += p(i, j) * v(span0 + j, c);
            out(q0 + i, c) = s;
        }
    }
}

/**
 * Backend chunk pipeline: materialize the chunk operands, batch every
 * chunk's QK^T through gemmBatch, mask + softmax, then batch the
 * compressed AV products. This is the Fig. 16 workload running on the
 * execution engine as a list of small dense GEMMs.
 */
Matrix
blockedOnBackend(const Matrix &q, const Matrix &k, const Matrix &v,
                 const WindowAttentionConfig &cfg, GemmBackend &backend,
                 NoiseStream *stream)
{
    const double inv_sqrt_dk =
        1.0 / std::sqrt(static_cast<double>(cfg.head_dim));
    struct Chunk
    {
        ChunkSpan span;
        Matrix q_chunk;  ///< [rows, dk]
        Matrix kt_span;  ///< [dk, span] gathered K^T
        Matrix v_span;   ///< [span, dk] gathered V rows
        Matrix p;        ///< masked softmax probabilities
    };
    std::vector<Chunk> chunks;
    for (size_t q0 = 0; q0 < cfg.seq_len; q0 += cfg.block) {
        Chunk ch;
        ch.span = chunkSpanAt(cfg, q0);
        size_t rows = ch.span.rows();
        size_t span = ch.span.span();
        ch.q_chunk = Matrix(rows, cfg.head_dim);
        for (size_t i = 0; i < rows; ++i)
            for (size_t c = 0; c < cfg.head_dim; ++c)
                ch.q_chunk(i, c) = q(ch.span.q0 + i, c);
        ch.kt_span = Matrix(cfg.head_dim, span);
        for (size_t j = 0; j < span; ++j)
            for (size_t c = 0; c < cfg.head_dim; ++c)
                ch.kt_span(c, j) = k(ch.span.span0 + j, c);
        ch.v_span = Matrix(span, cfg.head_dim);
        for (size_t j = 0; j < span; ++j)
            for (size_t c = 0; c < cfg.head_dim; ++c)
                ch.v_span(j, c) = v(ch.span.span0 + j, c);
        chunks.push_back(std::move(ch));
    }

    // With a caller-supplied NoiseStream, draw one id per product (in
    // chunk order) so results are history-independent.
    auto batchOn = [&](const std::vector<std::pair<const Matrix *,
                                                   const Matrix *>>
                           &ops) {
        if (!stream)
            return backend.gemmBatch(ops);
        std::vector<uint64_t> streams;
        streams.reserve(ops.size());
        for (size_t i = 0; i < ops.size(); ++i)
            streams.push_back(stream->next());
        return backend.gemmBatch(ops, streams);
    };

    std::vector<std::pair<const Matrix *, const Matrix *>> qk_ops;
    qk_ops.reserve(chunks.size());
    for (const Chunk &ch : chunks)
        qk_ops.emplace_back(&ch.q_chunk, &ch.kt_span);
    std::vector<Matrix> scores = batchOn(qk_ops);

    for (size_t ci = 0; ci < chunks.size(); ++ci) {
        Chunk &ch = chunks[ci];
        Matrix &s = scores[ci];
        for (double &x : s.data())
            x *= inv_sqrt_dk;
        maskOutOfWindow(cfg, ch.span, s);
        ch.p = rowSoftmax(s);
    }

    std::vector<std::pair<const Matrix *, const Matrix *>> av_ops;
    av_ops.reserve(chunks.size());
    for (const Chunk &ch : chunks)
        av_ops.emplace_back(&ch.p, &ch.v_span);
    std::vector<Matrix> ctx = batchOn(av_ops);

    Matrix out(cfg.seq_len, cfg.head_dim, 0.0);
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
        const Chunk &ch = chunks[ci];
        for (size_t i = 0; i < ch.span.rows(); ++i)
            for (size_t c = 0; c < cfg.head_dim; ++c)
                out(ch.span.q0 + i, c) = ctx[ci](i, c);
    }
    return out;
}

} // namespace

Matrix
windowAttentionBlocked(const Matrix &q, const Matrix &k, const Matrix &v,
                       const WindowAttentionConfig &cfg,
                       GemmBackend *backend, NoiseStream *stream)
{
    validate(q, k, v, cfg);
    if (backend)
        return blockedOnBackend(q, k, v, cfg, *backend, stream);

    Matrix out(cfg.seq_len, cfg.head_dim, 0.0);
    const size_t num_chunks =
        (cfg.seq_len + cfg.block - 1) / cfg.block;
    ThreadPool::global().parallelForEach(num_chunks, [&](size_t ci) {
        chunkPipelineHost(q, k, v, cfg, ci * cfg.block, out);
    });
    return out;
}

SparseAttentionWorkload
blockifyWindowAttention(const WindowAttentionConfig &cfg)
{
    if (cfg.window == 0 || cfg.window % 2 == 0)
        lt_fatal("window size must be odd and positive, got ",
                 cfg.window);
    if (cfg.block == 0)
        lt_fatal("block size must be positive");

    SparseAttentionWorkload w{};
    w.dense_macs = 2 * cfg.seq_len * cfg.seq_len * cfg.head_dim;
    w.sparse_macs = 0;
    for (size_t q0 = 0; q0 < cfg.seq_len; q0 += cfg.block) {
        size_t q1 = std::min(q0 + cfg.block, cfg.seq_len);
        size_t span0 = cfg.windowStart(q0);
        size_t span1 = cfg.windowEnd(q1 - 1);
        size_t span = span1 - span0;
        size_t rows = q1 - q0;

        w.qk_ops.push_back(
            {GemmKind::QkT, rows, cfg.head_dim, span, 1, true});
        w.av_ops.push_back(
            {GemmKind::Av, rows, span, cfg.head_dim, 1, true});
        w.sparse_macs += rows * cfg.head_dim * span +
                         rows * span * cfg.head_dim;
    }
    return w;
}

} // namespace nn
} // namespace lt
