#include "sparse_attention.hh"

#include <cmath>
#include <limits>

#include "nn/tensor_ops.hh"
#include "util/logging.hh"

namespace lt {
namespace nn {

namespace {

void
validate(const Matrix &q, const Matrix &k, const Matrix &v,
         const WindowAttentionConfig &cfg)
{
    if (cfg.window == 0 || cfg.window % 2 == 0)
        lt_fatal("window size must be odd and positive, got ",
                 cfg.window);
    if (cfg.block == 0)
        lt_fatal("block size must be positive");
    if (q.rows() != cfg.seq_len || k.rows() != cfg.seq_len ||
        v.rows() != cfg.seq_len)
        lt_panic("window attention: sequence length mismatch");
    if (q.cols() != cfg.head_dim || k.cols() != cfg.head_dim ||
        v.cols() != cfg.head_dim)
        lt_panic("window attention: head dim mismatch");
}

} // namespace

Matrix
windowAttentionDense(const Matrix &q, const Matrix &k, const Matrix &v,
                     const WindowAttentionConfig &cfg)
{
    validate(q, k, v, cfg);
    const double inv_sqrt_dk =
        1.0 / std::sqrt(static_cast<double>(cfg.head_dim));
    Matrix scores(cfg.seq_len, cfg.seq_len,
                  -std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < cfg.seq_len; ++i) {
        for (size_t j = cfg.windowStart(i); j < cfg.windowEnd(i); ++j) {
            double s = 0.0;
            for (size_t c = 0; c < cfg.head_dim; ++c)
                s += q(i, c) * k(j, c);
            scores(i, j) = s * inv_sqrt_dk;
        }
    }
    Matrix p = rowSoftmax(scores);
    return p * v;
}

Matrix
windowAttentionBlocked(const Matrix &q, const Matrix &k, const Matrix &v,
                       const WindowAttentionConfig &cfg)
{
    validate(q, k, v, cfg);
    const double inv_sqrt_dk =
        1.0 / std::sqrt(static_cast<double>(cfg.head_dim));
    Matrix out(cfg.seq_len, cfg.head_dim, 0.0);

    for (size_t q0 = 0; q0 < cfg.seq_len; q0 += cfg.block) {
        size_t q1 = std::min(q0 + cfg.block, cfg.seq_len);
        // Union of the chunk's windows -> the key span to gather.
        size_t span0 = cfg.windowStart(q0);
        size_t span1 = cfg.windowEnd(q1 - 1);
        size_t span = span1 - span0;

        // Chunked dense QK^T on the gathered span.
        Matrix scores(q1 - q0, span);
        for (size_t i = q0; i < q1; ++i) {
            for (size_t j = span0; j < span1; ++j) {
                double s = 0.0;
                for (size_t c = 0; c < cfg.head_dim; ++c)
                    s += q(i, c) * k(j, c);
                scores(i - q0, j - span0) = s * inv_sqrt_dk;
            }
        }
        // Per-row masking of span entries outside the token's own
        // window (the span covers the union, not each row's window).
        for (size_t i = q0; i < q1; ++i) {
            size_t w0 = cfg.windowStart(i);
            size_t w1 = cfg.windowEnd(i);
            for (size_t j = span0; j < span1; ++j) {
                if (j < w0 || j >= w1)
                    scores(i - q0, j - span0) =
                        -std::numeric_limits<double>::infinity();
            }
        }
        Matrix p = rowSoftmax(scores);
        // Compressed AV: multiply against the gathered V rows.
        for (size_t i = 0; i < p.rows(); ++i) {
            for (size_t c = 0; c < cfg.head_dim; ++c) {
                double s = 0.0;
                for (size_t j = 0; j < span; ++j)
                    s += p(i, j) * v(span0 + j, c);
                out(q0 + i, c) = s;
            }
        }
    }
    return out;
}

SparseAttentionWorkload
blockifyWindowAttention(const WindowAttentionConfig &cfg)
{
    if (cfg.window == 0 || cfg.window % 2 == 0)
        lt_fatal("window size must be odd and positive, got ",
                 cfg.window);
    if (cfg.block == 0)
        lt_fatal("block size must be positive");

    SparseAttentionWorkload w{};
    w.dense_macs = 2 * cfg.seq_len * cfg.seq_len * cfg.head_dim;
    w.sparse_macs = 0;
    for (size_t q0 = 0; q0 < cfg.seq_len; q0 += cfg.block) {
        size_t q1 = std::min(q0 + cfg.block, cfg.seq_len);
        size_t span0 = cfg.windowStart(q0);
        size_t span1 = cfg.windowEnd(q1 - 1);
        size_t span = span1 - span0;
        size_t rows = q1 - q0;

        w.qk_ops.push_back(
            {GemmKind::QkT, rows, cfg.head_dim, span, 1, true});
        w.av_ops.push_back(
            {GemmKind::Av, rows, span, cfg.head_dim, 1, true});
        w.sparse_macs += rows * cfg.head_dim * span +
                         rows * span * cfg.head_dim;
    }
    return w;
}

} // namespace nn
} // namespace lt
