#include "gemm_backend.hh"

#include "nn/execution_engine.hh"
#include "util/logging.hh"

namespace lt {
namespace nn {

core::EncodedOperand
GemmBackend::encodeWeight(const Matrix &w)
{
    (void)w;
    lt_fatal("encodeWeight on a backend without weight-plan support "
             "(check supportsWeightPlans() first)");
}

Matrix
GemmBackend::gemm(const Matrix &a, const core::EncodedOperand &w,
                  uint64_t stream)
{
    (void)a;
    (void)w;
    (void)stream;
    lt_fatal("encoded-operand gemm on a backend without weight-plan "
             "support (check supportsWeightPlans() first)");
}

std::vector<Matrix>
GemmBackend::gemmBatch(
    const std::vector<
        std::pair<const Matrix *, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    (void)products;
    (void)streams;
    lt_fatal("encoded-operand gemmBatch on a backend without "
             "weight-plan support (check supportsWeightPlans() first)");
}

std::vector<Matrix>
GemmBackend::gemmBatch(
    const std::vector<
        std::pair<ConstMatrixView, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    (void)products;
    (void)streams;
    lt_fatal("encoded-operand gemmBatch on a backend without "
             "weight-plan support (check supportsWeightPlans() first)");
}

std::vector<Matrix>
GemmBackend::gemmRowStacked(const std::vector<ConstMatrixView> &rows,
                            const core::EncodedOperand &w,
                            const std::vector<uint64_t> &streams)
{
    (void)rows;
    (void)w;
    (void)streams;
    lt_fatal("gemmRowStacked on a backend without row-stacking "
             "support (check supportsRowStacking() first)");
}

void
GemmBackend::encodeKvInto(core::EncodedOperand &op,
                          const ConstMatrixView &m,
                          core::OperandSide side)
{
    (void)op;
    (void)m;
    (void)side;
    lt_fatal("encodeKvInto on a backend without encoded-K/V support "
             "(check supportsKvPlans() first)");
}

Matrix
IdealBackend::gemm(const Matrix &a, const Matrix &b)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    return matmul(a, b);
}

Matrix
IdealBackend::gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                   uint64_t stream)
{
    (void)stream;
    stats_.record(a.rows(), a.cols(), b.cols());
    return matmul(a, b);
}

std::vector<Matrix>
IdealBackend::gemmBatch(
    const std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
        &products,
    const std::vector<uint64_t> &streams)
{
    (void)streams;
    stats_.recordBatch();
    std::vector<Matrix> results;
    results.reserve(products.size());
    for (const auto &[a, b] : products) {
        stats_.record(a.rows(), a.cols(), b.cols());
        results.push_back(matmul(a, b));
    }
    return results;
}

PhotonicBackend::PhotonicBackend(const core::DptcConfig &cfg,
                                 core::EvalMode mode)
    : engine_(std::make_unique<ExecutionEngine>(cfg, mode))
{
}

PhotonicBackend::~PhotonicBackend() = default;

Matrix
PhotonicBackend::gemm(const Matrix &a, const Matrix &b)
{
    return engine_->gemm(a, b);
}

Matrix
PhotonicBackend::gemm(const Matrix &a, const Matrix &b, uint64_t stream)
{
    return engine_->gemm(a, b, stream);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products)
{
    return engine_->gemmBatch(products);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmBatch(products, streams);
}

Matrix
PhotonicBackend::gemm(const ConstMatrixView &a,
                      const ConstMatrixView &b, uint64_t stream)
{
    return engine_->gemm(a, b, stream);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
        &products,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmBatch(products, streams);
}

Matrix
PhotonicBackend::gemm(const Matrix &a, const core::EncodedOperand &w,
                      uint64_t stream)
{
    return engine_->gemm(a, w, stream);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<
        std::pair<const Matrix *, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmBatch(products, streams);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<
        std::pair<ConstMatrixView, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmBatch(products, streams);
}

bool
PhotonicBackend::supportsWeightPlans() const
{
    return engine_->supportsWeightPlans();
}

core::EncodedOperand
PhotonicBackend::encodeWeight(const Matrix &w)
{
    return engine_->encodeWeight(w);
}

bool
PhotonicBackend::supportsRowStacking() const
{
    return engine_->supportsRowStacking();
}

std::vector<Matrix>
PhotonicBackend::gemmRowStacked(
    const std::vector<ConstMatrixView> &rows,
    const core::EncodedOperand &w,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmRowStacked(rows, w, streams);
}

bool
PhotonicBackend::supportsKvPlans() const
{
    return engine_->supportsKvPlans();
}

void
PhotonicBackend::encodeKvInto(core::EncodedOperand &op,
                              const ConstMatrixView &m,
                              core::OperandSide side)
{
    engine_->encodeKvInto(op, m, side);
}

const GemmStats &
PhotonicBackend::stats() const
{
    return engine_->stats();
}

void
PhotonicBackend::resetStats()
{
    engine_->resetStats();
}

core::EvalMode
PhotonicBackend::mode() const
{
    return engine_->mode();
}

} // namespace nn
} // namespace lt
