#include "gemm_backend.hh"

namespace lt {
namespace nn {

Matrix
IdealBackend::gemm(const Matrix &a, const Matrix &b)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    return a * b;
}

PhotonicBackend::PhotonicBackend(const core::DptcConfig &cfg,
                                 core::EvalMode mode)
    : dptc_(cfg), mode_(mode)
{
}

Matrix
PhotonicBackend::gemm(const Matrix &a, const Matrix &b)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    return dptc_.gemm(a, b, mode_);
}

} // namespace nn
} // namespace lt
