#include "gemm_backend.hh"

#include "nn/execution_engine.hh"

namespace lt {
namespace nn {

Matrix
IdealBackend::gemm(const Matrix &a, const Matrix &b)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    return matmul(a, b);
}

PhotonicBackend::PhotonicBackend(const core::DptcConfig &cfg,
                                 core::EvalMode mode)
    : engine_(std::make_unique<ExecutionEngine>(cfg, mode))
{
}

PhotonicBackend::~PhotonicBackend() = default;

Matrix
PhotonicBackend::gemm(const Matrix &a, const Matrix &b)
{
    return engine_->gemm(a, b);
}

Matrix
PhotonicBackend::gemm(const Matrix &a, const Matrix &b, uint64_t stream)
{
    return engine_->gemm(a, b, stream);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products)
{
    return engine_->gemmBatch(products);
}

std::vector<Matrix>
PhotonicBackend::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    return engine_->gemmBatch(products, streams);
}

const GemmStats &
PhotonicBackend::stats() const
{
    return engine_->stats();
}

void
PhotonicBackend::resetStats()
{
    engine_->resetStats();
}

core::EvalMode
PhotonicBackend::mode() const
{
    return engine_->mode();
}

} // namespace nn
} // namespace lt
