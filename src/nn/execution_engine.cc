#include "execution_engine.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace lt {
namespace nn {

ExecutionEngine::ExecutionEngine(const EngineConfig &cfg) : cfg_(cfg)
{
    size_t replicas = cfg.num_cores > 0
                          ? cfg.num_cores
                          : ThreadPool::global().numThreads();
    cores_.reserve(replicas);
    for (size_t i = 0; i < replicas; ++i)
        cores_.emplace_back(cfg.dptc);
}

ExecutionEngine::ExecutionEngine(const core::DptcConfig &dcfg,
                                 core::EvalMode mode, size_t num_cores)
    : ExecutionEngine(EngineConfig{dcfg, mode, num_cores})
{
}

Matrix
ExecutionEngine::gemmOneProduct(const core::EncodedOperand &a,
                                const core::EncodedOperand &b,
                                bool parallel_tiles,
                                const core::Dptc &proto,
                                uint64_t stream_seed)
{
    const size_t tiles = proto.outputTilesFor(a.rows(), b.cols());
    Matrix out(a.rows(), b.cols(), 0.0);

    const core::EvalMode mode = cfg_.mode;
    const double scale = a.beta() * b.beta();

    if (!parallel_tiles || tiles == 1) {
        uint64_t draws = 0;
        proto.gemmTiles(a, b, mode, scale, 0, tiles, out, stream_seed,
                        &draws);
        if (draws != 0)
            stats_.gaussian_draws.fetch_add(draws,
                                            std::memory_order_relaxed);
        return out;
    }

    // Shard output tiles across the core replicas. Shards own disjoint
    // output regions and every tile's noise is counter-seeded, so the
    // split affects wall-clock only, never the result. Draw counts
    // accumulate per shard and fold into the shared atomic once.
    std::vector<uint64_t> shard_draws(cores_.size(), 0);
    ThreadPool::global().parallelFor(
        tiles,
        [&](size_t begin, size_t end, size_t shard) {
            cores_[shard % cores_.size()].gemmTiles(
                a, b, mode, scale, begin, end, out, stream_seed,
                &shard_draws[shard % cores_.size()]);
        },
        cores_.size());
    uint64_t draws = 0;
    for (uint64_t d : shard_draws)
        draws += d;
    if (draws != 0)
        stats_.gaussian_draws.fetch_add(draws,
                                        std::memory_order_relaxed);
    return out;
}

Matrix
ExecutionEngine::runProduct(const ProductRef &p, bool parallel_tiles,
                            const core::Dptc &proto,
                            uint64_t stream_seed)
{
    // Activations are encoded per call, straight from their views;
    // the right operand is either encoded here too (a view) or
    // arrives pre-encoded (weight plan / encoded K-V cache).
    core::EncodedOperand ea =
        proto.encode(p.a, core::OperandSide::A, cfg_.mode);
    if (p.b_plan != nullptr)
        return gemmOneProduct(ea, *p.b_plan, parallel_tiles, proto,
                              stream_seed);
    core::EncodedOperand eb =
        proto.encode(p.b, core::OperandSide::B, cfg_.mode);
    return gemmOneProduct(ea, eb, parallel_tiles, proto, stream_seed);
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b)
{
    return gemm(a.view(), b.view(), next_stream_.fetch_add(1));
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b, uint64_t stream)
{
    return gemm(a.view(), b.view(), stream);
}

Matrix
ExecutionEngine::gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                      uint64_t stream)
{
    if (a.cols() != b.rows())
        lt_fatal("ExecutionEngine::gemm inner dimension mismatch: ",
                 a.cols(), " vs ", b.rows());
    stats_.record(a.rows(), a.cols(), b.cols());
    obs::TraceScope span(
        "engine/gemm", obs::kNoRequest, "macs",
        static_cast<int64_t>(a.rows() * a.cols() * b.cols()));
    return runProduct(ProductRef{a, b, nullptr},
                      /*parallel_tiles=*/true, cores_.front(),
                      deriveSeed(cfg_.dptc.seed, stream));
}

void
ExecutionEngine::validateEncoded(const ConstMatrixView &a,
                                 const core::EncodedOperand &w) const
{
    if (w.side() != core::OperandSide::B)
        lt_fatal("ExecutionEngine: pre-encoded operand must be "
                 "encoded for the B side");
    if (!cores_.front().acceptsEncoded(w, cfg_.mode))
        lt_fatal("ExecutionEngine: pre-encoded operand packed for a "
                 "different core geometry/mode");
    if (a.cols() != w.rows())
        lt_fatal("ExecutionEngine::gemm inner dimension mismatch: ",
                 a.cols(), " vs ", w.rows());
}

void
ExecutionEngine::recordEncodedHit(const core::EncodedOperand &w)
{
    auto &counter = w.kind() == core::OperandKind::KvCache
                        ? stats_.kv_encode_hits
                        : stats_.weight_encode_hits;
    counter.fetch_add(1, std::memory_order_relaxed);
}

core::EncodedOperand
ExecutionEngine::encodeWeight(const Matrix &w)
{
    stats_.weight_encode_misses.fetch_add(1, std::memory_order_relaxed);
    core::EncodedOperand op =
        cores_.front().encode(w, core::OperandSide::B, cfg_.mode);
    op.setKind(core::OperandKind::Weight);
    return op;
}

void
ExecutionEngine::encodeKvInto(core::EncodedOperand &op,
                              const ConstMatrixView &m,
                              core::OperandSide side)
{
    if (!cfg_.kv_plans)
        lt_fatal("encodeKvInto on an engine with kv_plans disabled "
                 "(check supportsKvPlans() first)");
    if (side != core::OperandSide::B)
        lt_fatal("encodeKvInto: decode K/V operands are B-side");
    stats_.kv_encode_misses.fetch_add(1, std::memory_order_relaxed);
    const core::Dptc &proto = cores_.front();
    const bool rebuildable =
        !op.empty() && op.side() == core::OperandSide::B &&
        proto.acceptsEncoded(op, cfg_.mode) && m.rows() >= op.rows() &&
        m.cols() >= op.cols();
    if (rebuildable && cfg_.mode != core::EvalMode::Ideal) {
        // Beta-growth requantization: rewrite the values in place so
        // the reserved packed capacity (and the block backing
        // pointers) survive. Bit-identical to a fresh encode.
        op.requantize(m, core::Dptc::maxAbs(m));
    } else {
        op = proto.encode(m, core::OperandSide::B, cfg_.mode);
    }
    op.setKind(core::OperandKind::KvCache);
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const core::EncodedOperand &w,
                      uint64_t stream)
{
    validateEncoded(a.view(), w);
    stats_.record(a.rows(), a.cols(), w.cols());
    recordEncodedHit(w);
    obs::TraceScope span(
        "engine/gemm", obs::kNoRequest, "macs",
        static_cast<int64_t>(a.rows() * a.cols() * w.cols()),
        "encoded", 1);
    return runProduct(ProductRef{a.view(), ConstMatrixView(), &w},
                      /*parallel_tiles=*/true, cores_.front(),
                      deriveSeed(cfg_.dptc.seed, stream));
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products)
{
    // Internal stream ids are claimed for the whole batch up front, in
    // product order — the assignment must not depend on which thread
    // runs which product.
    const uint64_t stream_base =
        next_stream_.fetch_add(products.size());
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[pa, pb] : products)
        refs.push_back(ProductRef{pa->view(), pb->view(), nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return stream_base + i; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[pa, pb] : products)
        refs.push_back(ProductRef{pa->view(), pb->view(), nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[va, vb] : products)
        refs.push_back(ProductRef{va, vb, nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<
        std::pair<const Matrix *, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    std::vector<std::pair<ConstMatrixView, const core::EncodedOperand *>>
        views;
    views.reserve(products.size());
    for (const auto &[pa, pw] : products)
        views.emplace_back(pa->view(), pw);
    return gemmBatch(views, streams);
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<
        std::pair<ConstMatrixView, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[va, pw] : products) {
        validateEncoded(va, *pw);
        recordEncodedHit(*pw);
        refs.push_back(ProductRef{va, ConstMatrixView(), pw});
    }
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatchImpl(
    const std::vector<ProductRef> &products,
    const std::function<uint64_t(size_t)> &streamOf)
{
    stats_.recordBatch();
    obs::TraceScope span("engine/gemmBatch", obs::kNoRequest,
                         "products",
                         static_cast<int64_t>(products.size()));
    std::vector<Matrix> results(products.size());
    auto seedOf = [&](size_t i) {
        return deriveSeed(cfg_.dptc.seed, streamOf(i));
    };
    auto colsOf = [](const ProductRef &p) {
        return p.b_plan != nullptr ? p.b_plan->cols() : p.b.cols();
    };
    int64_t batch_macs = 0;
    int64_t encoded_products = 0;
    for (const ProductRef &p : products) {
        if (p.a.cols() !=
            (p.b_plan != nullptr ? p.b_plan->rows() : p.b.rows()))
            lt_fatal("ExecutionEngine::gemmBatch inner dimension "
                     "mismatch");
        stats_.record(p.a.rows(), p.a.cols(), colsOf(p));
        batch_macs += static_cast<int64_t>(p.a.rows() * p.a.cols() *
                                           colsOf(p));
        encoded_products += p.b_plan != nullptr ? 1 : 0;
    }
    // Encode-cache attribution: how many of the batch's right-hand
    // operands arrived pre-encoded (weight plans / encoded K-V).
    span.setArg(1, "macs", batch_macs);
    span.setArg(2, "encoded", encoded_products);
    // Serving regime: enough independent products to keep every core
    // busy — shard whole products across cores and run each one
    // sequentially inside its shard. Otherwise parallelize tiles
    // within each product.
    const bool shard_products = products.size() >= cores_.size();
    if (!shard_products) {
        for (size_t i = 0; i < products.size(); ++i)
            results[i] = runProduct(products[i], true, cores_.front(),
                                    seedOf(i));
        return results;
    }
    ThreadPool::global().parallelFor(
        products.size(),
        [&](size_t begin, size_t end, size_t shard) {
            const core::Dptc &replica = cores_[shard % cores_.size()];
            for (size_t i = begin; i < end; ++i)
                results[i] = runProduct(products[i], false, replica,
                                        seedOf(i));
        },
        cores_.size());
    return results;
}

} // namespace nn
} // namespace lt
