#include "execution_engine.hh"

#include <algorithm>
#include <cmath>
#include <exception>
#include <numeric>
#include <string>

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace lt {
namespace nn {

ExecutionEngine::ExecutionEngine(const EngineConfig &cfg)
    : cfg_(cfg), fault_model_(cfg.faults),
      fault_active_(cfg.faults.enabled || cfg.fault_policy.verify)
{
    size_t replicas = cfg.num_cores > 0
                          ? cfg.num_cores
                          : ThreadPool::global().numThreads();
    cores_.reserve(replicas);
    for (size_t i = 0; i < replicas; ++i)
        cores_.emplace_back(cfg.dptc);
    replica_faults_.assign(replicas, 0);
    replica_quarantined_.assign(replicas, 0);
    healthy_.resize(replicas);
    std::iota(healthy_.begin(), healthy_.end(), size_t{0});
}

ExecutionEngine::ExecutionEngine(const core::DptcConfig &dcfg,
                                 core::EvalMode mode, size_t num_cores)
    : ExecutionEngine(EngineConfig{dcfg, mode, num_cores})
{
}

Matrix
ExecutionEngine::gemmOneProduct(const core::EncodedOperand &a,
                                const core::EncodedOperand &b,
                                bool parallel_tiles,
                                const core::Dptc &proto,
                                uint64_t stream_seed)
{
    // The ONLY cost of the fault layer when disabled: this branch.
    if (fault_active_)
        return gemmOneProductChecked(a, b, parallel_tiles,
                                     stream_seed);

    const size_t tiles = proto.outputTilesFor(a.rows(), b.cols());
    Matrix out(a.rows(), b.cols(), 0.0);

    const core::EvalMode mode = cfg_.mode;
    const double scale = a.beta() * b.beta();

    if (!parallel_tiles || tiles == 1) {
        uint64_t draws = 0;
        proto.gemmTiles(a, b, mode, scale, 0, tiles, out, stream_seed,
                        &draws);
        if (draws != 0)
            stats_.gaussian_draws.fetch_add(draws,
                                            std::memory_order_relaxed);
        return out;
    }

    // Shard output tiles across the core replicas. Shards own disjoint
    // output regions and every tile's noise is counter-seeded, so the
    // split affects wall-clock only, never the result. Draw counts
    // accumulate per shard and fold into the shared atomic once.
    std::vector<uint64_t> shard_draws(cores_.size(), 0);
    ThreadPool::global().parallelFor(
        tiles,
        [&](size_t begin, size_t end, size_t shard) {
            cores_[shard % cores_.size()].gemmTiles(
                a, b, mode, scale, begin, end, out, stream_seed,
                &shard_draws[shard % cores_.size()]);
        },
        cores_.size());
    uint64_t draws = 0;
    for (uint64_t d : shard_draws)
        draws += d;
    if (draws != 0)
        stats_.gaussian_draws.fetch_add(draws,
                                        std::memory_order_relaxed);
    return out;
}

namespace {

/** Zero one output tile region (gemmTiles accumulates: re-runs and
 *  dead-shard injection both need the region cleared first). */
void
zeroRegion(Matrix &out, size_t row0, size_t rows, size_t col0,
           size_t cols)
{
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            out(row0 + r, col0 + c) = 0.0;
}

} // namespace

Matrix
ExecutionEngine::gemmOneProductChecked(const core::EncodedOperand &a,
                                       const core::EncodedOperand &b,
                                       bool parallel_tiles,
                                       uint64_t stream_seed)
{
    const core::Dptc &proto = cores_.front();
    const size_t tiles = proto.outputTilesFor(a.rows(), b.cols());
    Matrix out(a.rows(), b.cols(), 0.0);
    const double scale = a.beta() * b.beta();

    // Snapshot the healthy set once per product: every tile of this
    // product sees the same replica assignment (tile-indexed, thread-
    // count invariant); quarantines land in the next product's
    // snapshot (or in retry re-snapshots).
    std::vector<size_t> healthy = healthySnapshot();
    if (healthy.empty()) {
        // Fully degraded: every replica quarantined. Unpack and run
        // the digital reference kernel — same (stream, tile) noise
        // addressing, pinned bit-identical to the packed path — with
        // no injection (quarantined cores do not execute).
        Matrix a_hat = a.normalized();
        Matrix b_hat = b.normalized();
        proto.gemmTiles(a_hat, b_hat, cfg_.mode, scale, 0, tiles, out,
                        stream_seed);
        return out;
    }

    if (!parallel_tiles || tiles == 1) {
        for (size_t t = 0; t < tiles; ++t)
            runTileChecked(a, b, scale, t, out, stream_seed, healthy);
        return out;
    }

    // Parallel tiles: shards must not leak exceptions into the pool
    // workers (that would terminate the process) — stash the first
    // one and rethrow on the calling thread.
    std::mutex err_mu;
    std::exception_ptr err;
    ThreadPool::global().parallelFor(
        tiles,
        [&](size_t begin, size_t end, size_t) {
            try {
                for (size_t t = begin; t < end; ++t)
                    runTileChecked(a, b, scale, t, out, stream_seed,
                                   healthy);
            } catch (...) {
                std::lock_guard<std::mutex> lock(err_mu);
                if (!err)
                    err = std::current_exception();
            }
        },
        cores_.size());
    if (err)
        std::rethrow_exception(err);
    return out;
}

void
ExecutionEngine::runTileChecked(const core::EncodedOperand &a,
                                const core::EncodedOperand &b,
                                double scale, size_t tile, Matrix &out,
                                uint64_t stream_seed,
                                const std::vector<size_t> &healthy)
{
    const core::DptcConfig &g = cfg_.dptc;
    const size_t m = a.rows();
    const size_t n = b.cols();
    const size_t tiles_per_row = (n + g.nv - 1) / g.nv;
    const size_t tr = tile / tiles_per_row;
    const size_t tc = tile % tiles_per_row;
    const size_t row0 = tr * g.nh;
    const size_t col0 = tc * g.nv;
    const size_t rows = std::min(g.nh, m - row0);
    const size_t cols = std::min(g.nv, n - col0);

    // Tile-indexed replica assignment: which replica executes (and
    // therefore which faults can fire) depends only on the tile and
    // the product-start healthy set — never on thread count.
    size_t replica = healthy[tile % healthy.size()];
    for (size_t attempt = 0;; ++attempt) {
        zeroRegion(out, row0, rows, col0, cols);
        uint64_t draws = 0;
        cores_[replica].gemmTiles(a, b, cfg_.mode, scale, tile,
                                  tile + 1, out, stream_seed, &draws);
        if (draws != 0)
            stats_.gaussian_draws.fetch_add(
                draws, std::memory_order_relaxed);
        fault_model_.corruptTile(replica, stream_seed, tile, out,
                                 row0, rows, col0, cols, scale);
        if (verifyTile(a, b, scale, tc, out, row0, rows, col0, cols))
            return;

        stats_.faults_detected.fetch_add(1,
                                         std::memory_order_relaxed);
        obs::traceInstant("fault/detected", obs::kNoRequest,
                          "replica", static_cast<int64_t>(replica),
                          "tile", static_cast<int64_t>(tile));
        recordReplicaFault(replica);

        if (attempt >= cfg_.fault_policy.max_tile_retries)
            throw EngineFaultError(
                "ExecutionEngine: tile checksum failed after " +
                std::to_string(attempt + 1) +
                " attempts across replicas (tile " +
                std::to_string(tile) + ")");

        // Re-resolve the healthy set (the fault we just recorded may
        // have quarantined this replica) and move to a different
        // survivor — deterministically, so recovery replays exactly.
        std::vector<size_t> fresh = healthySnapshot();
        if (fresh.empty()) {
            // Quarantine completed mid-product: digital fallback for
            // this tile, bit-identical to a healthy-replica run.
            zeroRegion(out, row0, rows, col0, cols);
            Matrix a_hat = a.normalized();
            Matrix b_hat = b.normalized();
            cores_.front().gemmTiles(a_hat, b_hat, cfg_.mode, scale,
                                     tile, tile + 1, out, stream_seed);
            return;
        }
        size_t next = fresh[(tile + attempt + 1) % fresh.size()];
        if (next == replica && fresh.size() > 1)
            next = fresh[(tile + attempt + 2) % fresh.size()];
        stats_.fault_retries.fetch_add(1, std::memory_order_relaxed);
        obs::traceInstant("fault/retry", obs::kNoRequest, "replica",
                          static_cast<int64_t>(next), "tile",
                          static_cast<int64_t>(tile));
        replica = next;
    }
}

bool
ExecutionEngine::verifyTile(const core::EncodedOperand &a,
                            const core::EncodedOperand &b,
                            double scale, size_t tc, const Matrix &out,
                            size_t row0, size_t rows, size_t col0,
                            size_t cols) const
{
    const size_t k = a.cols();
    const size_t nl = b.packedNlambda();
    if (nl == 0 || rows == 0 || cols == 0)
        return true; // nothing verifiable
    const size_t ktiles = (k + nl - 1) / nl;
    const FaultPolicy &pol = cfg_.fault_policy;

    // Digital recompute of the tile from the SAME quantized operands
    // the kernel consumed, through the kernel's DETERMINISTIC channel
    // transfer — Eq. 9 per wavelength: mult_gain * x * y + add_gain *
    // (x^2 - y^2), with the dispersion-derived per-channel gains the
    // analog dot applies (quantization and dispersion both cancel
    // exactly; the add term survives even where x*y = 0, so a plain
    // dot-product reference misfires on it). What remains between D
    // and the output is purely stochastic.
    //
    // Alongside D, the PHYSICAL noise basis of each element: the
    // stochastic terms act on the k-slice partial sums (the per-slice
    // systematic eps multiplies each partial dot) and the individual
    // products (encoding noise inside the analog dot) — NOT on the
    // final accumulated value. Cancellation-heavy columns (e.g.
    // logits) have tiny outputs riding on large partials, so any
    // envelope anchored on output magnitude misfires on them;
    // sigma^2 = scale^2 * (sum_slices partial^2 + sum_j term_j^2) is
    // the scale legitimate noise actually has. O(rows*cols*k), paid
    // only while the fault layer is armed.
    const core::DDot &dd = cores_.front().ddot();
    const bool calibrated = cfg_.dptc.channel_calibration;
    std::vector<double> mult_gain(nl), add_gain(nl);
    for (size_t j = 0; j < nl; ++j) {
        mult_gain[j] = calibrated ? 1.0 : dd.multiplicativeGain(j);
        add_gain[j] = calibrated ? 0.0 : dd.additiveGain(j);
    }
    std::vector<double> d(rows * cols, 0.0);
    std::vector<double> var(rows * cols, 0.0);
    for (size_t r = 0; r < rows; ++r) {
        const double *ar = a.row(row0 + r);
        for (size_t c = 0; c < cols; ++c) {
            double acc = 0.0;
            double basis = 0.0;
            for (size_t tk = 0; tk < ktiles; ++tk) {
                const double *col = b.tileColumn(tc, tk, c);
                const size_t k0 = tk * nl;
                const size_t len = std::min(nl, k - k0);
                double partial = 0.0;
                double termsq = 0.0;
                for (size_t j = 0; j < len; ++j) {
                    const double x = ar[k0 + j];
                    const double y = col[j];
                    const double xy = x * y;
                    partial += mult_gain[j] * xy +
                               add_gain[j] * (x * x - y * y);
                    const double mag =
                        std::fabs(xy) +
                        std::fabs(add_gain[j]) * (x * x + y * y);
                    termsq += mag * mag;
                }
                acc += partial;
                basis += partial * partial + termsq;
            }
            d[r * cols + c] = scale * acc;
            var[r * cols + c] = scale * scale * basis;
        }
    }

    // Per-element checksums, plus structural signatures no continuous
    // noise process can produce:
    //  - non-finite or astronomically scaled values (a flipped high
    //    exponent bit multiplies by 2^(+-128); the legit output is a
    //    continuous variable within a few sigma of D, so landing
    //    120 binary orders of magnitude below the element's scale
    //    has measure zero);
    //  - magnitude deviations outside elem_tolerance x the element's
    //    physical noise basis. A corruption inside every element's
    //    basis is statistically indistinguishable from noise.
    double norm_diff_sq = 0.0;
    double basis_sum = 0.0;
    double sumsq_o = 0.0;
    double sumsq_d = 0.0;
    bool all_zero = true;
    bool any_signal = false;
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c) {
            const double ov = out(row0 + r, col0 + c);
            if (!std::isfinite(ov))
                return false;
            const double dv = d[r * cols + c];
            const double v = var[r * cols + c];
            const double sigma = std::sqrt(v);
            const double diff = ov - dv;
            if (ov != 0.0)
                all_zero = false;
            if (std::fabs(dv) > pol.abs_tolerance ||
                sigma > pol.abs_tolerance)
                any_signal = true;
            if (ov != 0.0 && std::fabs(ov) <
                                 0x1p-60 * (std::fabs(dv) + sigma))
                return false; // shrunk by a flipped exponent bit
            if (std::fabs(diff) >
                pol.elem_tolerance * sigma + pol.abs_tolerance)
                return false;
            norm_diff_sq += diff * diff;
            basis_sum += v;
            sumsq_o += ov * ov;
            sumsq_d += dv * dv;
        }

    // Dead-region signature: every element EXACTLY 0.0 where the
    // reference carries signal. Legitimate analog noise is continuous
    // — an exact all-zero tile from a live shard has measure zero —
    // so this detects a dead shard at any SNR, including single-row
    // decode tiles whose per-element deviation sits inside the noise
    // basis.
    if (all_zero && any_signal)
        return false;

    // Tile deviation checksum: ||O - D||_F against the RSS of the
    // element bases, relaxed by (1 + 2/sqrt(N)) for thin tail tiles
    // (fewer observations, no concentration). Legitimate per-element
    // deviations are independent draws at a fraction of their basis,
    // so this ratio concentrates with tile size while corruption
    // spread across the tile (drift, attenuation) does not.
    const double nelem = static_cast<double>(rows * cols);
    if (std::sqrt(norm_diff_sq) >
        pol.norm_tolerance * (1.0 + 2.0 / std::sqrt(nelem)) *
                std::sqrt(basis_sum) +
            pol.abs_tolerance)
        return false;

    // Gain checksum, gated on high SNR: when the tile's signal
    // dominates its noise basis (structured operands — attention
    // probabilities, aligned activations — unlike zero-mean random
    // fills), a relative gain error reads directly off the Frobenius
    // norms: dead 1.0, a 1.6x calibration drift 0.6, against
    // legitimate noise of at most ~0.25x signal at this gate.
    const double norm_d = std::sqrt(sumsq_d);
    if (norm_d >= 2.0 * std::sqrt(basis_sum) &&
        std::fabs(std::sqrt(sumsq_o) - norm_d) >
            0.5 * norm_d + pol.abs_tolerance)
        return false;

    // Column checksums: distributed bias along a column (mild drift,
    // a low DAC rail) accumulates linearly in the signed sum while
    // the envelope (RSS of the column's element bases) only grows as
    // sqrt(rows). A pinned (stuck-at) DAC channel additionally leaves
    // every row of its column at the SAME exact value — impossible
    // for continuous noise over distinct references.
    for (size_t c = 0; c < cols; ++c) {
        double so = 0.0;
        double sd = 0.0;
        double venv = 0.0;
        bool o_const = rows > 1;
        bool d_varies = false;
        const double o0 = out(row0, col0 + c);
        const double d0 = d[c];
        for (size_t r = 0; r < rows; ++r) {
            const double ov = out(row0 + r, col0 + c);
            const double dv = d[r * cols + c];
            so += ov;
            sd += dv;
            venv += var[r * cols + c];
            if (ov != o0)
                o_const = false;
            if (std::fabs(dv - d0) > pol.abs_tolerance)
                d_varies = true;
        }
        if (o_const && d_varies)
            return false; // stuck-at channel
        if (std::fabs(so - sd) >
            pol.tolerance * std::sqrt(venv) + pol.abs_tolerance)
            return false;
    }
    return true;
}

void
ExecutionEngine::recordReplicaFault(size_t replica)
{
    std::lock_guard<std::mutex> lock(health_mu_);
    if (replica_quarantined_[replica])
        return;
    if (++replica_faults_[replica] <
        cfg_.fault_policy.quarantine_threshold)
        return;
    replica_quarantined_[replica] = 1;
    healthy_.erase(
        std::remove(healthy_.begin(), healthy_.end(), replica),
        healthy_.end());
    stats_.fault_quarantines.fetch_add(1, std::memory_order_relaxed);
    obs::traceInstant("fault/quarantine", obs::kNoRequest, "replica",
                      static_cast<int64_t>(replica), "healthy",
                      static_cast<int64_t>(healthy_.size()));
}

std::vector<size_t>
ExecutionEngine::healthySnapshot() const
{
    std::lock_guard<std::mutex> lock(health_mu_);
    return healthy_;
}

EngineStatus
ExecutionEngine::status() const
{
    EngineStatus s;
    {
        std::lock_guard<std::mutex> lock(health_mu_);
        s.total_replicas = cores_.size();
        s.healthy_replicas = healthy_.size();
        s.quarantined_replicas = cores_.size() - healthy_.size();
        s.degraded = fault_active_ && healthy_.empty();
    }
    s.faults_detected =
        stats_.faults_detected.load(std::memory_order_relaxed);
    s.fault_retries =
        stats_.fault_retries.load(std::memory_order_relaxed);
    s.quarantines =
        stats_.fault_quarantines.load(std::memory_order_relaxed);
    return s;
}

Matrix
ExecutionEngine::runProduct(const ProductRef &p, bool parallel_tiles,
                            const core::Dptc &proto,
                            uint64_t stream_seed)
{
    // Activations are encoded per call, straight from their views;
    // the right operand is either encoded here too (a view) or
    // arrives pre-encoded (weight plan / encoded K-V cache).
    core::EncodedOperand ea =
        proto.encode(p.a, core::OperandSide::A, cfg_.mode);
    if (p.b_plan != nullptr)
        return gemmOneProduct(ea, *p.b_plan, parallel_tiles, proto,
                              stream_seed);
    core::EncodedOperand eb =
        proto.encode(p.b, core::OperandSide::B, cfg_.mode);
    return gemmOneProduct(ea, eb, parallel_tiles, proto, stream_seed);
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b)
{
    return gemm(a.view(), b.view(), next_stream_.fetch_add(1));
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b, uint64_t stream)
{
    return gemm(a.view(), b.view(), stream);
}

Matrix
ExecutionEngine::gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                      uint64_t stream)
{
    if (a.cols() != b.rows())
        lt_fatal("ExecutionEngine::gemm inner dimension mismatch: ",
                 a.cols(), " vs ", b.rows());
    stats_.record(a.rows(), a.cols(), b.cols());
    obs::TraceScope span(
        "engine/gemm", obs::kNoRequest, "macs",
        static_cast<int64_t>(a.rows() * a.cols() * b.cols()));
    return runProduct(ProductRef{a, b, nullptr},
                      /*parallel_tiles=*/true, cores_.front(),
                      deriveSeed(cfg_.dptc.seed, stream));
}

void
ExecutionEngine::validateEncoded(const ConstMatrixView &a,
                                 const core::EncodedOperand &w) const
{
    if (w.side() != core::OperandSide::B)
        lt_fatal("ExecutionEngine: pre-encoded operand must be "
                 "encoded for the B side");
    if (!cores_.front().acceptsEncoded(w, cfg_.mode))
        lt_fatal("ExecutionEngine: pre-encoded operand packed for a "
                 "different core geometry/mode");
    if (a.cols() != w.rows())
        lt_fatal("ExecutionEngine::gemm inner dimension mismatch: ",
                 a.cols(), " vs ", w.rows());
}

void
ExecutionEngine::recordEncodedHit(const core::EncodedOperand &w)
{
    auto &counter = w.kind() == core::OperandKind::KvCache
                        ? stats_.kv_encode_hits
                        : stats_.weight_encode_hits;
    counter.fetch_add(1, std::memory_order_relaxed);
}

core::EncodedOperand
ExecutionEngine::encodeWeight(const Matrix &w)
{
    stats_.weight_encode_misses.fetch_add(1, std::memory_order_relaxed);
    core::EncodedOperand op =
        cores_.front().encode(w, core::OperandSide::B, cfg_.mode);
    op.setKind(core::OperandKind::Weight);
    return op;
}

void
ExecutionEngine::encodeKvInto(core::EncodedOperand &op,
                              const ConstMatrixView &m,
                              core::OperandSide side)
{
    if (!cfg_.kv_plans)
        lt_fatal("encodeKvInto on an engine with kv_plans disabled "
                 "(check supportsKvPlans() first)");
    if (side != core::OperandSide::B)
        lt_fatal("encodeKvInto: decode K/V operands are B-side");
    stats_.kv_encode_misses.fetch_add(1, std::memory_order_relaxed);
    const core::Dptc &proto = cores_.front();
    const bool rebuildable =
        !op.empty() && op.side() == core::OperandSide::B &&
        proto.acceptsEncoded(op, cfg_.mode) && m.rows() >= op.rows() &&
        m.cols() >= op.cols();
    if (rebuildable && cfg_.mode != core::EvalMode::Ideal) {
        // Beta-growth requantization: rewrite the values in place so
        // the reserved packed capacity (and the block backing
        // pointers) survive. Bit-identical to a fresh encode.
        op.requantize(m, core::Dptc::maxAbs(m));
    } else {
        op = proto.encode(m, core::OperandSide::B, cfg_.mode);
    }
    op.setKind(core::OperandKind::KvCache);
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const core::EncodedOperand &w,
                      uint64_t stream)
{
    validateEncoded(a.view(), w);
    stats_.record(a.rows(), a.cols(), w.cols());
    recordEncodedHit(w);
    obs::TraceScope span(
        "engine/gemm", obs::kNoRequest, "macs",
        static_cast<int64_t>(a.rows() * a.cols() * w.cols()),
        "encoded", 1);
    return runProduct(ProductRef{a.view(), ConstMatrixView(), &w},
                      /*parallel_tiles=*/true, cores_.front(),
                      deriveSeed(cfg_.dptc.seed, stream));
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products)
{
    // Internal stream ids are claimed for the whole batch up front, in
    // product order — the assignment must not depend on which thread
    // runs which product.
    const uint64_t stream_base =
        next_stream_.fetch_add(products.size());
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[pa, pb] : products)
        refs.push_back(ProductRef{pa->view(), pb->view(), nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return stream_base + i; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[pa, pb] : products)
        refs.push_back(ProductRef{pa->view(), pb->view(), nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<ConstMatrixView, ConstMatrixView>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[va, vb] : products)
        refs.push_back(ProductRef{va, vb, nullptr});
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<
        std::pair<const Matrix *, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    std::vector<std::pair<ConstMatrixView, const core::EncodedOperand *>>
        views;
    views.reserve(products.size());
    for (const auto &[pa, pw] : products)
        views.emplace_back(pa->view(), pw);
    return gemmBatch(views, streams);
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<
        std::pair<ConstMatrixView, const core::EncodedOperand *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    std::vector<ProductRef> refs;
    refs.reserve(products.size());
    for (const auto &[va, pw] : products) {
        validateEncoded(va, *pw);
        recordEncodedHit(*pw);
        refs.push_back(ProductRef{va, ConstMatrixView(), pw});
    }
    return gemmBatchImpl(refs,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmRowStacked(const std::vector<ConstMatrixView> &rows,
                                const core::EncodedOperand &w,
                                const std::vector<uint64_t> &streams)
{
    if (rows.empty())
        return {};
    if (streams.size() != rows.size())
        lt_fatal("gemmRowStacked: ", streams.size(), " streams for ",
                 rows.size(), " rows");
    for (const ConstMatrixView &r : rows) {
        if (r.rows() != 1)
            lt_fatal("gemmRowStacked: every stacked operand must be "
                     "a single row, got ", r.rows(), " rows");
        validateEncoded(r, w);
    }
    stats_.stacked_calls.fetch_add(1, std::memory_order_relaxed);
    obs::TraceScope span(
        "engine/gemmRowStacked", obs::kNoRequest, "rows",
        static_cast<int64_t>(rows.size()), "macs",
        static_cast<int64_t>(rows.size() * rows.front().cols() *
                             w.cols()));
    for (const ConstMatrixView &r : rows) {
        stats_.record(1, r.cols(), w.cols());
        recordEncodedHit(w);
    }

    const size_t n = rows.size();
    const core::Dptc &proto = cores_.front();
    std::vector<uint64_t> seeds(n);
    for (size_t i = 0; i < n; ++i)
        seeds[i] = deriveSeed(cfg_.dptc.seed, streams[i]);

    if (fault_active_) {
        // Checked dispatch verifies per product: fusion is forfeited
        // while the fault layer is armed, results stay bit-identical
        // (the checked path is pinned against the unchecked one).
        std::vector<Matrix> results(n);
        for (size_t i = 0; i < n; ++i) {
            core::EncodedOperand ea = proto.encode(
                rows[i], core::OperandSide::A, cfg_.mode);
            results[i] = gemmOneProductChecked(
                ea, w, /*parallel_tiles=*/true, seeds[i]);
        }
        return results;
    }

    // One stacked encode for all rows (per-row betas), one tall
    // output; (row, column-tile) units shard across the replicas.
    core::EncodedOperand stacked =
        proto.encodeStackedRows(rows, cfg_.mode);
    auto cdiv = [](size_t a, size_t b) { return (a + b - 1) / b; };
    const size_t tiles_c = cdiv(w.cols(), cfg_.dptc.nv);
    const core::EvalMode mode = cfg_.mode;
    const double wbeta = w.beta();
    Matrix tall(n, w.cols(), 0.0);

    const size_t units = n * tiles_c;
    uint64_t draws = 0;
    if (units < 2 || cores_.size() == 1) {
        for (size_t i = 0; i < n; ++i)
            proto.gemmRowStackedTiles(stacked, i, w, mode,
                                      stacked.rowBeta(i) * wbeta, 0,
                                      tiles_c, tall, seeds[i], &draws);
    } else {
        // Units own disjoint (row, tile) output regions and every
        // tile's noise is (stream, tile)-seeded, so the shard split
        // affects wall-clock only, never the result.
        std::vector<uint64_t> shard_draws(cores_.size(), 0);
        ThreadPool::global().parallelFor(
            units,
            [&](size_t begin, size_t end, size_t shard) {
                const core::Dptc &replica =
                    cores_[shard % cores_.size()];
                uint64_t *sd = &shard_draws[shard % cores_.size()];
                for (size_t u = begin; u < end; ++u) {
                    const size_t i = u / tiles_c;
                    const size_t tc = u % tiles_c;
                    replica.gemmRowStackedTiles(
                        stacked, i, w, mode,
                        stacked.rowBeta(i) * wbeta, tc, tc + 1, tall,
                        seeds[i], sd);
                }
            },
            cores_.size());
        for (uint64_t d : shard_draws)
            draws += d;
    }
    if (draws != 0)
        stats_.gaussian_draws.fetch_add(draws,
                                        std::memory_order_relaxed);

    std::vector<Matrix> results;
    results.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Matrix r(1, w.cols());
        for (size_t c = 0; c < w.cols(); ++c)
            r(0, c) = tall(i, c);
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<Matrix>
ExecutionEngine::gemmBatchImpl(
    const std::vector<ProductRef> &products,
    const std::function<uint64_t(size_t)> &streamOf)
{
    stats_.recordBatch();
    obs::TraceScope span("engine/gemmBatch", obs::kNoRequest,
                         "products",
                         static_cast<int64_t>(products.size()));
    std::vector<Matrix> results(products.size());
    auto seedOf = [&](size_t i) {
        return deriveSeed(cfg_.dptc.seed, streamOf(i));
    };
    auto colsOf = [](const ProductRef &p) {
        return p.b_plan != nullptr ? p.b_plan->cols() : p.b.cols();
    };
    int64_t batch_macs = 0;
    int64_t encoded_products = 0;
    for (const ProductRef &p : products) {
        if (p.a.cols() !=
            (p.b_plan != nullptr ? p.b_plan->rows() : p.b.rows()))
            lt_fatal("ExecutionEngine::gemmBatch inner dimension "
                     "mismatch");
        stats_.record(p.a.rows(), p.a.cols(), colsOf(p));
        batch_macs += static_cast<int64_t>(p.a.rows() * p.a.cols() *
                                           colsOf(p));
        encoded_products += p.b_plan != nullptr ? 1 : 0;
    }
    // Encode-cache attribution: how many of the batch's right-hand
    // operands arrived pre-encoded (weight plans / encoded K-V).
    span.setArg(1, "macs", batch_macs);
    span.setArg(2, "encoded", encoded_products);
    // Serving regime: enough independent products to keep every core
    // busy — shard whole products across cores and run each one
    // sequentially inside its shard. Otherwise parallelize tiles
    // within each product.
    const bool shard_products = products.size() >= cores_.size();
    if (!shard_products) {
        for (size_t i = 0; i < products.size(); ++i)
            results[i] = runProduct(products[i], true, cores_.front(),
                                    seedOf(i));
        return results;
    }
    ThreadPool::global().parallelFor(
        products.size(),
        [&](size_t begin, size_t end, size_t shard) {
            const core::Dptc &replica = cores_[shard % cores_.size()];
            for (size_t i = begin; i < end; ++i)
                results[i] = runProduct(products[i], false, replica,
                                        seedOf(i));
        },
        cores_.size());
    return results;
}

} // namespace nn
} // namespace lt
