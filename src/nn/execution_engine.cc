#include "execution_engine.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace lt {
namespace nn {

ExecutionEngine::ExecutionEngine(const EngineConfig &cfg) : cfg_(cfg)
{
    size_t replicas = cfg.num_cores > 0
                          ? cfg.num_cores
                          : ThreadPool::global().numThreads();
    cores_.reserve(replicas);
    for (size_t i = 0; i < replicas; ++i)
        cores_.emplace_back(cfg.dptc);
}

ExecutionEngine::ExecutionEngine(const core::DptcConfig &dcfg,
                                 core::EvalMode mode, size_t num_cores)
    : ExecutionEngine(EngineConfig{dcfg, mode, num_cores})
{
}

Matrix
ExecutionEngine::gemmOneProduct(const Matrix &a, const Matrix &b,
                                bool parallel_tiles,
                                const core::Dptc &proto,
                                uint64_t stream_seed)
{
    if (a.cols() != b.rows())
        lt_fatal("ExecutionEngine::gemm inner dimension mismatch: ",
                 a.cols(), " vs ", b.rows());

    const size_t tiles = proto.outputTilesFor(a.rows(), b.cols());
    Matrix out(a.rows(), b.cols(), 0.0);

    const core::EvalMode mode = cfg_.mode;
    double scale = 1.0;
    const Matrix *a_hat = &a;
    const Matrix *b_hat = &b;
    Matrix a_norm, b_norm;
    if (mode != core::EvalMode::Ideal) {
        double beta_a = core::Dptc::maxAbs(a);
        double beta_b = core::Dptc::maxAbs(b);
        int bits = proto.config().input_bits;
        a_norm = core::Dptc::normalizeQuantize(a, beta_a, bits);
        b_norm = core::Dptc::normalizeQuantize(b, beta_b, bits);
        scale = beta_a * beta_b;
        a_hat = &a_norm;
        b_hat = &b_norm;
    }

    if (!parallel_tiles || tiles == 1) {
        proto.gemmTiles(*a_hat, *b_hat, mode, scale, 0, tiles, out,
                        stream_seed);
        return out;
    }

    // Shard output tiles across the core replicas. Shards own disjoint
    // output regions and every tile's noise is counter-seeded, so the
    // split affects wall-clock only, never the result.
    ThreadPool::global().parallelFor(
        tiles,
        [&](size_t begin, size_t end, size_t shard) {
            cores_[shard % cores_.size()].gemmTiles(
                *a_hat, *b_hat, mode, scale, begin, end, out,
                stream_seed);
        },
        cores_.size());
    return out;
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b)
{
    return gemm(a, b, next_stream_.fetch_add(1));
}

Matrix
ExecutionEngine::gemm(const Matrix &a, const Matrix &b, uint64_t stream)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    return gemmOneProduct(a, b, /*parallel_tiles=*/true, cores_.front(),
                          deriveSeed(cfg_.dptc.seed, stream));
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products)
{
    // Internal stream ids are claimed for the whole batch up front, in
    // product order — the assignment must not depend on which thread
    // runs which product.
    const uint64_t stream_base =
        next_stream_.fetch_add(products.size());
    return gemmBatchImpl(
        products, [&](size_t i) { return stream_base + i; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatch(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::vector<uint64_t> &streams)
{
    if (streams.size() != products.size())
        lt_fatal("gemmBatch: ", streams.size(), " streams for ",
                 products.size(), " products");
    return gemmBatchImpl(products,
                         [&](size_t i) { return streams[i]; });
}

std::vector<Matrix>
ExecutionEngine::gemmBatchImpl(
    const std::vector<std::pair<const Matrix *, const Matrix *>>
        &products,
    const std::function<uint64_t(size_t)> &streamOf)
{
    stats_.recordBatch();
    std::vector<Matrix> results(products.size());
    auto seedOf = [&](size_t i) {
        return deriveSeed(cfg_.dptc.seed, streamOf(i));
    };
    // Serving regime: enough independent products to keep every core
    // busy — shard whole products across cores and run each one
    // sequentially inside its shard. Otherwise parallelize tiles
    // within each product.
    const bool shard_products = products.size() >= cores_.size();
    if (!shard_products) {
        for (size_t i = 0; i < products.size(); ++i) {
            stats_.record(products[i].first->rows(),
                          products[i].first->cols(),
                          products[i].second->cols());
            results[i] = gemmOneProduct(*products[i].first,
                                        *products[i].second, true,
                                        cores_.front(), seedOf(i));
        }
        return results;
    }
    for (const auto &[pa, pb] : products)
        stats_.record(pa->rows(), pa->cols(), pb->cols());
    ThreadPool::global().parallelFor(
        products.size(),
        [&](size_t begin, size_t end, size_t shard) {
            const core::Dptc &replica = cores_[shard % cores_.size()];
            for (size_t i = begin; i < end; ++i)
                results[i] = gemmOneProduct(*products[i].first,
                                            *products[i].second, false,
                                            replica, seedOf(i));
        },
        cores_.size());
    return results;
}

} // namespace nn
} // namespace lt
