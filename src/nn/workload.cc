#include "workload.hh"

namespace lt {
namespace nn {

size_t
Workload::totalMacs() const
{
    size_t total = 0;
    for (const auto &op : ops)
        total += op.macs();
    return total;
}

size_t
Workload::moduleMacs(Module module) const
{
    size_t total = 0;
    for (const auto &op : ops)
        if (moduleOf(op.kind) == module)
            total += op.macs();
    return total;
}

std::vector<GemmOp>
Workload::moduleOps(Module module) const
{
    std::vector<GemmOp> out;
    for (const auto &op : ops)
        if (moduleOf(op.kind) == module)
            out.push_back(op);
    return out;
}

Module
moduleOf(GemmKind kind)
{
    switch (kind) {
      case GemmKind::QkT:
      case GemmKind::Av:
        return Module::Mha;
      case GemmKind::Ffn1:
      case GemmKind::Ffn2:
        return Module::Ffn;
      default:
        return Module::Other;
    }
}

const char *
toString(GemmKind kind)
{
    switch (kind) {
      case GemmKind::PatchEmbed:
        return "patch-embed";
      case GemmKind::QkvProj:
        return "qkv-proj";
      case GemmKind::QkT:
        return "QK^T";
      case GemmKind::Av:
        return "AV";
      case GemmKind::OutProj:
        return "out-proj";
      case GemmKind::Ffn1:
        return "ffn1";
      case GemmKind::Ffn2:
        return "ffn2";
      case GemmKind::Head:
        return "head";
    }
    return "?";
}

const char *
toString(Module module)
{
    switch (module) {
      case Module::Mha:
        return "MHA";
      case Module::Ffn:
        return "FFN";
      case Module::Other:
        return "Other";
    }
    return "?";
}

Workload
extractWorkload(const PaperModelConfig &model)
{
    Workload w;
    w.model = model.name;
    const size_t s = model.seq_len;
    const size_t d = model.dim;
    const size_t h = model.heads;
    const size_t dk = model.headDim();
    const size_t L = model.depth;

    if (model.patch_dim > 0) {
        // Vision stem: (seq_len - 1) patches projected to dim.
        w.ops.push_back(
            {GemmKind::PatchEmbed, s - 1, model.patch_dim, d, 1, false});
    }
    // Per encoder layer.
    w.ops.push_back({GemmKind::QkvProj, s, d, 3 * d, L, false});
    w.ops.push_back({GemmKind::QkT, s, dk, s, L * h, true});
    w.ops.push_back({GemmKind::Av, s, s, dk, L * h, true});
    w.ops.push_back({GemmKind::OutProj, s, d, d, L, false});
    w.ops.push_back({GemmKind::Ffn1, s, d, model.mlp_hidden, L, false});
    w.ops.push_back({GemmKind::Ffn2, s, model.mlp_hidden, d, L, false});
    // Classifier head on the pooled token.
    w.ops.push_back({GemmKind::Head, 1, d, model.num_classes, 1, false});
    return w;
}

} // namespace nn
} // namespace lt
