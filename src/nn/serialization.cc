#include "serialization.hh"

#include <cstdint>
#include <fstream>
#include <vector>

#include "util/logging.hh"

namespace lt {
namespace nn {

namespace {

constexpr uint64_t kMagic = 0x4c54'434b'5054'0001ULL; // "LTCKPT" v1

struct Header
{
    uint64_t magic;
    uint64_t dim, depth, heads, mlp_hidden, num_classes, max_tokens;
    uint64_t pooling;
    uint64_t patch_dim, vocab_size;
    uint64_t param_tensors;
};

Header
headerFor(const TransformerConfig &cfg, uint64_t tensors)
{
    Header h{};
    h.magic = kMagic;
    h.dim = cfg.dim;
    h.depth = cfg.depth;
    h.heads = cfg.heads;
    h.mlp_hidden = cfg.mlp_hidden;
    h.num_classes = cfg.num_classes;
    h.max_tokens = cfg.max_tokens;
    h.pooling = static_cast<uint64_t>(cfg.pooling);
    h.patch_dim = cfg.patch_dim;
    h.vocab_size = cfg.vocab_size;
    h.param_tensors = tensors;
    return h;
}

bool
sameArchitecture(const Header &a, const Header &b)
{
    return a.dim == b.dim && a.depth == b.depth && a.heads == b.heads &&
           a.mlp_hidden == b.mlp_hidden &&
           a.num_classes == b.num_classes &&
           a.max_tokens == b.max_tokens && a.pooling == b.pooling &&
           a.patch_dim == b.patch_dim && a.vocab_size == b.vocab_size &&
           a.param_tensors == b.param_tensors;
}

} // namespace

bool
saveCheckpoint(TransformerClassifier &model, const std::string &path)
{
    std::vector<Matrix *> params;
    model.visitParams(
        [&](Matrix &w, Matrix &) { params.push_back(&w); });

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    Header h = headerFor(model.config(),
                         static_cast<uint64_t>(params.size()));
    out.write(reinterpret_cast<const char *>(&h), sizeof(h));
    for (Matrix *w : params) {
        uint64_t rows = w->rows(), cols = w->cols();
        out.write(reinterpret_cast<const char *>(&rows), sizeof(rows));
        out.write(reinterpret_cast<const char *>(&cols), sizeof(cols));
        out.write(reinterpret_cast<const char *>(w->data().data()),
                  static_cast<std::streamsize>(w->data().size() *
                                               sizeof(double)));
    }
    return static_cast<bool>(out);
}

bool
loadCheckpoint(TransformerClassifier &model, const std::string &path)
{
    std::vector<Matrix *> params;
    model.visitParams(
        [&](Matrix &w, Matrix &) { params.push_back(&w); });

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    Header stored{};
    in.read(reinterpret_cast<char *>(&stored), sizeof(stored));
    if (!in || stored.magic != kMagic)
        lt_fatal("checkpoint ", path, ": bad magic/truncated header");
    Header expected = headerFor(model.config(),
                                static_cast<uint64_t>(params.size()));
    if (!sameArchitecture(stored, expected))
        lt_fatal("checkpoint ", path,
                 ": architecture mismatch with target model");

    for (Matrix *w : params) {
        uint64_t rows = 0, cols = 0;
        in.read(reinterpret_cast<char *>(&rows), sizeof(rows));
        in.read(reinterpret_cast<char *>(&cols), sizeof(cols));
        if (!in || rows != w->rows() || cols != w->cols())
            lt_fatal("checkpoint ", path, ": tensor shape mismatch (",
                     rows, "x", cols, " vs ", w->rows(), "x",
                     w->cols(), ")");
        in.read(reinterpret_cast<char *>(w->data().data()),
                static_cast<std::streamsize>(w->data().size() *
                                             sizeof(double)));
        if (!in)
            lt_fatal("checkpoint ", path, ": truncated tensor data");
    }
    return true;
}

} // namespace nn
} // namespace lt
