/**
 * @file
 * Autoregressive LLM decode workloads (paper Section VI-B).
 *
 * Token-by-token generation turns every GEMM into a skinny GEMV-like
 * product with low arithmetic intensity: weights and the KV cache are
 * streamed for a handful of MACs each. This module generates the
 * per-step GEMM list, the bytes moved, and the resulting intensity so
 * the accelerator model can show the memory-bound behaviour and the
 * recovery that request batching brings.
 */

#ifndef LT_NN_LLM_WORKLOAD_HH
#define LT_NN_LLM_WORKLOAD_HH

#include <cstddef>

#include "nn/model_zoo.hh"
#include "nn/workload.hh"

namespace lt {
namespace nn {

/** One decode-step scenario. */
struct DecodeConfig
{
    PaperModelConfig model;
    size_t context_len;  ///< tokens already in the KV cache
    size_t batch = 1;    ///< concurrent requests batched together
    int bits = 8;        ///< datapath precision (weights + KV cache)

    /**
     * Include the classifier/LM-head GEMM ([b, d] x [d, num_classes])
     * in the step. Off by default (the Section VI-B roofline numbers
     * predate the head); the executed decode loop
     * (nn::InferenceSession) always runs its head, so MAC cross-checks
     * against engine stats set this.
     */
    bool include_head = false;
};

/** The cost profile of generating one token. */
struct DecodeStep
{
    std::vector<GemmOp> ops;
    size_t macs = 0;
    size_t weight_bytes = 0;  ///< parameter traffic per step
    size_t kv_bytes = 0;      ///< KV-cache traffic per step

    size_t
    totalBytes() const
    {
        return weight_bytes + kv_bytes;
    }

    /** MACs per byte moved: the roofline x-coordinate. */
    double
    arithmeticIntensity() const
    {
        size_t bytes = totalBytes();
        return bytes ? static_cast<double>(macs) /
                           static_cast<double>(bytes)
                     : 0.0;
    }
};

/** Build the per-token decode workload for a configuration. */
DecodeStep decodeStepWorkload(const DecodeConfig &cfg);

/** Total weight parameters of the model's GEMM layers. */
size_t gemmParamCount(const PaperModelConfig &model);

} // namespace nn
} // namespace lt

#endif // LT_NN_LLM_WORKLOAD_HH
