/**
 * @file
 * Per-request activation caches for the stateless inference API.
 *
 * Every layer used to stash its forward activations in member fields,
 * which made a model object stateful: two samples could not be in
 * flight at once, and `forward*Batch` had to stream samples
 * sequentially. This header factors all of those caches into plain
 * structs owned by the *caller*:
 *
 *  - a forward pass is a pure function of (weights, input, workspace):
 *    it writes only the workspace it was handed, so one weight set can
 *    serve N concurrent requests with N workspaces;
 *  - training keeps manual backprop by owning one workspace and
 *    passing it to forward and then backward;
 *  - `InferenceSession` (nn/inference_session.hh) owns a workspace
 *    plus a growing per-layer K/V cache for autoregressive decode.
 *
 * The structs mirror the module tree of TransformerClassifier. They
 * are cheap to default-construct; matrices are (re)shaped on first
 * use, so one workspace can be reused across samples of different
 * lengths.
 */

#ifndef LT_NN_ACTIVATION_WORKSPACE_HH
#define LT_NN_ACTIVATION_WORKSPACE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/encoded_operand.hh"
#include "util/linalg.hh"

namespace lt {
namespace nn {

/** Linear forward cache: quantized input and weight used by backward. */
struct LinearCache
{
    Matrix x;   ///< (fake-quantized) forward input
    Matrix wq;  ///< (fake-quantized) forward weight
};

/** LayerNorm forward cache. */
struct LayerNormCache
{
    Matrix xhat;                  ///< normalized activations
    std::vector<double> inv_std;  ///< per-row 1/sqrt(var + eps)
};

/** GELU forward cache. */
struct GeluCache
{
    Matrix x;  ///< pre-activation input
};

/** Token-embedding forward cache (which rows were gathered). */
struct TokenEmbeddingCache
{
    std::vector<int> tokens;
};

/** Multi-head self-attention forward caches (per head). */
struct AttentionCache
{
    LinearCache wq, wk, wv, wo;
    std::vector<Matrix> q;  ///< quantized per-head Q
    std::vector<Matrix> k;
    std::vector<Matrix> v;
    std::vector<Matrix> p;  ///< attention probabilities
};

/** Feed-forward (Linear -> GELU -> Linear) caches. */
struct FeedForwardCache
{
    LinearCache fc1, fc2;
    GeluCache act;
};

/** One encoder block's caches. */
struct TransformerBlockCache
{
    LayerNormCache ln1, ln2;
    AttentionCache attn;
    FeedForwardCache ffn;
};

/**
 * Growing K/V operands of one attention layer for incremental decode.
 * Values live in the same (quantized) domain the attention forward
 * caches: what the accelerator would hold in its KV SRAM/HBM.
 *
 * Both dense mirrors are row-major [tokens, dk] per head, so a decode
 * step appends one token as one amortized-O(dk) row write to each —
 * the QK^T dispatch reads K through a *transposed view*
 * (ConstMatrixView), so no pre-transposed copy is re-strided per
 * step.
 *
 * When the serving backend executes encoded operands
 * (GemmBackend::supportsKvPlans()), the cache additionally holds the
 * *encoded* forms the DPTC kernel actually consumes: per-head packed
 * K^T ([dk, tokens], growing by one packed column per token) and
 * packed V ([tokens, dk], growing by one packed row). The attention
 * decode entry points keep them in sync with the dense mirrors and
 * dispatch on them directly — zero per-step K/V re-encodes in steady
 * state; the dense mirrors remain the requantization source when a
 * new token's magnitude outgrows the cached beta, and the operands of
 * record for backends without encoded execution.
 */
/**
 * Immutable, shareable K/V of one attention layer over a fixed token
 * range — the per-layer payload of a shared prompt prefix (see
 * nn::KvPrefix / serve::KvBlockPool). A segment is computed once by a
 * full forward over exactly its tokens on a content-addressed noise
 * lane, so its values are a pure function of (model weights, backend
 * config, tokens): every request mapping the same prefix — and every
 * recompute after eviction — reads bit-identical K/V. Requests attach
 * a segment to their AttentionKvCache via shared_ptr (the
 * copy-on-write rule: segments are never mutated; a request's own
 * tokens append to the cache's private tail mirrors instead).
 */
struct KvLayerSegment
{
    size_t tokens = 0;      ///< prefix length this segment covers

    std::vector<Matrix> k;  ///< per head [tokens, dk], quantized domain
    std::vector<Matrix> v;  ///< per head [tokens, dk]

    /**
     * Encoded mirrors (packed K^T / V per head), built once at segment
     * construction when the backend executes encoded operands; empty
     * otherwise. Read-only thereafter — shared dispatch never
     * re-encodes a prefix.
     */
    std::vector<core::EncodedOperand> ek_t;  ///< per head [dk, tokens]
    std::vector<core::EncodedOperand> ev;    ///< per head [tokens, dk]

    /** GemmBackend::uid() the encoded mirrors target (0 = none). */
    uint64_t encoded_backend_uid = 0;
};

struct AttentionKvCache
{
    std::vector<Matrix> k;  ///< per head [tokens, dk]
    std::vector<Matrix> v;  ///< per head [tokens, dk]
    size_t tokens = 0;      ///< cached context length (private tail)

    /**
     * Optional shared prefix preceding the private tail: attention
     * decode reads the first sharedTokens() positions of the context
     * from this immutable segment (QK^T and AV each split into a
     * segment product plus a tail product; one softmax spans both) and
     * appends new tokens to the private mirrors above. Null for the
     * default non-paged path, which this struct then serves exactly as
     * before — segment-aware dispatch is opt-in per request.
     */
    std::shared_ptr<const KvLayerSegment> segment;

    /** Tokens contributed by the shared prefix segment (0 = none). */
    size_t
    sharedTokens() const
    {
        return segment ? segment->tokens : 0;
    }

    /** Full attention context length: shared prefix + private tail. */
    size_t
    contextTokens() const
    {
        return sharedTokens() + tokens;
    }

    /** Context length reserve() provisioned for (0 = unreserved). */
    size_t reserved_tokens = 0;

    /**
     * Encoded mirrors, maintained by the attention decode path when
     * the backend supports them (empty otherwise): packed K^T / V of
     * every head, in the backend's core geometry.
     */
    std::vector<core::EncodedOperand> ek_t;  ///< per head [dk, tokens]
    std::vector<core::EncodedOperand> ev;    ///< per head [tokens, dk]

    /**
     * GemmBackend::uid() the encoded mirrors were built for (0 =
     * inactive). A cache handed to a different backend rebuilds its
     * mirrors on the next decode step instead of dispatching
     * encodings packed for foreign core geometry.
     */
    uint64_t encoded_backend_uid = 0;

    /**
     * Reserve backing capacity for a context of `max_tokens` so every
     * decode step appends allocation-free: the dense K/V mirrors grow
     * rows in amortized O(1) inside reserved vectors, and the encoded
     * mirrors pre-size their packed-block storage (k-tile stride
     * included), so the block backing pointers stay stable across the
     * whole decode. InferenceSession calls this once per layer at
     * prefill (the caches must already hold the seeded heads).
     */
    void
    reserve(size_t max_tokens)
    {
        reserved_tokens = std::max(reserved_tokens, max_tokens);
        for (Matrix &k_h : k)
            k_h.reserve(max_tokens * k_h.cols());
        for (Matrix &v_h : v)
            v_h.reserve(max_tokens * v_h.cols());
        for (core::EncodedOperand &e : ek_t)
            e.reserve(e.rows(), max_tokens);
        for (core::EncodedOperand &e : ev)
            e.reserve(max_tokens, e.cols());
    }
};

/**
 * All activation state of one TransformerClassifier forward pass.
 * Pass a fresh (or reused) workspace per request; pass the same
 * workspace to backward() to train.
 */
struct ActivationWorkspace
{
    LinearCache patch_embed;
    TokenEmbeddingCache token_embed;
    std::vector<TransformerBlockCache> blocks;
    LayerNormCache final_ln;
    LinearCache head;

    // Classifier-level bookkeeping (was TransformerClassifier state).
    size_t tokens = 0;       ///< token count incl. CLS
    Matrix pooled_in;        ///< final-LN output (pooling input)
    bool last_was_vision = false;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_ACTIVATION_WORKSPACE_HH
