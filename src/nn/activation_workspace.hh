/**
 * @file
 * Per-request activation caches for the stateless inference API.
 *
 * Every layer used to stash its forward activations in member fields,
 * which made a model object stateful: two samples could not be in
 * flight at once, and `forward*Batch` had to stream samples
 * sequentially. This header factors all of those caches into plain
 * structs owned by the *caller*:
 *
 *  - a forward pass is a pure function of (weights, input, workspace):
 *    it writes only the workspace it was handed, so one weight set can
 *    serve N concurrent requests with N workspaces;
 *  - training keeps manual backprop by owning one workspace and
 *    passing it to forward and then backward;
 *  - `InferenceSession` (nn/inference_session.hh) owns a workspace
 *    plus a growing per-layer K/V cache for autoregressive decode.
 *
 * The structs mirror the module tree of TransformerClassifier. They
 * are cheap to default-construct; matrices are (re)shaped on first
 * use, so one workspace can be reused across samples of different
 * lengths.
 */

#ifndef LT_NN_ACTIVATION_WORKSPACE_HH
#define LT_NN_ACTIVATION_WORKSPACE_HH

#include <cstddef>
#include <vector>

#include "util/linalg.hh"

namespace lt {
namespace nn {

/** Linear forward cache: quantized input and weight used by backward. */
struct LinearCache
{
    Matrix x;   ///< (fake-quantized) forward input
    Matrix wq;  ///< (fake-quantized) forward weight
};

/** LayerNorm forward cache. */
struct LayerNormCache
{
    Matrix xhat;                  ///< normalized activations
    std::vector<double> inv_std;  ///< per-row 1/sqrt(var + eps)
};

/** GELU forward cache. */
struct GeluCache
{
    Matrix x;  ///< pre-activation input
};

/** Token-embedding forward cache (which rows were gathered). */
struct TokenEmbeddingCache
{
    std::vector<int> tokens;
};

/** Multi-head self-attention forward caches (per head). */
struct AttentionCache
{
    LinearCache wq, wk, wv, wo;
    std::vector<Matrix> q;  ///< quantized per-head Q
    std::vector<Matrix> k;
    std::vector<Matrix> v;
    std::vector<Matrix> p;  ///< attention probabilities
};

/** Feed-forward (Linear -> GELU -> Linear) caches. */
struct FeedForwardCache
{
    LinearCache fc1, fc2;
    GeluCache act;
};

/** One encoder block's caches. */
struct TransformerBlockCache
{
    LayerNormCache ln1, ln2;
    AttentionCache attn;
    FeedForwardCache ffn;
};

/**
 * Growing K/V operands of one attention layer for incremental decode.
 * Values live in the same (quantized) domain the attention forward
 * caches: what the accelerator would hold in its KV SRAM/HBM. K is
 * stored pre-transposed ([dk, tokens]) — exactly the right operand
 * layout for the per-step QK^T row, so a decode step appends one
 * column instead of re-transposing the whole cache.
 */
struct AttentionKvCache
{
    std::vector<Matrix> k_t;  ///< per head [dk, tokens] (K transposed)
    std::vector<Matrix> v;    ///< per head [tokens, dk]
    size_t tokens = 0;        ///< cached context length

    /**
     * Reserve backing capacity for a context of `max_tokens` so every
     * decode step appends allocation-free: V rows grow in amortized
     * O(1) and the pre-transposed K re-strides inside the reserved
     * buffer. InferenceSession calls this once per layer at prefill
     * (the caches must already hold the seeded heads).
     */
    void
    reserve(size_t max_tokens)
    {
        for (Matrix &k : k_t)
            k.reserve(k.rows() * max_tokens);
        for (Matrix &v_h : v)
            v_h.reserve(max_tokens * v_h.cols());
    }
};

/**
 * All activation state of one TransformerClassifier forward pass.
 * Pass a fresh (or reused) workspace per request; pass the same
 * workspace to backward() to train.
 */
struct ActivationWorkspace
{
    LinearCache patch_embed;
    TokenEmbeddingCache token_embed;
    std::vector<TransformerBlockCache> blocks;
    LayerNormCache final_ln;
    LinearCache head;

    // Classifier-level bookkeeping (was TransformerClassifier state).
    size_t tokens = 0;       ///< token count incl. CLS
    Matrix pooled_in;        ///< final-LN output (pooling input)
    bool last_was_vision = false;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_ACTIVATION_WORKSPACE_HH
