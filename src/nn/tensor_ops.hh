/**
 * @file
 * Elementwise / row-wise matrix helpers shared by the NN layers.
 */

#ifndef LT_NN_TENSOR_OPS_HH
#define LT_NN_TENSOR_OPS_HH

#include "util/linalg.hh"

namespace lt {
namespace nn {

/** out += in (shape-checked). */
void addInPlace(Matrix &out, const Matrix &in);

/** Return a * s. */
Matrix scaled(const Matrix &a, double s);

/** Extract a column block [c0, c0+cols) of m. */
Matrix sliceCols(const Matrix &m, size_t c0, size_t cols);

/** Write `block` into m at column offset c0. */
void pasteCols(Matrix &m, const Matrix &block, size_t c0);

/**
 * Append `row` ([1, n]) below m ([r, n]; an empty m adopts the row's
 * width). The growth primitive of the decode V caches.
 */
void appendRow(Matrix &m, const Matrix &row);

/**
 * Append `row` ([1, n]) as a new COLUMN of m ([n, c] -> [n, c+1]; an
 * empty m becomes row^T). Grows the pre-transposed decode K caches
 * without re-transposing them every step.
 */
void appendColumn(Matrix &m, const Matrix &row);

/** Row-wise softmax. */
Matrix rowSoftmax(const Matrix &scores);

/**
 * Backward through a row-wise softmax: given the probabilities p and
 * upstream gradient dp, returns dscores = p .* (dp - rowsum(dp .* p)).
 */
Matrix rowSoftmaxBackward(const Matrix &p, const Matrix &dp);

/** Tanh-approximated GELU, elementwise. */
Matrix gelu(const Matrix &x);

/** dGELU/dx evaluated at x, multiplied elementwise by dy. */
Matrix geluBackward(const Matrix &x, const Matrix &dy);

/** Row-wise argmax of a [1, n] or [r, n] matrix row. */
size_t argmaxRow(const Matrix &m, size_t row);

} // namespace nn
} // namespace lt

#endif // LT_NN_TENSOR_OPS_HH
