/**
 * @file
 * Structured sparse-attention support (paper Section VI-A, Fig. 16).
 *
 * Window-local attention restricts token i to keys in
 * [i - (w-1)/2, i + (w-1)/2]. To run this on DPTC, Q and K are
 * blockified with block size b: each Q chunk multiplies only the K
 * chunks its window touches, turning the sparse computation into a
 * list of small *dense* GEMMs. For AV, the sparse attention rows are
 * compressed so each chunk multiplies the matching rows of V.
 *
 * Two things are provided:
 *  1. a functional implementation (dense-masked vs blockified must
 *     agree exactly — tested), and
 *  2. a workload generator emitting the chunked GemmOps the
 *     accelerator simulator costs out.
 */

#ifndef LT_NN_SPARSE_ATTENTION_HH
#define LT_NN_SPARSE_ATTENTION_HH

#include <cstddef>
#include <vector>

#include "nn/gemm_backend.hh"
#include "nn/workload.hh"
#include "util/linalg.hh"

namespace lt {
namespace nn {

/** Window-local attention geometry. */
struct WindowAttentionConfig
{
    size_t seq_len;      ///< n tokens
    size_t window;       ///< odd window size w (keys per query)
    size_t block;        ///< blockification granularity b
    size_t head_dim;     ///< dk

    /** First key index token i may attend to. */
    size_t
    windowStart(size_t i) const
    {
        size_t half = (window - 1) / 2;
        return i >= half ? i - half : 0;
    }

    /** One-past-last key index token i may attend to. */
    size_t
    windowEnd(size_t i) const
    {
        size_t half = (window - 1) / 2;
        return std::min(seq_len, i + half + 1);
    }
};

/**
 * Reference implementation: dense attention with out-of-window scores
 * masked to -inf before the softmax.
 */
Matrix windowAttentionDense(const Matrix &q, const Matrix &k,
                            const Matrix &v,
                            const WindowAttentionConfig &cfg);

/**
 * Blockified implementation (Fig. 16): per Q chunk, gather the key
 * span its window covers, run chunked dense QK^T / softmax / AV.
 *
 * With no backend, the chunk pipeline runs on the host and matches
 * windowAttentionDense to round-off; chunks own disjoint output
 * rows and are sharded across the global thread pool. With a backend,
 * the chunked QK^T and AV products are batched through
 * GemmBackend::gemmBatch — this is how the sparse workload executes
 * on the photonic ExecutionEngine (quantization + noise apply, so
 * outputs then track, rather than equal, the dense reference).
 *
 * When `stream` is supplied, every chunked product draws its noise
 * stream from it (in chunk order), making the result independent of
 * the backend's call history — the same stateless-addressing contract
 * the model forwards use. Without it, the backend's internal counter
 * is consumed as before.
 */
Matrix windowAttentionBlocked(const Matrix &q, const Matrix &k,
                              const Matrix &v,
                              const WindowAttentionConfig &cfg,
                              GemmBackend *backend = nullptr,
                              NoiseStream *stream = nullptr);

/** Chunked-GEMM workload of one blockified window-attention head. */
struct SparseAttentionWorkload
{
    std::vector<GemmOp> qk_ops;  ///< chunked QK^T products
    std::vector<GemmOp> av_ops;  ///< compressed AV products
    size_t dense_macs;           ///< full-attention MAC count
    size_t sparse_macs;          ///< blockified MAC count

    double
    savings() const
    {
        return sparse_macs ? static_cast<double>(dense_macs) /
                                 static_cast<double>(sparse_macs)
                           : 0.0;
    }
};

/** Emit the chunked GEMM list for one attention head. */
SparseAttentionWorkload
blockifyWindowAttention(const WindowAttentionConfig &cfg);

} // namespace nn
} // namespace lt

#endif // LT_NN_SPARSE_ATTENTION_HH
