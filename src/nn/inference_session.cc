#include "inference_session.hh"

#include <stdexcept>
#include <string>

namespace lt {
namespace nn {

namespace {

/** Session lanes live in their own family, apart from batch lanes. */
constexpr uint64_t kSessionLaneSalt = 0x5e55'10f7ULL;

} // namespace

InferenceSession::InferenceSession(const TransformerClassifier &model,
                                   GemmBackend &backend,
                                   const QuantConfig &quant,
                                   uint64_t request_id)
    : model_(&model),
      ctx_{&backend, quant,
           NoiseStream(kSessionLaneSalt).lane(request_id),
           /*inference=*/true}
{
    const TransformerConfig &cfg = model.config();
    if (cfg.vocab_size == 0)
        throw std::invalid_argument(
            "InferenceSession requires a sequence-mode model "
            "(vocab_size > 0)");
    if (!cfg.causal)
        throw std::invalid_argument(
            "InferenceSession requires causal attention "
            "(TransformerConfig::causal) — with bidirectional "
            "attention every new token would invalidate the K/V "
            "cache");
    if (cfg.pooling == Pooling::ClsToken)
        throw std::invalid_argument(
            "InferenceSession requires Mean or LastToken pooling");
    kv_.resize(cfg.depth);
}

Matrix
InferenceSession::prefill(const std::vector<int> &tokens)
{
    if (len_ != 0)
        throw std::invalid_argument(
            "prefill on a session that already holds " +
            std::to_string(len_) + " tokens");
    if (tokens.empty())
        throw std::invalid_argument("prefill with an empty prompt");

    // One causal full-sequence forward over the prompt (validates the
    // token count and ids), then lift the per-head quantized K/V the
    // attention layers already materialized into the decode cache.
    Matrix logits = model_->forwardSequence(tokens, ws_, ctx_);
    for (size_t l = 0; l < kv_.size(); ++l) {
        // Seed dense + (on encoded-operand backends) encoded K/V
        // mirrors: the per-head encodes are paid once here, so every
        // decode step appends instead of re-encoding.
        model_->block(l).attention().seedKvCache(ws_.blocks[l].attn,
                                                 kv_[l],
                                                 *ctx_.backend);
        // Reserve the full-context footprint once — dense rows and
        // packed encoded blocks both — so every decode step appends
        // without reallocating (or re-striding) the cache storage.
        kv_[l].reserve(model_->config().max_tokens);
    }

    if (model_->config().pooling == Pooling::Mean) {
        // Running sum of final-LN rows, in row order — matches the
        // full-sequence mean pooling summation exactly.
        pooled_sum_ = Matrix(1, model_->config().dim, 0.0);
        for (size_t r = 0; r < ws_.pooled_in.rows(); ++r)
            for (size_t c = 0; c < ws_.pooled_in.cols(); ++c)
                pooled_sum_(0, c) += ws_.pooled_in(r, c);
    }

    tokens_ = tokens;
    len_ = tokens.size();
    return logits;
}

Matrix
InferenceSession::decodeStep(int token)
{
    if (len_ == 0)
        return prefill({token});
    const TransformerConfig &cfg = model_->config();
    if (len_ + 1 > cfg.max_tokens)
        throw std::invalid_argument(
            "decode past the positional table: context of " +
            std::to_string(len_ + 1) + " tokens exceeds max_tokens = " +
            std::to_string(cfg.max_tokens));

    // Embed the new token at position len_ (identical to the row the
    // full-sequence forward would build).
    Matrix x = model_->token_embed_->embedRow(token);
    for (size_t c = 0; c < cfg.dim; ++c)
        x(0, c) += model_->pos_(len_, c);

    // One row through every block, attending to the K/V cache.
    if (ws_.blocks.size() != model_->depth())
        ws_.blocks.resize(model_->depth());
    for (size_t l = 0; l < model_->depth(); ++l)
        x = model_->block(l).decodeStep(x, kv_[l], ws_.blocks[l],
                                        ctx_);

    Matrix normed = model_->final_ln_.forward(x, ws_.final_ln);
    tokens_.push_back(token);
    len_ += 1;
    return logitsFromNormedRow(normed);
}

Matrix
InferenceSession::logitsFromNormedRow(const Matrix &normed_row)
{
    const TransformerConfig &cfg = model_->config();
    Matrix pooled(1, cfg.dim);
    if (cfg.pooling == Pooling::Mean) {
        for (size_t c = 0; c < cfg.dim; ++c)
            pooled_sum_(0, c) += normed_row(0, c);
        // Divide (not multiply by a reciprocal): bit-matches the
        // full-sequence mean pooling.
        for (size_t c = 0; c < cfg.dim; ++c)
            pooled(0, c) =
                pooled_sum_(0, c) / static_cast<double>(len_);
    } else {
        pooled = normed_row;
    }
    return model_->head_.forward(pooled, ws_.head, ctx_);
}

} // namespace nn
} // namespace lt
