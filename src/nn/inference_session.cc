#include "inference_session.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hh"

namespace lt {
namespace nn {

namespace {

/** Session lanes live in their own family, apart from batch lanes. */
constexpr uint64_t kSessionLaneSalt = 0x5e55'10f7ULL;

/**
 * Shared-prefix lanes are content-addressed (lane index = token hash)
 * and live in their own family, decorrelated from both session and
 * batch lanes: computing a prefix never touches any request's draws.
 */
constexpr uint64_t kPrefixLaneSalt = 0x9e0f'11f5ULL;

} // namespace

uint64_t
hashPrefixTokens(const std::vector<int> &tokens)
{
    // FNV-1a over the 32-bit token ids, matching the digest idiom the
    // golden-logit tests use.
    uint64_t h = 1469598103934665603ULL;
    for (int t : tokens) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(t));
        h *= 1099511628211ULL;
    }
    return h;
}

InferenceSession::InferenceSession(const TransformerClassifier &model,
                                   GemmBackend &backend,
                                   const QuantConfig &quant,
                                   uint64_t request_id)
    : model_(&model), request_id_(request_id),
      ctx_{&backend, quant,
           NoiseStream(kSessionLaneSalt).lane(request_id),
           /*inference=*/true}
{
    const TransformerConfig &cfg = model.config();
    if (cfg.vocab_size == 0)
        throw std::invalid_argument(
            "InferenceSession requires a sequence-mode model "
            "(vocab_size > 0)");
    if (!cfg.causal)
        throw std::invalid_argument(
            "InferenceSession requires causal attention "
            "(TransformerConfig::causal) — with bidirectional "
            "attention every new token would invalidate the K/V "
            "cache");
    if (cfg.pooling == Pooling::ClsToken)
        throw std::invalid_argument(
            "InferenceSession requires Mean or LastToken pooling");
    kv_.resize(cfg.depth);
}

Matrix
InferenceSession::prefill(const std::vector<int> &tokens)
{
    return prefill(tokens, SessionKvPlan{});
}

Matrix
InferenceSession::prefill(const std::vector<int> &tokens,
                          const SessionKvPlan &plan)
{
    obs::TraceScope span(
        "session/prefill", request_id_, "prompt_tokens",
        static_cast<int64_t>(tokens.size()), "prefix_tokens",
        static_cast<int64_t>(plan.prefix ? plan.prefix->length() : 0));
    if (len_ != 0)
        throw std::invalid_argument(
            "prefill on a session that already holds " +
            std::to_string(len_) + " tokens");
    if (tokens.empty())
        throw std::invalid_argument("prefill with an empty prompt");
    const TransformerConfig &cfg = model_->config();
    // A plan may right-size the K/V reservation to the request's own
    // context budget instead of the positional-table worst case (the
    // serve layer's block accounting depends on this); capacity only,
    // never values.
    const size_t reserve_tokens =
        plan.reserve_tokens == 0
            ? cfg.max_tokens
            : std::min(plan.reserve_tokens, cfg.max_tokens);

    if (!plan.prefix) {
        // One causal full-sequence forward over the prompt (validates
        // the token count and ids), then lift the per-head quantized
        // K/V the attention layers already materialized into the
        // decode cache.
        Matrix logits = model_->forwardSequence(tokens, ws_, ctx_);
        for (size_t l = 0; l < kv_.size(); ++l) {
            // Seed dense + (on encoded-operand backends) encoded K/V
            // mirrors: the per-head encodes are paid once here, so
            // every decode step appends instead of re-encoding.
            model_->block(l).attention().seedKvCache(
                ws_.blocks[l].attn, kv_[l], *ctx_.backend);
            // Reserve the context footprint once — dense rows and
            // packed encoded blocks both — so every decode step
            // appends without reallocating (or re-striding) the cache
            // storage.
            kv_[l].reserve(reserve_tokens);
        }

        if (cfg.pooling == Pooling::Mean) {
            // Running sum of final-LN rows, in row order — matches
            // the full-sequence mean pooling summation exactly.
            pooled_sum_ = Matrix(1, cfg.dim, 0.0);
            for (size_t r = 0; r < ws_.pooled_in.rows(); ++r)
                for (size_t c = 0; c < ws_.pooled_in.cols(); ++c)
                    pooled_sum_(0, c) += ws_.pooled_in(r, c);
        }

        tokens_ = tokens;
        len_ = tokens.size();
        return logits;
    }

    // Shared-prefix prefill: map the precomputed segments
    // copy-on-write, then run ONLY the suffix tokens — through the
    // incremental decode path, on this request's own noise lane.
    const size_t p = plan.prefix->length();
    const size_t tail_reserve = mapPrefix(tokens, plan, reserve_tokens);

    // First suffix token creates the tail mirrors; reserve their
    // dense backing right after (an append into an empty Matrix
    // replaces it, so reserving earlier would be lost), then ingest
    // the rest of the suffix.
    Matrix logits = decodeStep(tokens[p]);
    for (AttentionKvCache &kv : kv_)
        kv.reserve(tail_reserve);
    for (size_t i = p + 1; i < tokens.size(); ++i)
        logits = decodeStep(tokens[i]);
    return logits;
}

size_t
InferenceSession::mapPrefix(const std::vector<int> &tokens,
                            const SessionKvPlan &plan,
                            size_t reserve_tokens)
{
    const TransformerConfig &cfg = model_->config();
    const KvPrefix &prefix = *plan.prefix;
    const size_t p = prefix.length();
    if (p == 0 || prefix.layers.size() != kv_.size())
        throw std::invalid_argument(
            "prefill: KvPrefix of " +
            std::to_string(prefix.layers.size()) +
            " layers / " + std::to_string(p) +
            " tokens does not fit a depth-" +
            std::to_string(kv_.size()) + " model");
    if (p >= tokens.size())
        throw std::invalid_argument(
            "prefill: shared prefix of " + std::to_string(p) +
            " tokens must be a proper prefix of the " +
            std::to_string(tokens.size()) +
            "-token prompt (at least one suffix token)");
    if (!std::equal(prefix.tokens.begin(), prefix.tokens.end(),
                    tokens.begin()))
        throw std::invalid_argument(
            "prefill: prompt does not start with the shared prefix's "
            "tokens");
    if (tokens.size() > cfg.max_tokens)
        throw std::invalid_argument(
            "prefill: prompt of " + std::to_string(tokens.size()) +
            " tokens exceeds max_tokens = " +
            std::to_string(cfg.max_tokens));
    if (cfg.pooling == Pooling::Mean &&
        (prefix.pooled_sum.rows() != 1 ||
         prefix.pooled_sum.cols() != cfg.dim))
        throw std::invalid_argument(
            "prefill: KvPrefix lacks the pooled state Mean pooling "
            "needs");

    const size_t tail_reserve =
        reserve_tokens > p ? reserve_tokens - p : 0;
    for (size_t l = 0; l < kv_.size(); ++l) {
        AttentionKvCache &kv = kv_[l];
        kv.segment = std::shared_ptr<const KvLayerSegment>(
            plan.prefix, &prefix.layers[l]);
        kv.k.clear();
        kv.v.clear();
        kv.ek_t.clear();
        kv.ev.clear();
        kv.encoded_backend_uid = 0;
        kv.tokens = 0;
        // The request's private mirrors only ever hold its tail; the
        // packed mirrors pick this reservation up on their first
        // (seeding) encode.
        kv.reserved_tokens = tail_reserve;
    }
    if (cfg.pooling == Pooling::Mean)
        pooled_sum_ = prefix.pooled_sum;
    tokens_.assign(tokens.begin(),
                   tokens.begin() + static_cast<std::ptrdiff_t>(p));
    len_ = p;
    return tail_reserve;
}

Matrix
InferenceSession::prefillChunk(const std::vector<int> &tokens,
                               size_t begin, size_t end)
{
    return prefillChunk(tokens, begin, end, SessionKvPlan{});
}

Matrix
InferenceSession::prefillChunk(const std::vector<int> &tokens,
                               size_t begin, size_t end,
                               const SessionKvPlan &plan)
{
    obs::TraceScope span("session/prefill_chunk", request_id_,
                         "begin", static_cast<int64_t>(begin), "end",
                         static_cast<int64_t>(end));
    if (tokens.empty())
        throw std::invalid_argument(
            "prefillChunk with an empty prompt");
    if (begin >= end || end > tokens.size())
        throw std::invalid_argument(
            "prefillChunk: chunk [" + std::to_string(begin) + ", " +
            std::to_string(end) + ") out of range for a " +
            std::to_string(tokens.size()) + "-token prompt");
    if (begin != len_)
        throw std::invalid_argument(
            "prefillChunk: chunk begins at token " +
            std::to_string(begin) + " but the session holds " +
            std::to_string(len_) + " tokens");
    for (size_t i = 0; i < len_; ++i)
        if (tokens_[i] != tokens[i])
            throw std::invalid_argument(
                "prefillChunk: prompt disagrees with the tokens "
                "already ingested at position " + std::to_string(i));
    const TransformerConfig &cfg = model_->config();
    if (tokens.size() > cfg.max_tokens)
        throw std::invalid_argument(
            "prefillChunk: prompt of " +
            std::to_string(tokens.size()) +
            " tokens exceeds max_tokens = " +
            std::to_string(cfg.max_tokens));

    Matrix logits;
    size_t i = begin;
    if (len_ == 0) {
        if (!plan.prefix) {
            // The first token seeds the caches through the one-token
            // prefill — bit-identical to a decode-path ingest (same
            // stream draw order, same K/V encode schedule) — carrying
            // the plan's right-sized reservation.
            SessionKvPlan first;
            first.reserve_tokens = plan.reserve_tokens;
            logits = prefill({tokens[0]}, first);
            i = 1;
        } else {
            // Mapped prefix positions are free; the first chunk must
            // run at least one real suffix token past them.
            const size_t p = plan.prefix->length();
            if (end <= p)
                throw std::invalid_argument(
                    "prefillChunk: first chunk ends at token " +
                    std::to_string(end) +
                    " inside the shared prefix of " +
                    std::to_string(p) + " tokens");
            const size_t reserve_tokens =
                plan.reserve_tokens == 0
                    ? cfg.max_tokens
                    : std::min(plan.reserve_tokens, cfg.max_tokens);
            const size_t tail_reserve =
                mapPrefix(tokens, plan, reserve_tokens);
            logits = decodeStep(tokens[p]);
            for (AttentionKvCache &kv : kv_)
                kv.reserve(tail_reserve);
            i = p + 1;
        }
    }
    for (; i < end; ++i)
        logits = decodeStep(tokens[i]);
    return logits;
}

std::shared_ptr<const KvPrefix>
InferenceSession::buildKvPrefix(const TransformerClassifier &model,
                                GemmBackend &backend,
                                const QuantConfig &quant,
                                const std::vector<int> &tokens)
{
    const TransformerConfig &cfg = model.config();
    if (cfg.vocab_size == 0 || !cfg.causal ||
        cfg.pooling == Pooling::ClsToken)
        throw std::invalid_argument(
            "buildKvPrefix requires an InferenceSession-compatible "
            "model (causal sequence mode, Mean or LastToken pooling)");
    if (tokens.empty())
        throw std::invalid_argument(
            "buildKvPrefix on an empty prefix");

    // Content-addressed lane: the prefix's K/V depend on its tokens
    // (and the model/backend/quant config), never on which request
    // triggered the computation — the whole sharing contract.
    RunContext ctx{&backend, quant,
                   NoiseStream(kPrefixLaneSalt)
                       .lane(hashPrefixTokens(tokens)),
                   /*inference=*/true};
    ActivationWorkspace ws;
    model.forwardSequence(tokens, ws, ctx); // validates count + ids

    auto prefix = std::make_shared<KvPrefix>();
    prefix->tokens = tokens;
    prefix->layers.resize(model.depth());
    for (size_t l = 0; l < model.depth(); ++l) {
        KvLayerSegment &seg = prefix->layers[l];
        const AttentionCache &attn = ws.blocks[l].attn;
        seg.tokens = tokens.size();
        seg.k = attn.k;
        seg.v = attn.v;
        if (backend.supportsKvPlans()) {
            // Encode once, at construction: every request that maps
            // this prefix dispatches on these packed operands without
            // ever re-encoding them (the N-users-one-encode property
            // the pool's hit counter measures).
            const size_t heads = seg.k.size();
            seg.ek_t.resize(heads);
            seg.ev.resize(heads);
            for (size_t h = 0; h < heads; ++h) {
                backend.encodeKvInto(seg.ek_t[h],
                                     seg.k[h].transposedView(),
                                     core::OperandSide::B);
                backend.encodeKvInto(seg.ev[h], seg.v[h].view(),
                                     core::OperandSide::B);
            }
            seg.encoded_backend_uid = backend.uid();
        }
    }
    if (cfg.pooling == Pooling::Mean) {
        // Running final-LN row sum over the prefix, in row order —
        // the pooled state a session resumes Mean pooling from.
        prefix->pooled_sum = Matrix(1, cfg.dim, 0.0);
        for (size_t r = 0; r < ws.pooled_in.rows(); ++r)
            for (size_t c = 0; c < ws.pooled_in.cols(); ++c)
                prefix->pooled_sum(0, c) += ws.pooled_in(r, c);
    }
    return prefix;
}

Matrix
InferenceSession::decodeStep(int token)
{
    if (len_ == 0)
        return prefill({token});
    obs::TraceScope span("session/decode_step", request_id_,
                         "context",
                         static_cast<int64_t>(len_ + 1));
    const TransformerConfig &cfg = model_->config();
    if (len_ + 1 > cfg.max_tokens)
        throw std::invalid_argument(
            "decode past the positional table: context of " +
            std::to_string(len_ + 1) + " tokens exceeds max_tokens = " +
            std::to_string(cfg.max_tokens));

    // Embed the new token at position len_ (identical to the row the
    // full-sequence forward would build).
    Matrix x = model_->token_embed_->embedRow(token);
    for (size_t c = 0; c < cfg.dim; ++c)
        x(0, c) += model_->pos_(len_, c);

    // One row through every block, attending to the K/V cache.
    if (ws_.blocks.size() != model_->depth())
        ws_.blocks.resize(model_->depth());
    for (size_t l = 0; l < model_->depth(); ++l)
        x = model_->block(l).decodeStep(x, kv_[l], ws_.blocks[l],
                                        ctx_);

    Matrix normed = model_->final_ln_.forward(x, ws_.final_ln);
    tokens_.push_back(token);
    len_ += 1;
    return logitsFromNormedRow(normed);
}

Matrix
InferenceSession::logitsFromNormedRow(const Matrix &normed_row)
{
    const TransformerConfig &cfg = model_->config();
    Matrix pooled(1, cfg.dim);
    if (cfg.pooling == Pooling::Mean) {
        for (size_t c = 0; c < cfg.dim; ++c)
            pooled_sum_(0, c) += normed_row(0, c);
        // Divide (not multiply by a reciprocal): bit-matches the
        // full-sequence mean pooling.
        for (size_t c = 0; c < cfg.dim; ++c)
            pooled(0, c) =
                pooled_sum_(0, c) / static_cast<double>(len_);
    } else {
        pooled = normed_row;
    }
    return model_->head_.forward(pooled, ws_.head, ctx_);
}

} // namespace nn
} // namespace lt
