/**
 * @file
 * Structured pruning support (paper Section VI-A, opportunities (1)
 * and (2)): attention head/token pruning and token-channel pruning
 * remove whole heads, tokens, or embedding channels, so the remaining
 * computation stays *dense* GEMM that DPTC accelerates natively.
 * This module transforms a benchmark model's workload accordingly —
 * the SpAtten-style [57] cascade the paper says LT "can be easily
 * extended to support".
 */

#ifndef LT_NN_PRUNING_HH
#define LT_NN_PRUNING_HH

#include "nn/model_zoo.hh"
#include "nn/workload.hh"

namespace lt {
namespace nn {

/** Keep-ratios for the three structured pruning axes. */
struct PruningConfig
{
    double head_keep = 1.0;    ///< fraction of attention heads kept
    double token_keep = 1.0;   ///< fraction of sequence tokens kept
    double channel_keep = 1.0; ///< fraction of embedding channels kept

    bool
    valid() const
    {
        auto ok = [](double v) { return v > 0.0 && v <= 1.0; };
        return ok(head_keep) && ok(token_keep) && ok(channel_keep);
    }
};

/**
 * The effective (pruned) model dimensions. Heads round up to at least
 * one; channel pruning keeps the per-head dim divisible layout by
 * scaling dim with the head count fixed.
 */
PaperModelConfig prunedModel(const PaperModelConfig &model,
                             const PruningConfig &pruning);

/** Workload of the pruned model (all-dense GEMMs, as Fig. 16 needs). */
Workload prunedWorkload(const PaperModelConfig &model,
                        const PruningConfig &pruning);

} // namespace nn
} // namespace lt

#endif // LT_NN_PRUNING_HH
