/**
 * @file
 * InferenceSession: request-scoped autoregressive decode on the
 * photonic execution engine (paper Section VI-B made concrete).
 *
 * A session owns everything one decode request needs — an
 * ActivationWorkspace for scratch activations, a RunContext with the
 * request's own NoiseStream lane, and a growing per-layer K/V cache —
 * while sharing the model weights with every other session:
 *
 *   InferenceSession s(model, backend);
 *   Matrix logits = s.prefill(prompt_tokens);
 *   for (...) logits = s.decodeStep(next_token);
 *
 * prefill() runs the prompt as one (causal) full-sequence forward and
 * lifts the per-head K/V the forward already materialized into the
 * cache; decodeStep() then pushes a single token row through every
 * layer, routing the skinny per-head QK^T / AV products against the
 * cache through GemmBackend::gemmBatch — the exact low-intensity
 * traffic nn/llm_workload.hh's analytic decodeStepWorkload() models
 * (bench_llm_decode cross-checks the two).
 *
 * Determinism: each session draws noise from its own lane (derived
 * from `request_id`), so its logits are bit-identical whether it runs
 * alone or interleaved with any number of concurrent sessions.
 *
 * Parity contract (tested in tests/test_decode.cc): with quantization
 * disabled, prefill + decodeStep logits equal the full-sequence
 * forward of the same prefix at every step — exactly on IdealBackend
 * and the Ideal-mode engine (all layers are row-wise or causal), and
 * within noise tolerance on the noisy photonic engine (per-row
 * operand quantization and per-call noise streams differ from the
 * full-sequence pass, as they would on the real datapath).
 */

#ifndef LT_NN_INFERENCE_SESSION_HH
#define LT_NN_INFERENCE_SESSION_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/activation_workspace.hh"
#include "nn/transformer.hh"

namespace lt {
namespace nn {

/**
 * Immutable K/V of a prompt prefix, shareable across sessions — the
 * unit the serve-layer KV block pool refcounts and evicts.
 *
 * A prefix is computed by InferenceSession::buildKvPrefix as ONE full
 * forward over exactly its tokens on a *content-addressed* noise lane
 * (derived from hashPrefixTokens, not from any request id), which
 * makes it a pure function of (model weights, backend config, tokens):
 *
 *  - every request that maps the prefix reads bit-identical K/V, so a
 *    shared-cache hit equals a solo run that computed its own prefix;
 *  - an evicted prefix recomputes to the same bits on readmission;
 *  - computing it never advances any request's noise lane, so cache
 *    hits and misses leave request logits untouched.
 *
 * Note the quantized prefix K/V is a function of the prefix tokens
 * ONLY (per-operand quantization scans just these rows) — which is
 * precisely why sharing requires this dedicated forward instead of
 * slicing one request's prefill cache, and why the paged/shared path
 * is opt-in per request rather than a transparent rewrite of the
 * default contiguous path.
 */
struct KvPrefix
{
    std::vector<int> tokens;            ///< the prefix token ids
    std::vector<KvLayerSegment> layers; ///< one segment per layer
    Matrix pooled_sum; ///< final-LN row sum over the prefix (Mean)

    size_t length() const { return tokens.size(); }
};

/** FNV-1a over token ids: prefix cache key + content noise lane. */
uint64_t hashPrefixTokens(const std::vector<int> &tokens);

/**
 * How prefill should provision K/V memory for one request. The
 * default plan (no prefix, reserve_tokens = 0) reproduces the
 * historical behavior byte-for-byte: no shared segments,
 * max_tokens-sized reservation.
 */
struct SessionKvPlan
{
    /** Shared prompt prefix to map copy-on-write (may be null). */
    std::shared_ptr<const KvPrefix> prefix;

    /**
     * Context length to reserve K/V backing for (prompt + expected
     * generation); 0 = the model's full max_tokens, the dense-reserve
     * worst case the paged serve path replaces.
     */
    size_t reserve_tokens = 0;
};

/** One autoregressive decode request against a shared model. */
class InferenceSession
{
  public:
    /**
     * @param model sequence-mode, causal, Mean or LastToken pooling
     *        (throws std::invalid_argument otherwise)
     * @param backend executes every GEMM of this session
     * @param quant operand fake-quantization (mirrors RunContext)
     * @param request_id selects the session's noise lane: sessions
     *        with distinct ids draw decorrelated noise; the same id
     *        replays bit-identically on a same-config backend
     */
    InferenceSession(const TransformerClassifier &model,
                     GemmBackend &backend,
                     const QuantConfig &quant = QuantConfig::disabled(),
                     uint64_t request_id = 0);

    /**
     * Ingest the prompt (one full-sequence forward), seed the K/V
     * cache, and return the prompt's logits [1, num_classes]. Must be
     * the first call on a session; throws std::invalid_argument on an
     * empty prompt, a too-long prompt, or a second prefill.
     */
    Matrix prefill(const std::vector<int> &tokens);

    /**
     * Prefill under an explicit K/V plan. With a shared prefix, the
     * prefix's tokens must equal the prompt's head (and leave at least
     * one suffix token): the session maps the prefix segments
     * copy-on-write — no forward runs over those positions — seeds the
     * pooled state from the prefix, reserves backing only for the
     * request's own tail, and ingests the suffix tokens through the
     * incremental decode path on the request's own noise lane. Without
     * a prefix this is the ordinary prefill with a right-sized
     * reservation. Throws std::invalid_argument on a prompt/prefix
     * mismatch or any ordinary prefill violation.
     */
    Matrix prefill(const std::vector<int> &tokens,
                   const SessionKvPlan &plan);

    /**
     * Resumable partial prefill: ingest prompt tokens [begin, end) of
     * `tokens`, appending to the session's K/V exactly as the
     * remaining chunks will — the serve scheduler's chunked-prefill
     * primitive, letting prompt ingestion interleave with decode
     * ticks instead of stalling them for the whole prompt.
     *
     * Chunks ingest token-by-token through the incremental decode
     * path on the session's own noise lane; because every position
     * draws a fixed number of stream ids, the result after the last
     * chunk is bit-identical for ANY chunking of the same prompt
     * (chunk size 1 == 3 == one whole-prompt chunk). `begin` must
     * equal contextLen() (chunks resume where the previous one
     * stopped; with a shared-prefix plan the mapped prefix counts, so
     * the first chunk must extend past it). Returns the logits after
     * token end-1 — the first-token logits once end == tokens.size().
     * Throws std::invalid_argument on an out-of-order or empty chunk,
     * a prompt that disagrees with the tokens already ingested, or
     * any ordinary prefill violation.
     */
    Matrix prefillChunk(const std::vector<int> &tokens, size_t begin,
                        size_t end);

    /**
     * First-chunk variant carrying the request's K/V plan (shared
     * prefix + right-sized reservation): the plan applies on the
     * session's first chunk and is ignored once the session holds
     * tokens. With a prefix of p tokens the first chunk must satisfy
     * end > p (the mapped positions are free; at least one suffix
     * token must run).
     */
    Matrix prefillChunk(const std::vector<int> &tokens, size_t begin,
                        size_t end, const SessionKvPlan &plan);

    /**
     * Compute the shareable K/V of `tokens` as a prompt prefix: one
     * full-sequence forward on the content-addressed noise lane, its
     * per-layer quantized K/V (and, on encoded-operand backends, the
     * packed encodings) harvested into an immutable KvPrefix. Pure
     * function of (model, backend config, quant, tokens) — see the
     * KvPrefix contract. Throws std::invalid_argument for models an
     * InferenceSession would reject, empty/too-long prefixes, or
     * out-of-vocabulary ids.
     */
    static std::shared_ptr<const KvPrefix>
    buildKvPrefix(const TransformerClassifier &model,
                  GemmBackend &backend, const QuantConfig &quant,
                  const std::vector<int> &tokens);

    /**
     * Append one token and return the logits after it — equal to a
     * full-sequence forward over the whole context (see the parity
     * contract above). A decodeStep on a fresh session is a prefill
     * of one token. Throws std::invalid_argument when the context
     * would exceed TransformerConfig::max_tokens.
     */
    Matrix decodeStep(int token);

    /** Tokens currently in the K/V cache. */
    size_t contextLen() const { return len_; }

    /** The noise-lane / trace id this session was constructed with. */
    uint64_t requestId() const { return request_id_; }

    /** The tokens consumed so far (prompt + decoded). */
    const std::vector<int> &tokens() const { return tokens_; }

    const TransformerClassifier &model() const { return *model_; }

  private:
    friend class BatchedDecoder;

    Matrix logitsFromNormedRow(const Matrix &normed_row);

    /**
     * Validate + map a shared prefix onto an empty session (segment
     * aliasing, pooled state, token bookkeeping) — the common head of
     * prefill's prefix branch and of a prefix-plan first chunk.
     * Returns the tail reservation (tokens beyond the prefix).
     */
    size_t mapPrefix(const std::vector<int> &tokens,
                     const SessionKvPlan &plan, size_t reserve_tokens);

    const TransformerClassifier *model_;
    uint64_t request_id_ = 0; ///< trace payload; lane lives in ctx_
    RunContext ctx_;
    ActivationWorkspace ws_;
    std::vector<AttentionKvCache> kv_;  ///< one per layer
    std::vector<int> tokens_;
    Matrix pooled_sum_;  ///< running final-LN row sum (Mean pooling)
    size_t len_ = 0;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_INFERENCE_SESSION_HH
