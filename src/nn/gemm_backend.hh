/**
 * @file
 * Pluggable GEMM execution backends for the Transformer stack.
 *
 * Every matrix multiply in the model (weight projections and the
 * dynamic attention products QK^T / AV) routes through a GemmBackend,
 * so the same network can run on exact arithmetic (the paper's "GPU"
 * reference) or on the noisy photonic DPTC functional model. The
 * photonic path is executed by the multi-core ExecutionEngine
 * (nn/execution_engine.hh), which shards GEMM tiles across DPTC core
 * replicas on the global thread pool.
 */

#ifndef LT_NN_GEMM_BACKEND_HH
#define LT_NN_GEMM_BACKEND_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/dptc.hh"
#include "util/linalg.hh"

namespace lt {
namespace nn {

class ExecutionEngine;

/**
 * Statistics a backend gathers while the model runs. Counters are
 * atomic: tiles and batched products record concurrently once GEMMs
 * run on the thread pool.
 */
struct GemmStats
{
    std::atomic<size_t> calls{0};
    std::atomic<size_t> macs{0};

    void
    record(size_t m, size_t k, size_t n)
    {
        calls.fetch_add(1, std::memory_order_relaxed);
        macs.fetch_add(m * k * n, std::memory_order_relaxed);
    }

    void
    reset()
    {
        calls.store(0, std::memory_order_relaxed);
        macs.store(0, std::memory_order_relaxed);
    }
};

/** Abstract GEMM executor. */
class GemmBackend
{
  public:
    virtual ~GemmBackend() = default;

    /** Compute a [m,k] x [k,n] product. */
    virtual Matrix gemm(const Matrix &a, const Matrix &b) = 0;

    /**
     * Execute many independent products in one call. Results equal
     * gemm() applied per product, in order; multi-core backends
     * override this to shard products across their replicas (attention
     * batches per-head QK^T / AV through here).
     */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
    {
        std::vector<Matrix> results;
        results.reserve(products.size());
        for (const auto &[a, b] : products)
            results.push_back(gemm(*a, *b));
        return results;
    }

    virtual const GemmStats &stats() const { return stats_; }
    virtual void resetStats() { stats_.reset(); }

  protected:
    GemmStats stats_;
};

/** Exact double-precision GEMM (digital reference). */
class IdealBackend : public GemmBackend
{
  public:
    Matrix gemm(const Matrix &a, const Matrix &b) override;
};

/**
 * Photonic GEMM: tiles the product over the DPTC functional model
 * with the configured noise (Eq. 9), beta normalization, and DAC
 * quantization. This is the paper's "software model" forward path.
 * Execution is delegated to a multi-core ExecutionEngine; results are
 * bit-identical at any thread count (counter-seeded tile noise).
 */
class PhotonicBackend : public GemmBackend
{
  public:
    explicit PhotonicBackend(const core::DptcConfig &cfg,
                             core::EvalMode mode = core::EvalMode::Noisy);
    ~PhotonicBackend() override;

    Matrix gemm(const Matrix &a, const Matrix &b) override;

    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
        override;

    /** The first core replica (legacy single-core view). */
    core::Dptc &dptc();
    core::EvalMode mode() const;

    /** Stats live on the wrapped engine — one source of truth. */
    const GemmStats &stats() const override;
    void resetStats() override;

    ExecutionEngine &engine() { return *engine_; }

  private:
    std::unique_ptr<ExecutionEngine> engine_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_GEMM_BACKEND_HH
