/**
 * @file
 * Pluggable GEMM execution backends for the Transformer stack.
 *
 * Every matrix multiply in the model (weight projections and the
 * dynamic attention products QK^T / AV) routes through a GemmBackend,
 * so the same network can run on exact arithmetic (the paper's "GPU"
 * reference) or on the noisy photonic DPTC functional model.
 */

#ifndef LT_NN_GEMM_BACKEND_HH
#define LT_NN_GEMM_BACKEND_HH

#include <cstddef>
#include <memory>

#include "core/dptc.hh"
#include "util/linalg.hh"

namespace lt {
namespace nn {

/** Statistics a backend gathers while the model runs. */
struct GemmStats
{
    size_t calls = 0;
    size_t macs = 0;

    void
    record(size_t m, size_t k, size_t n)
    {
        ++calls;
        macs += m * k * n;
    }

    void
    reset()
    {
        calls = 0;
        macs = 0;
    }
};

/** Abstract GEMM executor. */
class GemmBackend
{
  public:
    virtual ~GemmBackend() = default;

    /** Compute a [m,k] x [k,n] product. */
    virtual Matrix gemm(const Matrix &a, const Matrix &b) = 0;

    const GemmStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  protected:
    GemmStats stats_;
};

/** Exact double-precision GEMM (digital reference). */
class IdealBackend : public GemmBackend
{
  public:
    Matrix gemm(const Matrix &a, const Matrix &b) override;
};

/**
 * Photonic GEMM: tiles the product over a DPTC core functional model
 * with the configured noise (Eq. 9), beta normalization, and DAC
 * quantization. This is the paper's "software model" forward path.
 */
class PhotonicBackend : public GemmBackend
{
  public:
    explicit PhotonicBackend(const core::DptcConfig &cfg,
                             core::EvalMode mode = core::EvalMode::Noisy);

    Matrix gemm(const Matrix &a, const Matrix &b) override;

    core::Dptc &dptc() { return dptc_; }
    core::EvalMode mode() const { return mode_; }

  private:
    core::Dptc dptc_;
    core::EvalMode mode_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_GEMM_BACKEND_HH
