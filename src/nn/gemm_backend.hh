/**
 * @file
 * Pluggable GEMM execution backends for the Transformer stack.
 *
 * Every matrix multiply in the model (weight projections and the
 * dynamic attention products QK^T / AV) routes through a GemmBackend,
 * so the same network can run on exact arithmetic (the paper's "GPU"
 * reference) or on the noisy photonic DPTC functional model. The
 * photonic path is executed by the multi-core ExecutionEngine
 * (nn/execution_engine.hh), which shards GEMM tiles across DPTC core
 * replicas on the global thread pool.
 *
 * Noise addressing: stateless-inference forwards name the noise stream
 * of every product explicitly (a NoiseStream carried by RunContext),
 * so results are a pure function of (operands, config, stream) — they
 * do not depend on backend call history, thread scheduling, or how
 * many other requests execute concurrently. The stream-less gemm()
 * entry points remain for direct use (benches, ad-hoc products) and
 * consume an internal per-engine counter as before.
 */

#ifndef LT_NN_GEMM_BACKEND_HH
#define LT_NN_GEMM_BACKEND_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/dptc.hh"
#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace nn {

class ExecutionEngine;

/**
 * A GEMM dispatch failed integrity verification beyond the engine's
 * internal recovery budget (per-tile retries exhausted while healthy
 * replicas remained). Transient by design: the engine quarantines
 * repeat offenders between attempts, so a bounded caller-side retry
 * (the serve layer's step retry with backoff) typically lands on a
 * reshaped healthy set — or on the degraded reference path — and
 * succeeds.
 */
class EngineFaultError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Deterministic noise-stream allocator: yields decorrelated 64-bit
 * stream ids from a (base, counter) pair via the splitMix64 seed
 * derivation. A forward pass draws one id per GEMM in fixed call
 * order, so noisy results depend only on the stream a RunContext was
 * constructed with — never on which thread ran the product or on what
 * else the backend executed in between. Independent requests (batch
 * samples, decode sessions) take decorrelated lanes via lane().
 */
class NoiseStream
{
  public:
    NoiseStream() = default;
    explicit NoiseStream(uint64_t base) : base_(base) {}

    /** Claim the next stream id (call-order deterministic). */
    uint64_t
    next()
    {
        return deriveSeed(base_, count_++);
    }

    /** Decorrelated child stream for independent request/sample i. */
    NoiseStream
    lane(uint64_t i) const
    {
        return NoiseStream(deriveSeed(base_, i));
    }

    uint64_t base() const { return base_; }

  private:
    uint64_t base_ = 0;
    uint64_t count_ = 0;
};

/**
 * Statistics a backend gathers while the model runs. Counters are
 * atomic: tiles and batched products record concurrently once GEMMs
 * run on the thread pool.
 */
struct GemmStats
{
    std::atomic<size_t> calls{0};
    std::atomic<size_t> macs{0};

    /**
     * gemmBatch invocations (one per batch, however many products it
     * carries). The continuous-batching acceptance metric: a fused
     * decode step dispatches O(layers) batches regardless of how many
     * requests ride in each (bench_serve_throughput reports it).
     */
    std::atomic<size_t> batch_calls{0};

    /**
     * gemmRowStacked invocations (one per stacked dispatch, however
     * many request rows it carries). The tile-packing acceptance
     * metric of the block-diagonal fusion path: a fused decode step
     * dispatches 6·depth+1 stacked projections plus 2·depth attention
     * batches, so total dispatches/step drop from 8·depth+1 to
     * 2·depth + (stacked) — bench_serve_throughput gates it.
     */
    std::atomic<size_t> stacked_calls{0};

    /**
     * Encoded-operand cache effectiveness, split by operand class so
     * a dead K/V cache fails as loudly as a dead weight cache:
     *
     *  - weight_encode_*: static weight plans. A *hit* is one GEMM
     *    product served from a pre-encoded weight operand (no maxAbs
     *    / quantize / pack on the weight); a *miss* is one
     *    encodeWeight() call (a plan being built or rebuilt after a
     *    weight-version bump).
     *  - kv_encode_*: the growing decode K/V operands. A *hit* is
     *    one attention product dispatched on a cached encoded K/V
     *    operand (grown by an O(k) packed append instead of a fresh
     *    encode); a *miss* is one encodeKv() build or requantization
     *    (cache seeding at prefill, a beta outgrown by a new token,
     *    or a cache re-homed to a different backend).
     *
     * Steady-state decode must show BOTH miss counters == 0 — the
     * acceptance counters of the encoded-operand caches (tested in
     * tests/test_decode.cc, surfaced by serve::Metrics and the bench
     * JSON snapshots).
     */
    std::atomic<size_t> weight_encode_hits{0};
    std::atomic<size_t> weight_encode_misses{0};
    std::atomic<size_t> kv_encode_hits{0};
    std::atomic<size_t> kv_encode_misses{0};

    /**
     * Gaussian noise draws the DPTC kernels took (encoding magnitude
     * and phase draws plus per-output systematic eps draws), summed
     * across shards. The noise pipeline's load metric: decode-regime
     * cost is dominated by these draws, so the counter is surfaced by
     * serve::Metrics and the bench JSON snapshots to pin how much
     * sampling each configuration pays for.
     */
    std::atomic<size_t> gaussian_draws{0};

    /**
     * Fault-tolerance counters (ExecutionEngine ABFT layer; all zero
     * while fault injection/verification is disabled):
     *
     *  - faults_detected: output tiles whose checksum verification
     *    failed (injected or organic corruption caught at dispatch);
     *  - fault_retries: detected-faulty tiles re-executed on another
     *    replica;
     *  - fault_quarantines: replicas removed from the healthy set
     *    after repeated faults (the engine reshards over survivors).
     */
    std::atomic<size_t> faults_detected{0};
    std::atomic<size_t> fault_retries{0};
    std::atomic<size_t> fault_quarantines{0};

    void
    record(size_t m, size_t k, size_t n)
    {
        calls.fetch_add(1, std::memory_order_relaxed);
        macs.fetch_add(m * k * n, std::memory_order_relaxed);
    }

    void
    recordBatch()
    {
        batch_calls.fetch_add(1, std::memory_order_relaxed);
    }

    void
    reset()
    {
        calls.store(0, std::memory_order_relaxed);
        macs.store(0, std::memory_order_relaxed);
        batch_calls.store(0, std::memory_order_relaxed);
        stacked_calls.store(0, std::memory_order_relaxed);
        weight_encode_hits.store(0, std::memory_order_relaxed);
        weight_encode_misses.store(0, std::memory_order_relaxed);
        kv_encode_hits.store(0, std::memory_order_relaxed);
        kv_encode_misses.store(0, std::memory_order_relaxed);
        gaussian_draws.store(0, std::memory_order_relaxed);
        faults_detected.store(0, std::memory_order_relaxed);
        fault_retries.store(0, std::memory_order_relaxed);
        fault_quarantines.store(0, std::memory_order_relaxed);
    }
};

/** Abstract GEMM executor. */
class GemmBackend
{
  public:
    GemmBackend() : uid_(nextUid()) {}
    virtual ~GemmBackend() = default;

    /**
     * Process-unique identity of this backend instance. Never reused
     * across the process lifetime, unlike the object's address —
     * caches keyed on it (the nn-layer WeightPlanCache) cannot serve
     * a stale entry to a new backend that happens to be allocated
     * where a destroyed one lived.
     */
    uint64_t uid() const { return uid_; }

    /** Compute a [m,k] x [k,n] product. */
    virtual Matrix gemm(const Matrix &a, const Matrix &b) = 0;

    /**
     * Stream-addressed product: `stream` names the noise stream this
     * GEMM draws from, making the result independent of backend call
     * history. Backends without per-call stochastic state ignore the
     * id (the default delegates to gemm()).
     */
    virtual Matrix
    gemm(const Matrix &a, const Matrix &b, uint64_t stream)
    {
        (void)stream;
        return gemm(a, b);
    }

    /**
     * Execute many independent products in one call. Results equal
     * gemm() applied per product, in order; multi-core backends
     * override this to shard products across their replicas (attention
     * batches per-head QK^T / AV through here).
     */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
    {
        stats_.recordBatch();
        std::vector<Matrix> results;
        results.reserve(products.size());
        for (const auto &[a, b] : products)
            results.push_back(gemm(*a, *b));
        return results;
    }

    /**
     * Stream-addressed batch: product i draws from streams[i].
     * Results equal gemm(a_i, b_i, streams[i]) per product, in order,
     * regardless of which core executes which product.
     */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products,
              const std::vector<uint64_t> &streams)
    {
        (void)streams;
        return gemmBatch(products);
    }

    // ---- stride-aware operand views ------------------------------
    //
    // A ConstMatrixView names an operand inside someone else's
    // storage (leading dimension, optional transposed read), so
    // callers stop materializing re-strided copies: attention
    // dispatches QK^T against a transposed view of the K cache, and a
    // column block of a projection output is a view, not a slice
    // copy. Results are bit-identical to materializing the views and
    // calling the dense overloads — the default implementations do
    // exactly that; DPTC-datapath backends read the views in place.

    /** Stream-addressed product on operand views. */
    virtual Matrix
    gemm(const ConstMatrixView &a, const ConstMatrixView &b,
         uint64_t stream)
    {
        Matrix ad = a.dense();
        Matrix bd = b.dense();
        return gemm(ad, bd, stream);
    }

    /** Stream-addressed batch on operand views. */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<ConstMatrixView,
                                          ConstMatrixView>> &products,
              const std::vector<uint64_t> &streams)
    {
        std::vector<Matrix> dense;
        dense.reserve(2 * products.size());
        std::vector<std::pair<const Matrix *, const Matrix *>> refs;
        refs.reserve(products.size());
        for (const auto &[a, b] : products) {
            dense.push_back(a.dense());
            dense.push_back(b.dense());
            refs.emplace_back(&dense[dense.size() - 2],
                              &dense[dense.size() - 1]);
        }
        return gemmBatch(refs, streams);
    }

    // ---- pre-encoded (static weight) operands --------------------
    //
    // Backends that execute on the DPTC datapath can accept the right
    // operand pre-encoded (core::EncodedOperand — beta + quantized +
    // packed, built once by encodeWeight). Results are bit-identical
    // to passing the dense weight: encoding is deterministic, so
    // caching it only removes repeated work. Layers gate on
    // supportsWeightPlans() and fall back to dense operands
    // otherwise.

    /** True when this backend executes pre-encoded weight operands. */
    virtual bool supportsWeightPlans() const { return false; }

    /**
     * Encode a static (weight) operand once for reuse across GEMMs.
     * Counts one weight_encode_miss (a plan build). Only valid on
     * backends with supportsWeightPlans().
     */
    virtual core::EncodedOperand encodeWeight(const Matrix &w);

    /**
     * Stream-addressed product against a pre-encoded weight. Equals
     * gemm(a, w_dense, stream) bit-for-bit when `w` encodes w_dense.
     * Counts one weight_encode_hit (kv_encode_hit for KvCache-kind
     * operands).
     */
    virtual Matrix gemm(const Matrix &a, const core::EncodedOperand &w,
                        uint64_t stream);

    /**
     * Stream-addressed batch against pre-encoded right operands
     * (product i: as[i] x *encoded[i], stream streams[i]). Counts one
     * weight_encode_hit or kv_encode_hit per product, by the
     * operand's OperandKind.
     */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<const Matrix *,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams);

    /** View-A variant of the pre-encoded batch. */
    virtual std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<ConstMatrixView,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams);

    // ---- stacked-row dispatch (block-diagonal fusion) ------------
    //
    // The serve decode regime runs N requests' [1, k] activations
    // against the SAME pre-encoded weight — N row-GEMMs whose rows
    // would each occupy one mostly-empty Nh-row DPTC tile. A backend
    // with supportsRowStacking() accepts all N rows in ONE dispatch:
    // it stacks them into a tall [N, k] operand (per-row betas, so
    // each row's quantization matches its solo encode) and executes
    // row i with stream streams[i]'s noise addressing, letting one
    // DPTC tile carry rows from several requests. Results are
    // bit-identical per row to gemm(rows[i], w, streams[i]).

    /** True when this backend fuses stacked row dispatches. */
    virtual bool supportsRowStacking() const { return false; }

    /**
     * One stacked dispatch of N single-row products against a shared
     * pre-encoded weight: result i equals gemm(rows[i], w,
     * streams[i]) bit-for-bit. Counts one stacked_call plus the
     * per-row call/hit counters. Only valid on backends with
     * supportsRowStacking().
     */
    virtual std::vector<Matrix>
    gemmRowStacked(const std::vector<ConstMatrixView> &rows,
                   const core::EncodedOperand &w,
                   const std::vector<uint64_t> &streams);

    // ---- encoded K/V caches (growing activation operands) --------
    //
    // The decode K/V caches are *dynamic* operands that grow by one
    // token per step. Backends on the DPTC datapath can hold them in
    // encoded form: encodeKvInto() (re)builds the packed encoding —
    // cache seeding at prefill, or a requantization when a new
    // token's magnitude outgrows the cached beta — and the owner
    // appends subsequent tokens in place via
    // EncodedOperand::appendColumn/appendRow (O(k), no backend
    // round-trip). Dispatching on the cached encoding is
    // bit-identical to re-encoding the dense operand every step.

    /** True when this backend executes encoded K/V cache operands. */
    virtual bool supportsKvPlans() const { return false; }

    /**
     * Build (or requantize in place, preserving reserved packed
     * capacity) the encoded form of a growing K/V operand. Counts
     * one kv_encode_miss. Only valid on backends with
     * supportsKvPlans().
     */
    virtual void encodeKvInto(core::EncodedOperand &op,
                              const ConstMatrixView &m,
                              core::OperandSide side);

    virtual const GemmStats &stats() const { return stats_; }
    virtual void resetStats() { stats_.reset(); }

  protected:
    GemmStats stats_;

  private:
    static uint64_t
    nextUid()
    {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
    }

    uint64_t uid_;
};

/** Exact double-precision GEMM (digital reference). */
class IdealBackend : public GemmBackend
{
  public:
    using GemmBackend::gemm;

    Matrix gemm(const Matrix &a, const Matrix &b) override;

    /**
     * Views execute on the view-aware matmul directly (the B^T pack
     * of a transposed view is a straight copy) — bit-identical to
     * materializing the view first.
     */
    Matrix gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                uint64_t stream) override;

    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<ConstMatrixView,
                                          ConstMatrixView>> &products,
              const std::vector<uint64_t> &streams) override;
};

/**
 * Photonic GEMM: tiles the product over the DPTC functional model
 * with the configured noise (Eq. 9), beta normalization, and DAC
 * quantization. This is the paper's "software model" forward path.
 * Execution is delegated to a multi-core ExecutionEngine; results are
 * bit-identical at any thread count (counter-seeded tile noise).
 */
class PhotonicBackend : public GemmBackend
{
  public:
    explicit PhotonicBackend(const core::DptcConfig &cfg,
                             core::EvalMode mode = core::EvalMode::Noisy);
    ~PhotonicBackend() override;

    Matrix gemm(const Matrix &a, const Matrix &b) override;
    Matrix gemm(const Matrix &a, const Matrix &b,
                uint64_t stream) override;
    Matrix gemm(const Matrix &a, const core::EncodedOperand &w,
                uint64_t stream) override;

    Matrix gemm(const ConstMatrixView &a, const ConstMatrixView &b,
                uint64_t stream) override;

    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products)
        override;
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<const Matrix *,
                                          const Matrix *>> &products,
              const std::vector<uint64_t> &streams) override;
    std::vector<Matrix>
    gemmBatch(const std::vector<std::pair<ConstMatrixView,
                                          ConstMatrixView>> &products,
              const std::vector<uint64_t> &streams) override;
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<const Matrix *,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;
    std::vector<Matrix>
    gemmBatch(const std::vector<
                  std::pair<ConstMatrixView,
                            const core::EncodedOperand *>> &products,
              const std::vector<uint64_t> &streams) override;

    bool supportsWeightPlans() const override;
    core::EncodedOperand encodeWeight(const Matrix &w) override;

    bool supportsRowStacking() const override;
    std::vector<Matrix>
    gemmRowStacked(const std::vector<ConstMatrixView> &rows,
                   const core::EncodedOperand &w,
                   const std::vector<uint64_t> &streams) override;

    bool supportsKvPlans() const override;
    void encodeKvInto(core::EncodedOperand &op, const ConstMatrixView &m,
                      core::OperandSide side) override;

    core::EvalMode mode() const;

    /** Stats live on the wrapped engine — one source of truth. */
    const GemmStats &stats() const override;
    void resetStats() override;

    ExecutionEngine &engine() { return *engine_; }

  private:
    std::unique_ptr<ExecutionEngine> engine_;
};

} // namespace nn
} // namespace lt

#endif // LT_NN_GEMM_BACKEND_HH
