/**
 * @file
 * GEMM workload extraction from Transformer model configurations.
 *
 * Converts a PaperModelConfig into the full list of matrix multiplies
 * one inference performs, tagged by the paper's module grouping
 * (Table V: MHA = QK^T + AV, FFN = both FFN linears, All = everything)
 * and by operand dynamism (attention products have *two* dynamic
 * operands — the property that breaks weight-static photonic
 * accelerators).
 */

#ifndef LT_NN_WORKLOAD_HH
#define LT_NN_WORKLOAD_HH

#include <cstddef>
#include <string>
#include <vector>

#include "nn/model_zoo.hh"

namespace lt {
namespace nn {

/** Which layer a GEMM comes from. */
enum class GemmKind
{
    PatchEmbed,  ///< vision stem projection
    QkvProj,     ///< fused Q/K/V projection (weight-static)
    QkT,         ///< attention scores (dynamic x dynamic)
    Av,          ///< attention-weighted values (dynamic x dynamic)
    OutProj,     ///< attention output projection
    Ffn1,        ///< FFN expansion
    Ffn2,        ///< FFN contraction
    Head,        ///< classifier
};

/** Paper Table V module grouping. */
enum class Module { Mha, Ffn, Other };

/** One (repeated) GEMM: [m, k] x [k, n], `count` instances. */
struct GemmOp
{
    GemmKind kind;
    size_t m;
    size_t k;
    size_t n;
    size_t count;
    bool dynamic;  ///< both operands are runtime activations

    size_t
    macs() const
    {
        return m * k * n * count;
    }
};

/** The complete single-batch inference GEMM list for one model. */
struct Workload
{
    std::string model;
    std::vector<GemmOp> ops;

    /** Total MACs across all (or one module's) ops. */
    size_t totalMacs() const;
    size_t moduleMacs(Module module) const;

    /** Ops filtered by module. */
    std::vector<GemmOp> moduleOps(Module module) const;
};

/** Module a GemmKind belongs to (Table V grouping). */
Module moduleOf(GemmKind kind);

/** Human-readable names. */
const char *toString(GemmKind kind);
const char *toString(Module module);

/** Extract the full inference workload of a benchmark model. */
Workload extractWorkload(const PaperModelConfig &model);

} // namespace nn
} // namespace lt

#endif // LT_NN_WORKLOAD_HH
