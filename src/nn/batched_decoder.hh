/**
 * @file
 * BatchedDecoder: cross-request lockstep decode — the compute kernel
 * of continuous batching (serve/batch_scheduler.hh).
 *
 * A single decode step is the low-intensity skinny-GEMM regime where
 * DPTC tile occupancy collapses (nn/llm_workload.hh models it;
 * bench_llm_decode measures it): each projection runs one [1, dim]
 * row against a [dim, dim] weight. BatchedDecoder::step advances N
 * InferenceSessions one token each *together*, per layer, fusing the
 * same-shape row-GEMMs of all N requests into single stream-addressed
 * gemmBatch calls — so the engine sees O(layers) dispatches per step
 * instead of O(layers x requests), and each dispatch carries enough
 * independent products to shard across every DPTC core replica.
 *
 * Correctness contract (the headline): because stream-addressed
 * products are pure functions of (operands, config, stream) and each
 * session draws from its own request_id lane in the solo call order,
 * the logits of a batched step are BIT-IDENTICAL to each session
 * running decodeStep alone — at any batch size, on the noisy engine.
 * tests/test_serve.cc asserts this at concurrency 1..16.
 */

#ifndef LT_NN_BATCHED_DECODER_HH
#define LT_NN_BATCHED_DECODER_HH

#include <vector>

#include "nn/inference_session.hh"

namespace lt {
namespace nn {

/** Lockstep per-layer decode driver over InferenceSessions. */
class BatchedDecoder
{
  public:
    /**
     * Advance every session one decode step in lockstep: session i
     * ingests tokens[i] and receives the logits decodeStep(tokens[i])
     * would return, bit-identically; the sessions' K/V caches and
     * noise lanes advance exactly as in the solo calls.
     *
     * Requirements (std::invalid_argument otherwise): at least one
     * session; one token per session; no duplicate sessions; all
     * sessions share one model and one backend; every session is
     * prefilled (a fresh session's first token is a prefill, which is
     * full-sequence traffic, not decode); and no session's context may
     * exceed TransformerConfig::max_tokens. Validation happens before
     * any session is touched.
     */
    static std::vector<Matrix>
    step(const std::vector<InferenceSession *> &sessions,
         const std::vector<int> &tokens);
};

} // namespace nn
} // namespace lt

#endif // LT_NN_BATCHED_DECODER_HH
