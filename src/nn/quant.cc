#include "quant.hh"

#include <cmath>

#include "util/quantize.hh"

namespace lt {
namespace nn {

double
tensorScale(const Matrix &m)
{
    double beta = 0.0;
    for (double v : m.data())
        beta = std::max(beta, std::abs(v));
    return beta;
}

Matrix
fakeQuant(const Matrix &m, int bits)
{
    if (bits <= 0)
        return m;
    double beta = tensorScale(m);
    if (beta <= 0.0)
        return m;
    Matrix out(m.rows(), m.cols());
    for (size_t i = 0; i < m.data().size(); ++i) {
        out.data()[i] =
            quantizeSymmetricUnit(m.data()[i] / beta, bits) * beta;
    }
    return out;
}

} // namespace nn
} // namespace lt
