#include "model_zoo.hh"

namespace lt {
namespace nn {

PaperModelConfig
deitTiny()
{
    // 224x224 image, 16x16 patches -> 196 + 1 CLS = 197 tokens;
    // patch_dim = 16*16*3 = 768.
    return {"DeiT-T-224", 192, 12, 3, 768, 197, 768, 1000};
}

PaperModelConfig
deitSmall()
{
    return {"DeiT-S-224", 384, 12, 6, 1536, 197, 768, 1000};
}

PaperModelConfig
deitBase()
{
    return {"DeiT-B-224", 768, 12, 12, 3072, 197, 768, 1000};
}

PaperModelConfig
bertBase(size_t seq_len)
{
    return {"BERT-base-" + std::to_string(seq_len), 768, 12, 12, 3072,
            seq_len, 0, 2};
}

PaperModelConfig
bertLarge(size_t seq_len)
{
    return {"BERT-large-" + std::to_string(seq_len), 1024, 24, 16, 4096,
            seq_len, 0, 2};
}

std::vector<PaperModelConfig>
figure13Models()
{
    return {deitTiny(), deitSmall(), deitBase(), bertBase(128),
            bertLarge(320)};
}

} // namespace nn
} // namespace lt
