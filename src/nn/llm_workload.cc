#include "llm_workload.hh"

namespace lt {
namespace nn {

size_t
gemmParamCount(const PaperModelConfig &model)
{
    const size_t d = model.dim;
    const size_t L = model.depth;
    // QKV (3 d^2) + out (d^2) + FFN (2 * d * hidden) per layer.
    size_t per_layer = 4 * d * d + 2 * d * model.mlp_hidden;
    size_t head = d * model.num_classes;
    return per_layer * L + head;
}

DecodeStep
decodeStepWorkload(const DecodeConfig &cfg)
{
    const auto &m = cfg.model;
    const size_t d = m.dim;
    const size_t h = m.heads;
    const size_t dk = m.headDim();
    const size_t L = m.depth;
    const size_t b = cfg.batch;
    const size_t ctx = cfg.context_len;
    const size_t bytes_per_el =
        static_cast<size_t>(cfg.bits) / 8 > 0
            ? static_cast<size_t>(cfg.bits) / 8
            : 1;

    DecodeStep step;
    // The new token's projections batch across requests: [b, d] x
    // [d, 3d] etc.
    step.ops.push_back({GemmKind::QkvProj, b, d, 3 * d, L, false});
    // Attention against the cache: per request, per head, a
    // [1, dk] x [dk, ctx+1] score row and a [1, ctx+1] x [ctx+1, dk]
    // context row. Batching does NOT merge these (each request has its
    // own cache), so count scales with b.
    step.ops.push_back({GemmKind::QkT, 1, dk, ctx + 1, L * h * b, true});
    step.ops.push_back({GemmKind::Av, 1, ctx + 1, dk, L * h * b, true});
    step.ops.push_back({GemmKind::OutProj, b, d, d, L, false});
    step.ops.push_back({GemmKind::Ffn1, b, d, m.mlp_hidden, L, false});
    step.ops.push_back({GemmKind::Ffn2, b, m.mlp_hidden, d, L, false});
    if (cfg.include_head)
        step.ops.push_back(
            {GemmKind::Head, b, d, m.num_classes, 1, false});

    for (const auto &op : step.ops)
        step.macs += op.macs();

    // Weights stream once per step regardless of batch size — this is
    // what batching amortizes.
    step.weight_bytes = gemmParamCount(m) * bytes_per_el;
    // KV cache: K and V, ctx tokens, all layers, per request.
    step.kv_bytes = 2 * ctx * d * L * b * bytes_per_el;
    return step;
}

} // namespace nn
} // namespace lt
