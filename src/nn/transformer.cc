#include "transformer.hh"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace lt {
namespace nn {

TransformerClassifier::TransformerClassifier(const TransformerConfig &cfg)
    : cfg_(cfg), init_rng_(cfg.seed),
      cls_(1, cfg.dim), dcls_(1, cfg.dim, 0.0),
      pos_(cfg.max_tokens, cfg.dim), dpos_(cfg.max_tokens, cfg.dim, 0.0),
      final_ln_(cfg.dim),
      head_(cfg.dim, cfg.num_classes, init_rng_)
{
    if ((cfg.patch_dim > 0) == (cfg.vocab_size > 0))
        lt_fatal("TransformerConfig must set exactly one of patch_dim "
                 "(vision) or vocab_size (sequence)");
    if (cfg.causal && cfg.pooling == Pooling::ClsToken)
        lt_fatal("causal attention is incompatible with ClsToken "
                 "pooling (a front CLS token sees nothing under the "
                 "mask); use Mean or LastToken");
    if (cfg.patch_dim > 0)
        patch_embed_.emplace(cfg.patch_dim, cfg.dim, init_rng_);
    else
        token_embed_.emplace(cfg.vocab_size, cfg.dim, init_rng_);

    for (double &v : cls_.data())
        v = init_rng_.gaussian(0.0, 0.02);
    for (double &v : pos_.data())
        v = init_rng_.gaussian(0.0, 0.02);

    blocks_.reserve(cfg.depth);
    for (size_t i = 0; i < cfg.depth; ++i) {
        blocks_.push_back(std::make_unique<TransformerBlock>(
            cfg.dim, cfg.heads, cfg.mlp_hidden, init_rng_,
            cfg.causal));
    }
}

Matrix
TransformerClassifier::forwardCommon(Matrix x, ActivationWorkspace &ws,
                                     RunContext &ctx) const
{
    const bool use_cls = cfg_.pooling == Pooling::ClsToken;
    size_t tokens = x.rows() + (use_cls ? 1 : 0);
    if (tokens == 0)
        throw std::invalid_argument("forward on an empty sequence");
    if (tokens > cfg_.max_tokens)
        throw std::invalid_argument(
            "sequence of " + std::to_string(tokens) +
            " tokens exceeds the positional table (max_tokens = " +
            std::to_string(cfg_.max_tokens) + ")");
    Matrix seq(tokens, cfg_.dim);
    size_t offset = 0;
    if (use_cls) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(0, c) = cls_(0, c);
        offset = 1;
    }
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(r + offset, c) = x(r, c);
    for (size_t r = 0; r < tokens; ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(r, c) += pos_(r, c);

    ws.tokens = tokens;
    if (ws.blocks.size() != blocks_.size())
        ws.blocks.resize(blocks_.size());
    for (size_t i = 0; i < blocks_.size(); ++i)
        seq = blocks_[i]->forward(seq, ws.blocks[i], ctx);
    Matrix normed = final_ln_.forward(seq, ws.final_ln);
    ws.pooled_in = normed;

    Matrix pooled(1, cfg_.dim);
    switch (cfg_.pooling) {
    case Pooling::ClsToken:
        for (size_t c = 0; c < cfg_.dim; ++c)
            pooled(0, c) = normed(0, c);
        break;
    case Pooling::Mean:
        for (size_t c = 0; c < cfg_.dim; ++c) {
            double s = 0.0;
            for (size_t r = 0; r < tokens; ++r)
                s += normed(r, c);
            pooled(0, c) = s / static_cast<double>(tokens);
        }
        break;
    case Pooling::LastToken:
        for (size_t c = 0; c < cfg_.dim; ++c)
            pooled(0, c) = normed(tokens - 1, c);
        break;
    }
    return head_.forward(pooled, ws.head, ctx);
}

Matrix
TransformerClassifier::forwardVision(const Matrix &patches,
                                     ActivationWorkspace &ws,
                                     RunContext &ctx) const
{
    if (!patch_embed_)
        lt_fatal("forwardVision called on a sequence-mode model");
    if (patches.rows() == 0)
        throw std::invalid_argument("forward on an empty patch set");
    if (patches.cols() != cfg_.patch_dim)
        throw std::invalid_argument(
            "patch width " + std::to_string(patches.cols()) +
            " != configured patch_dim " +
            std::to_string(cfg_.patch_dim));
    ws.last_was_vision = true;
    Matrix x = patch_embed_->forward(patches, ws.patch_embed, ctx);
    return forwardCommon(std::move(x), ws, ctx);
}

Matrix
TransformerClassifier::forwardSequence(const std::vector<int> &tokens,
                                       ActivationWorkspace &ws,
                                       RunContext &ctx) const
{
    if (!token_embed_)
        lt_fatal("forwardSequence called on a vision-mode model");
    if (tokens.empty())
        throw std::invalid_argument("forward on an empty sequence");
    ws.last_was_vision = false;
    Matrix x = token_embed_->forward(tokens, ws.token_embed);
    return forwardCommon(std::move(x), ws, ctx);
}

namespace {

/**
 * Run `n` independent samples concurrently on the global pool, giving
 * sample i the NoiseStream lane i of a base stream consumed from the
 * caller's context. Exceptions (e.g. validation failures) are captured
 * on the worker and rethrown on the caller.
 */
template <typename RunSample>
void
parallelSamples(size_t n, RunContext &ctx, RunSample &&run)
{
    NoiseStream lanes(ctx.stream.next());
    std::mutex error_mutex;
    std::exception_ptr error;
    ThreadPool::global().parallelForEach(n, [&](size_t i) {
        try {
            RunContext sample_ctx{ctx.backend, ctx.quant,
                                  lanes.lane(i), ctx.inference};
            run(i, sample_ctx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error)
                error = std::current_exception();
        }
    });
    if (error)
        std::rethrow_exception(error);
}

} // namespace

std::vector<Matrix>
TransformerClassifier::forwardVisionBatch(
    const std::vector<const Matrix *> &batch, RunContext &ctx) const
{
    std::vector<Matrix> logits(batch.size());
    parallelSamples(batch.size(), ctx,
                    [&](size_t i, RunContext &sample_ctx) {
                        ActivationWorkspace ws;
                        logits[i] = forwardVision(*batch[i], ws,
                                                  sample_ctx);
                    });
    return logits;
}

std::vector<Matrix>
TransformerClassifier::forwardVisionBatch(
    const std::vector<Matrix> &batch, RunContext &ctx) const
{
    std::vector<const Matrix *> ptrs;
    ptrs.reserve(batch.size());
    for (const Matrix &m : batch)
        ptrs.push_back(&m);
    return forwardVisionBatch(ptrs, ctx);
}

std::vector<Matrix>
TransformerClassifier::forwardSequenceBatch(
    const std::vector<const std::vector<int> *> &batch,
    RunContext &ctx) const
{
    std::vector<Matrix> logits(batch.size());
    parallelSamples(batch.size(), ctx,
                    [&](size_t i, RunContext &sample_ctx) {
                        ActivationWorkspace ws;
                        logits[i] = forwardSequence(*batch[i], ws,
                                                    sample_ctx);
                    });
    return logits;
}

std::vector<Matrix>
TransformerClassifier::forwardSequenceBatch(
    const std::vector<std::vector<int>> &batch, RunContext &ctx) const
{
    std::vector<const std::vector<int> *> ptrs;
    ptrs.reserve(batch.size());
    for (const auto &tokens : batch)
        ptrs.push_back(&tokens);
    return forwardSequenceBatch(ptrs, ctx);
}

void
TransformerClassifier::backward(const Matrix &dlogits,
                                const ActivationWorkspace &ws)
{
    const size_t tokens = ws.tokens;
    Matrix dpooled = head_.backward(dlogits, ws.head);

    Matrix dnormed(tokens, cfg_.dim, 0.0);
    switch (cfg_.pooling) {
    case Pooling::ClsToken:
        for (size_t c = 0; c < cfg_.dim; ++c)
            dnormed(0, c) = dpooled(0, c);
        break;
    case Pooling::Mean: {
        double inv_n = 1.0 / static_cast<double>(tokens);
        for (size_t r = 0; r < tokens; ++r)
            for (size_t c = 0; c < cfg_.dim; ++c)
                dnormed(r, c) = dpooled(0, c) * inv_n;
        break;
    }
    case Pooling::LastToken:
        for (size_t c = 0; c < cfg_.dim; ++c)
            dnormed(tokens - 1, c) = dpooled(0, c);
        break;
    }

    Matrix dseq = final_ln_.backward(dnormed, ws.final_ln);
    for (size_t i = blocks_.size(); i-- > 0;)
        dseq = blocks_[i]->backward(dseq, ws.blocks[i]);

    // Positional gradients over all tokens.
    for (size_t r = 0; r < tokens; ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            dpos_(r, c) += dseq(r, c);

    size_t offset = 0;
    if (cfg_.pooling == Pooling::ClsToken) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            dcls_(0, c) += dseq(0, c);
        offset = 1;
    }
    Matrix dx(tokens - offset, cfg_.dim);
    for (size_t r = 0; r < dx.rows(); ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            dx(r, c) = dseq(r + offset, c);

    if (ws.last_was_vision)
        patch_embed_->backward(dx, ws.patch_embed);
    else
        token_embed_->backward(dx, ws.token_embed);
}

void
TransformerClassifier::zeroGrad()
{
    if (patch_embed_)
        patch_embed_->zeroGrad();
    if (token_embed_)
        token_embed_->zeroGrad();
    for (double &v : dcls_.data())
        v = 0.0;
    for (double &v : dpos_.data())
        v = 0.0;
    for (auto &b : blocks_)
        b->zeroGrad();
    final_ln_.zeroGrad();
    head_.zeroGrad();
}

void
TransformerClassifier::visitParams(const ParamVisitor &fn)
{
    if (patch_embed_)
        patch_embed_->visitParams(fn);
    if (token_embed_)
        token_embed_->visitParams(fn);
    if (cfg_.pooling == Pooling::ClsToken)
        fn(cls_, dcls_);
    fn(pos_, dpos_);
    for (auto &b : blocks_)
        b->visitParams(fn);
    final_ln_.visitParams(fn);
    head_.visitParams(fn);
}

size_t
TransformerClassifier::numParams()
{
    size_t total = 0;
    visitParams([&](Matrix &w, Matrix &) { total += w.data().size(); });
    return total;
}

} // namespace nn
} // namespace lt
