#include "transformer.hh"

#include "util/logging.hh"

namespace lt {
namespace nn {

TransformerClassifier::TransformerClassifier(const TransformerConfig &cfg)
    : cfg_(cfg), init_rng_(cfg.seed),
      cls_(1, cfg.dim), dcls_(1, cfg.dim, 0.0),
      pos_(cfg.max_tokens, cfg.dim), dpos_(cfg.max_tokens, cfg.dim, 0.0),
      final_ln_(cfg.dim),
      head_(cfg.dim, cfg.num_classes, init_rng_)
{
    if ((cfg.patch_dim > 0) == (cfg.vocab_size > 0))
        lt_fatal("TransformerConfig must set exactly one of patch_dim "
                 "(vision) or vocab_size (sequence)");
    if (cfg.patch_dim > 0)
        patch_embed_.emplace(cfg.patch_dim, cfg.dim, init_rng_);
    else
        token_embed_.emplace(cfg.vocab_size, cfg.dim, init_rng_);

    for (double &v : cls_.data())
        v = init_rng_.gaussian(0.0, 0.02);
    for (double &v : pos_.data())
        v = init_rng_.gaussian(0.0, 0.02);

    blocks_.reserve(cfg.depth);
    for (size_t i = 0; i < cfg.depth; ++i) {
        blocks_.push_back(std::make_unique<TransformerBlock>(
            cfg.dim, cfg.heads, cfg.mlp_hidden, init_rng_));
    }
}

Matrix
TransformerClassifier::forwardCommon(Matrix x, RunContext &ctx)
{
    const bool use_cls = cfg_.pooling == Pooling::ClsToken;
    size_t tokens = x.rows() + (use_cls ? 1 : 0);
    if (tokens > cfg_.max_tokens)
        lt_fatal("sequence of ", tokens, " tokens exceeds max_tokens ",
                 cfg_.max_tokens);
    Matrix seq(tokens, cfg_.dim);
    size_t offset = 0;
    if (use_cls) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(0, c) = cls_(0, c);
        offset = 1;
    }
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(r + offset, c) = x(r, c);
    for (size_t r = 0; r < tokens; ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            seq(r, c) += pos_(r, c);

    cached_tokens_ = tokens;
    for (auto &block : blocks_)
        seq = block->forward(seq, ctx);
    Matrix normed = final_ln_.forward(seq);
    cached_pooled_in_ = normed;

    Matrix pooled(1, cfg_.dim);
    if (use_cls) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            pooled(0, c) = normed(0, c);
    } else {
        for (size_t c = 0; c < cfg_.dim; ++c) {
            double s = 0.0;
            for (size_t r = 0; r < tokens; ++r)
                s += normed(r, c);
            pooled(0, c) = s / static_cast<double>(tokens);
        }
    }
    return head_.forward(pooled, ctx);
}

Matrix
TransformerClassifier::forwardVision(const Matrix &patches,
                                     RunContext &ctx)
{
    if (!patch_embed_)
        lt_fatal("forwardVision called on a sequence-mode model");
    last_was_vision_ = true;
    Matrix x = patch_embed_->forward(patches, ctx);
    return forwardCommon(std::move(x), ctx);
}

Matrix
TransformerClassifier::forwardSequence(const std::vector<int> &tokens,
                                       RunContext &ctx)
{
    if (!token_embed_)
        lt_fatal("forwardSequence called on a vision-mode model");
    last_was_vision_ = false;
    Matrix x = token_embed_->forward(tokens);
    return forwardCommon(std::move(x), ctx);
}

std::vector<Matrix>
TransformerClassifier::forwardVisionBatch(
    const std::vector<const Matrix *> &batch, RunContext &ctx)
{
    std::vector<Matrix> logits;
    logits.reserve(batch.size());
    for (const Matrix *patches : batch)
        logits.push_back(forwardVision(*patches, ctx));
    return logits;
}

std::vector<Matrix>
TransformerClassifier::forwardVisionBatch(
    const std::vector<Matrix> &batch, RunContext &ctx)
{
    std::vector<const Matrix *> ptrs;
    ptrs.reserve(batch.size());
    for (const Matrix &m : batch)
        ptrs.push_back(&m);
    return forwardVisionBatch(ptrs, ctx);
}

std::vector<Matrix>
TransformerClassifier::forwardSequenceBatch(
    const std::vector<const std::vector<int> *> &batch,
    RunContext &ctx)
{
    std::vector<Matrix> logits;
    logits.reserve(batch.size());
    for (const auto *tokens : batch)
        logits.push_back(forwardSequence(*tokens, ctx));
    return logits;
}

std::vector<Matrix>
TransformerClassifier::forwardSequenceBatch(
    const std::vector<std::vector<int>> &batch, RunContext &ctx)
{
    std::vector<const std::vector<int> *> ptrs;
    ptrs.reserve(batch.size());
    for (const auto &tokens : batch)
        ptrs.push_back(&tokens);
    return forwardSequenceBatch(ptrs, ctx);
}

void
TransformerClassifier::backward(const Matrix &dlogits)
{
    const bool use_cls = cfg_.pooling == Pooling::ClsToken;
    Matrix dpooled = head_.backward(dlogits);

    Matrix dnormed(cached_tokens_, cfg_.dim, 0.0);
    if (use_cls) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            dnormed(0, c) = dpooled(0, c);
    } else {
        double inv_n = 1.0 / static_cast<double>(cached_tokens_);
        for (size_t r = 0; r < cached_tokens_; ++r)
            for (size_t c = 0; c < cfg_.dim; ++c)
                dnormed(r, c) = dpooled(0, c) * inv_n;
    }

    Matrix dseq = final_ln_.backward(dnormed);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
        dseq = (*it)->backward(dseq);

    // Positional gradients over all tokens.
    for (size_t r = 0; r < cached_tokens_; ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            dpos_(r, c) += dseq(r, c);

    size_t offset = 0;
    if (use_cls) {
        for (size_t c = 0; c < cfg_.dim; ++c)
            dcls_(0, c) += dseq(0, c);
        offset = 1;
    }
    Matrix dx(cached_tokens_ - offset, cfg_.dim);
    for (size_t r = 0; r < dx.rows(); ++r)
        for (size_t c = 0; c < cfg_.dim; ++c)
            dx(r, c) = dseq(r + offset, c);

    if (last_was_vision_)
        patch_embed_->backward(dx);
    else
        token_embed_->backward(dx);
}

void
TransformerClassifier::zeroGrad()
{
    if (patch_embed_)
        patch_embed_->zeroGrad();
    if (token_embed_)
        token_embed_->zeroGrad();
    for (double &v : dcls_.data())
        v = 0.0;
    for (double &v : dpos_.data())
        v = 0.0;
    for (auto &b : blocks_)
        b->zeroGrad();
    final_ln_.zeroGrad();
    head_.zeroGrad();
}

void
TransformerClassifier::visitParams(const ParamVisitor &fn)
{
    if (patch_embed_)
        patch_embed_->visitParams(fn);
    if (token_embed_)
        token_embed_->visitParams(fn);
    if (cfg_.pooling == Pooling::ClsToken)
        fn(cls_, dcls_);
    fn(pos_, dpos_);
    for (auto &b : blocks_)
        b->visitParams(fn);
    final_ln_.visitParams(fn);
    head_.visitParams(fn);
}

size_t
TransformerClassifier::numParams()
{
    size_t total = 0;
    visitParams([&](Matrix &w, Matrix &) { total += w.data().size(); });
    return total;
}

} // namespace nn
} // namespace lt
