#include "converters.hh"

#include <cmath>

namespace lt {
namespace arch {

double
ConverterModel::powerW(int bits, double sample_rate_hz) const
{
    double freq_scale = sample_rate_hz / ref_.sample_rate_hz;
    double bit_scale = std::pow(2.0, bits - ref_.precision_bits);
    return ref_.power_w * freq_scale * bit_scale;
}

double
ConverterModel::energyPerConversionJ(int bits) const
{
    double bit_scale = std::pow(2.0, bits - ref_.precision_bits);
    return ref_.power_w / ref_.sample_rate_hz * bit_scale;
}

ConverterModel
dacModel(const photonics::DeviceLibrary &lib)
{
    return ConverterModel(lib.dac);
}

ConverterModel
adcModel(const photonics::DeviceLibrary &lib)
{
    return ConverterModel(lib.adc);
}

} // namespace arch
} // namespace lt
