#include "memory_check.hh"

#include <algorithm>

namespace lt {
namespace arch {

MemoryFootprint
modelFootprint(const nn::PaperModelConfig &model, int bits,
               const ArchConfig &cfg)
{
    const size_t bytes_per_el =
        std::max<size_t>(1, static_cast<size_t>(bits) / 8);
    MemoryFootprint fp;

    // Largest per-layer activation at batch 1: the FFN expansion
    // (seq x mlp_hidden) dominates every encoder model, but keep the
    // QKV concatenation (seq x 3 dim) in the running for generality.
    size_t ffn_act = model.seq_len * model.mlp_hidden;
    size_t qkv_act = model.seq_len * 3 * model.dim;
    fp.largest_activation_bytes =
        std::max(ffn_act, qkv_act) * bytes_per_el;

    // Attention scores materialize per head: seq x seq.
    fp.attention_scores_bytes =
        model.seq_len * model.seq_len * bytes_per_el;

    // Streamed weight chunk (Fig. 5): each tile works on an
    // [Nlambda x Nv] weight sub-block of the largest weight matrix;
    // chunks are fetched column-panel-wise: Nlambda x n columns.
    size_t largest_n = std::max(model.mlp_hidden, 3 * model.dim);
    fp.weight_chunk_bytes =
        cfg.nlambda * largest_n * bytes_per_el * cfg.nt;
    fp.double_buffer_bytes = 2 * fp.weight_chunk_bytes;
    return fp;
}

bool
fitsGlobalSram(const nn::PaperModelConfig &model, int bits,
               const ArchConfig &cfg)
{
    return static_cast<double>(
               modelFootprint(model, bits, cfg).requiredBytes()) <=
           cfg.global_sram_bytes;
}

} // namespace arch
} // namespace lt
