/**
 * @file
 * Memory-capacity sizing check (paper Section IV-A).
 *
 * The paper sizes the 2 MB global SRAM so that it can hold
 *  (1) the single largest per-layer activation tensor of the target
 *      low-bit BERT/DeiT models at batch 1, and
 *  (2) a double buffer for the off-chip weight chunks streamed by the
 *      Fig. 5 tiling loop (so HBM transfers overlap compute).
 * This module computes those footprints for any benchmark model and
 * verifies the claim — the tests assert it for every Fig. 13 workload
 * on the configuration the paper assigns it to.
 */

#ifndef LT_ARCH_MEMORY_CHECK_HH
#define LT_ARCH_MEMORY_CHECK_HH

#include "arch/arch_config.hh"
#include "nn/model_zoo.hh"

namespace lt {
namespace arch {

/** Peak on-chip storage demand of one model at one precision. */
struct MemoryFootprint
{
    size_t largest_activation_bytes = 0; ///< biggest layer output
    size_t attention_scores_bytes = 0;   ///< one head's QK^T tile
    size_t weight_chunk_bytes = 0;       ///< one streamed weight chunk
    size_t double_buffer_bytes = 0;      ///< 2x chunk for overlap

    /** Total the global SRAM must hold simultaneously. */
    size_t
    requiredBytes() const
    {
        return largest_activation_bytes + attention_scores_bytes +
               double_buffer_bytes;
    }
};

/**
 * Footprint of a model at `bits` precision. The weight chunk follows
 * the Fig. 5 tiling: one [Nlambda, Nv]-granular column panel of the
 * largest weight matrix per tile, times the Nt tiles.
 */
MemoryFootprint modelFootprint(const nn::PaperModelConfig &model,
                               int bits, const ArchConfig &cfg);

/** Does the configuration's global SRAM satisfy the Section IV-A
 * sizing rule for this model? */
bool fitsGlobalSram(const nn::PaperModelConfig &model, int bits,
                    const ArchConfig &cfg);

} // namespace arch
} // namespace lt

#endif // LT_ARCH_MEMORY_CHECK_HH
