/**
 * @file
 * Heterogeneous DPTC geometry search (paper Section VI-A):
 * "we have the flexibility to explore heterogeneous DPTCs by having
 * different/searched core sizes to better suit workloads with
 * specific sparse patterns, avoiding low-utilization scenarios. For
 * example, we can have a specific DPTC engine for vector-matrix
 * multiplication by setting Nh to 1."
 *
 * Given a GEMM list and a set of candidate core geometries (optionally
 * constrained to a MAC-budget per shot), this module scores every
 * candidate by utilization (useful MACs / provisioned MACs across the
 * tiled shots) and end-to-end latency, and returns the ranking.
 */

#ifndef LT_ARCH_CORE_SEARCH_HH
#define LT_ARCH_CORE_SEARCH_HH

#include <vector>

#include "arch/arch_config.hh"
#include "nn/workload.hh"

namespace lt {
namespace arch {

/** One candidate core geometry. */
struct CoreCandidate
{
    size_t nh;
    size_t nv;
    size_t nlambda;

    size_t
    macsPerShot() const
    {
        return nh * nv * nlambda;
    }

    std::string
    name() const
    {
        return std::to_string(nh) + "x" + std::to_string(nlambda) +
               "x" + std::to_string(nv);
    }
};

/** Score of one candidate on one workload. */
struct CoreScore
{
    CoreCandidate candidate;
    double utilization;  ///< useful MACs / provisioned shot MACs
    double latency_s;    ///< workload latency on the base ArchConfig
    size_t shots;        ///< total DPTC invocations
};

/**
 * Utilization of one candidate on one GEMM: the ceil-tiling wastes
 * provisioned MACs on boundary tiles; skinny GEMMs (e.g. GEMVs with
 * m = 1) waste entire rows of a square core.
 */
double candidateUtilization(const CoreCandidate &candidate,
                            const nn::GemmOp &op);

/**
 * Score every candidate on a workload; `base` supplies everything but
 * the core geometry (tiles, clocks, precision). Results are sorted by
 * descending utilization (ties: lower latency first).
 */
std::vector<CoreScore>
searchCoreGeometry(const std::vector<nn::GemmOp> &ops,
                   const std::vector<CoreCandidate> &candidates,
                   const ArchConfig &base);

/**
 * Default candidate set at a fixed per-shot MAC budget (1728 = 12^3):
 * the square 12x12x12 core plus skinny variants down to the Nh = 1
 * vector-matrix engine the paper names.
 */
std::vector<CoreCandidate> defaultCandidates();

} // namespace arch
} // namespace lt

#endif // LT_ARCH_CORE_SEARCH_HH
