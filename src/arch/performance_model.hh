/**
 * @file
 * Energy / latency model of Lightening-Transformer executing GEMM
 * workloads (paper Eq. 11 plus the Section IV-C optimizations).
 *
 * Latency: a [m,k]x[k,n] GEMM tiles into
 *   T = ceil(m/Nh) * ceil(k/Nl) * ceil(n/Nv)
 * one-shot DPTC invocations; all Nt*Nc cores run in parallel at the
 * 5 GHz core clock, so the GEMM takes ceil(T / cores) cycles. (This
 * exactly reproduces the paper's Table V latency column: DeiT-T MHA =
 * 3.12e-3 ms, FFN = 1.04e-2 ms, All = 1.94e-2 ms on LT-B.)
 *
 * Energy: per-event costs for DAC / MZM / ADC / PD+TIA, plus static
 * laser / microdisk-locking / memory-leakage / digital power burned
 * over the busy time, plus SRAM and HBM traffic. The intra-core
 * crossbar sharing (Eq. 6), inter-core M2 broadcast (/Nt), analog tile
 * summation (/Nc ADC conversions) and temporal accumulation (/depth
 * ADC rate) all enter here — switching them off yields the
 * LT-crossbar-B / LT-broadcast-B ablations of Fig. 12.
 */

#ifndef LT_ARCH_PERFORMANCE_MODEL_HH
#define LT_ARCH_PERFORMANCE_MODEL_HH

#include "arch/chip_model.hh"
#include "arch/report.hh"
#include "nn/workload.hh"

namespace lt {
namespace arch {

/** Evaluates workloads on a Lightening-Transformer configuration. */
class LtPerformanceModel
{
  public:
    explicit LtPerformanceModel(const ArchConfig &cfg,
                                const photonics::DeviceLibrary &lib =
                                    photonics::DeviceLibrary::defaults());

    const ArchConfig &config() const { return chip_.config(); }
    const ChipModel &chip() const { return chip_; }

    /** Cost of one (repeated) GEMM op. */
    PerfReport evaluateGemm(const nn::GemmOp &op) const;

    /** Cost of a list of ops (summed). */
    PerfReport evaluateOps(const std::vector<nn::GemmOp> &ops,
                           const std::string &label) const;

    /** Full model inference (Table V "All"). */
    PerfReport evaluate(const nn::Workload &workload) const;

    /** One module of a model (Table V "MHA" / "FFN" rows). */
    PerfReport evaluateModule(const nn::Workload &workload,
                              nn::Module module) const;

    /** DPTC invocations a GEMM needs (before core parallelism). */
    size_t shotsFor(const nn::GemmOp &op) const;

  private:
    ChipModel chip_;
    const photonics::DeviceLibrary &lib_;

    // Precomputed per-event energies at the configured precision [J].
    double e_dac_;
    double e_driver_;
    double e_mzm_;
    double e_det_;   ///< 2 PDs + 1 TIA per DDot output
    double e_adc_;
    // Static powers [W].
    double p_laser_;
    double p_disk_m1_;
    double p_disk_m2_;
    double p_static_other_;
};

} // namespace arch
} // namespace lt

#endif // LT_ARCH_PERFORMANCE_MODEL_HH
