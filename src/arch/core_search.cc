#include "core_search.hh"

#include <algorithm>

#include "arch/performance_model.hh"
#include "util/logging.hh"

namespace lt {
namespace arch {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

double
candidateUtilization(const CoreCandidate &candidate,
                     const nn::GemmOp &op)
{
    size_t shots = ceilDiv(op.m, candidate.nh) *
                   ceilDiv(op.k, candidate.nlambda) *
                   ceilDiv(op.n, candidate.nv) * op.count;
    double provisioned = static_cast<double>(shots) *
                         static_cast<double>(candidate.macsPerShot());
    return static_cast<double>(op.macs()) / provisioned;
}

std::vector<CoreScore>
searchCoreGeometry(const std::vector<nn::GemmOp> &ops,
                   const std::vector<CoreCandidate> &candidates,
                   const ArchConfig &base)
{
    if (candidates.empty())
        lt_fatal("searchCoreGeometry requires at least one candidate");

    std::vector<CoreScore> scores;
    scores.reserve(candidates.size());
    for (const auto &candidate : candidates) {
        ArchConfig cfg = base;
        cfg.nh = candidate.nh;
        cfg.nv = candidate.nv;
        cfg.nlambda = candidate.nlambda;
        LtPerformanceModel model(cfg);

        CoreScore score{candidate, 0.0, 0.0, 0};
        double useful = 0.0, provisioned = 0.0;
        for (const auto &op : ops) {
            size_t shots = model.shotsFor(op);
            score.shots += shots;
            useful += static_cast<double>(op.macs());
            provisioned += static_cast<double>(shots) *
                           static_cast<double>(
                               candidate.macsPerShot());
        }
        score.utilization = provisioned > 0.0 ? useful / provisioned
                                              : 0.0;
        score.latency_s =
            model.evaluateOps(ops, "search").latency.total();
        scores.push_back(score);
    }
    std::sort(scores.begin(), scores.end(),
              [](const CoreScore &a, const CoreScore &b) {
                  if (a.utilization != b.utilization)
                      return a.utilization > b.utilization;
                  return a.latency_s < b.latency_s;
              });
    return scores;
}

std::vector<CoreCandidate>
defaultCandidates()
{
    // All at the 12^3 = 1728 MACs/shot budget.
    return {
        {12, 12, 12}, // square (the paper's default)
        {6, 24, 12},  // short rows
        {24, 6, 12},  // short columns
        {4, 36, 12},
        {2, 72, 12},
        {1, 144, 12}, // the Nh = 1 vector-matrix engine
    };
}

} // namespace arch
} // namespace lt
