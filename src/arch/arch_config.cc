#include "arch_config.hh"

namespace lt {
namespace arch {

ArchConfig
ArchConfig::ltBase()
{
    ArchConfig cfg;
    cfg.name = "LT-B";
    return cfg;
}

ArchConfig
ArchConfig::ltLarge()
{
    ArchConfig cfg;
    cfg.name = "LT-L";
    cfg.nt = 8;
    cfg.global_sram_bytes = units::MiB(4);
    return cfg;
}

ArchConfig
ArchConfig::ltCrossbarBase()
{
    ArchConfig cfg;
    cfg.name = "LT-crossbar-B";
    cfg.intercore_broadcast = false;
    cfg.analog_tile_summation = false;
    cfg.temporal_accum_depth = 1;
    return cfg;
}

ArchConfig
ArchConfig::ltBroadcastBase()
{
    ArchConfig cfg = ltCrossbarBase();
    cfg.name = "LT-broadcast-B";
    cfg.topology = CoreTopology::Broadcast;
    return cfg;
}

ArchConfig
ArchConfig::singleCore(size_t n, int bits)
{
    ArchConfig cfg;
    cfg.name = "DPTC-" + std::to_string(n);
    cfg.nt = 1;
    cfg.nc = 1;
    cfg.nh = n;
    cfg.nv = n;
    cfg.nlambda = n;
    cfg.precision_bits = bits;
    cfg.intercore_broadcast = false;
    cfg.analog_tile_summation = false;
    cfg.temporal_accum_depth = 1;
    return cfg;
}

} // namespace arch
} // namespace lt
