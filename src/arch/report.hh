/**
 * @file
 * Common result structures shared by the Lightening-Transformer model
 * and the photonic baselines, mirroring the paper's reporting:
 * energy breakdowns use the Fig. 11/12 categories, latency splits
 * compute from reconfiguration stalls, and Table V derives EDP.
 */

#ifndef LT_ARCH_REPORT_HH
#define LT_ARCH_REPORT_HH

#include <string>
#include <vector>

namespace lt {
namespace arch {

/** Energy split using the paper's Fig. 11 component categories [J]. */
struct EnergyBreakdown
{
    double laser = 0.0;
    double op1_dac = 0.0;   ///< first-operand DAC conversions
    double op1_mod = 0.0;   ///< first-operand modulation / locking
    double op2_dac = 0.0;   ///< second-operand DAC conversions
    double op2_mod = 0.0;   ///< second-operand modulation
    double detection = 0.0; ///< photodiodes + TIAs
    double adc = 0.0;
    double data_movement = 0.0; ///< SRAM + HBM traffic
    double static_other = 0.0;  ///< memory leakage, digital units

    double
    total() const
    {
        return laser + op1_dac + op1_mod + op2_dac + op2_mod +
               detection + adc + data_movement + static_other;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &rhs);
};

/** Latency split [s]. */
struct LatencyBreakdown
{
    double compute = 0.0;  ///< cycles actually multiplying
    double reconfig = 0.0; ///< device-programming stalls (baselines)
    double mapping = 0.0;  ///< operand-mapping (SVD etc., baselines)

    double
    total() const
    {
        return compute + reconfig + mapping;
    }

    LatencyBreakdown &operator+=(const LatencyBreakdown &rhs);
};

/** One accelerator-on-workload evaluation result. */
struct PerfReport
{
    std::string accelerator;
    std::string workload;
    EnergyBreakdown energy;
    LatencyBreakdown latency;

    /** Energy-delay product [J*s]. */
    double
    edp() const
    {
        return energy.total() * latency.total();
    }

    PerfReport &operator+=(const PerfReport &rhs);
};

/** Chip-area breakdown in the Fig. 7 categories [m^2]. */
struct AreaBreakdown
{
    double photonic_core = 0.0; ///< DDot crossbars
    double dac = 0.0;
    double adc = 0.0;
    double modulation = 0.0;    ///< MZMs + WDM mux/demux
    double memory = 0.0;
    double laser_comb = 0.0;
    double digital = 0.0;
    double other = 0.0;         ///< TIA, PD, per-core overhead

    double
    total() const
    {
        return photonic_core + dac + adc + modulation + memory +
               laser_comb + digital + other;
    }
};

/** Peak-power breakdown in the Fig. 8 categories [W]. */
struct PowerBreakdown
{
    double laser = 0.0;
    double dac = 0.0;
    double adc = 0.0;
    double modulation = 0.0;   ///< MZM drive + microdisk locking
    double photodetector = 0.0;///< PD bias + TIA
    double memory = 0.0;       ///< leakage
    double digital = 0.0;
    double driver = 0.0;       ///< per-channel serdes overhead

    double
    total() const
    {
        return laser + dac + adc + modulation + photodetector + memory +
               digital + driver;
    }
};

} // namespace arch
} // namespace lt

#endif // LT_ARCH_REPORT_HH
