/**
 * @file
 * Architecture configuration for the Lightening-Transformer accelerator
 * (paper Section IV, Table II/IV).
 *
 * Besides the paper's headline parameters (Nt tiles x Nc cores of
 * Nh x Nv x Nlambda DPTCs at 5 GHz), the config carries the three
 * architecture-level optimizations as switchable features so the
 * Fig. 12 ablation (LT-broadcast-B / LT-crossbar-B / LT-B) falls out
 * of one model, plus the calibration constants of the physical model
 * (documented at each field; values are fitted once against the
 * paper's reported endpoints and then left alone).
 */

#ifndef LT_ARCH_ARCH_CONFIG_HH
#define LT_ARCH_ARCH_CONFIG_HH

#include <cstddef>
#include <string>

#include "util/units.hh"

namespace lt {
namespace arch {

/** Intra-core operand-sharing topology of the photonic tensor core. */
enum class CoreTopology
{
    /**
     * Only one operand is broadcast to the DDot units; the other is
     * modulated per unit (the LT-broadcast-B strawman of Fig. 12).
     * Encoding ops per shot: Nh*Nl (shared side) + Nh*Nv*Nl.
     */
    Broadcast,

    /**
     * Full crossbar: both operands ride shared waveguide buses
     * (Eq. 6): Nh*Nl + Nl*Nv encodings per shot.
     */
    Crossbar,
};

/** Full accelerator configuration. */
struct ArchConfig
{
    std::string name = "LT-B";

    // ---- paper Table II / IV parameters -----------------------------
    size_t nt = 4;        ///< tiles
    size_t nc = 2;        ///< DPTC cores per tile
    size_t nh = 12;       ///< horizontal waveguides per core
    size_t nv = 12;       ///< vertical waveguides per core
    size_t nlambda = 12;  ///< wavelengths per waveguide
    int precision_bits = 4;
    double core_clock_hz = units::GHz(5);
    double control_clock_hz = units::MHz(500);
    double global_sram_bytes = units::MiB(2);
    double tile_sram_bytes = units::KiB(4);

    // ---- architecture-level optimizations (Section IV-C) ------------
    CoreTopology topology = CoreTopology::Crossbar;

    /** Share M2 modulation across tiles via optical interconnect. */
    bool intercore_broadcast = true;

    /** Photocurrent summation across the Nc cores of a tile. */
    bool analog_tile_summation = true;

    /** Analog temporal accumulation depth (1 = off; paper uses 3). */
    size_t temporal_accum_depth = 3;

    // ---- physical calibration constants ------------------------------
    /**
     * Crossbar cell footprint (one DDot plus its share of waveguide
     * routing). Fitted to the Fig. 9 single-core area sweep
     * (~98 um pitch).
     */
    double crossbar_cell_m2 = units::um2(9670);

    /** Fixed per-standalone-core overhead (control, I/O) in Fig. 9. */
    double core_overhead_m2 = units::mm2(1.48);

    /**
     * Optical time of flight per crossbar cell traversed; the signal
     * crosses Nh + Nv cells. Group index 3.8 over the 98 um pitch,
     * fitted to the Fig. 9 latency slope (~2.5 ps per unit size).
     */
    double waveguide_group_index = 3.8;
    double crossbar_pitch_m = 98.3e-6;

    /** Fixed EO/OE conversion latency (DAC settle + PD/TIA + S/H). */
    double eo_oe_latency_s = units::ps(26.7);

    /**
     * Link margin relief applied to the laser-power loss budget
     * (balanced detection collects both coupler ports, and DWDM
     * aggregation relaxes the per-carrier sensitivity requirement).
     * Fitted so LT-B @ 4-bit lands at the paper's 0.77 W laser.
     */
    double laser_margin_db = -3.5;

    /**
     * SRAM macro area per MB, 14 nm, decomposed into 32 KB sub-arrays
     * as the paper does (following [10]); PCACTI-class density with
     * heavy periphery overhead. Fitted to the Fig. 7 memory share.
     */
    double sram_m2_per_mb = units::mm2(6.8);
    double tile_sram_m2 = units::mm2(0.1);    ///< per-tile operand SRAM
    double tile_buffer_m2 = units::mm2(0.25); ///< out buffer + accum
    double digital_unit_m2 = units::mm2(2.85); ///< softmax/LN/misc

    /** Memory energetics (14 nm, small sub-arrays). */
    double sram_pj_per_bit = 0.05;
    double sram_leakage_w_per_mb = 0.3;
    double hbm_pj_per_bit = 3.7;      ///< fine-grained DRAM [37]
    double hbm_bandwidth = 1e12;      ///< >1 TB/s (Section V-A)

    /** Digital processing units (softmax, LN, GELU) average power. */
    double digital_power_w = 1.2;

    /** Per-channel driver/serdes overhead beyond the DAC itself. */
    double driver_overhead_w = units::mW(0.5);

    // ---- derived quantities ------------------------------------------
    size_t totalCores() const { return nt * nc; }
    double cycleSeconds() const { return 1.0 / core_clock_hz; }

    /** MACs the whole chip performs per core cycle. */
    size_t
    macsPerCycle() const
    {
        return totalCores() * nh * nv * nlambda;
    }

    /** Modulated waveguides on one core (both operand sides). */
    size_t waveguidesPerCore() const { return nh + nv; }

    /** Scalar encodings (DAC+MZM events) per core shot, by topology. */
    size_t
    encodingsPerShotM1() const
    {
        return topology == CoreTopology::Crossbar ? nh * nlambda
                                                  : nh * nv * nlambda;
    }
    size_t
    encodingsPerShotM2() const
    {
        return nlambda * nv;
    }

    // ---- presets ------------------------------------------------------
    /** LT-B: 4 tiles x 2 cores, 2 MB global SRAM (Table IV). */
    static ArchConfig ltBase();

    /** LT-L: 8 tiles x 2 cores, 4 MB global SRAM (Table IV). */
    static ArchConfig ltLarge();

    /** LT-crossbar-B: LT-B without the architecture-level opts. */
    static ArchConfig ltCrossbarBase();

    /** LT-broadcast-B: single-operand broadcast topology (Fig. 12). */
    static ArchConfig ltBroadcastBase();

    /** A standalone single core of size N (Fig. 9 / Fig. 10 sweeps). */
    static ArchConfig singleCore(size_t n, int bits = 4);
};

} // namespace arch
} // namespace lt

#endif // LT_ARCH_ARCH_CONFIG_HH
