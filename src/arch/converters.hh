/**
 * @file
 * ADC/DAC power, energy, and area scaling.
 *
 * Table III gives one measured design point per converter (8-bit DAC
 * @ 14 GS/s, 8-bit ADC @ 10 GS/s). Following Section V-A we scale
 * power to the photonic units' bit width and sample rate as in [26]:
 *     P(b, f) = P_ref * (f / f_ref) * 2^(b - b_ref),
 * so energy per conversion E = P/f = E_ref * 2^(b - b_ref) is
 * frequency-independent. Converter area stays at the reference
 * footprint (the chip is provisioned for the max precision).
 */

#ifndef LT_ARCH_CONVERTERS_HH
#define LT_ARCH_CONVERTERS_HH

#include "photonics/device_params.hh"

namespace lt {
namespace arch {

/** Power/energy scaling around a ConverterParams design point. */
class ConverterModel
{
  public:
    explicit ConverterModel(const photonics::ConverterParams &ref)
        : ref_(ref)
    {
    }

    /** Power at the given precision and sample rate [W]. */
    double powerW(int bits, double sample_rate_hz) const;

    /** Energy of one conversion at the given precision [J]. */
    double energyPerConversionJ(int bits) const;

    /** Footprint (independent of operating point) [m^2]. */
    double areaM2() const { return ref_.area_m2; }

    const photonics::ConverterParams &reference() const { return ref_; }

  private:
    photonics::ConverterParams ref_;
};

/** The paper's DAC model ([7], Table III). */
ConverterModel
dacModel(const photonics::DeviceLibrary &lib =
             photonics::DeviceLibrary::defaults());

/** The paper's ADC model ([32], Table III). */
ConverterModel
adcModel(const photonics::DeviceLibrary &lib =
             photonics::DeviceLibrary::defaults());

} // namespace arch
} // namespace lt

#endif // LT_ARCH_CONVERTERS_HH
