#include "report.hh"

namespace lt {
namespace arch {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &rhs)
{
    laser += rhs.laser;
    op1_dac += rhs.op1_dac;
    op1_mod += rhs.op1_mod;
    op2_dac += rhs.op2_dac;
    op2_mod += rhs.op2_mod;
    detection += rhs.detection;
    adc += rhs.adc;
    data_movement += rhs.data_movement;
    static_other += rhs.static_other;
    return *this;
}

LatencyBreakdown &
LatencyBreakdown::operator+=(const LatencyBreakdown &rhs)
{
    compute += rhs.compute;
    reconfig += rhs.reconfig;
    mapping += rhs.mapping;
    return *this;
}

PerfReport &
PerfReport::operator+=(const PerfReport &rhs)
{
    energy += rhs.energy;
    latency += rhs.latency;
    return *this;
}

} // namespace arch
} // namespace lt
