#include "performance_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace arch {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

LtPerformanceModel::LtPerformanceModel(const ArchConfig &cfg,
                                       const photonics::DeviceLibrary &lib)
    : chip_(cfg, lib), lib_(lib)
{
    const int bits = cfg.precision_bits;
    const double f = cfg.core_clock_hz;
    e_dac_ = dacModel(lib).energyPerConversionJ(bits);
    e_driver_ = cfg.driver_overhead_w / f;
    e_mzm_ = lib.mzm.power_w / f;
    e_det_ = (2.0 * lib.photodetector.power_w + lib.tia.power_w) / f;
    e_adc_ = adcModel(lib).energyPerConversionJ(bits);

    p_laser_ = chip_.laserPowerW(bits);
    const auto &inv = chip_.inventory();
    // Microdisk locking split between the M1 and M2 waveguide sides.
    size_t m2_units = cfg.intercore_broadcast ? cfg.nc : cfg.totalCores();
    size_t disks_m2 = 2 * cfg.nlambda * m2_units * cfg.nv;
    size_t disks_m1 = inv.microdisks - disks_m2;
    p_disk_m1_ = static_cast<double>(disks_m1) * lib.microdisk.power_w;
    p_disk_m2_ = static_cast<double>(disks_m2) * lib.microdisk.power_w;
    p_static_other_ = cfg.global_sram_bytes / units::MiB(1) *
                          cfg.sram_leakage_w_per_mb +
                      cfg.digital_power_w;
}

size_t
LtPerformanceModel::shotsFor(const nn::GemmOp &op) const
{
    const auto &cfg = config();
    return ceilDiv(op.m, cfg.nh) * ceilDiv(op.k, cfg.nlambda) *
           ceilDiv(op.n, cfg.nv) * op.count;
}

PerfReport
LtPerformanceModel::evaluateGemm(const nn::GemmOp &op) const
{
    const auto &cfg = config();
    const int bits = cfg.precision_bits;
    const size_t shots = shotsFor(op);
    const size_t cycles = ceilDiv(shots, cfg.totalCores());
    const double t = static_cast<double>(cycles) * cfg.cycleSeconds();

    PerfReport r;
    r.accelerator = cfg.name;
    r.workload = nn::toString(op.kind);
    r.latency.compute = t;

    // Operand encodings (Eq. 6 with the topology / broadcast knobs).
    const double enc1 = static_cast<double>(shots) *
                        static_cast<double>(cfg.encodingsPerShotM1());
    double enc2 = static_cast<double>(shots) *
                  static_cast<double>(cfg.encodingsPerShotM2());
    if (cfg.intercore_broadcast)
        enc2 /= static_cast<double>(cfg.nt);

    auto &e = r.energy;
    e.op1_dac = enc1 * (e_dac_ + e_driver_);
    e.op1_mod = enc1 * e_mzm_ + p_disk_m1_ * t;
    e.op2_dac = enc2 * (e_dac_ + e_driver_);
    e.op2_mod = enc2 * e_mzm_ + p_disk_m2_ * t;

    // Every DDot output is photodetected each shot.
    const double outputs = static_cast<double>(shots) *
                           static_cast<double>(cfg.nh * cfg.nv);
    e.detection = outputs * e_det_;

    // A/D conversions after analog tile summation (/Nc) and temporal
    // accumulation (/depth).
    double conversions = outputs;
    if (cfg.analog_tile_summation)
        conversions /= static_cast<double>(cfg.nc);
    conversions /= static_cast<double>(cfg.temporal_accum_depth);
    e.adc = conversions * e_adc_;

    e.laser = p_laser_ * t;

    // Data movement: SRAM reads feed every encoding; ADC results write
    // back at partial-sum width (~2x operand bits); static weights
    // stream from HBM once.
    double sram_bits = (enc1 + enc2) * bits + conversions * 2.0 * bits;
    double hbm_bits =
        op.dynamic ? 0.0
                   : static_cast<double>(op.k) *
                         static_cast<double>(op.n) *
                         static_cast<double>(op.count) * bits;
    e.data_movement = sram_bits * cfg.sram_pj_per_bit * 1e-12 +
                      hbm_bits * cfg.hbm_pj_per_bit * 1e-12;

    e.static_other = p_static_other_ * t;
    return r;
}

PerfReport
LtPerformanceModel::evaluateOps(const std::vector<nn::GemmOp> &ops,
                                const std::string &label) const
{
    PerfReport total;
    total.accelerator = config().name;
    total.workload = label;
    for (const auto &op : ops)
        total += evaluateGemm(op);
    return total;
}

PerfReport
LtPerformanceModel::evaluate(const nn::Workload &workload) const
{
    return evaluateOps(workload.ops, workload.model);
}

PerfReport
LtPerformanceModel::evaluateModule(const nn::Workload &workload,
                                   nn::Module module) const
{
    return evaluateOps(workload.moduleOps(module),
                       workload.model + "/" +
                           std::string(nn::toString(module)));
}

} // namespace arch
} // namespace lt
