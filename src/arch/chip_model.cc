#include "chip_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace arch {

namespace {

/** Micro-comb + pump laser footprint per tile. */
double
combLaserArea(const photonics::DeviceLibrary &lib)
{
    return lib.micro_comb.area_m2 + lib.laser_area_m2;
}

} // namespace

ChipModel::ChipModel(const ArchConfig &cfg,
                     const photonics::DeviceLibrary &lib)
    : cfg_(cfg), lib_(lib), dac_(dacModel(lib)), adc_(adcModel(lib))
{
    const size_t cores = cfg.totalCores();
    // M1 (per-core horizontal) modulation channels.
    inv_.dac_m1 = cores * cfg.nh * cfg.nlambda;
    // M2 (vertical) channels: shared chip-wide across tiles when the
    // inter-core optical broadcast is on (Fig. 4's "Shared M2
    // Modulation Unit" per in-tile core position).
    size_t m2_units = cfg.intercore_broadcast ? cfg.nc : cores;
    inv_.dac_m2 = m2_units * cfg.nv * cfg.nlambda;
    inv_.mzm = inv_.dac_m1 + inv_.dac_m2;
    // Photocurrent summation merges the Nc in-tile cores ahead of the
    // converters, so ADCs are per tile; otherwise per core.
    size_t adc_groups = cfg.analog_tile_summation ? cfg.nt : cores;
    inv_.adc = adc_groups * cfg.nh * cfg.nv;
    inv_.crossbar_cells = cores * cfg.nh * cfg.nv;
    inv_.photodetectors = 2 * inv_.crossbar_cells; // balanced pairs
    inv_.tia = inv_.crossbar_cells;
    // WDM mux + demux microdisks bracket every modulated channel.
    size_t waveguides = cores * cfg.nh + m2_units * cfg.nv;
    inv_.microdisks = 2 * cfg.nlambda * waveguides;
    inv_.comb_lasers = cfg.nt;
}

AreaBreakdown
ChipModel::area(bool standalone) const
{
    AreaBreakdown a;
    a.photonic_core = static_cast<double>(inv_.crossbar_cells) *
                      cfg_.crossbar_cell_m2;
    a.dac = static_cast<double>(inv_.totalDacs()) * dac_.areaM2();
    a.adc = static_cast<double>(inv_.adc) * adc_.areaM2();
    a.modulation =
        static_cast<double>(inv_.mzm) * lib_.mzm.area_m2 +
        static_cast<double>(inv_.microdisks) * lib_.microdisk.area_m2;
    a.laser_comb = static_cast<double>(inv_.comb_lasers) *
                   combLaserArea(lib_);
    a.other = static_cast<double>(inv_.tia) * lib_.tia.area_m2 +
              static_cast<double>(inv_.photodetectors) *
                  lib_.photodetector.area_m2;
    if (standalone) {
        a.other += static_cast<double>(cfg_.totalCores()) *
                   cfg_.core_overhead_m2;
    } else {
        a.memory = cfg_.global_sram_bytes / units::MiB(1) *
                       cfg_.sram_m2_per_mb +
                   static_cast<double>(cfg_.nt) *
                       (cfg_.tile_sram_m2 + cfg_.tile_buffer_m2);
        a.digital = cfg_.digital_unit_m2;
    }
    return a;
}

photonics::LossChain
ChipModel::m1LossChain() const
{
    photonics::LossChain chain;
    chain.add("input phase control", lib_.mems_ps.il_db)
        .add("WDM demux", lib_.microdisk.il_db)
        .add("MZM", lib_.mzm.il_db)
        .add("WDM mux", lib_.microdisk.il_db)
        .addSplit("intra-core broadcast", static_cast<int>(cfg_.nv),
                  lib_.y_branch.il_db)
        .add("DDot coupler", lib_.coupler.il_db)
        .add("DDot phase shifter", lib_.mems_ps.il_db)
        .add("waveguide crossings", lib_.crossing.il_db,
             static_cast<int>(cfg_.nv / 2))
        .add("waveguide propagation", 0.5);
    return chain;
}

photonics::LossChain
ChipModel::m2LossChain() const
{
    photonics::LossChain chain = m1LossChain();
    if (cfg_.intercore_broadcast) {
        chain.addSplit("inter-core broadcast",
                       static_cast<int>(cfg_.nt),
                       lib_.y_branch.il_db);
    }
    return chain;
}

double
ChipModel::laserPowerW(int bits) const
{
    photonics::LaserModel laser(lib_, cfg_.laser_margin_db);
    double p = laser.electricalPowerW(static_cast<int>(inv_.dac_m1),
                                      m1LossChain(), bits);
    p += laser.electricalPowerW(static_cast<int>(inv_.dac_m2),
                                m2LossChain(), bits);
    return p;
}

PowerBreakdown
ChipModel::power(int bits) const
{
    PowerBreakdown p;
    p.laser = laserPowerW(bits);
    p.dac = static_cast<double>(inv_.totalDacs()) *
            dac_.powerW(bits, cfg_.core_clock_hz);
    double adc_rate = cfg_.core_clock_hz /
                      static_cast<double>(cfg_.temporal_accum_depth);
    p.adc = static_cast<double>(inv_.adc) * adc_.powerW(bits, adc_rate);
    p.modulation =
        static_cast<double>(inv_.mzm) * lib_.mzm.power_w +
        static_cast<double>(inv_.microdisks) * lib_.microdisk.power_w;
    p.photodetector =
        static_cast<double>(inv_.photodetectors) *
            lib_.photodetector.power_w +
        static_cast<double>(inv_.tia) * lib_.tia.power_w;
    p.driver = static_cast<double>(inv_.totalDacs()) *
               cfg_.driver_overhead_w;
    // Memory leakage and digital units only exist at chip level; the
    // single-core sweeps set these fields to zero via config.
    if (cfg_.nt > 1 || cfg_.nc > 1) {
        p.memory = cfg_.global_sram_bytes / units::MiB(1) *
                   cfg_.sram_leakage_w_per_mb;
        p.digital = cfg_.digital_power_w;
    }
    return p;
}

double
ChipModel::opticsLatencyS() const
{
    double cells = static_cast<double>(cfg_.nh + cfg_.nv);
    return cells * cfg_.crossbar_pitch_m * cfg_.waveguide_group_index /
           units::c0;
}

double
ChipModel::shotLatencyS() const
{
    return opticsLatencyS() + eoOeLatencyS();
}

double
ChipModel::peakMacsPerSecond() const
{
    return static_cast<double>(cfg_.macsPerCycle()) * cfg_.core_clock_hz;
}

double
ChipModel::opticalTops() const
{
    // 2 ops (multiply + add) per MAC, in tera-ops.
    return 2.0 * peakMacsPerSecond() / 1e12;
}

double
ChipModel::opticalTopsPerWatt() const
{
    PowerBreakdown p = power(cfg_.precision_bits);
    // "optical computing part (ADC/DAC excluded)" — Fig. 10.
    double optical_w =
        p.laser + p.modulation + p.photodetector;
    if (optical_w <= 0.0)
        lt_panic("optical power must be positive");
    return opticalTops() / optical_w;
}

double
ChipModel::opticalTopsPerMm2() const
{
    AreaBreakdown a = area(true);
    double optical_m2 = a.photonic_core + a.modulation + a.laser_comb;
    return opticalTops() / (optical_m2 * 1e6);
}

} // namespace arch
} // namespace lt
