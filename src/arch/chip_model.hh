/**
 * @file
 * Physical chip model: component inventory, area, peak power, laser
 * budget, and per-shot latency for a Lightening-Transformer
 * configuration. Reproduces Table IV, Fig. 7, Fig. 8 and the Fig. 9
 * scaling sweeps.
 */

#ifndef LT_ARCH_CHIP_MODEL_HH
#define LT_ARCH_CHIP_MODEL_HH

#include "arch/arch_config.hh"
#include "arch/converters.hh"
#include "arch/report.hh"
#include "photonics/device_params.hh"
#include "photonics/laser.hh"
#include "photonics/loss_chain.hh"

namespace lt {
namespace arch {

/** Device counts for a whole chip. */
struct ChipInventory
{
    size_t dac_m1 = 0;       ///< per-core M1-side DACs
    size_t dac_m2 = 0;       ///< M2-side DACs (shared when broadcast)
    size_t mzm = 0;          ///< modulators (one per DAC channel)
    size_t adc = 0;
    size_t photodetectors = 0;
    size_t tia = 0;
    size_t microdisks = 0;   ///< WDM mux/demux filters
    size_t crossbar_cells = 0;
    size_t comb_lasers = 0;  ///< micro-comb + pump per tile

    size_t totalDacs() const { return dac_m1 + dac_m2; }
};

/** Physical model of one accelerator chip. */
class ChipModel
{
  public:
    explicit ChipModel(const ArchConfig &cfg,
                       const photonics::DeviceLibrary &lib =
                           photonics::DeviceLibrary::defaults());

    const ArchConfig &config() const { return cfg_; }
    const ChipInventory &inventory() const { return inv_; }

    /**
     * Chip area (Fig. 7 / Table IV). When `standalone` the per-core
     * overhead is charged and the chip-level memory / digital units
     * are excluded (the Fig. 9 single-core sweep).
     */
    AreaBreakdown area(bool standalone = false) const;

    /** Peak power at full utilization (Fig. 8). */
    PowerBreakdown power(int bits) const;
    PowerBreakdown power() const { return power(cfg_.precision_bits); }

    /** Total electrical laser power [W]. */
    double laserPowerW(int bits) const;

    /**
     * Worst-case laser-to-photodetector loss chain for an M1-side
     * carrier; the M2 (inter-core broadcast) side adds a 1:Nt split.
     */
    photonics::LossChain m1LossChain() const;
    photonics::LossChain m2LossChain() const;

    /**
     * One-shot optical latency (Fig. 9): time of flight across the
     * crossbar (Nh + Nv cells).
     */
    double opticsLatencyS() const;

    /** Fixed EO/OE conversion latency. */
    double eoOeLatencyS() const { return cfg_.eo_oe_latency_s; }

    /** Single-pass (shot) latency: optics + EO/OE. */
    double shotLatencyS() const;

    /** Peak throughput in MAC/s. */
    double peakMacsPerSecond() const;

    /**
     * Fig. 10 metrics for the *optical computing part* (ADC/DAC
     * excluded, as the paper does): TOPS, TOPS/W, TOPS/mm^2.
     */
    double opticalTops() const;
    double opticalTopsPerWatt() const;
    double opticalTopsPerMm2() const;

  private:
    ArchConfig cfg_;
    const photonics::DeviceLibrary &lib_;
    ChipInventory inv_;
    ConverterModel dac_;
    ConverterModel adc_;
};

} // namespace arch
} // namespace lt

#endif // LT_ARCH_CHIP_MODEL_HH
