#include "obs/trace.hh"

#include <stdexcept>
#include <thread>

namespace lt {
namespace obs {

namespace {

/** The installed recorder; nullptr means tracing is off. */
std::atomic<TraceRecorder *> g_recorder{nullptr};

/** Monotonic recorder ids so thread-local sink caches never go stale
 *  across recorder destruction/reallocation at the same address. */
std::atomic<uint64_t> g_next_recorder_id{1};

std::string
threadLabel(size_t lane)
{
    return "thread-" + std::to_string(lane);
}

} // namespace

std::vector<TraceEvent>
ThreadSink::drainCopy() const
{
    const uint64_t h = head_.load(std::memory_order_acquire);
    const size_t cap = ring_.size();
    const uint64_t retained = h < cap ? h : cap;
    std::vector<TraceEvent> out;
    out.reserve(retained);
    // Oldest retained event lives at index (h - retained) mod cap.
    for (uint64_t i = h - retained; i < h; ++i)
        out.push_back(ring_[i % cap]);
    return out;
}

TraceRecorder::TraceRecorder(size_t events_per_thread)
    : capacity_(events_per_thread),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{
    if (capacity_ == 0)
        throw std::invalid_argument(
            "TraceRecorder: events_per_thread must be > 0");
}

TraceRecorder::~TraceRecorder()
{
    // Installing a recorder and destroying it while installed is a
    // caller bug, but make it fail loudly-close-to-the-cause rather
    // than as a later use-after-free in some emitting thread.
    TraceRecorder *self = this;
    g_recorder.compare_exchange_strong(self, nullptr,
                                       std::memory_order_acq_rel);
}

ThreadSink &
TraceRecorder::sink()
{
    // Cache (recorder id -> sink) per thread: after the first emit on
    // a given recorder, this is two loads and a compare.
    struct Cache
    {
        uint64_t recorder_id = 0;
        ThreadSink *sink = nullptr;
    };
    thread_local Cache cache;
    if (cache.recorder_id == id_)
        return *cache.sink;

    std::lock_guard<std::mutex> lock(mu_);
    const size_t lane = sinks_.size();
    sinks_.push_back(std::make_unique<ThreadSink>(capacity_, lane,
                                                  threadLabel(lane)));
    cache.recorder_id = id_;
    cache.sink = sinks_.back().get();
    return *cache.sink;
}

uint64_t
TraceRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto &s : sinks_)
        total += s->dropped();
    return total;
}

size_t
TraceRecorder::threadLanes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sinks_.size();
}

std::vector<TraceRecorder::LaneSnapshot>
TraceRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<LaneSnapshot> out;
    out.reserve(sinks_.size());
    for (const auto &s : sinks_) {
        LaneSnapshot lane;
        lane.lane = s->lane();
        lane.label = s->label();
        lane.dropped = s->dropped();
        lane.events = s->drainCopy();
        out.push_back(std::move(lane));
    }
    return out;
}

TraceRecorder *
recorder()
{
    return g_recorder.load(std::memory_order_relaxed);
}

void
installRecorder(TraceRecorder *rec)
{
    g_recorder.store(rec, std::memory_order_release);
}

} // namespace obs
} // namespace lt
