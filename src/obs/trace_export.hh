/**
 * @file
 * Exporters over a TraceRecorder snapshot:
 *
 *  - writeChromeTrace: Chrome/Perfetto `trace_event` JSON, loadable
 *    as-is in chrome://tracing or ui.perfetto.dev. Lanes: pid 1 holds
 *    one track per recorded thread; pid 2 holds one VIRTUAL track per
 *    request id, mirroring every event tagged with that request so a
 *    request's lifecycle (submit -> queued -> admitted -> prefill ->
 *    per-token ticks -> complete) reads as one horizontal lane.
 *
 *  - writeRequestTimelines: plain-text per-request timelines (the
 *    grep-able form of the pid-2 lanes).
 *
 *  - phaseBreakdown / writePhaseBreakdown: folds span durations into
 *    the serving analogue of the paper's Fig. 10 stage breakdown —
 *    how total tick time splits across admission / prefill / fused
 *    decode / KV-pool work.
 */

#ifndef LT_OBS_TRACE_EXPORT_HH
#define LT_OBS_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace lt {
namespace obs {

/** Serialize lanes as Chrome trace_event JSON (strict JSON: also
 *  parseable by `python3 -m json.tool`). */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceRecorder::LaneSnapshot> &lanes);

/** Convenience: snapshot `rec` and write to `path`. Returns false if
 *  the file could not be opened. */
bool writeChromeTraceFile(const std::string &path,
                          const TraceRecorder &rec);

/** Plain-text per-request event timelines, ordered by request id. */
void writeRequestTimelines(std::ostream &os,
                           const std::vector<TraceRecorder::LaneSnapshot> &lanes);

/** Disjoint per-phase span-time totals, in milliseconds.
 *  `admission_ms` excludes the nested prefill/pool spans so the four
 *  figures sum to total accounted tick time. */
struct PhaseBreakdown
{
    double admission_ms = 0.0; ///< tick/admission minus nested spans
    double prefill_ms = 0.0;   ///< req/prefill
    double decode_ms = 0.0;    ///< tick/decode
    double pool_ms = 0.0;      ///< pool/admit

    double
    totalMs() const
    {
        return admission_ms + prefill_ms + decode_ms + pool_ms;
    }
};

PhaseBreakdown
phaseBreakdown(const std::vector<TraceRecorder::LaneSnapshot> &lanes);

/** Render a breakdown as an aligned ms / % table. */
void writePhaseBreakdown(std::ostream &os, const PhaseBreakdown &pb);

} // namespace obs
} // namespace lt

#endif // LT_OBS_TRACE_EXPORT_HH
