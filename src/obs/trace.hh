/**
 * @file
 * obs::TraceRecorder — the low-overhead structured tracing core of the
 * observability subsystem.
 *
 * Design goals, in order:
 *
 *  1. Near-zero cost when disabled. Instrumentation points hold a
 *     TraceScope (RAII span) or call traceInstant(); both start with
 *     one relaxed atomic load of the installed-recorder pointer and a
 *     branch on nullptr — no clock read, no allocation, nothing else.
 *     The serve/engine hot paths stay within the perf gates of
 *     bench_engine_scaling with tracing compiled in and disabled.
 *
 *  2. No locks on the hot path when enabled. Every emitting thread
 *     owns a private fixed-capacity ring of POD TraceEvents
 *     (registered once per thread under a mutex, then written
 *     lock-free: single producer, ring index arithmetic, one release
 *     store). A full ring drops the OLDEST events and counts them —
 *     tracing degrades by forgetting history, never by blocking the
 *     scheduler tick or an engine dispatch.
 *
 *  3. Deterministic structure. Event names are static string
 *     literals (identity-comparable, no interning table); payloads
 *     are a fixed set of typed int64 args (request id, batch size,
 *     MAC count, token count, ...). Timestamps come from one
 *     steady-clock epoch per recorder, so lanes from different
 *     threads align in the exported trace.
 *
 * The recorder is installed process-globally (installRecorder) so the
 * whole stack — serve::Server, BatchScheduler, KvBlockPool,
 * nn::ExecutionEngine, nn::InferenceSession — emits into the same
 * trace without threading a pointer through every layer. Exporters
 * (obs/trace_export.hh) turn a snapshot into Chrome/Perfetto
 * trace_event JSON, per-request text timelines, and per-phase
 * breakdown tables.
 *
 * Threading contract: emit from any thread; snapshot()/droppedEvents()
 * are intended for quiescent moments (after drain / between runs) —
 * they read other threads' rings through the published head counter
 * and may miss the very last in-flight event of a still-emitting
 * thread, never tear an already-published one.
 */

#ifndef LT_OBS_TRACE_HH
#define LT_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lt {
namespace obs {

/** Request-id payload value meaning "not tied to any request". */
constexpr uint64_t kNoRequest = ~0ull;

/** What one TraceEvent records. */
enum class EventType : uint8_t
{
    Span,    ///< a duration (Chrome "X"): ts_ns + dur_ns
    Instant, ///< a point in time (Chrome "i")
    Counter  ///< a sampled value (Chrome "C"): arg(0) is the sample
};

/**
 * One recorded event. POD on purpose: ring slots are overwritten in
 * place, and `name`/arg names must be string literals (or otherwise
 * outlive the recorder) — the recorder never copies or frees them.
 */
struct TraceEvent
{
    const char *name = nullptr;
    EventType type = EventType::Instant;
    uint64_t ts_ns = 0;  ///< since the recorder's epoch
    uint64_t dur_ns = 0; ///< Span only
    uint64_t request_id = kNoRequest;

    /** Up to kMaxArgs named int64 payload fields. */
    static constexpr size_t kMaxArgs = 3;
    const char *arg_names[kMaxArgs] = {nullptr, nullptr, nullptr};
    int64_t args[kMaxArgs] = {0, 0, 0};

    size_t
    numArgs() const
    {
        size_t n = 0;
        while (n < kMaxArgs && arg_names[n] != nullptr)
            ++n;
        return n;
    }
};

/**
 * One thread's private event ring. Single producer (the owning
 * thread); the recorder reads it through the published head counter.
 */
class ThreadSink
{
  public:
    ThreadSink(size_t capacity, size_t lane, std::string label)
        : ring_(capacity), lane_(lane), label_(std::move(label))
    {
    }

    /** Append one event, overwriting the oldest when full. */
    void
    emit(const TraceEvent &e)
    {
        const uint64_t h = head_.load(std::memory_order_relaxed);
        ring_[h % ring_.size()] = e;
        head_.store(h + 1, std::memory_order_release);
    }

    size_t lane() const { return lane_; }
    const std::string &label() const { return label_; }
    size_t capacity() const { return ring_.size(); }

    /** Events ever emitted (>= capacity means the ring wrapped). */
    uint64_t
    emitted() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Oldest events overwritten by drop-oldest wraparound. */
    uint64_t
    dropped() const
    {
        const uint64_t h = emitted();
        return h > ring_.size() ? h - ring_.size() : 0;
    }

    /** Copy the retained events, oldest first. */
    std::vector<TraceEvent> drainCopy() const;

  private:
    std::vector<TraceEvent> ring_;
    std::atomic<uint64_t> head_{0};
    size_t lane_;
    std::string label_;
};

/** Per-thread-ring trace recorder; see the file header. */
class TraceRecorder
{
  public:
    /**
     * @param events_per_thread ring capacity of each thread lane
     *        (fixed at registration; the memory bound is
     *        lanes x capacity x sizeof(TraceEvent)). Throws
     *        std::invalid_argument when zero.
     */
    explicit TraceRecorder(size_t events_per_thread = 1 << 16);
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * The calling thread's sink, registering it on first use (the
     * only mutex in the emit path, taken once per thread per
     * recorder).
     */
    ThreadSink &sink();

    /** Nanoseconds since this recorder's steady-clock epoch. */
    uint64_t
    nowNs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Total events dropped to ring wraparound, across all lanes. */
    uint64_t droppedEvents() const;

    /** Registered thread lanes so far. */
    size_t threadLanes() const;

    /** One lane's retained events plus its identity. */
    struct LaneSnapshot
    {
        size_t lane = 0;
        std::string label;
        uint64_t dropped = 0;
        std::vector<TraceEvent> events; ///< oldest first
    };

    /** Copy every lane's retained events (see threading contract). */
    std::vector<LaneSnapshot> snapshot() const;

    size_t eventsPerThread() const { return capacity_; }

  private:
    const size_t capacity_;
    const uint64_t id_; ///< process-unique, for thread-local caching
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadSink>> sinks_;
};

/**
 * The installed recorder, or nullptr when tracing is disabled — ONE
 * relaxed atomic load, the whole cost of a disabled instrumentation
 * point.
 */
TraceRecorder *recorder();

/**
 * Install (or, with nullptr, uninstall) the process-global recorder.
 * The caller keeps ownership and must uninstall before destroying it.
 * Not a hot-path function.
 */
void installRecorder(TraceRecorder *rec);

/** Emit an instant event on the calling thread's lane. */
inline void
traceInstant(const char *name, uint64_t request_id = kNoRequest,
             const char *a0_name = nullptr, int64_t a0 = 0,
             const char *a1_name = nullptr, int64_t a1 = 0)
{
    TraceRecorder *rec = recorder();
    if (rec == nullptr)
        return;
    TraceEvent e;
    e.name = name;
    e.type = EventType::Instant;
    e.ts_ns = rec->nowNs();
    e.request_id = request_id;
    e.arg_names[0] = a0_name;
    e.args[0] = a0;
    e.arg_names[1] = a1_name;
    e.args[1] = a1;
    rec->sink().emit(e);
}

/** Emit a counter sample (rendered as a track in Perfetto). */
inline void
traceCounter(const char *name, int64_t value)
{
    TraceRecorder *rec = recorder();
    if (rec == nullptr)
        return;
    TraceEvent e;
    e.name = name;
    e.type = EventType::Counter;
    e.ts_ns = rec->nowNs();
    e.arg_names[0] = "value";
    e.args[0] = value;
    rec->sink().emit(e);
}

/**
 * RAII span: captures the start time at construction and emits ONE
 * Span event (with duration) at destruction. When no recorder is
 * installed the constructor is a pointer load and a branch — hold one
 * unconditionally in hot paths.
 *
 *   obs::TraceScope span("tick/decode", obs::kNoRequest,
 *                        "batch", batch_size);
 *
 * Args may also be attached after construction via setArg (e.g. a MAC
 * count only known once the work ran).
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name,
                        uint64_t request_id = kNoRequest,
                        const char *a0_name = nullptr, int64_t a0 = 0,
                        const char *a1_name = nullptr, int64_t a1 = 0)
        : rec_(recorder())
    {
        if (rec_ == nullptr)
            return;
        event_.name = name;
        event_.type = EventType::Span;
        event_.request_id = request_id;
        event_.arg_names[0] = a0_name;
        event_.args[0] = a0;
        event_.arg_names[1] = a1_name;
        event_.args[1] = a1;
        event_.ts_ns = rec_->nowNs();
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attach or overwrite payload arg `i` (no-op when disabled). */
    void
    setArg(size_t i, const char *name, int64_t value)
    {
        if (rec_ == nullptr || i >= TraceEvent::kMaxArgs)
            return;
        event_.arg_names[i] = name;
        event_.args[i] = value;
    }

    /** True when a recorder is installed (work is being traced). */
    bool enabled() const { return rec_ != nullptr; }

    ~TraceScope()
    {
        if (rec_ == nullptr)
            return;
        event_.dur_ns = rec_->nowNs() - event_.ts_ns;
        rec_->sink().emit(event_);
    }

  private:
    TraceRecorder *rec_;
    TraceEvent event_;
};

} // namespace obs
} // namespace lt

#endif // LT_OBS_TRACE_HH
