#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string>

namespace lt {
namespace obs {

namespace {

// Lane (pid) assignment in the exported trace.
constexpr int kThreadPid = 1;
constexpr int kRequestPid = 2;

/** Escape a string for a JSON string literal. Event names are ASCII
 *  literals by contract, so this stays simple. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s != nullptr && *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
tsMicros(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

/** Emit one trace_event object (no trailing comma). `tid` is the
 *  track within `pid`. */
void
writeEvent(std::ostream &os, const TraceEvent &e, int pid,
           uint64_t tid)
{
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"ts\":" << tsMicros(e.ts_ns);
    switch (e.type) {
    case EventType::Span:
        os << ",\"ph\":\"X\",\"dur\":" << tsMicros(e.dur_ns);
        break;
    case EventType::Instant:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    case EventType::Counter:
        os << ",\"ph\":\"C\"";
        break;
    }
    os << ",\"args\":{";
    bool first = true;
    if (e.request_id != kNoRequest && e.type != EventType::Counter) {
        os << "\"request\":" << e.request_id;
        first = false;
    }
    for (size_t i = 0; i < e.numArgs(); ++i) {
        if (!first)
            os << ",";
        os << "\"" << jsonEscape(e.arg_names[i])
           << "\":" << e.args[i];
        first = false;
    }
    os << "}}";
}

void
writeMetadata(std::ostream &os, const char *field, int pid,
              bool with_tid, uint64_t tid, const std::string &name,
              bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << field << "\",\"ph\":\"M\",\"pid\":" << pid;
    if (with_tid)
        os << ",\"tid\":" << tid;
    os << ",\"args\":{\"name\":\"" << jsonEscape(name.c_str())
       << "\"}}";
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceRecorder::LaneSnapshot> &lanes)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;

    writeMetadata(os, "process_name", kThreadPid, false, 0,
                  "lt threads", first);
    writeMetadata(os, "process_name", kRequestPid, false, 0,
                  "lt requests", first);

    // One named track per recorded thread, plus one per request id
    // seen anywhere in the trace.
    std::map<uint64_t, uint64_t> request_ids; // id -> event count
    for (const auto &lane : lanes) {
        writeMetadata(os, "thread_name", kThreadPid, true, lane.lane,
                      lane.label, first);
        for (const auto &e : lane.events)
            if (e.request_id != kNoRequest)
                ++request_ids[e.request_id];
    }
    for (const auto &kv : request_ids)
        writeMetadata(os, "thread_name", kRequestPid, true, kv.first,
                      "request " + std::to_string(kv.first), first);

    for (const auto &lane : lanes) {
        for (const auto &e : lane.events) {
            os << ",\n";
            writeEvent(os, e, kThreadPid, lane.lane);
            // Mirror request-tagged events onto the request's own
            // virtual lane so its lifecycle reads horizontally.
            if (e.request_id != kNoRequest) {
                os << ",\n";
                writeEvent(os, e, kRequestPid, e.request_id);
            }
        }
    }
    os << "\n]}\n";
}

bool
writeChromeTraceFile(const std::string &path, const TraceRecorder &rec)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os, rec.snapshot());
    return static_cast<bool>(os);
}

void
writeRequestTimelines(std::ostream &os,
                      const std::vector<TraceRecorder::LaneSnapshot> &lanes)
{
    std::map<uint64_t, std::vector<TraceEvent>> per_request;
    for (const auto &lane : lanes)
        for (const auto &e : lane.events)
            if (e.request_id != kNoRequest)
                per_request[e.request_id].push_back(e);

    for (auto &kv : per_request) {
        auto &events = kv.second;
        std::stable_sort(events.begin(), events.end(),
                         [](const TraceEvent &a, const TraceEvent &b) {
                             return a.ts_ns < b.ts_ns;
                         });
        const uint64_t t0 = events.front().ts_ns;
        os << "request " << kv.first << ":\n";
        for (const auto &e : events) {
            char line[128];
            std::snprintf(line, sizeof(line), "  +%9.3f ms  %-18s",
                          static_cast<double>(e.ts_ns - t0) / 1e6,
                          e.name);
            os << line;
            if (e.type == EventType::Span) {
                std::snprintf(line, sizeof(line), " (%.3f ms)",
                              static_cast<double>(e.dur_ns) / 1e6);
                os << line;
            }
            for (size_t i = 0; i < e.numArgs(); ++i)
                os << "  " << e.arg_names[i] << "=" << e.args[i];
            os << "\n";
        }
    }
}

PhaseBreakdown
phaseBreakdown(const std::vector<TraceRecorder::LaneSnapshot> &lanes)
{
    double admission_incl = 0.0;
    PhaseBreakdown pb;
    for (const auto &lane : lanes) {
        for (const auto &e : lane.events) {
            if (e.type != EventType::Span)
                continue;
            const double ms = static_cast<double>(e.dur_ns) / 1e6;
            const std::string name = e.name;
            if (name == "tick/admission")
                admission_incl += ms;
            else if (name == "req/prefill")
                pb.prefill_ms += ms;
            else if (name == "tick/decode")
                pb.decode_ms += ms;
            else if (name == "pool/admit")
                pb.pool_ms += ms;
        }
    }
    // prefill and pool/admit spans nest inside tick/admission; strip
    // them so the four phases are disjoint and sum to accounted time.
    pb.admission_ms =
        std::max(0.0, admission_incl - pb.prefill_ms - pb.pool_ms);
    return pb;
}

void
writePhaseBreakdown(std::ostream &os, const PhaseBreakdown &pb)
{
    const double total = pb.totalMs();
    const struct
    {
        const char *name;
        double ms;
    } rows[] = {
        {"admission (queue/bookkeeping)", pb.admission_ms},
        {"prefill", pb.prefill_ms},
        {"fused decode", pb.decode_ms},
        {"kv-pool admit", pb.pool_ms},
    };
    os << "tick phase breakdown (span time, all ticks):\n";
    for (const auto &row : rows) {
        char line[128];
        std::snprintf(line, sizeof(line), "  %-30s %10.3f ms  %5.1f%%\n",
                      row.name, row.ms,
                      total > 0.0 ? 100.0 * row.ms / total : 0.0);
        os << line;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "  %-30s %10.3f ms\n", "total",
                  total);
    os << line;
}

} // namespace obs
} // namespace lt
