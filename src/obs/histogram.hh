/**
 * @file
 * obs::Histogram — fixed-size log-scaled latency histogram.
 *
 * Replaces the unbounded per-sample vectors serve::Metrics used to
 * keep for percentile estimation: memory is a fixed ~2 KB per
 * histogram regardless of how many samples a long-running server
 * records.
 *
 * Buckets are log2-scaled with a fixed number of buckets per octave
 * (default 8 → every bucket spans a 2^(1/8) ≈ 1.09x range, so any
 * percentile estimate is within ±4.4% of the true sample value —
 * tighter than run-to-run timing noise). The default range
 * [1e-4 ms, 1e5 ms] covers 100 ns to 100 s; samples outside it land
 * in dedicated under/overflow buckets and still count toward
 * percentile ranks. Exact min/max/sum/count are tracked alongside, so
 * estimates are clamped to the true observed range (and are *exact*
 * at the boundary ranks — p=0, p=100, and any p whose nearest rank is
 * the first or last sample, which covers p99 for N <= 100 — and
 * whenever one bucket holds the whole rank mass, e.g. repeated
 * identical samples).
 *
 * Not thread-safe; serve::Metrics guards it with its existing mutex.
 */

#ifndef LT_OBS_HISTOGRAM_HH
#define LT_OBS_HISTOGRAM_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace lt {
namespace obs {

class Histogram
{
  public:
    /**
     * @param lo lower edge of the first regular bucket (exclusive
     *        values below go to the underflow bucket)
     * @param hi values >= hi go to the overflow bucket
     * @param buckets_per_octave log2 resolution (relative error of a
     *        percentile estimate is about 2^(1/(2·bpo)) − 1)
     */
    explicit Histogram(double lo = 1e-4, double hi = 1e5,
                       unsigned buckets_per_octave = 8)
        : lo_(lo), hi_(hi), bpo_(buckets_per_octave)
    {
        if (!(lo > 0.0) || !(hi > lo) || bpo_ == 0)
            throw std::invalid_argument("Histogram: need 0 < lo < hi "
                                        "and buckets_per_octave > 0");
        const double octaves = std::log2(hi_ / lo_);
        num_regular_ =
            static_cast<size_t>(std::ceil(octaves * bpo_ - 1e-9));
        // [underflow][regular 0..n-1][overflow]
        counts_.assign(num_regular_ + 2, 0);
    }

    void
    add(double value)
    {
        ++counts_[slotFor(value)];
        ++count_;
        sum_ += value;
        min_ = count_ == 1 ? value : std::min(min_, value);
        max_ = count_ == 1 ? value : std::max(max_, value);
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Nearest-rank percentile estimate, p in [0, 100]. Walks bucket
     * counts to the bucket holding the rank-th sample and returns its
     * geometric midpoint, clamped to the exact observed [min, max].
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        p = std::min(100.0, std::max(0.0, p));
        // Same nearest-rank convention as the old sorted-vector code:
        // rank = ceil(p/100 * N), 1-based; p=0 -> first sample.
        uint64_t rank = static_cast<uint64_t>(
            std::ceil(p / 100.0 * static_cast<double>(count_)));
        rank = std::max<uint64_t>(rank, 1);
        // Boundary ranks are known exactly from the tracked extrema
        // (this also makes p99 exact whenever N <= 100, i.e. the
        // "small sample" regime the serve tests pin).
        if (rank == 1)
            return min_;
        if (rank >= count_)
            return max_;

        uint64_t seen = 0;
        for (size_t slot = 0; slot < counts_.size(); ++slot) {
            seen += counts_[slot];
            if (seen >= rank)
                return std::min(max_,
                                std::max(min_, representative(slot)));
        }
        return max_; // unreachable: seen == count_ >= rank
    }

    /** Number of regular buckets (excludes under/overflow). */
    size_t numBuckets() const { return num_regular_; }

    /** Inclusive lower edge of regular bucket `i`. */
    double
    bucketLo(size_t i) const
    {
        return lo_ * std::exp2(static_cast<double>(i) / bpo_);
    }

    /** Exclusive upper edge of regular bucket `i`. */
    double
    bucketHi(size_t i) const
    {
        return lo_ * std::exp2(static_cast<double>(i + 1) / bpo_);
    }

    uint64_t bucketCount(size_t i) const { return counts_[i + 1]; }
    uint64_t underflowCount() const { return counts_.front(); }
    uint64_t overflowCount() const { return counts_.back(); }

    /** Regular-bucket index a value maps to (underflow/overflow
     *  values are reported as 0 / numBuckets()-1 by slot clamping —
     *  use slots via add() for exact routing; this is for tests). */
    size_t
    bucketIndex(double value) const
    {
        const size_t slot = slotFor(value);
        if (slot == 0)
            return 0;
        if (slot == counts_.size() - 1)
            return num_regular_ - 1;
        return slot - 1;
    }

  private:
    size_t
    slotFor(double value) const
    {
        if (!(value >= lo_)) // catches NaN too -> underflow
            return 0;
        if (value >= hi_)
            return counts_.size() - 1;
        const double idx =
            std::floor(std::log2(value / lo_) * bpo_ + 1e-9);
        size_t i = static_cast<size_t>(std::max(0.0, idx));
        if (i >= num_regular_)
            i = num_regular_ - 1;
        return i + 1;
    }

    /** Representative value for slot: geometric bucket midpoint. */
    double
    representative(size_t slot) const
    {
        if (slot == 0)
            return min_; // underflow: all we know is "below lo"
        if (slot == counts_.size() - 1)
            return max_;
        const size_t i = slot - 1;
        return std::sqrt(bucketLo(i) * bucketHi(i));
    }

    double lo_;
    double hi_;
    unsigned bpo_;
    size_t num_regular_ = 0;
    std::vector<uint64_t> counts_;

    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace obs
} // namespace lt

#endif // LT_OBS_HISTOGRAM_HH
