#include "electronic_platforms.hh"

namespace lt {
namespace baselines {

double
ElectronicPlatform::latencyS(const nn::Workload &workload) const
{
    return dispatch_overhead_s +
           static_cast<double>(workload.totalMacs()) /
               effective_macs_per_s;
}

double
ElectronicPlatform::energyJ(const nn::Workload &workload) const
{
    return static_cast<double>(workload.totalMacs()) * energy_per_mac_j;
}

double
ElectronicPlatform::fps(const nn::Workload &workload) const
{
    return 1.0 / latencyS(workload);
}

ElectronicPlatform
a100Gpu()
{
    // 624 TOPS INT8 peak derated to ~8 % sustained batch-1 utilization;
    // ~2.5 pJ/MAC effective wall energy (300 W board at throughput).
    return {"A100-GPU", 25e12, 150e-6, 2.5e-12};
}

ElectronicPlatform
i7Cpu()
{
    // ~0.4 TMAC/s sustained AVX2; ~45 W package -> ~112 pJ/MAC.
    return {"i7-9750H-CPU", 0.4e12, 1e-3, 112e-12};
}

ElectronicPlatform
coralEdgeTpu()
{
    // 4 TOPS INT8 peak, ~2 W; ~25 % transformer utilization.
    return {"Coral-EdgeTPU", 1.0e12, 500e-6, 5.6e-12};
}

ElectronicPlatform
fpgaAccelerator()
{
    // ZCU102-class ViT accelerators: ~0.6 TMAC/s sustained at ~10 W.
    return {"FPGA-ViT-Acc", 0.6e12, 200e-6, 7.0e-12};
}

std::vector<ElectronicPlatform>
figure13Platforms()
{
    return {i7Cpu(), a100Gpu(), coralEdgeTpu(), fpgaAccelerator()};
}

} // namespace baselines
} // namespace lt
