/**
 * @file
 * PCM-crossbar photonic accelerator baseline (Feldmann et al. [16],
 * the remaining Table I design).
 *
 * Characteristics per Table I / Section II-C:
 *  - One-shot MM capable (a k x k crossbar of non-volatile PCM cells
 *    multiplies a k-vector batch per pass, like DPTC's crossbar).
 *  - Both operands positive-only (incoherent intensity computing):
 *    a full-range MM decomposes into (X+ - X-)(Y+ - Y-) and needs
 *    FOUR passes (X+Y+, X+Y-, X-Y+, X-Y-) plus digital recombination
 *    — the ">2-4x hardware cost" the paper quotes.
 *  - Weight-static with "Medium" mapping cost: PCM cells program in
 *    10 ns - 10 us (Section II-C); we take 100 ns per cell write,
 *    k^2 cells per tile, `write_parallelism` cells at once.
 *  - Non-volatile: ZERO static holding power (the one advantage over
 *    MRR locking) — but every weight *switch* stalls the core.
 */

#ifndef LT_BASELINES_PCM_ACCELERATOR_HH
#define LT_BASELINES_PCM_ACCELERATOR_HH

#include "arch/report.hh"
#include "nn/workload.hh"
#include "photonics/device_params.hh"
#include "util/units.hh"

namespace lt {
namespace baselines {

/** Configuration of the PCM-crossbar baseline system. */
struct PcmConfig
{
    std::string name = "PCM-crossbar";
    size_t num_ptcs = 12;  ///< area-matched to LT-B's photonic budget
    size_t k = 12;         ///< crossbar dimension (k x k MM per pass)
    int precision_bits = 4;
    double clock_hz = units::GHz(5);

    /**
     * Positive-only operands: full-range MM needs all four sign
     * quadrants (Section II-C: "processing X+Y+, X+Y-, X-Y+ and X-Y-
     * separately").
     */
    size_t range_decomposition_passes = 4;

    /** PCM cell write time and how many cells program in parallel. */
    double cell_write_s = 100e-9;
    size_t write_parallelism = 12; // one row at a time

    double sram_pj_per_bit = 0.05;
    double hbm_pj_per_bit = 3.7;
};

/** Behavioural cost model of the PCM-crossbar accelerator. */
class PcmAccelerator
{
  public:
    explicit PcmAccelerator(const PcmConfig &cfg = PcmConfig{},
                            const photonics::DeviceLibrary &lib =
                                photonics::DeviceLibrary::defaults());

    const PcmConfig &config() const { return cfg_; }

    arch::PerfReport evaluateGemm(const nn::GemmOp &op) const;
    arch::PerfReport evaluateOps(const std::vector<nn::GemmOp> &ops,
                                 const std::string &label) const;
    arch::PerfReport evaluate(const nn::Workload &workload) const;

    /** Per-tile reprogramming stall (k^2 cell writes, row-parallel). */
    double tileWriteTimeS() const;

  private:
    PcmConfig cfg_;
    const photonics::DeviceLibrary &lib_;

    double e_dac_;
    double e_mzm_;
    double e_det_;
    double e_adc_;
    double e_cell_write_;
    double p_laser_;
};

} // namespace baselines
} // namespace lt

#endif // LT_BASELINES_PCM_ACCELERATOR_HH
