/**
 * @file
 * MRR-bank photonic accelerator baseline (Tait et al. [52], as
 * modelled in Section V-C).
 *
 * Characteristics the paper's comparison hinges on:
 *  - MVM engines: a k x k weight bank produces k outputs per cycle
 *    from k inputs (k' = 1 in the Eq. 11 tiling, so T picks up a
 *    full factor of n).
 *  - Weight-static dataflow: the op1 DAC/modulation cost is amortized
 *    over the m input vectors streamed per weight tile, BUT every
 *    loaded ring burns mW-level locking power continuously, so the
 *    locking energy scales with total compute time (~m*d*n).
 *  - Incoherent (intensity) computing: at least one operand must be
 *    non-negative, so full-range inputs are decomposed into
 *    (X+ - X-), doubling the passes and with them the op2 encoding,
 *    detection, and ADC costs.
 *
 * The PTC count is area-matched to LT-B (Section V-C): each MRR PTC
 * needs its own comb source and thermally isolated ring placement,
 * which yields 14 PTCs in the LT-B photonic area budget and
 * reproduces the paper's ~12.8x latency gap.
 */

#ifndef LT_BASELINES_MRR_ACCELERATOR_HH
#define LT_BASELINES_MRR_ACCELERATOR_HH

#include "arch/report.hh"
#include "nn/workload.hh"
#include "photonics/device_params.hh"
#include "util/units.hh"

namespace lt {
namespace baselines {

/** Configuration of the MRR-bank baseline system. */
struct MrrConfig
{
    std::string name = "MRR-bank";
    size_t num_ptcs = 14;  ///< area-matched to LT-B (see file comment)
    size_t k = 12;         ///< bank dimension (k x k MVM)
    int precision_bits = 4;
    double clock_hz = units::GHz(5);

    /** Full-range decomposition doubles the dynamic-operand passes. */
    size_t range_decomposition_passes = 2;

    /** Thermally isolated ring cell pitch (area model); 95 um pitch
     * puts 14 PTCs at LT-B's photonic area budget (~42 mm^2). */
    double ring_cell_m2 = units::um2(95 * 95);

    // Memory-system energetics (same substrate as LT).
    double sram_pj_per_bit = 0.05;
    double hbm_pj_per_bit = 3.7;
};

/** Behavioural cost model of the MRR-bank accelerator. */
class MrrAccelerator
{
  public:
    explicit MrrAccelerator(const MrrConfig &cfg = MrrConfig{},
                            const photonics::DeviceLibrary &lib =
                                photonics::DeviceLibrary::defaults());

    const MrrConfig &config() const { return cfg_; }

    arch::PerfReport evaluateGemm(const nn::GemmOp &op) const;
    arch::PerfReport evaluateOps(const std::vector<nn::GemmOp> &ops,
                                 const std::string &label) const;
    arch::PerfReport evaluate(const nn::Workload &workload) const;
    arch::PerfReport evaluateModule(const nn::Workload &workload,
                                    nn::Module module) const;

    /** Chip area of the baseline (for the area-matching check). */
    double areaM2() const;

    /** Total laser power [W]. */
    double laserPowerW() const;

  private:
    MrrConfig cfg_;
    const photonics::DeviceLibrary &lib_;

    double e_dac_;
    double e_mzm_;
    double e_ring_tune_;
    double e_det_;
    double e_adc_;
    double p_locking_;  ///< all loaded rings
    double p_laser_;
};

} // namespace baselines
} // namespace lt

#endif // LT_BASELINES_MRR_ACCELERATOR_HH
