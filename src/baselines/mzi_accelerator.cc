#include "mzi_accelerator.hh"

#include <cmath>

#include "arch/converters.hh"
#include "photonics/laser.hh"
#include "photonics/loss_chain.hh"

namespace lt {
namespace baselines {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

MziAccelerator::MziAccelerator(const MziConfig &cfg,
                               const photonics::DeviceLibrary &lib)
    : cfg_(cfg), lib_(lib)
{
    const double f = cfg.clock_hz;
    e_dac_ = arch::dacModel(lib).energyPerConversionJ(cfg.precision_bits);
    e_mzm_ = lib.mzm.power_w / f;
    e_det_ = (2.0 * lib.photodetector.power_w + lib.tia.power_w) / f;
    e_adc_ = arch::adcModel(lib).energyPerConversionJ(cfg.precision_bits);
    // MEMS phase shifters are electrostatic: ~10 fJ per actuation.
    e_ps_program_ = 10e-15;

    photonics::LossChain chain;
    // Light crosses the U mesh and the V mesh (k columns each), every
    // column being one MZI = 2 couplers + 2 phase shifters.
    double per_mzi =
        2.0 * lib.coupler.il_db + 2.0 * lib.mems_ps.il_db;
    chain.add("U mesh", per_mzi, static_cast<int>(cfg.k))
        .add("V mesh", per_mzi, static_cast<int>(cfg.k))
        .add("input modulator", lib.mzm.il_db)
        .add("fiber/facet coupling", 1.0);
    photonics::LaserModel laser(lib, -3.5 /* same margin as LT */);
    p_laser_ = laser.electricalPowerW(
        static_cast<int>(cfg.num_ptcs * cfg.k), chain,
        cfg.precision_bits);
}

double
MziAccelerator::meshLossDb() const
{
    double per_mzi =
        2.0 * lib_.coupler.il_db + 2.0 * lib_.mems_ps.il_db;
    return 2.0 * static_cast<double>(cfg_.k) * per_mzi +
           lib_.mzm.il_db + 1.0;
}

double
MziAccelerator::laserPowerW() const
{
    return p_laser_;
}

double
MziAccelerator::areaM2() const
{
    // Two k x k triangular meshes: ~k(k-1) MZIs total, plus per-port
    // converters and a single-wavelength laser per PTC.
    double per_ptc =
        static_cast<double>(cfg_.k * (cfg_.k - 1)) * cfg_.mesh_cell_m2 +
        static_cast<double>(cfg_.k) *
            (arch::dacModel(lib_).areaM2() + arch::adcModel(lib_).areaM2() +
             lib_.mzm.area_m2 + lib_.tia.area_m2 +
             2.0 * lib_.photodetector.area_m2) +
        lib_.laser_area_m2;
    return static_cast<double>(cfg_.num_ptcs) * per_ptc;
}

arch::PerfReport
MziAccelerator::evaluateGemm(const nn::GemmOp &op) const
{
    const size_t k = cfg_.k;
    const size_t weight_tiles =
        ceilDiv(op.k, k) * ceilDiv(op.n, k) * op.count;
    const size_t compute_cycles_raw = weight_tiles * op.m;
    const double t_compute =
        static_cast<double>(ceilDiv(compute_cycles_raw, cfg_.num_ptcs)) /
        cfg_.clock_hz;
    const double t_reconfig =
        static_cast<double>(weight_tiles) * cfg_.reconfig_s /
        static_cast<double>(cfg_.num_ptcs);

    arch::PerfReport r;
    r.accelerator = cfg_.name;
    r.workload = nn::toString(op.kind);
    r.latency.compute = t_compute;
    r.latency.reconfig = t_reconfig;
    if (op.dynamic) {
        // Forcing dynamic MM onto the MZI array: the SVD + phase
        // decomposition must run at inference time, per tile.
        r.latency.mapping = static_cast<double>(weight_tiles) *
                            cfg_.mapping_s_per_tile /
                            static_cast<double>(cfg_.num_ptcs);
    }

    auto &e = r.energy;
    // Laser can be gated during stalls except for a bias fraction.
    e.laser = p_laser_ *
              (t_compute + cfg_.laser_stall_duty * t_reconfig);

    // op1: programming ~k^2 phases per tile (DAC writes + MEMS moves).
    const double phase_writes = static_cast<double>(weight_tiles) *
                                static_cast<double>(k * k);
    e.op1_dac = phase_writes * e_dac_;
    e.op1_mod = phase_writes * e_ps_program_;

    // op2: k input encodings per streamed vector.
    const double input_events =
        static_cast<double>(compute_cycles_raw) * static_cast<double>(k);
    e.op2_dac = input_events * e_dac_;
    e.op2_mod = input_events * e_mzm_;

    const double outputs = input_events;
    e.detection = outputs * e_det_;
    e.adc = outputs * e_adc_;

    const int bits = cfg_.precision_bits;
    double sram_bits =
        (input_events + phase_writes) * bits + outputs * 2.0 * bits;
    double hbm_bits =
        op.dynamic ? 0.0
                   : static_cast<double>(op.k) *
                         static_cast<double>(op.n) *
                         static_cast<double>(op.count) * bits;
    e.data_movement = sram_bits * cfg_.sram_pj_per_bit * 1e-12 +
                      hbm_bits * cfg_.hbm_pj_per_bit * 1e-12;
    return r;
}

arch::PerfReport
MziAccelerator::evaluateOps(const std::vector<nn::GemmOp> &ops,
                            const std::string &label) const
{
    arch::PerfReport total;
    total.accelerator = cfg_.name;
    total.workload = label;
    for (const auto &op : ops)
        total += evaluateGemm(op);
    return total;
}

arch::PerfReport
MziAccelerator::evaluate(const nn::Workload &workload,
                         const MrrAccelerator &mha_fallback) const
{
    arch::PerfReport total;
    total.accelerator = cfg_.name + "+MRR(MHA)";
    total.workload = workload.model;
    for (const auto &op : workload.ops) {
        total += op.dynamic ? mha_fallback.evaluateGemm(op)
                            : evaluateGemm(op);
    }
    return total;
}

arch::PerfReport
MziAccelerator::evaluateModule(const nn::Workload &workload,
                               nn::Module module,
                               const MrrAccelerator &fallback) const
{
    arch::PerfReport total;
    total.accelerator = cfg_.name + "+MRR(MHA)";
    total.workload = workload.model + "/" +
                     std::string(nn::toString(module));
    for (const auto &op : workload.moduleOps(module)) {
        total += op.dynamic ? fallback.evaluateGemm(op)
                            : evaluateGemm(op);
    }
    return total;
}

} // namespace baselines
} // namespace lt
