#include "pcm_accelerator.hh"

#include <cmath>

#include "arch/converters.hh"
#include "photonics/laser.hh"
#include "photonics/loss_chain.hh"

namespace lt {
namespace baselines {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

PcmAccelerator::PcmAccelerator(const PcmConfig &cfg,
                               const photonics::DeviceLibrary &lib)
    : cfg_(cfg), lib_(lib)
{
    const double f = cfg.clock_hz;
    e_dac_ = arch::dacModel(lib).energyPerConversionJ(cfg.precision_bits);
    e_mzm_ = lib.mzm.power_w / f;
    e_det_ = (2.0 * lib.photodetector.power_w + lib.tia.power_w) / f;
    e_adc_ = arch::adcModel(lib).energyPerConversionJ(cfg.precision_bits);
    // PCM amorphization/crystallization pulse: ~50 pJ per cell write.
    e_cell_write_ = 50e-12;

    // Laser: k wavelengths through modulator + crossbar cell + combine.
    photonics::LossChain chain;
    chain.add("input modulator", lib.mzm.il_db)
        .add("WDM mux", lib.microdisk.il_db)
        .addSplit("row broadcast", static_cast<int>(cfg.k),
                  lib.y_branch.il_db)
        .add("PCM cell", 1.0) // absorptive weighting element
        .add("waveguide propagation", 0.5);
    photonics::LaserModel laser(lib, -3.5);
    p_laser_ = laser.electricalPowerW(
        static_cast<int>(cfg.num_ptcs * cfg.k), chain,
        cfg.precision_bits);
}

double
PcmAccelerator::tileWriteTimeS() const
{
    double rows = std::ceil(static_cast<double>(cfg_.k * cfg_.k) /
                            static_cast<double>(cfg_.write_parallelism));
    return rows * cfg_.cell_write_s;
}

arch::PerfReport
PcmAccelerator::evaluateGemm(const nn::GemmOp &op) const
{
    // GEMM [m,k]x[k,n]: the [k,n] operand lives in PCM cells; the
    // [m,k] operand streams as light, m rows per tile pass. Full-range
    // inputs require 4 sign-quadrant passes.
    const size_t k = cfg_.k;
    const size_t weight_tiles =
        ceilDiv(op.k, k) * ceilDiv(op.n, k) * op.count;
    const size_t passes = cfg_.range_decomposition_passes;
    const size_t cycles_raw = weight_tiles * op.m * passes;
    const size_t cycles = ceilDiv(cycles_raw, cfg_.num_ptcs);
    const double t_compute = static_cast<double>(cycles) / cfg_.clock_hz;
    // Every distinct weight tile must be written into the PCM cells.
    // For dynamic operands this happens at runtime (the Table I
    // "Medium" mapping cost becomes a stall); for static weights it
    // still serializes the tiled GEMM because tiles vastly outnumber
    // crossbars.
    const double t_write =
        static_cast<double>(weight_tiles) * tileWriteTimeS() /
        static_cast<double>(cfg_.num_ptcs);

    arch::PerfReport r;
    r.accelerator = cfg_.name;
    r.workload = nn::toString(op.kind);
    r.latency.compute = t_compute;
    r.latency.reconfig = t_write;

    auto &e = r.energy;
    const double weight_values = static_cast<double>(weight_tiles) *
                                 static_cast<double>(k * k);
    e.op1_dac = weight_values * e_dac_;
    e.op1_mod = weight_values * e_cell_write_; // non-volatile: no hold
    const double input_events =
        static_cast<double>(cycles_raw) * static_cast<double>(k);
    e.op2_dac = input_events * e_dac_;
    e.op2_mod = input_events * e_mzm_;
    // One-shot MM: k^2 outputs per pass (k per wavelength column).
    const double outputs = static_cast<double>(cycles_raw) *
                           static_cast<double>(k);
    e.detection = outputs * e_det_;
    e.adc = outputs * e_adc_;
    e.laser = p_laser_ * t_compute;

    const int bits = cfg_.precision_bits;
    double sram_bits =
        (input_events + weight_values) * bits + outputs * 2.0 * bits;
    double hbm_bits =
        op.dynamic ? 0.0
                   : static_cast<double>(op.k) *
                         static_cast<double>(op.n) *
                         static_cast<double>(op.count) * bits;
    e.data_movement = sram_bits * cfg_.sram_pj_per_bit * 1e-12 +
                      hbm_bits * cfg_.hbm_pj_per_bit * 1e-12;
    return r;
}

arch::PerfReport
PcmAccelerator::evaluateOps(const std::vector<nn::GemmOp> &ops,
                            const std::string &label) const
{
    arch::PerfReport total;
    total.accelerator = cfg_.name;
    total.workload = label;
    for (const auto &op : ops)
        total += evaluateGemm(op);
    return total;
}

arch::PerfReport
PcmAccelerator::evaluate(const nn::Workload &workload) const
{
    return evaluateOps(workload.ops, workload.model);
}

} // namespace baselines
} // namespace lt
