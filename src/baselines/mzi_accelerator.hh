/**
 * @file
 * MZI-array photonic accelerator baseline (Shen et al. [47], as
 * modelled in Section V-C).
 *
 * Characteristics:
 *  - k x k unitary meshes programmed via SVD + Clements phase
 *    decomposition; weights are static during inference, so mapping
 *    runs offline — but every *tile switch* still pays the 2 us MEMS
 *    phase-shifter response time, which dominates latency for tiled
 *    GEMMs (the paper's DeiT-T FFN = 6.27 ms is exactly
 *    2 * 12 layers * 1024 tiles * (2 us + 197 cycles) / 8 PTCs).
 *  - Deeply cascaded couplers: the light traverses ~2k MZI columns
 *    (U and V meshes), so insertion loss — and with it laser power —
 *    grows linearly in dB, i.e. exponentially in linear terms. This
 *    is why the MZI baseline loses even on weight-static layers.
 *  - Dynamic MM (attention) is unsupported: real-time SVD mapping
 *    takes ~ms per tile (measured by bench_svd_mapping_cost with our
 *    own Jacobi SVD + Clements decomposition). The evaluate() wrapper
 *    delegates dynamic ops to an MRR-bank instance, as the paper does.
 */

#ifndef LT_BASELINES_MZI_ACCELERATOR_HH
#define LT_BASELINES_MZI_ACCELERATOR_HH

#include <optional>

#include "baselines/mrr_accelerator.hh"

namespace lt {
namespace baselines {

/** Configuration of the MZI-array baseline system. */
struct MziConfig
{
    std::string name = "MZI-array";
    size_t num_ptcs = 8;   ///< area-matched to LT-B
    size_t k = 12;         ///< mesh dimension
    int precision_bits = 4;
    double clock_hz = units::GHz(5);

    /** MEMS phase-shifter reconfiguration time per tile switch. */
    double reconfig_s = units::us(2);

    /**
     * Fraction of reconfiguration stalls during which the laser
     * cannot be fully gated (bias / thermal stability); calibration
     * constant documented in EXPERIMENTS.md.
     */
    double laser_stall_duty = 0.05;

    /**
     * Measured CPU time of SVD + phase decomposition per k x k tile
     * (paper: ~1.5 ms at 12x12). Only charged to *dynamic* operand
     * mapping; static weights are mapped offline.
     */
    double mapping_s_per_tile = units::ms(1.5);

    /**
     * Mesh cell footprint (MZI + isolation + routing), set so that
     * 8 PTCs of two 12x12 triangular meshes occupy the same photonic
     * area budget as LT-B (~42 mm^2 after memory and digital units).
     */
    double mesh_cell_m2 = units::um2(38000);

    double sram_pj_per_bit = 0.05;
    double hbm_pj_per_bit = 3.7;
};

/** Behavioural cost model of the MZI-array accelerator. */
class MziAccelerator
{
  public:
    explicit MziAccelerator(const MziConfig &cfg = MziConfig{},
                            const photonics::DeviceLibrary &lib =
                                photonics::DeviceLibrary::defaults());

    const MziConfig &config() const { return cfg_; }

    /**
     * Cost of one weight-static GEMM. Calling this with a dynamic op
     * models *forcing* attention onto the MZI array: the SVD mapping
     * latency is charged per tile (the "system stall" scenario of
     * Section II-C).
     */
    arch::PerfReport evaluateGemm(const nn::GemmOp &op) const;

    arch::PerfReport evaluateOps(const std::vector<nn::GemmOp> &ops,
                                 const std::string &label) const;

    /**
     * Full-model evaluation: static ops on the MZI array, dynamic ops
     * delegated to the given MRR bank (the paper's Table V setup).
     */
    arch::PerfReport evaluate(const nn::Workload &workload,
                              const MrrAccelerator &mha_fallback) const;

    arch::PerfReport evaluateModule(const nn::Workload &workload,
                                    nn::Module module,
                                    const MrrAccelerator &fallback) const;

    /** Chip area (for the area-matching check). */
    double areaM2() const;

    /** Total laser power [W] — exponential in mesh depth. */
    double laserPowerW() const;

    /** Worst-case insertion loss through the cascaded meshes [dB]. */
    double meshLossDb() const;

  private:
    MziConfig cfg_;
    const photonics::DeviceLibrary &lib_;

    double e_dac_;
    double e_mzm_;
    double e_det_;
    double e_adc_;
    double e_ps_program_;  ///< MEMS actuation energy per phase write
    double p_laser_;
};

} // namespace baselines
} // namespace lt

#endif // LT_BASELINES_MZI_ACCELERATOR_HH
