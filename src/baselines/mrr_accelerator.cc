#include "mrr_accelerator.hh"

#include <cmath>

#include "arch/converters.hh"
#include "photonics/laser.hh"
#include "photonics/loss_chain.hh"
#include "util/logging.hh"

namespace lt {
namespace baselines {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

} // namespace

MrrAccelerator::MrrAccelerator(const MrrConfig &cfg,
                               const photonics::DeviceLibrary &lib)
    : cfg_(cfg), lib_(lib)
{
    const double f = cfg.clock_hz;
    e_dac_ = arch::dacModel(lib).energyPerConversionJ(cfg.precision_bits);
    e_mzm_ = lib.mzm.power_w / f;
    e_ring_tune_ = lib.mrr.power_w / f;
    e_det_ = (2.0 * lib.photodetector.power_w + lib.tia.power_w) / f;
    e_adc_ = arch::adcModel(lib).energyPerConversionJ(cfg.precision_bits);
    // Every ring of every loaded bank is actively locked.
    p_locking_ = static_cast<double>(cfg.num_ptcs * cfg.k * cfg.k) *
                 lib.mrr_locking_power_w;

    // Laser: k wavelengths per PTC, broadcast to the k banks.
    photonics::LossChain chain;
    chain.add("input modulator (MRR)", lib.mrr.il_db)
        .add("WDM mux", lib.microdisk.il_db)
        .addSplit("bank broadcast", static_cast<int>(cfg.k),
                  lib.y_branch.il_db)
        .add("weight ring", lib.mrr.il_db)
        .add("waveguide propagation", 0.5);
    photonics::LaserModel laser(lib, -3.5 /* same margin as LT */);
    p_laser_ = laser.electricalPowerW(
        static_cast<int>(cfg.num_ptcs * cfg.k), chain,
        cfg.precision_bits);
}

double
MrrAccelerator::areaM2() const
{
    // Rings at thermal-isolation pitch, per-PTC converters, and one
    // comb source per PTC (every bank needs the multi-wavelength
    // carrier locally).
    double per_ptc =
        static_cast<double>(cfg_.k * cfg_.k) * cfg_.ring_cell_m2 +
        static_cast<double>(cfg_.k) *
            (arch::dacModel(lib_).areaM2() + arch::adcModel(lib_).areaM2() +
             lib_.mzm.area_m2 + lib_.tia.area_m2 +
             2.0 * lib_.photodetector.area_m2) +
        lib_.micro_comb.area_m2 + lib_.laser_area_m2;
    return static_cast<double>(cfg_.num_ptcs) * per_ptc;
}

double
MrrAccelerator::laserPowerW() const
{
    return p_laser_;
}

arch::PerfReport
MrrAccelerator::evaluateGemm(const nn::GemmOp &op) const
{
    // GEMM [m,k]x[k,n]: op1 = the [k,n] operand held in the weight
    // banks (weights for linear layers, K^T / V for attention), op2 =
    // the [m,k] operand streamed as light.
    const size_t k = cfg_.k;
    const size_t weight_tiles = ceilDiv(op.k, k) * ceilDiv(op.n, k);
    const size_t passes = cfg_.range_decomposition_passes;
    const size_t cycles_raw =
        weight_tiles * op.m * passes * op.count;
    const size_t cycles = ceilDiv(cycles_raw, cfg_.num_ptcs);
    const double t = static_cast<double>(cycles) / cfg_.clock_hz;

    arch::PerfReport r;
    r.accelerator = cfg_.name;
    r.workload = nn::toString(op.kind);
    r.latency.compute = t;

    auto &e = r.energy;
    // op1: programming each weight tile once (amortized over m), plus
    // the continuous locking power — the dominant, unamortizable term.
    const double weight_values = static_cast<double>(weight_tiles) *
                                 static_cast<double>(k * k) *
                                 static_cast<double>(op.count);
    e.op1_dac = weight_values * e_dac_;
    e.op1_mod = weight_values * e_ring_tune_ + p_locking_ * t;

    // op2: k input encodings per PTC-cycle, doubled by decomposition
    // (already folded into cycles_raw).
    const double input_events =
        static_cast<double>(cycles_raw) * static_cast<double>(k);
    e.op2_dac = input_events * e_dac_;
    e.op2_mod = input_events * e_mzm_;

    // Detection + A/D: k outputs per PTC-cycle, both passes.
    const double outputs = input_events; // k outputs per cycle too
    e.detection = outputs * e_det_;
    e.adc = outputs * e_adc_;

    e.laser = p_laser_ * t;

    const int bits = cfg_.precision_bits;
    double sram_bits = (input_events + weight_values) * bits +
                       outputs * 2.0 * bits;
    double hbm_bits =
        op.dynamic ? 0.0
                   : static_cast<double>(op.k) *
                         static_cast<double>(op.n) *
                         static_cast<double>(op.count) * bits;
    e.data_movement = sram_bits * cfg_.sram_pj_per_bit * 1e-12 +
                      hbm_bits * cfg_.hbm_pj_per_bit * 1e-12;
    return r;
}

arch::PerfReport
MrrAccelerator::evaluateOps(const std::vector<nn::GemmOp> &ops,
                            const std::string &label) const
{
    arch::PerfReport total;
    total.accelerator = cfg_.name;
    total.workload = label;
    for (const auto &op : ops)
        total += evaluateGemm(op);
    return total;
}

arch::PerfReport
MrrAccelerator::evaluate(const nn::Workload &workload) const
{
    return evaluateOps(workload.ops, workload.model);
}

arch::PerfReport
MrrAccelerator::evaluateModule(const nn::Workload &workload,
                               nn::Module module) const
{
    return evaluateOps(workload.moduleOps(module),
                       workload.model + "/" +
                           std::string(nn::toString(module)));
}

} // namespace baselines
} // namespace lt
