/**
 * @file
 * Electronic platform reference models for the Fig. 13 comparison.
 *
 * SUBSTITUTION NOTE (see DESIGN.md section 4): the paper measured a
 * physical A100 GPU, a Core i7-9750H CPU, a Coral Edge TPU and cited
 * FPGA accelerator papers (Auto-ViT-Acc, HEATViT). None of that
 * hardware is available offline, so each platform is modelled with a
 * small roofline: per-inference latency = dispatch overhead +
 * MACs / effective-throughput, and energy = MACs * effective
 * energy-per-MAC. The effective parameters are set from the public
 * spec sheets derated to transformer-inference utilization, then
 * calibrated so the paper's headline relationships hold (lowest
 * energy on LT with ~6.6x / ~18x / ~20x / >300x gaps vs GPU / TPU /
 * FPGA / CPU, and LT achieving the highest FPS). The point of the
 * figure — ordering and orders of magnitude between platform classes
 * — is preserved; users can substitute their own measurements.
 */

#ifndef LT_BASELINES_ELECTRONIC_PLATFORMS_HH
#define LT_BASELINES_ELECTRONIC_PLATFORMS_HH

#include <string>
#include <vector>

#include "nn/workload.hh"

namespace lt {
namespace baselines {

/** Roofline-style electronic platform model. */
struct ElectronicPlatform
{
    std::string name;
    double effective_macs_per_s;  ///< sustained, transformer inference
    double dispatch_overhead_s;   ///< per-inference fixed cost
    double energy_per_mac_j;      ///< wall energy, all components

    /** Batch-1 inference latency for a workload [s]. */
    double latencyS(const nn::Workload &workload) const;

    /** Per-inference energy [J]. */
    double energyJ(const nn::Workload &workload) const;

    /** Frames (inferences) per second. */
    double fps(const nn::Workload &workload) const;
};

/** Nvidia A100 (AMP INT8/FP16 inference). */
ElectronicPlatform a100Gpu();

/** Intel Core i7-9750H (AVX2). */
ElectronicPlatform i7Cpu();

/** Google Coral Edge TPU (INT8). */
ElectronicPlatform coralEdgeTpu();

/** FPGA transformer accelerators (Auto-ViT-Acc / HEATViT class). */
ElectronicPlatform fpgaAccelerator();

/** All four, in the paper's Fig. 13 order. */
std::vector<ElectronicPlatform> figure13Platforms();

} // namespace baselines
} // namespace lt

#endif // LT_BASELINES_ELECTRONIC_PLATFORMS_HH
