/**
 * @file
 * Photonic/electronic component parameter registry (paper Table III).
 *
 * Every value is tagged with the paper's citation. Units follow the
 * project convention: watts, square meters, seconds, hertz; insertion
 * loss (IL) stays in dB because loss chains accumulate in dB.
 */

#ifndef LT_PHOTONICS_DEVICE_PARAMS_HH
#define LT_PHOTONICS_DEVICE_PARAMS_HH

#include <string>

#include "util/units.hh"

namespace lt {
namespace photonics {

/** Data converter design point (power is at the listed sample rate). */
struct ConverterParams
{
    int precision_bits;
    double power_w;
    double sample_rate_hz;
    double area_m2;
};

/** A generic optical component: static power, loss, footprint. */
struct OpticalParams
{
    double power_w = 0.0;       ///< static/tuning/locking power
    double il_db = 0.0;         ///< insertion loss
    double area_m2 = 0.0;       ///< footprint
};

/**
 * The full Table III component library. Defaults reproduce the paper's
 * adopted parameters; individual fields can be overridden for design
 * space exploration.
 */
struct DeviceLibrary
{
    /** DAC [Caragiulo et al., VLSI'20]: 8-bit, 50 mW @ 14 GS/s. */
    ConverterParams dac{8, units::mW(50), units::giga * 14.0,
                        units::um2(11000)};

    /** ADC [Liu et al., ISSCC'22]: 8-bit, 14.8 mW @ 10 GS/s. */
    ConverterParams adc{8, units::mW(14.8), units::giga * 10.0,
                        units::um2(2850)};

    /** TIA [Rakowski et al., VLSI'18]: 3 mW, < 50 um^2. */
    OpticalParams tia{units::mW(3), 0.0, units::um2(50)};

    /**
     * Microdisk filter [Timurdogan et al., Nat. Commun.'14]:
     * 0.275 mW locking, 0.93 dB IL, 4.8 x 4.8 um^2, FSR 5.6 THz.
     */
    OpticalParams microdisk{units::mW(0.275), 0.93, units::um2(4.8 * 4.8)};
    double microdisk_fsr_hz = 5.6e12;

    /**
     * Microring resonator: 0.21 mW tuning, 1.2 mW / 0.5 FSR locking
     * [Streshinsky et al.], 0.95 dB IL, 9.66 x 9.66 um^2 [Pintus et al.].
     * Used by the MRR-bank baseline.
     */
    OpticalParams mrr{units::mW(0.21), 0.95, units::um2(9.66 * 9.66)};
    double mrr_locking_power_w = units::mW(1.2);

    /**
     * Mach-Zehnder modulator: 2.25 mW tuning [Dong et al.], 1.2 dB IL and
     * 260 x 20 um^2 [Akiyama et al.].
     */
    OpticalParams mzm{units::mW(2.25), 1.2, units::um2(260 * 20)};

    /** Directional coupler [Ye & Dai]: 0.33 dB IL, 5.25 x 2.4 um^2. */
    OpticalParams coupler{0.0, 0.33, units::um2(5.25 * 2.4)};

    /**
     * MEMS phase shifter [Quack et al.]: 0.33 dB IL, 100 x 45 um^2,
     * 2 us response time (this response time is what stalls the MZI
     * baseline on weight switches).
     */
    OpticalParams mems_ps{0.0, 0.33, units::um2(100 * 45)};
    double mems_ps_response_s = units::us(2);

    /**
     * Photodetector [Huang et al.]: 1.1 mW, -25 dBm sensitivity,
     * 4 x 10 um^2.
     */
    OpticalParams photodetector{units::mW(1.1), 0.0, units::um2(4 * 10)};
    double pd_sensitivity_dbm = -25.0;

    /** Y-branch splitter [Nair & Menard]: 0.3 dB IL, 1.8 x 1.3 um^2. */
    OpticalParams y_branch{0.0, 0.3, units::um2(1.8 * 1.3)};

    /** Waveguide crossing (typical SOI): ~0.02 dB IL. */
    OpticalParams crossing{0.0, 0.02, units::um2(8 * 8)};

    /** Micro-comb source [Xu et al., Nature'21]: 1184 x 1184 um^2. */
    OpticalParams micro_comb{0.0, 0.0, units::um2(1184.0 * 1184.0)};

    /** On-chip laser: 20 % wall-plug efficiency, 400 x 300 um^2. */
    double laser_wall_plug_efficiency = 0.2;
    double laser_area_m2 = units::um2(400 * 300);

    /** Default library (exactly Table III). */
    static const DeviceLibrary &
    defaults()
    {
        static const DeviceLibrary lib{};
        return lib;
    }
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_DEVICE_PARAMS_HH
