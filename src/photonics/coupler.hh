/**
 * @file
 * Directional coupler with wavelength-dependent coupling (dispersion).
 *
 * Section III-C of the paper: the power coupling factor is
 *     kappa(lambda) = sin^2( pi * Lc(lambda0) / (4 * Lc(lambda)) ),
 * designed so kappa(lambda0) = 1/2 (a 3 dB coupler). The coupling length
 * ratio is modelled to first order as
 *     Lc(lambda0)/Lc(lambda) = 1 + D * (lambda - lambda0)/lambda0,
 * with the dimensionless dispersion slope D calibrated so the maximum
 * relative kappa deviation across the paper's 25-channel sweep
 * (+-4.8 nm) is ~1.8 % (Fig. 3).
 */

#ifndef LT_PHOTONICS_COUPLER_HH
#define LT_PHOTONICS_COUPLER_HH

#include "transfer_matrix.hh"
#include "wavelength.hh"

namespace lt {
namespace photonics {

/** Calibrated dispersion slope reproducing Fig. 3 (see file comment). */
constexpr double kCouplerDispersionSlope = 3.72;

/** A 2x2 directional coupler designed as 50:50 at `designWavelength`. */
class DirectionalCoupler
{
  public:
    explicit DirectionalCoupler(
        double design_wavelength_m = kCenterWavelengthM,
        double dispersion_slope = kCouplerDispersionSlope)
        : lambda0_(design_wavelength_m), slope_(dispersion_slope)
    {
    }

    /** Power coupling factor kappa(lambda); 0.5 at the design point. */
    double kappa(double lambda_m) const;

    /** Field transmission t = sqrt(1 - kappa). */
    double transmission(double lambda_m) const;

    /** Cross-coupling magnitude k = sqrt(kappa). */
    double crossCoupling(double lambda_m) const;

    /**
     * Transfer matrix [[t, jk], [jk, t]] at the given wavelength
     * (lossless; insertion loss is handled by LossChain).
     */
    Mat2c transferMatrix(double lambda_m) const;

    double designWavelength() const { return lambda0_; }

  private:
    double lambda0_;
    double slope_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_COUPLER_HH
