/**
 * @file
 * Mach-Zehnder modulator encoding model.
 *
 * A push-pull MZM with differential +-phi arms yields
 * E_out = E_in * cos(phi), so tuning phi in [0, pi] encodes the full
 * range [-1, 1] onto the optical field amplitude — the paper's key
 * full-range-encoding mechanism (Section II-B). The driving DAC
 * quantizes the target value to b bits; encoding noise (magnitude and
 * phase drift) is added by the core noise model, not here.
 */

#ifndef LT_PHOTONICS_MZM_HH
#define LT_PHOTONICS_MZM_HH

#include "transfer_matrix.hh"
#include "util/quantize.hh"

namespace lt {
namespace photonics {

/** High-speed full-range amplitude encoder (one per wavelength). */
class Mzm
{
  public:
    /** @param dac_bits DAC precision driving the modulator arms. */
    explicit Mzm(int dac_bits = 8) : dac_bits_(dac_bits) {}

    /**
     * Arm phase needed to encode `value` in [-1, 1]:
     * phi = acos(value), phi in [0, pi].
     */
    static double
    phaseForValue(double value)
    {
        return std::acos(std::clamp(value, -1.0, 1.0));
    }

    /** The encoded (quantized) field amplitude for a target value. */
    double
    encode(double value) const
    {
        return quantizeSymmetricUnit(value, dac_bits_);
    }

    /** Encoded field for an input carrier E_in. */
    Complex
    encodeField(double value, const Complex &carrier = {1.0, 0.0}) const
    {
        return carrier * encode(value);
    }

    int dacBits() const { return dac_bits_; }

  private:
    int dac_bits_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_MZM_HH
