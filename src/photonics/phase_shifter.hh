/**
 * @file
 * Phase shifter with first-order wavelength dependence.
 *
 * The phase response is Delta-phi(lambda) = 2*pi*Delta-n_eff*L / lambda;
 * for a shifter programmed to phi0 at the design wavelength this gives
 * phi(lambda) = phi0 * lambda0 / lambda (assuming Delta-n_eff is flat
 * over the DWDM window). Across the paper's +-4.8 nm sweep this yields
 * a maximum dispersion-induced phase error of ~0.28 degrees for the
 * -90 degree DDot shifter, matching Fig. 3.
 */

#ifndef LT_PHOTONICS_PHASE_SHIFTER_HH
#define LT_PHOTONICS_PHASE_SHIFTER_HH

#include "transfer_matrix.hh"
#include "wavelength.hh"

namespace lt {
namespace photonics {

/** A passive/static phase shifter programmed at the design wavelength. */
class PhaseShifter
{
  public:
    /**
     * @param phi0_rad programmed phase at the design wavelength
     * @param design_wavelength_m design wavelength (default 1550 nm)
     */
    explicit PhaseShifter(double phi0_rad,
                          double design_wavelength_m = kCenterWavelengthM)
        : phi0_(phi0_rad), lambda0_(design_wavelength_m)
    {
    }

    /** Effective phase at the given wavelength. */
    double
    phase(double lambda_m) const
    {
        return phi0_ * lambda0_ / lambda_m;
    }

    /** Dispersion-induced phase error vs the design point (radians). */
    double
    phaseError(double lambda_m) const
    {
        return phase(lambda_m) - phi0_;
    }

    /** Field transfer factor e^{j phi(lambda)}. */
    Complex
    transfer(double lambda_m) const
    {
        return std::polar(1.0, phase(lambda_m));
    }

    double programmedPhase() const { return phi0_; }

  private:
    double phi0_;
    double lambda0_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_PHASE_SHIFTER_HH
