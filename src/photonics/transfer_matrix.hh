/**
 * @file
 * Complex optical field vectors and 2x2 transfer matrices.
 *
 * The DDot physics (paper Eq. 3, 7, 8) is expressed as 2x2 complex
 * transfer matrices acting on per-wavelength field pairs.
 */

#ifndef LT_PHOTONICS_TRANSFER_MATRIX_HH
#define LT_PHOTONICS_TRANSFER_MATRIX_HH

#include <complex>

namespace lt {
namespace photonics {

using Complex = std::complex<double>;

/** A pair of coherent optical fields on two waveguides/ports. */
struct Field2
{
    Complex a;
    Complex b;
};

/** A 2x2 complex transfer matrix [[m00, m01], [m10, m11]]. */
struct Mat2c
{
    Complex m00, m01, m10, m11;

    /** Apply to a field pair: out = M * in. */
    Field2
    apply(const Field2 &in) const
    {
        return {m00 * in.a + m01 * in.b, m10 * in.a + m11 * in.b};
    }

    /** Compose: (this * rhs) applies rhs first. */
    Mat2c
    operator*(const Mat2c &rhs) const
    {
        return {m00 * rhs.m00 + m01 * rhs.m10,
                m00 * rhs.m01 + m01 * rhs.m11,
                m10 * rhs.m00 + m11 * rhs.m10,
                m10 * rhs.m01 + m11 * rhs.m11};
    }
};

/** Optical power carried by a field (|E|^2, arbitrary units). */
inline double
power(const Complex &field)
{
    return std::norm(field);
}

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_TRANSFER_MATRIX_HH
