/**
 * @file
 * Insertion-loss chain accounting from laser to photodetector.
 *
 * The laser power model needs the worst-case optical loss along a
 * signal path. Losses accumulate in dB; broadcast fan-out adds a
 * 10*log10(N) splitting term on top of per-stage Y-branch insertion
 * loss. The chain keeps a named breakdown for reporting.
 */

#ifndef LT_PHOTONICS_LOSS_CHAIN_HH
#define LT_PHOTONICS_LOSS_CHAIN_HH

#include <string>
#include <vector>

namespace lt {
namespace photonics {

/** One named contribution to a loss chain. */
struct LossEntry
{
    std::string name;
    double loss_db;
};

/** Accumulates insertion and splitting losses along an optical path. */
class LossChain
{
  public:
    /** Add `count` instances of a component with `il_db` loss each. */
    LossChain &add(const std::string &name, double il_db, int count = 1);

    /**
     * Add an N-way power split: 10*log10(ways) intrinsic splitting loss
     * plus ceil(log2(ways)) stages of Y-branch insertion loss.
     */
    LossChain &addSplit(const std::string &name, int ways,
                        double y_branch_il_db);

    /** Total loss in dB. */
    double totalDb() const;

    /** Linear power attenuation factor (>= 1). */
    double linearFactor() const;

    const std::vector<LossEntry> &entries() const { return entries_; }

  private:
    std::vector<LossEntry> entries_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_LOSS_CHAIN_HH
