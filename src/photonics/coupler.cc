#include "coupler.hh"

#include <cmath>

namespace lt {
namespace photonics {

double
DirectionalCoupler::kappa(double lambda_m) const
{
    double detune = (lambda_m - lambda0_) / lambda0_;
    double length_ratio = 1.0 + slope_ * detune; // Lc(l0)/Lc(l)
    double arg = (M_PI / 4.0) * length_ratio;
    double s = std::sin(arg);
    return s * s;
}

double
DirectionalCoupler::transmission(double lambda_m) const
{
    return std::sqrt(1.0 - kappa(lambda_m));
}

double
DirectionalCoupler::crossCoupling(double lambda_m) const
{
    return std::sqrt(kappa(lambda_m));
}

Mat2c
DirectionalCoupler::transferMatrix(double lambda_m) const
{
    double t = transmission(lambda_m);
    double k = crossCoupling(lambda_m);
    Complex jk(0.0, k);
    return {Complex(t, 0.0), jk, jk, Complex(t, 0.0)};
}

} // namespace photonics
} // namespace lt
