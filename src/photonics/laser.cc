#include "laser.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace photonics {

double
LaserModel::requiredPdPowerW(int bits) const
{
    double base = units::dbmToWatt(lib_.pd_sensitivity_dbm);
    double scale = std::pow(2.0, bits - kLaserPrecisionRefBits);
    return base * scale;
}

double
LaserModel::opticalPowerPerCarrierW(const LossChain &path, int bits) const
{
    double loss = path.linearFactor() * units::dbToLinear(margin_db_);
    return requiredPdPowerW(bits) * loss;
}

double
LaserModel::electricalPowerW(int carriers, const LossChain &path,
                             int bits) const
{
    if (carriers < 0)
        lt_panic("negative carrier count");
    double wall_plug = lib_.laser_wall_plug_efficiency;
    if (wall_plug <= 0.0)
        lt_fatal("laser wall-plug efficiency must be positive");
    return static_cast<double>(carriers) *
           opticalPowerPerCarrierW(path, bits) / wall_plug;
}

} // namespace photonics
} // namespace lt
