#include "wavelength.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace lt {
namespace photonics {

WdmGrid::WdmGrid(size_t count, double center_m, double spacing_m)
    : center_(center_m), spacing_(spacing_m)
{
    if (count == 0)
        lt_fatal("WdmGrid requires at least one channel");
    if (center_m <= 0.0 || spacing_m <= 0.0)
        lt_fatal("WdmGrid requires positive center and spacing");
    wavelengths_.reserve(count);
    // Symmetric placement: channel offsets -(count-1)/2 ... +(count-1)/2
    // in units of the spacing (half-integer offsets for even counts).
    double first = -0.5 * static_cast<double>(count - 1);
    for (size_t i = 0; i < count; ++i) {
        double offset = first + static_cast<double>(i);
        wavelengths_.push_back(center_m + offset * spacing_m);
    }
}

double
WdmGrid::maxDetuning() const
{
    double m = 0.0;
    for (double w : wavelengths_)
        m = std::max(m, std::abs(w - center_));
    return m;
}

FsrWindow
fsrWindow(double center_m, double fsr_hz)
{
    double f0 = units::c0 / center_m;
    FsrWindow window;
    window.lambda_left_m = units::c0 / (f0 + fsr_hz / 2.0);
    window.lambda_right_m = units::c0 / (f0 - fsr_hz / 2.0);
    return window;
}

size_t
maxWdmChannels(const FsrWindow &window, double spacing_m)
{
    if (spacing_m <= 0.0)
        lt_fatal("maxWdmChannels requires a positive spacing");
    return static_cast<size_t>(std::floor(window.widthM() / spacing_m));
}

} // namespace photonics
} // namespace lt
