/**
 * @file
 * Laser power model.
 *
 * Following Section V-A: "The laser power is set to meet the minimum
 * power requirement of the photodetector considering system loss and is
 * scaled based on the precision requirement and wall-plug efficiency."
 *
 * Per optical carrier (one wavelength on one waveguide):
 *   P_laser_optical = P_pd_min * 2^(bits - 4) * L_linear * margin
 * where P_pd_min is the photodetector sensitivity, L_linear the
 * worst-case laser-to-PD loss, and the 2^(bits-4) factor reproduces the
 * paper's precision scaling (0.77 W @ 4-bit -> 12.3 W @ 8-bit for LT-B,
 * a 16x = 2^4 increase). Electrical power divides by the wall-plug
 * efficiency.
 */

#ifndef LT_PHOTONICS_LASER_HH
#define LT_PHOTONICS_LASER_HH

#include "device_params.hh"
#include "loss_chain.hh"

namespace lt {
namespace photonics {

/** Precision reference point of the laser scaling law (4-bit). */
constexpr int kLaserPrecisionRefBits = 4;

/** Computes required laser power for a set of optical carriers. */
class LaserModel
{
  public:
    /**
     * @param lib component library (sensitivity, wall-plug efficiency)
     * @param margin_db extra link margin on top of the loss chain
     */
    explicit LaserModel(const DeviceLibrary &lib = DeviceLibrary::defaults(),
                        double margin_db = 0.0)
        : lib_(lib), margin_db_(margin_db)
    {
    }

    /** Minimum optical power needed at the PD for `bits` precision. */
    double requiredPdPowerW(int bits) const;

    /** Optical power one carrier must leave the laser with. */
    double opticalPowerPerCarrierW(const LossChain &path, int bits) const;

    /**
     * Total electrical laser power for `carriers` independent
     * wavelength-on-waveguide channels sharing the same worst-case path.
     */
    double electricalPowerW(int carriers, const LossChain &path,
                            int bits) const;

    double marginDb() const { return margin_db_; }

  private:
    const DeviceLibrary &lib_;
    double margin_db_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_LASER_HH
