/**
 * @file
 * Photodetection: single-ended and balanced (differential) detection.
 *
 * A photodiode produces current proportional to incident optical power
 * (|E|^2 summed over WDM channels — distinct wavelengths do not
 * interfere). Balanced detection subtracts two photocurrents, which is
 * what cancels the quadratic terms in the DDot output (paper Eq. 5) and
 * yields signed (full-range) outputs.
 */

#ifndef LT_PHOTONICS_PHOTODETECTOR_HH
#define LT_PHOTONICS_PHOTODETECTOR_HH

#include <vector>

#include "transfer_matrix.hh"

namespace lt {
namespace photonics {

/** A photodiode with responsivity R (A/W in physical units). */
class Photodetector
{
  public:
    explicit Photodetector(double responsivity = 1.0)
        : responsivity_(responsivity)
    {
    }

    /** Photocurrent for a single coherent field. */
    double
    detect(const Complex &field) const
    {
        return responsivity_ * power(field);
    }

    /** Photocurrent for a WDM bundle: intensities accumulate. */
    double
    detect(const std::vector<Complex> &wdm_fields) const
    {
        double total = 0.0;
        for (const auto &f : wdm_fields)
            total += power(f);
        return responsivity_ * total;
    }

    double responsivity() const { return responsivity_; }

  private:
    double responsivity_;
};

/** A balanced photodetector pair producing I_plus - I_minus. */
class BalancedPhotodetector
{
  public:
    BalancedPhotodetector(double responsivity_plus = 1.0,
                          double responsivity_minus = 1.0)
        : plus_(responsivity_plus), minus_(responsivity_minus)
    {
    }

    /** Differential photocurrent over WDM bundles at the two ports. */
    double
    detect(const std::vector<Complex> &port_plus,
           const std::vector<Complex> &port_minus) const
    {
        return plus_.detect(port_plus) - minus_.detect(port_minus);
    }

    const Photodetector &plus() const { return plus_; }
    const Photodetector &minus() const { return minus_; }

  private:
    Photodetector plus_;
    Photodetector minus_;
};

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_PHOTODETECTOR_HH
