/**
 * @file
 * WDM wavelength grids and free-spectral-range (FSR) windows.
 *
 * Reproduces the paper's Dense-WDM setup (Section III-C and Eq. 10):
 * 0.4 nm channel spacing around a 1550 nm centre wavelength, with the
 * usable window bounded by the microdisk filter FSR (5.6 THz), giving
 * up to 112 channels.
 */

#ifndef LT_PHOTONICS_WAVELENGTH_HH
#define LT_PHOTONICS_WAVELENGTH_HH

#include <cstddef>
#include <vector>

namespace lt {
namespace photonics {

/** DWDM defaults used throughout the paper. */
constexpr double kCenterWavelengthM = 1550e-9;
constexpr double kChannelSpacingM = 0.4e-9;
constexpr double kMicrodiskFsrHz = 5.6e12;

/**
 * A symmetric DWDM channel grid: `count` channels spaced `spacing`
 * around `center` (channel index 0 is the leftmost/shortest wavelength).
 */
class WdmGrid
{
  public:
    WdmGrid(size_t count, double center_m = kCenterWavelengthM,
            double spacing_m = kChannelSpacingM);

    size_t count() const { return wavelengths_.size(); }
    double center() const { return center_; }
    double spacing() const { return spacing_; }

    /** Wavelength of channel i in meters. */
    double wavelength(size_t i) const { return wavelengths_.at(i); }

    const std::vector<double> &wavelengths() const { return wavelengths_; }

    /** Largest |lambda - center| across channels. */
    double maxDetuning() const;

  private:
    double center_;
    double spacing_;
    std::vector<double> wavelengths_;
};

/** The usable wavelength window imposed by a filter's FSR (Eq. 10). */
struct FsrWindow
{
    double lambda_left_m;   ///< c / (f0 + FSR/2)
    double lambda_right_m;  ///< c / (f0 - FSR/2)

    double widthM() const { return lambda_right_m - lambda_left_m; }
};

/** Compute the FSR window around a centre wavelength (paper Eq. 10). */
FsrWindow fsrWindow(double center_m = kCenterWavelengthM,
                    double fsr_hz = kMicrodiskFsrHz);

/**
 * Maximum number of DWDM channels that fit in an FSR window at the given
 * spacing; with the paper's defaults this evaluates to 112.
 */
size_t maxWdmChannels(const FsrWindow &window,
                      double spacing_m = kChannelSpacingM);

} // namespace photonics
} // namespace lt

#endif // LT_PHOTONICS_WAVELENGTH_HH
