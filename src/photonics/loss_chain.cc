#include "loss_chain.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace lt {
namespace photonics {

LossChain &
LossChain::add(const std::string &name, double il_db, int count)
{
    if (il_db < 0.0)
        lt_panic("negative insertion loss for ", name);
    if (count > 0 && il_db > 0.0)
        entries_.push_back({name, il_db * count});
    return *this;
}

LossChain &
LossChain::addSplit(const std::string &name, int ways,
                    double y_branch_il_db)
{
    if (ways < 1)
        lt_panic("split ways must be >= 1 for ", name);
    if (ways == 1)
        return *this;
    double split_db = 10.0 * std::log10(static_cast<double>(ways));
    double stages = std::ceil(std::log2(static_cast<double>(ways)));
    entries_.push_back({name + " (1:" + std::to_string(ways) + " split)",
                        split_db + stages * y_branch_il_db});
    return *this;
}

double
LossChain::totalDb() const
{
    double total = 0.0;
    for (const auto &e : entries_)
        total += e.loss_db;
    return total;
}

double
LossChain::linearFactor() const
{
    return units::dbToLinear(totalDb());
}

} // namespace photonics
} // namespace lt
