#include "optimizer.hh"

#include <cmath>

namespace lt {
namespace train {

SgdOptimizer::SgdOptimizer(nn::TransformerClassifier &model, double lr,
                           double momentum, double weight_decay)
    : model_(model), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay)
{
    model_.visitParams([this](Matrix &w, Matrix &g) {
        slots_.push_back({&w, &g, Matrix(w.rows(), w.cols(), 0.0)});
    });
}

void
SgdOptimizer::step()
{
    for (auto &slot : slots_) {
        auto &w = slot.w->data();
        auto &g = slot.g->data();
        auto &v = slot.velocity.data();
        for (size_t i = 0; i < w.size(); ++i) {
            double grad = g[i] + weight_decay_ * w[i];
            v[i] = momentum_ * v[i] + grad;
            w[i] -= lr_ * v[i];
        }
    }
}

void
SgdOptimizer::zeroGrad()
{
    model_.zeroGrad();
}

AdamOptimizer::AdamOptimizer(nn::TransformerClassifier &model, double lr,
                             double beta1, double beta2, double eps,
                             double weight_decay)
    : model_(model), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay)
{
    model_.visitParams([this](Matrix &w, Matrix &g) {
        slots_.push_back({&w, &g, Matrix(w.rows(), w.cols(), 0.0),
                          Matrix(w.rows(), w.cols(), 0.0)});
    });
}

void
AdamOptimizer::step()
{
    ++step_count_;
    double bc1 = 1.0 - std::pow(beta1_, step_count_);
    double bc2 = 1.0 - std::pow(beta2_, step_count_);
    for (auto &slot : slots_) {
        auto &w = slot.w->data();
        auto &g = slot.g->data();
        auto &m = slot.m.data();
        auto &v = slot.v.data();
        for (size_t i = 0; i < w.size(); ++i) {
            double grad = g[i] + weight_decay_ * w[i];
            m[i] = beta1_ * m[i] + (1.0 - beta1_) * grad;
            v[i] = beta2_ * v[i] + (1.0 - beta2_) * grad * grad;
            double mhat = m[i] / bc1;
            double vhat = v[i] / bc2;
            w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

void
AdamOptimizer::zeroGrad()
{
    model_.zeroGrad();
}

} // namespace train
} // namespace lt
