/**
 * @file
 * Synthetic datasets for the accuracy experiments (Fig. 14 / 15).
 *
 * SUBSTITUTION NOTE (DESIGN.md section 4): the paper evaluates a
 * 4-bit DeiT-T on ImageNet-1K and an 8-bit BERT-base on SST-2.
 * Neither the 160 GB dataset nor the GPUs for quantization-aware
 * training are available offline, so the accuracy experiments run on
 * two synthetic tasks exercising the same code path (quantized
 * Transformer, noisy photonic GEMM in the forward pass):
 *
 *  - ShapeDataset (DeiT substitute): procedural 16x16 grayscale
 *    images of four shape classes (filled square / hollow frame /
 *    plus / X-cross) with position, scale, and pixel noise jitter,
 *    patchified into 4x4 patches for a small ViT.
 *  - NeedleDataset (BERT substitute): token sequences of distractor
 *    tokens in which a special needle token may be planted at a
 *    random position; the class is whether the needle is present.
 *    Solving it requires aggregating global context across the
 *    sequence — the attention mechanism's job.
 */

#ifndef LT_TRAIN_DATASETS_HH
#define LT_TRAIN_DATASETS_HH

#include <vector>

#include "util/linalg.hh"
#include "util/rng.hh"

namespace lt {
namespace train {

/** One vision sample: patchified image + label. */
struct VisionSample
{
    Matrix patches;  ///< [num_patches, patch_dim]
    int label;
};

/** One sequence sample: token ids + label. */
struct SequenceSample
{
    std::vector<int> tokens;
    int label;
};

/** Procedural shape-classification images (vision substitute). */
class ShapeDataset
{
  public:
    static constexpr size_t kImageSize = 16;
    static constexpr size_t kPatchSize = 4;
    static constexpr size_t kNumPatches = 16; // (16/4)^2
    static constexpr size_t kPatchDim = 16;   // 4x4 pixels
    static constexpr size_t kNumClasses = 4;

    /** Generate n samples with the given seed. */
    ShapeDataset(size_t n, uint64_t seed);

    const std::vector<VisionSample> &samples() const { return samples_; }
    size_t size() const { return samples_.size(); }

  private:
    std::vector<VisionSample> samples_;
};

/** Needle-in-sequence task (attention-dependent, binary). */
class NeedleDataset
{
  public:
    static constexpr size_t kSeqLen = 16;
    static constexpr size_t kVocab = 16;
    static constexpr size_t kNumClasses = 2;
    static constexpr int kNeedleToken = 0;

    NeedleDataset(size_t n, uint64_t seed);

    const std::vector<SequenceSample> &samples() const
    {
        return samples_;
    }
    size_t size() const { return samples_.size(); }

  private:
    std::vector<SequenceSample> samples_;
};

} // namespace train
} // namespace lt

#endif // LT_TRAIN_DATASETS_HH
