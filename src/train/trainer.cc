#include "trainer.hh"

#include "train/loss.hh"
#include "util/logging.hh"

namespace lt {
namespace train {

Matrix
NoisyTrainingBackend::gemm(const Matrix &a, const Matrix &b)
{
    stats_.record(a.rows(), a.cols(), b.cols());
    Matrix out = a * b;
    if (noise_std_ > 0.0) {
        // One bulk fill per GEMM output (sequence-exact vs the
        // historical per-element scalar draws); the scratch buffer is
        // a member so steady-state training never reallocates it.
        noise_scratch_.resize(out.data().size());
        rng_.fillGaussian(noise_scratch_, 0.0, noise_std_);
        stats_.gaussian_draws.fetch_add(noise_scratch_.size(),
                                        std::memory_order_relaxed);
        for (size_t i = 0; i < out.data().size(); ++i)
            out.data()[i] *= 1.0 + noise_scratch_[i];
    }
    return out;
}

Trainer::Trainer(nn::TransformerClassifier &model,
                 const TrainerConfig &cfg)
    : model_(model), cfg_(cfg),
      backend_(cfg.train_noise_std, cfg.seed ^ 0xabcdefULL),
      optimizer_(model, cfg.lr, 0.9, 0.999, 1e-8, cfg.weight_decay)
{
}

template <typename Sample, typename ForwardFn>
EpochStats
Trainer::trainImpl(const std::vector<Sample> &data, ForwardFn &&forward)
{
    nn::RunContext ctx{&backend_, cfg_.quant};
    // Training owns ONE workspace: forward fills it, backward consumes
    // it. This is the stateful client of the otherwise-pure forwards.
    nn::ActivationWorkspace ws;
    EpochStats last{0.0, 0.0};
    for (size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        double loss_sum = 0.0;
        size_t correct = 0;
        for (const auto &sample : data) {
            optimizer_.zeroGrad();
            Matrix logits = forward(sample, ws, ctx);
            LossResult lr = softmaxCrossEntropy(logits, sample.label);
            loss_sum += lr.loss;
            correct += lr.correct ? 1 : 0;
            model_.backward(lr.dlogits, ws);
            optimizer_.step();
        }
        last.loss = loss_sum / static_cast<double>(data.size());
        last.accuracy = static_cast<double>(correct) /
                        static_cast<double>(data.size());
        history_.push_back(last);
        if (cfg_.verbose) {
            inform("epoch ", epoch + 1, "/", cfg_.epochs, " loss ",
                   last.loss, " acc ", last.accuracy);
        }
    }
    return last;
}

EpochStats
Trainer::trainVision(const std::vector<VisionSample> &data)
{
    return trainImpl(data, [this](const VisionSample &s,
                                  nn::ActivationWorkspace &ws,
                                  nn::RunContext &ctx) {
        return model_.forwardVision(s.patches, ws, ctx);
    });
}

EpochStats
Trainer::trainSequence(const std::vector<SequenceSample> &data)
{
    return trainImpl(data, [this](const SequenceSample &s,
                                  nn::ActivationWorkspace &ws,
                                  nn::RunContext &ctx) {
        return model_.forwardSequence(s.tokens, ws, ctx);
    });
}

double
Trainer::evaluateVision(nn::TransformerClassifier &model,
                        const std::vector<VisionSample> &data,
                        nn::RunContext &ctx)
{
    // Evaluation is inference-only, so it rides the batched forward
    // path: samples run concurrently, each with its own workspace and
    // noise lane.
    std::vector<const Matrix *> batch;
    batch.reserve(data.size());
    for (const auto &s : data)
        batch.push_back(&s.patches);
    std::vector<Matrix> logits = model.forwardVisionBatch(batch, ctx);
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        size_t best = nn::argmaxRow(logits[i], 0);
        correct += best == static_cast<size_t>(data[i].label) ? 1 : 0;
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

double
Trainer::evaluateSequence(nn::TransformerClassifier &model,
                          const std::vector<SequenceSample> &data,
                          nn::RunContext &ctx)
{
    std::vector<const std::vector<int> *> batch;
    batch.reserve(data.size());
    for (const auto &s : data)
        batch.push_back(&s.tokens);
    std::vector<Matrix> logits =
        model.forwardSequenceBatch(batch, ctx);
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        size_t best = nn::argmaxRow(logits[i], 0);
        correct += best == static_cast<size_t>(data[i].label) ? 1 : 0;
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace train
} // namespace lt
