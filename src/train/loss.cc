#include "loss.hh"

#include <cmath>

#include "util/logging.hh"

namespace lt {
namespace train {

LossResult
softmaxCrossEntropy(const Matrix &logits, int label)
{
    if (logits.rows() != 1)
        lt_panic("softmaxCrossEntropy expects [1, C] logits");
    const size_t classes = logits.cols();
    if (label < 0 || static_cast<size_t>(label) >= classes)
        lt_panic("label ", label, " outside [0, ", classes, ")");

    double mx = logits(0, 0);
    size_t best = 0;
    for (size_t c = 1; c < classes; ++c) {
        if (logits(0, c) > mx) {
            mx = logits(0, c);
            best = c;
        }
    }
    double denom = 0.0;
    for (size_t c = 0; c < classes; ++c)
        denom += std::exp(logits(0, c) - mx);

    LossResult result;
    result.dlogits = Matrix(1, classes);
    double log_denom = std::log(denom);
    for (size_t c = 0; c < classes; ++c) {
        double p = std::exp(logits(0, c) - mx) / denom;
        result.dlogits(0, c) =
            p - (static_cast<size_t>(label) == c ? 1.0 : 0.0);
    }
    result.loss = -(logits(0, static_cast<size_t>(label)) - mx -
                    log_denom);
    result.correct = best == static_cast<size_t>(label);
    return result;
}

} // namespace train
} // namespace lt
