/**
 * @file
 * Optimizers for the manual-backprop Transformer stack.
 *
 * Parameters are gathered once through the model's visitParams hook
 * (the visitation order is deterministic), so per-parameter state
 * (momentum, Adam moments) stays aligned across steps.
 */

#ifndef LT_TRAIN_OPTIMIZER_HH
#define LT_TRAIN_OPTIMIZER_HH

#include <vector>

#include "nn/transformer.hh"
#include "util/linalg.hh"

namespace lt {
namespace train {

/** SGD with momentum and decoupled weight decay. */
class SgdOptimizer
{
  public:
    SgdOptimizer(nn::TransformerClassifier &model, double lr,
                 double momentum = 0.9, double weight_decay = 0.0);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Reset all gradients to zero. */
    void zeroGrad();

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    struct Slot
    {
        Matrix *w;
        Matrix *g;
        Matrix velocity;
    };
    nn::TransformerClassifier &model_;
    std::vector<Slot> slots_;
    double lr_;
    double momentum_;
    double weight_decay_;
};

/** Adam with bias correction. */
class AdamOptimizer
{
  public:
    AdamOptimizer(nn::TransformerClassifier &model, double lr,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8, double weight_decay = 0.0);

    void step();
    void zeroGrad();

    double learningRate() const { return lr_; }
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    struct Slot
    {
        Matrix *w;
        Matrix *g;
        Matrix m;
        Matrix v;
    };
    nn::TransformerClassifier &model_;
    std::vector<Slot> slots_;
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    double weight_decay_;
    long step_count_ = 0;
};

} // namespace train
} // namespace lt

#endif // LT_TRAIN_OPTIMIZER_HH
