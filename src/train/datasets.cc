#include "datasets.hh"

#include <algorithm>
#include <cmath>
#include <span>

namespace lt {
namespace train {

namespace {

using Image = std::vector<double>; // kImageSize^2 grayscale

/**
 * Draw one shape class into a blank image with jitter. `noise` is the
 * caller's preallocated bulk-draw buffer (>= kImageSize^2), reused
 * across images so dataset generation never allocates per sample.
 */
Image
drawShape(int label, Rng &rng, std::span<double> noise)
{
    constexpr int n = static_cast<int>(ShapeDataset::kImageSize);
    Image img(static_cast<size_t>(n * n), 0.0);
    auto at = [&](int r, int c) -> double & {
        return img[static_cast<size_t>(r * n + c)];
    };

    // Random center and half-size with jitter, keeping the shape
    // inside the frame.
    int half = static_cast<int>(rng.uniformInt(3, 5));
    int cr = static_cast<int>(rng.uniformInt(half + 1, n - half - 2));
    int cc = static_cast<int>(rng.uniformInt(half + 1, n - half - 2));
    double fg = rng.uniform(0.7, 1.0);

    switch (label) {
      case 0: // filled square
        for (int r = cr - half; r <= cr + half; ++r)
            for (int c = cc - half; c <= cc + half; ++c)
                at(r, c) = fg;
        break;
      case 1: // hollow frame
        for (int r = cr - half; r <= cr + half; ++r) {
            for (int c = cc - half; c <= cc + half; ++c) {
                bool edge = r == cr - half || r == cr + half ||
                            c == cc - half || c == cc + half;
                if (edge)
                    at(r, c) = fg;
            }
        }
        break;
      case 2: // plus / cross
        for (int d = -half; d <= half; ++d) {
            at(cr + d, cc) = fg;
            at(cr, cc + d) = fg;
        }
        break;
      case 3: // diagonal X
        for (int d = -half; d <= half; ++d) {
            at(cr + d, cc + d) = fg;
            at(cr + d, cc - d) = fg;
        }
        break;
      default:
        break;
    }

    // Pixel noise: one bulk fill for the whole image (sequence-exact
    // vs the historical per-pixel scalar draws).
    rng.fillGaussian(noise.first(img.size()), 0.0, 0.08);
    for (size_t i = 0; i < img.size(); ++i) {
        img[i] += noise[i];
        img[i] = std::clamp(img[i], 0.0, 1.0);
    }
    return img;
}

/** Patchify a 16x16 image into 16 patches of 16 pixels. */
Matrix
patchify(const Image &img)
{
    constexpr size_t n = ShapeDataset::kImageSize;
    constexpr size_t p = ShapeDataset::kPatchSize;
    constexpr size_t grid = n / p;
    Matrix patches(ShapeDataset::kNumPatches, ShapeDataset::kPatchDim);
    for (size_t pr = 0; pr < grid; ++pr) {
        for (size_t pc = 0; pc < grid; ++pc) {
            size_t patch = pr * grid + pc;
            for (size_t r = 0; r < p; ++r)
                for (size_t c = 0; c < p; ++c)
                    patches(patch, r * p + c) =
                        img[(pr * p + r) * n + (pc * p + c)];
        }
    }
    return patches;
}

} // namespace

ShapeDataset::ShapeDataset(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> noise(kImageSize * kImageSize);
    samples_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        int label = static_cast<int>(i % kNumClasses);
        samples_.push_back(
            {patchify(drawShape(label, rng, noise)), label});
    }
    // Shuffle so batches are class-mixed.
    std::shuffle(samples_.begin(), samples_.end(), rng.urbg());
}

NeedleDataset::NeedleDataset(size_t n, uint64_t seed)
{
    Rng rng(seed);
    samples_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        SequenceSample s;
        s.tokens.resize(kSeqLen);
        // Distractors only (never the needle token).
        for (size_t t = 0; t < kSeqLen; ++t) {
            s.tokens[t] =
                static_cast<int>(rng.uniformInt(1, kVocab - 1));
        }
        // Half the samples plant the needle at a random position.
        s.label = static_cast<int>(i % 2);
        if (s.label == 1) {
            size_t pos = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(kSeqLen) - 1));
            s.tokens[pos] = kNeedleToken;
        }
        samples_.push_back(std::move(s));
    }
    std::shuffle(samples_.begin(), samples_.end(), rng.urbg());
}

} // namespace train
} // namespace lt
