/**
 * @file
 * Noise-aware training loop (paper Section V-A: "Noise-aware training
 * is applied with encoding and systematical noise injected").
 *
 * Training runs the forward pass with quantization and injected GEMM
 * output noise (a cheap but representative stand-in for the full
 * Eq. 9 path — dominated by the same multiplicative output term);
 * gradients flow straight through (STE). Evaluation then runs the
 * full noisy photonic backend, reproducing the paper's methodology
 * for Fig. 14 / Fig. 15.
 */

#ifndef LT_TRAIN_TRAINER_HH
#define LT_TRAIN_TRAINER_HH

#include <vector>

#include "nn/gemm_backend.hh"
#include "nn/transformer.hh"
#include "train/datasets.hh"
#include "train/optimizer.hh"
#include "util/rng.hh"

namespace lt {
namespace train {

/**
 * An exact GEMM with per-output multiplicative Gaussian noise — the
 * training-time noise injection backend.
 */
class NoisyTrainingBackend : public nn::GemmBackend
{
  public:
    NoisyTrainingBackend(double output_noise_std, uint64_t seed)
        : noise_std_(output_noise_std), rng_(seed)
    {
    }

    // Training is sequential; the stateful member RNG ignores the
    // stream-addressed entry points (they fall through to gemm()).
    using nn::GemmBackend::gemm;

    Matrix gemm(const Matrix &a, const Matrix &b) override;

  private:
    double noise_std_;
    Rng rng_;
    std::vector<double> noise_scratch_; ///< bulk-draw buffer, reused
};

/** Hyper-parameters of a training run. */
struct TrainerConfig
{
    size_t epochs = 30;
    double lr = 2e-3;
    double weight_decay = 1e-4;
    double train_noise_std = 0.05;  ///< injected GEMM output noise
    nn::QuantConfig quant = nn::QuantConfig::w8a8();
    uint64_t seed = 7;
    bool verbose = false;
};

/** Per-epoch training statistics. */
struct EpochStats
{
    double loss;
    double accuracy;
};

/** Trains and evaluates TransformerClassifier models. */
class Trainer
{
  public:
    Trainer(nn::TransformerClassifier &model, const TrainerConfig &cfg);

    /** Train on a vision dataset; returns final-epoch stats. */
    EpochStats trainVision(const std::vector<VisionSample> &data);

    /** Train on a sequence dataset; returns final-epoch stats. */
    EpochStats trainSequence(const std::vector<SequenceSample> &data);

    /** Accuracy of the model on a dataset under a given context. */
    static double evaluateVision(nn::TransformerClassifier &model,
                                 const std::vector<VisionSample> &data,
                                 nn::RunContext &ctx);
    static double
    evaluateSequence(nn::TransformerClassifier &model,
                     const std::vector<SequenceSample> &data,
                     nn::RunContext &ctx);

    const std::vector<EpochStats> &history() const { return history_; }

  private:
    template <typename Sample, typename ForwardFn>
    EpochStats trainImpl(const std::vector<Sample> &data,
                         ForwardFn &&forward);

    nn::TransformerClassifier &model_;
    TrainerConfig cfg_;
    NoisyTrainingBackend backend_;
    AdamOptimizer optimizer_;
    std::vector<EpochStats> history_;
};

} // namespace train
} // namespace lt

#endif // LT_TRAIN_TRAINER_HH
