/**
 * @file
 * Classification loss for the training stack.
 */

#ifndef LT_TRAIN_LOSS_HH
#define LT_TRAIN_LOSS_HH

#include "util/linalg.hh"

namespace lt {
namespace train {

/** Loss value together with the gradient w.r.t. the logits. */
struct LossResult
{
    double loss;
    Matrix dlogits;  ///< [1, classes]
    bool correct;    ///< argmax(logits) == label
};

/** Numerically stable softmax cross-entropy for one sample. */
LossResult softmaxCrossEntropy(const Matrix &logits, int label);

} // namespace train
} // namespace lt

#endif // LT_TRAIN_LOSS_HH
