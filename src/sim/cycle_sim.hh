/**
 * @file
 * Cycle-level simulator of the Lightening-Transformer datapath.
 *
 * Where the analytic model (arch/performance_model.hh) counts cycles
 * in closed form, this simulator *executes* the tiled GEMM schedule
 * event by event: every DPTC shot is dispatched to a core, operand
 * fetches run in a double-buffered pipeline against per-core SRAM
 * bandwidth, weight chunks stream from HBM at finite bandwidth, and
 * ADC conversions happen once per temporal-accumulation group. The
 * result exposes stall cycles that the closed form assumes away, and
 * the two are cross-validated in tests (they agree to within the
 * pipeline-fill epsilon when bandwidth is sufficient — the paper's
 * operating assumption — and diverge when bandwidth is throttled).
 */

#ifndef LT_SIM_CYCLE_SIM_HH
#define LT_SIM_CYCLE_SIM_HH

#include <cstdint>

#include "arch/arch_config.hh"
#include "nn/workload.hh"
#include "sim/event_queue.hh"

namespace lt {
namespace sim {

/** Bandwidth/pipeline knobs beyond the ArchConfig. */
struct CycleSimConfig
{
    /**
     * Operand bytes one core's buffers can pull from its tile SRAM
     * per core cycle (the decoupled 32 KB sub-array design of
     * Section IV-A is sized so this is not a bottleneck).
     */
    double sram_bytes_per_core_cycle = 256.0;

    /** Off-chip bandwidth for weight streaming [bytes/s]. */
    double hbm_bytes_per_s = 1e12;

    /** Pipeline depth of the EO path (fill cost, cycles). */
    size_t pipeline_fill_cycles = 2;
};

/** Result of one simulated GEMM (or workload). */
struct CycleSimResult
{
    uint64_t shots = 0;          ///< DPTC invocations executed
    uint64_t cycles = 0;         ///< total core-clock cycles elapsed
    uint64_t stall_cycles = 0;   ///< cycles any core waited on data
    uint64_t adc_conversions = 0;
    uint64_t events = 0;         ///< discrete events processed
    double time_s = 0.0;

    double
    utilization() const
    {
        return cycles ? 1.0 - static_cast<double>(stall_cycles) /
                                  static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Event-driven simulation of one GEMM on the LT architecture. */
CycleSimResult simulateGemm(const arch::ArchConfig &arch,
                            const CycleSimConfig &sim,
                            const nn::GemmOp &op);

/** Simulate a whole workload (ops run back to back). */
CycleSimResult simulateWorkload(const arch::ArchConfig &arch,
                                const CycleSimConfig &sim,
                                const nn::Workload &workload);

} // namespace sim
} // namespace lt

#endif // LT_SIM_CYCLE_SIM_HH
