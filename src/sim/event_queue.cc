#include "event_queue.hh"

#include "util/logging.hh"

namespace lt {
namespace sim {

void
EventQueue::schedule(SimTime when, Callback fn)
{
    if (when < now_)
        lt_panic("scheduling event in the past: ", when, " < ", now_);
    heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(SimTime delay, Callback fn)
{
    schedule(now_ + delay, std::move(fn));
}

SimTime
EventQueue::run()
{
    while (!heap_.empty()) {
        // priority_queue::top returns const&; move out via const_cast
        // is unsafe — copy the callback instead (events are small).
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    return now_;
}

} // namespace sim
} // namespace lt
