#include "cycle_sim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace lt {
namespace sim {

namespace {

size_t
ceilDiv(size_t a, size_t b)
{
    return (a + b - 1) / b;
}

/** Shared state of one simulated GEMM run. */
struct GemmRun
{
    const arch::ArchConfig &arch;
    const CycleSimConfig &sim;
    const nn::GemmOp &op;
    EventQueue queue;

    // Tiling geometry.
    size_t row_tiles, col_tiles, k_chunks;
    uint64_t total_shots;
    uint64_t next_shot = 0;

    // Per-core accounting (indexed 0 .. cores-1).
    std::vector<uint64_t> core_busy_until; ///< in cycles
    std::vector<uint64_t> accum_count;     ///< temporal accum fill

    // Results.
    uint64_t stall_cycles = 0;
    uint64_t adc_conversions = 0;
    uint64_t finish_cycle = 0;

    double cycle_s;
    uint64_t fetch_cycles;  ///< operand fetch time per shot (cycles)

    explicit GemmRun(const arch::ArchConfig &a, const CycleSimConfig &s,
                     const nn::GemmOp &o)
        : arch(a), sim(s), op(o)
    {
        row_tiles = ceilDiv(op.m, arch.nh);
        col_tiles = ceilDiv(op.n, arch.nv);
        k_chunks = ceilDiv(op.k, arch.nlambda);
        total_shots = static_cast<uint64_t>(row_tiles) * col_tiles *
                      k_chunks * op.count;
        core_busy_until.assign(arch.totalCores(), 0);
        accum_count.assign(arch.totalCores(), 0);
        cycle_s = arch.cycleSeconds();

        // Operand bytes per shot: both operand sides at the datapath
        // precision, double-buffered against SRAM bandwidth.
        double bytes = static_cast<double>(arch.nh * arch.nlambda +
                                           arch.nlambda * arch.nv) *
                       arch.precision_bits / 8.0;
        fetch_cycles = static_cast<uint64_t>(
            std::ceil(bytes / sim.sram_bytes_per_core_cycle));
    }

    /** Cycle at which HBM has delivered the k-chunk for shot index. */
    uint64_t
    hbmReadyCycle(uint64_t shot_idx) const
    {
        if (op.dynamic)
            return 0; // activations are already on chip
        // Weights stream chunk by chunk in schedule order; a shot may
        // start once the bytes for its (k-chunk, col-tile) have
        // arrived. Approximate with proportional delivery.
        double weight_bytes = static_cast<double>(op.k) *
                              static_cast<double>(op.n) *
                              arch.precision_bits / 8.0 *
                              static_cast<double>(op.count);
        double bytes_needed = weight_bytes *
                              static_cast<double>(shot_idx + 1) /
                              static_cast<double>(total_shots);
        double t = bytes_needed / sim.hbm_bytes_per_s;
        return static_cast<uint64_t>(std::ceil(t / cycle_s));
    }

    /** Dispatch the next shot to `core`, then reschedule. */
    void
    step(size_t core)
    {
        if (next_shot >= total_shots)
            return;
        uint64_t shot = next_shot++;

        uint64_t earliest = core_busy_until[core];
        // Double buffering: the fetch of this shot overlapped the
        // previous compute; only fetch time beyond one cycle stalls.
        uint64_t fetch_ready =
            earliest + (fetch_cycles > 1 ? fetch_cycles - 1 : 0);
        uint64_t hbm_ready = hbmReadyCycle(shot);
        uint64_t start = std::max({earliest, fetch_ready, hbm_ready});
        stall_cycles += start - earliest;

        uint64_t done = start + 1; // one-shot MM per core cycle
        core_busy_until[core] = done;
        finish_cycle = std::max(finish_cycle, done);

        // Temporal accumulation: an ADC conversion every depth shots
        // (per core group).
        if (++accum_count[core] >= arch.temporal_accum_depth) {
            accum_count[core] = 0;
            ++adc_conversions;
        }

        queue.schedule(static_cast<double>(done) * cycle_s,
                       [this, core] { step(core); });
    }
};

} // namespace

CycleSimResult
simulateGemm(const arch::ArchConfig &arch, const CycleSimConfig &sim,
             const nn::GemmOp &op)
{
    GemmRun run(arch, sim, op);
    // Prime every core with work at t = 0.
    for (size_t core = 0; core < arch.totalCores(); ++core)
        run.queue.schedule(0.0, [&run, core] { run.step(core); });
    run.queue.run();

    // Flush a final partial accumulation group per core.
    for (size_t core = 0; core < arch.totalCores(); ++core)
        if (run.accum_count[core] > 0)
            ++run.adc_conversions;

    CycleSimResult result;
    result.shots = run.total_shots;
    result.cycles = run.finish_cycle + sim.pipeline_fill_cycles;
    result.stall_cycles = run.stall_cycles;
    result.adc_conversions = run.adc_conversions;
    result.events = run.queue.executed();
    result.time_s = static_cast<double>(result.cycles) *
                    arch.cycleSeconds();
    return result;
}

CycleSimResult
simulateWorkload(const arch::ArchConfig &arch, const CycleSimConfig &sim,
                 const nn::Workload &workload)
{
    CycleSimResult total;
    for (const auto &op : workload.ops) {
        CycleSimResult r = simulateGemm(arch, sim, op);
        total.shots += r.shots;
        total.cycles += r.cycles;
        total.stall_cycles += r.stall_cycles;
        total.adc_conversions += r.adc_conversions;
        total.events += r.events;
        total.time_s += r.time_s;
    }
    return total;
}

} // namespace sim
} // namespace lt
