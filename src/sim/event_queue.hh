/**
 * @file
 * A minimal discrete-event simulation kernel.
 *
 * Events are (time, sequence, callback) triples executed in
 * chronological order; ties break by insertion order so the
 * simulation is deterministic. The cycle-level accelerator simulator
 * (cycle_sim.hh) is built on top of this kernel.
 */

#ifndef LT_SIM_EVENT_QUEUE_HH
#define LT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lt {
namespace sim {

/** Simulation time in seconds. */
using SimTime = double;

/** A deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule `fn` at absolute time `when` (>= now). */
    void schedule(SimTime when, Callback fn);

    /** Schedule `fn` `delay` seconds after now. */
    void scheduleAfter(SimTime delay, Callback fn);

    /** Run until the queue drains; returns the final time. */
    SimTime run();

    /** Current simulation time. */
    SimTime now() const { return now_; }

    /** Number of events executed so far. */
    uint64_t executed() const { return executed_; }

    bool empty() const { return heap_.empty(); }

  private:
    struct Event
    {
        SimTime when;
        uint64_t seq;
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace sim
} // namespace lt

#endif // LT_SIM_EVENT_QUEUE_HH
