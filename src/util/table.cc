#include "table.hh"

#include <algorithm>

#include "logging.hh"

namespace lt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        lt_panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        lt_panic("Table row arity ", cells.size(), " != header arity ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    separator_before_.push_back(rows_.size());
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto hline = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "| " << row[c]
               << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    hline();
    emit(headers_);
    hline();
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (std::find(separator_before_.begin(), separator_before_.end(),
                      r) != separator_before_.end() && r != 0) {
            hline();
        }
        emit(rows_[r]);
    }
    hline();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    constexpr size_t width = 72;
    std::string padded = " " + title + " ";
    size_t fill = padded.size() >= width ? 0 : width - padded.size();
    os << '\n'
       << std::string(fill / 2, '=') << padded
       << std::string(fill - fill / 2, '=') << '\n';
}

} // namespace lt
