/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * Two error severities are distinguished, following the gem5 convention:
 *  - panic(): an internal invariant was violated (a library bug); aborts.
 *  - fatal(): the simulation cannot continue due to a user-level error
 *    (bad configuration, invalid arguments); exits with an error code.
 * inform() and warn() print status without stopping the program.
 */

#ifndef LT_UTIL_LOGGING_HH
#define LT_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace lt {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Get/set the process-wide log level (defaults to Inform). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Minimal printf-free message formatting: concatenates all parts. */
template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable internal error and abort. Use only for
 * conditions that indicate a bug in this library, never for user error.
 */
#define lt_panic(...) \
    ::lt::detail::panicImpl(__FILE__, __LINE__, \
                            ::lt::detail::formatParts(__VA_ARGS__))

/**
 * Report an unrecoverable user-level error (bad config, bad arguments)
 * and exit(1).
 */
#define lt_fatal(...) \
    ::lt::detail::fatalImpl(__FILE__, __LINE__, \
                            ::lt::detail::formatParts(__VA_ARGS__))

/** Warn about suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatParts(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatParts(std::forward<Args>(args)...));
}

/** Print a debug-level message (suppressed unless LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::debugImpl(detail::formatParts(std::forward<Args>(args)...));
}

} // namespace lt

#endif // LT_UTIL_LOGGING_HH
