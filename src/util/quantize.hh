/**
 * @file
 * Uniform symmetric quantization helpers shared by the photonic encoding
 * path (DAC-driven MZM levels) and the NN quantization stack.
 */

#ifndef LT_UTIL_QUANTIZE_HH
#define LT_UTIL_QUANTIZE_HH

#include <algorithm>
#include <cmath>

namespace lt {

/**
 * Quantize x in [-1, 1] to a symmetric b-bit grid (2^b - 1 levels, zero
 * included), returning the dequantized value. Values outside [-1, 1]
 * are clipped, matching DAC full-scale behaviour.
 */
inline double
quantizeSymmetricUnit(double x, int bits)
{
    if (bits <= 0)
        return x;
    double clipped = std::clamp(x, -1.0, 1.0);
    // Symmetric signed grid: levels in [-qmax, qmax].
    double qmax = static_cast<double>((1 << (bits - 1)) - 1);
    if (qmax < 1.0)
        qmax = 1.0;
    return std::round(clipped * qmax) / qmax;
}

/**
 * Quantize an arbitrary-range value given a positive scale so that
 * x/scale is mapped onto the b-bit unit grid.
 */
inline double
quantizeSymmetric(double x, double scale, int bits)
{
    if (scale <= 0.0)
        return 0.0;
    return quantizeSymmetricUnit(x / scale, bits) * scale;
}

/** Number of representable magnitudes on the b-bit symmetric grid. */
inline int
quantLevels(int bits)
{
    return (1 << (bits - 1)) - 1;
}

} // namespace lt

#endif // LT_UTIL_QUANTIZE_HH
