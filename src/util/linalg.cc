#include "linalg.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "logging.hh"
#include "parallel.hh"

namespace lt {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

ConstMatrixView::ConstMatrixView(const Matrix &m)
    : data_(m.data().data()), rows_(m.rows()), cols_(m.cols()),
      ld_(m.cols())
{
}

Matrix
ConstMatrixView::dense() const
{
    Matrix out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(r, c) = (*this)(r, c);
    return out;
}

double
ConstMatrixView::maxAbsDiff(const ConstMatrixView &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        lt_panic("ConstMatrixView::maxAbsDiff shape mismatch");
    double m = 0.0;
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m = std::max(m,
                         std::abs((*this)(r, c) - other(r, c)));
    return m;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

void
Matrix::resizeRows(size_t new_rows)
{
    if (new_rows < rows_)
        lt_panic("Matrix::resizeRows only grows: ", rows_, " -> ",
                 new_rows);
    data_.resize(new_rows * cols_, 0.0);
    rows_ = new_rows;
}

void
Matrix::resizeCols(size_t new_cols)
{
    if (new_cols < cols_)
        lt_panic("Matrix::resizeCols only grows: ", cols_, " -> ",
                 new_cols);
    if (new_cols == cols_)
        return;
    data_.resize(rows_ * new_cols, 0.0);
    // Re-stride back to front so source and destination ranges of a
    // row never clobber each other.
    for (size_t r = rows_; r-- > 0;) {
        std::copy_backward(data_.begin() + r * cols_,
                           data_.begin() + r * cols_ + cols_,
                           data_.begin() + r * new_cols + cols_);
        std::fill(data_.begin() + r * new_cols + cols_,
                  data_.begin() + (r + 1) * new_cols, 0.0);
    }
    cols_ = new_cols;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    return matmul(*this, rhs);
}

namespace {

/**
 * Contiguous dot product with four independent accumulators (gives the
 * compiler a clean vectorization/FMA shape). The accumulator split is
 * fixed, so results do not depend on threading.
 */
inline double
dotKernel(const double *a, const double *bt, size_t k)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= k; i += 4) {
        s0 += a[i] * bt[i];
        s1 += a[i + 1] * bt[i + 1];
        s2 += a[i + 2] * bt[i + 2];
        s3 += a[i + 3] * bt[i + 3];
    }
    for (; i < k; ++i)
        s0 += a[i] * bt[i];
    return (s0 + s1) + (s2 + s3);
}

/** Output block edge (doubles): 64x64 block + B^T panel fit in L2. */
constexpr size_t kMatmulBlock = 64;

} // namespace

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    return matmul(a.view(), b.view());
}

Matrix
matmul(const ConstMatrixView &a, const ConstMatrixView &b)
{
    if (a.cols() != b.rows())
        lt_panic("matrix multiply shape mismatch: ", a.rows(), "x",
                 a.cols(), " * ", b.rows(), "x", b.cols());
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix out(m, n, 0.0);
    if (m == 0 || k == 0 || n == 0)
        return out;

    // Pack B^T once: row c of bt is column c of B, contiguous in k.
    // For a transposed-B view the columns are already contiguous in
    // the underlying storage, so the pack is a straight row copy.
    Matrix bt(n, k);
    if (b.colsContiguous()) {
        for (size_t c = 0; c < n; ++c)
            std::copy(b.colPtr(c), b.colPtr(c) + k,
                      bt.data().data() + c * k);
    } else {
        for (size_t c = 0; c < n; ++c)
            for (size_t i = 0; i < k; ++i)
                bt(c, i) = b(i, c);
    }

    // A rows must be contiguous for the dot kernel; a transposed-A
    // view is packed once (the copy its caller no longer makes).
    Matrix a_pack;
    const double *a_data;
    size_t a_ld;
    if (a.rowsContiguous()) {
        a_data = a.data();
        a_ld = a.ld();
    } else {
        a_pack = a.dense();
        a_data = a_pack.data().data();
        a_ld = k;
    }
    const double *bt_data = bt.data().data();
    double *out_data = out.data().data();

    auto rowRange = [&](size_t r0, size_t r1) {
        for (size_t c0 = 0; c0 < n; c0 += kMatmulBlock) {
            size_t c1 = std::min(c0 + kMatmulBlock, n);
            for (size_t r = r0; r < r1; ++r) {
                const double *arow = a_data + r * a_ld;
                double *orow = out_data + r * n;
                for (size_t c = c0; c < c1; ++c)
                    orow[c] = dotKernel(arow, bt_data + c * k, k);
            }
        }
    };

    // Small products are not worth a trip through the pool.
    if (m * n * k < 32768) {
        rowRange(0, m);
        return out;
    }
    const size_t row_blocks = (m + kMatmulBlock - 1) / kMatmulBlock;
    ThreadPool::global().parallelFor(
        row_blocks, [&](size_t begin, size_t end, size_t) {
            rowRange(begin * kMatmulBlock,
                     std::min(end * kMatmulBlock, m));
        });
    return out;
}

double
Matrix::maxAbsDiff(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        lt_panic("maxAbsDiff shape mismatch");
    double m = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (double x : data_)
        s += x * x;
    return std::sqrt(s);
}

SvdResult
jacobiSvd(const Matrix &a_in, double tol)
{
    // One-sided Jacobi on columns: rotate column pairs of G (initially A)
    // until all pairs are orthogonal; then singular values are column
    // norms, U the normalized columns, V the accumulated rotations.
    bool transposed = a_in.rows() < a_in.cols();
    Matrix a = transposed ? a_in.transposed() : a_in;
    const size_t m = a.rows();
    const size_t n = a.cols();

    Matrix g = a;
    Matrix v = Matrix::identity(n);

    const int max_sweeps = 60;
    int sweeps = 0;
    for (; sweeps < max_sweeps; ++sweeps) {
        double off = 0.0;
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double alpha = 0.0, beta = 0.0, gamma = 0.0;
                for (size_t i = 0; i < m; ++i) {
                    alpha += g(i, p) * g(i, p);
                    beta += g(i, q) * g(i, q);
                    gamma += g(i, p) * g(i, q);
                }
                off = std::max(off, std::abs(gamma) /
                               std::max(std::sqrt(alpha * beta), 1e-300));
                if (std::abs(gamma) <= tol * std::sqrt(alpha * beta))
                    continue;
                double zeta = (beta - alpha) / (2.0 * gamma);
                double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                           (std::abs(zeta) +
                            std::sqrt(1.0 + zeta * zeta));
                double cs = 1.0 / std::sqrt(1.0 + t * t);
                double sn = cs * t;
                for (size_t i = 0; i < m; ++i) {
                    double gp = g(i, p), gq = g(i, q);
                    g(i, p) = cs * gp - sn * gq;
                    g(i, q) = sn * gp + cs * gq;
                }
                for (size_t i = 0; i < n; ++i) {
                    double vp = v(i, p), vq = v(i, q);
                    v(i, p) = cs * vp - sn * vq;
                    v(i, q) = sn * vp + cs * vq;
                }
            }
        }
        if (off < tol)
            break;
    }

    // Column norms -> singular values; normalize to get U columns.
    std::vector<double> s(n);
    Matrix u(m, m, 0.0);
    for (size_t j = 0; j < n; ++j) {
        double norm = 0.0;
        for (size_t i = 0; i < m; ++i)
            norm += g(i, j) * g(i, j);
        norm = std::sqrt(norm);
        s[j] = norm;
        if (norm > 0.0)
            for (size_t i = 0; i < m; ++i)
                u(i, j) = g(i, j) / norm;
    }

    // Sort singular values descending, permuting U and V columns.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t i, size_t j) { return s[i] > s[j]; });
    std::vector<double> s_sorted(n);
    Matrix u_sorted(m, m, 0.0), v_sorted(n, n, 0.0);
    for (size_t j = 0; j < n; ++j) {
        s_sorted[j] = s[order[j]];
        for (size_t i = 0; i < m; ++i)
            u_sorted(i, j) = u(i, order[j]);
        for (size_t i = 0; i < n; ++i)
            v_sorted(i, j) = v(i, order[j]);
    }

    // Complete U to a full orthogonal basis for rank-deficient / m > n
    // cases via Gram-Schmidt against existing columns.
    for (size_t j = n; j < m; ++j) {
        // Seed with a canonical basis vector not yet spanned.
        for (size_t seed = 0; seed < m; ++seed) {
            std::vector<double> cand(m, 0.0);
            cand[seed] = 1.0;
            for (size_t k = 0; k < j; ++k) {
                double dot = 0.0;
                for (size_t i = 0; i < m; ++i)
                    dot += cand[i] * u_sorted(i, k);
                for (size_t i = 0; i < m; ++i)
                    cand[i] -= dot * u_sorted(i, k);
            }
            double norm = 0.0;
            for (double x : cand)
                norm += x * x;
            norm = std::sqrt(norm);
            if (norm > 1e-8) {
                for (size_t i = 0; i < m; ++i)
                    u_sorted(i, j) = cand[i] / norm;
                break;
            }
        }
    }

    SvdResult result;
    result.sweeps = sweeps + 1;
    if (!transposed) {
        result.u = std::move(u_sorted);
        result.v = std::move(v_sorted);
    } else {
        result.u = std::move(v_sorted);
        result.v = std::move(u_sorted);
    }
    result.s = std::move(s_sorted);
    return result;
}

namespace {

/** Apply a Givens rotation on rows (r, r+1) from the left: G * M. */
void
applyGivensLeft(Matrix &m, size_t r, double theta)
{
    double cs = std::cos(theta), sn = std::sin(theta);
    for (size_t c = 0; c < m.cols(); ++c) {
        double a = m(r, c), b = m(r + 1, c);
        m(r, c) = cs * a - sn * b;
        m(r + 1, c) = sn * a + cs * b;
    }
}

/** Apply a Givens rotation on columns (c, c+1) from the right: M * G. */
void
applyGivensRight(Matrix &m, size_t c, double theta)
{
    double cs = std::cos(theta), sn = std::sin(theta);
    for (size_t r = 0; r < m.rows(); ++r) {
        double a = m(r, c), b = m(r, c + 1);
        m(r, c) = cs * a + sn * b;
        m(r, c + 1) = -sn * a + cs * b;
    }
}

} // namespace

MeshProgram
clementsDecompose(const Matrix &q_in, double tol)
{
    const size_t n = q_in.rows();
    if (q_in.cols() != n)
        lt_panic("clementsDecompose requires a square matrix");
    {
        Matrix qtq = q_in.transposed() * q_in;
        if (qtq.maxAbsDiff(Matrix::identity(n)) > 1e-6)
            lt_fatal("clementsDecompose: input is not orthogonal");
    }

    // Clements scheme: alternately null sub-diagonal elements using
    // right-multiplications (even diagonals) and left-multiplications
    // (odd diagonals), leaving a diagonal of +-1.
    Matrix q = q_in;
    MeshProgram program;
    program.n = n;

    struct LeftRotation
    {
        size_t row;
        size_t column;
        double theta;
    };
    std::vector<LeftRotation> left_rotations;

    for (size_t d = 0; d + 1 < n; ++d) {
        if (d % 2 == 0) {
            // Null elements of anti-diagonal d via column rotations.
            for (size_t k = 0; k <= d; ++k) {
                size_t row = n - 1 - k;
                size_t col = d - k;
                double a = q(row, col), b = q(row, col + 1);
                if (std::abs(a) < tol)
                    continue;
                double theta = std::atan2(-a, b);
                applyGivensRight(q, col, theta);
                program.phases.push_back(
                    {col, d, theta, 0.0});
            }
        } else {
            // Null via row rotations (collected; inverted at the end).
            for (size_t k = 0; k <= d; ++k) {
                size_t row = n - 1 - d + k;
                size_t col = k;
                double a = q(row, col), b = q(row - 1, col);
                if (std::abs(a) < tol)
                    continue;
                double theta = std::atan2(-a, b);
                applyGivensLeft(q, row - 1, theta);
                left_rotations.push_back({row - 1, d, theta});
            }
        }
    }

    // q is now diagonal with entries +-1 (orthogonality preserved).
    program.out_phases.resize(n);
    for (size_t i = 0; i < n; ++i) {
        double di = q(i, i);
        if (std::abs(std::abs(di) - 1.0) > 1e-5)
            lt_panic("clements residual diagonal |", di, "| != 1 at ", i);
        program.out_phases[i] = di < 0.0 ? M_PI : 0.0;
    }

    // Left rotations appear as D = L_k ... L_1 Q R_1 ... R_m, so
    // Q = L^T ... D ... R^T; record them (negated) after the rights with
    // distinct columns so meshReconstruct can replay in order.
    for (auto it = left_rotations.rbegin(); it != left_rotations.rend();
         ++it) {
        program.phases.push_back(
            {it->row, it->column + n, -it->theta, 0.0});
    }
    return program;
}

Matrix
meshReconstruct(const MeshProgram &program)
{
    const size_t n = program.n;
    // Split the recorded phases back into right-applied and left-applied
    // groups using the column >= n marker set by clementsDecompose.
    Matrix d = Matrix::identity(n);
    for (size_t i = 0; i < n; ++i)
        d(i, i) = std::cos(program.out_phases[i]); // +-1

    // Q = (prod of left rotations, transposed order) * D *
    //     (prod of right rotations, reverse order, transposed)
    Matrix q = d;
    for (auto it = program.phases.rbegin(); it != program.phases.rend();
         ++it) {
        if (it->column < n) {
            // Right rotation R(theta): Q <- Q * R^T reverses nulling.
            applyGivensRight(q, it->row, -it->theta);
        }
    }
    for (const auto &p : program.phases) {
        if (p.column >= n) {
            // Stored negated; apply on the left in recorded order.
            applyGivensLeft(q, p.row, p.theta);
        }
    }
    return q;
}

MziMapping
mziOperandMapping(const Matrix &w)
{
    SvdResult svd = jacobiSvd(w);
    MziMapping mapping;
    mapping.sigma = svd.s;
    mapping.u_program = clementsDecompose(svd.u);
    mapping.v_program = clementsDecompose(svd.v);
    return mapping;
}

} // namespace lt
