/**
 * @file
 * Tiny CSV file writer so bench binaries can persist series for plotting.
 */

#ifndef LT_UTIL_CSV_HH
#define LT_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace lt {

/** Append-only CSV writer; creates/truncates the file on construction. */
class CsvWriter
{
  public:
    /** Opens (truncates) path and writes the header row. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    /** Write one row of already-formatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience: write a row of doubles with %g formatting. */
    void writeRow(const std::vector<double> &values);

    bool ok() const { return static_cast<bool>(out_); }

  private:
    std::ofstream out_;
    size_t arity_;
};

} // namespace lt

#endif // LT_UTIL_CSV_HH
