/**
 * @file
 * Physical unit helpers and human-readable formatting.
 *
 * Internal convention: the simulator carries SI base units everywhere —
 * seconds, watts, joules, meters, square meters, hertz. The helpers here
 * construct those values from the units the paper quotes (mW, ps, mm^2,
 * GHz, dB, ...) and format them back for reports.
 */

#ifndef LT_UTIL_UNITS_HH
#define LT_UTIL_UNITS_HH

#include <cmath>
#include <string>

namespace lt {
namespace units {

// --- construction helpers (value in quoted unit -> SI) ---------------
constexpr double pico = 1e-12;
constexpr double nano = 1e-9;
constexpr double micro = 1e-6;
constexpr double milli = 1e-3;
constexpr double kilo = 1e3;
constexpr double mega = 1e6;
constexpr double giga = 1e9;
constexpr double tera = 1e12;

constexpr double ps(double v) { return v * pico; }
constexpr double ns(double v) { return v * nano; }
constexpr double us(double v) { return v * micro; }
constexpr double ms(double v) { return v * milli; }

constexpr double mW(double v) { return v * milli; }
constexpr double uW(double v) { return v * micro; }

constexpr double pJ(double v) { return v * pico; }
constexpr double nJ(double v) { return v * nano; }
constexpr double mJ(double v) { return v * milli; }
constexpr double fJ(double v) { return v * 1e-15; }

constexpr double GHz(double v) { return v * giga; }
constexpr double MHz(double v) { return v * mega; }
constexpr double THz(double v) { return v * tera; }

constexpr double nm(double v) { return v * nano; }
constexpr double um(double v) { return v * micro; }
constexpr double mm(double v) { return v * milli; }

constexpr double um2(double v) { return v * 1e-12; }  // -> m^2
constexpr double mm2(double v) { return v * 1e-6; }   // -> m^2

constexpr double KiB(double v) { return v * 1024.0; }
constexpr double MiB(double v) { return v * 1024.0 * 1024.0; }

/** Speed of light in vacuum [m/s]. */
constexpr double c0 = 299792458.0;

// --- dB helpers -------------------------------------------------------
/** Convert a dB power ratio to a linear ratio ( >= 0 dB -> >= 1 ). */
inline double dbToLinear(double db) { return std::pow(10.0, db / 10.0); }

/** Convert a linear power ratio to dB. */
inline double linearToDb(double lin) { return 10.0 * std::log10(lin); }

/** Convert dBm to watts. */
inline double dbmToWatt(double dbm)
{
    return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/** Convert watts to dBm. */
inline double wattToDbm(double w) { return 10.0 * std::log10(w / 1e-3); }

// --- formatting back to report units ---------------------------------
/** Format seconds with an auto-selected SI prefix (e.g. "47.0 ps"). */
std::string fmtTime(double seconds, int precision = 3);

/** Format watts with an auto-selected SI prefix. */
std::string fmtPower(double watts, int precision = 3);

/** Format joules with an auto-selected SI prefix. */
std::string fmtEnergy(double joules, int precision = 3);

/** Format m^2 as mm^2 (the paper's unit for chip area). */
std::string fmtAreaMm2(double m2, int precision = 2);

/** Format a raw double with fixed precision. */
std::string fmtFixed(double v, int precision = 3);

/** Format a double in scientific notation like the paper (1.94e-2). */
std::string fmtSci(double v, int precision = 2);

} // namespace units
} // namespace lt

#endif // LT_UTIL_UNITS_HH
