/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * All stochastic components of the simulator (noise injection, synthetic
 * datasets, Monte-Carlo sweeps) draw from an explicitly-seeded Rng so that
 * every experiment is bit-reproducible from its seed.
 */

#ifndef LT_UTIL_RNG_HH
#define LT_UTIL_RNG_HH

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace lt {

/**
 * SplitMix64 finalizer: a cheap, high-quality bit mixer used to derive
 * decorrelated seeds from (base seed, counter) pairs. Counter-based
 * seeding is what makes the parallel execution engine deterministic:
 * every tile's noise stream depends only on its tile index, never on
 * which thread happens to run it.
 */
inline uint64_t
splitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Derive the seed for stream `counter` of generator family `base`. */
inline uint64_t
deriveSeed(uint64_t base, uint64_t counter)
{
    return splitMix64(base ^ splitMix64(counter));
}

/**
 * A seeded Mersenne-Twister wrapper with the distributions the simulator
 * needs. Copyable; copies advance independently.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x4c54'2024ULL) : engine_(seed) {}

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Gaussian sample with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        if (stddev <= 0.0)
            return mean;
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Fill a vector with n uniform samples in [lo, hi). */
    std::vector<double>
    uniformVector(size_t n, double lo = -1.0, double hi = 1.0)
    {
        std::vector<double> v(n);
        for (auto &x : v)
            x = uniform(lo, hi);
        return v;
    }

    /** Fill a vector with n Gaussian samples. */
    std::vector<double>
    gaussianVector(size_t n, double mean = 0.0, double stddev = 1.0)
    {
        std::vector<double> v(n);
        for (auto &x : v)
            x = gaussian(mean, stddev);
        return v;
    }

    /**
     * Bulk Gaussian fill into caller-owned storage. Reproduces the
     * per-call gaussian() draw sequence EXACTLY — each element draws
     * from a fresh std::normal_distribution (no saved second polar
     * value carries over between elements) and a non-positive stddev
     * writes `mean` without consuming engine state — so replacing a
     * loop of gaussian() calls with one fillGaussian() never changes
     * a noise stream. The DPTC tile kernel uses it to batch the
     * constant-std phase-drift draws of a dot product.
     */
    void
    fillGaussian(std::span<double> out, double mean = 0.0,
                 double stddev = 1.0)
    {
        if (stddev <= 0.0) {
            for (double &x : out)
                x = mean;
            return;
        }
        for (double &x : out) {
            std::normal_distribution<double> dist(mean, stddev);
            x = dist(engine_);
        }
    }

    /** Derive a child generator with decorrelated state. */
    Rng
    fork()
    {
        uint64_t child_seed = engine_();
        child_seed = child_seed * 0x9e3779b97f4a7c15ULL + engine_();
        return Rng(child_seed);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace lt

#endif // LT_UTIL_RNG_HH
