/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * All stochastic components of the simulator (noise injection, synthetic
 * datasets, Monte-Carlo sweeps) draw from an explicitly-seeded Rng so that
 * every experiment is bit-reproducible from its seed.
 *
 * Implementation note (the fast noise pipeline): Rng reimplements the
 * libstdc++ draw algorithms it has always used — mt19937_64 and the
 * rejection-based polar normal_distribution with fresh-distribution
 * semantics per draw — as a blocked kernel, so that the sequence of every
 * existing noise stream is preserved BIT-EXACTLY while the per-draw cost
 * drops by ~2.5x (blocked engine refills, branchless u64->double
 * conversion, and two-pass bulk Gaussian fills that vectorize the
 * candidate pass and batch the log/sqrt pass). tests/test_util.cc pins
 * the sequences directly against the std:: reference types.
 *
 * The contract every consumer relies on:
 *  - uniform()/uniformInt()/bernoulli() run the std:: distributions over
 *    a facade URBG with mt19937_64's exact output sequence and range, so
 *    their value AND consumption sequences are unchanged;
 *  - gaussian()/fillGaussian()/fillGaussianScaled() reproduce a fresh
 *    std::normal_distribution per element (no saved second polar value
 *    carries across elements) and a non-positive stddev writes the mean
 *    without consuming engine state;
 *  - fork() and urbg() (std::shuffle's generator) consume the same raw
 *    engine outputs the pre-blocked implementation did.
 */

#ifndef LT_UTIL_RNG_HH
#define LT_UTIL_RNG_HH

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace lt {

/**
 * SplitMix64 finalizer: a cheap, high-quality bit mixer used to derive
 * decorrelated seeds from (base seed, counter) pairs. Counter-based
 * seeding is what makes the parallel execution engine deterministic:
 * every tile's noise stream depends only on its tile index, never on
 * which thread happens to run it.
 */
inline uint64_t
splitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Derive the seed for stream `counter` of generator family `base`. */
inline uint64_t
deriveSeed(uint64_t base, uint64_t counter)
{
    return splitMix64(base ^ splitMix64(counter));
}

/**
 * A seeded generator with the distributions the simulator needs, drawing
 * from a blocked reimplementation of std::mt19937_64 (sequence-exact; the
 * whole 312-word state block is generated and tempered at once, which is
 * ~2x cheaper per output than the std:: per-call path). Copyable; copies
 * advance independently.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x4c54'2024ULL) { reseed(seed); }

    /**
     * The raw engine output stream — identical, u64 for u64, to
     * std::mt19937_64 seeded the same way. Every consumer below (and
     * the Urbg facade) draws through here, so buffering can never
     * reorder consumption between call styles.
     */
    uint64_t
    nextU64()
    {
        if (pos_ == kN)
            refill();
        return out_[pos_++];
    }

    /**
     * Facade URBG with mt19937_64's exact result range, for std::
     * algorithms that take a generator (std::shuffle in the dataset
     * builders). Consumes the owner's stream; sequences match handing
     * std::shuffle the underlying mt19937_64 directly.
     */
    class Urbg
    {
      public:
        using result_type = uint64_t;
        static constexpr result_type min() { return 0; }
        static constexpr result_type max() { return ~0ULL; }
        result_type operator()() { return rng_->nextU64(); }

      private:
        friend class Rng;
        explicit Urbg(Rng *rng) : rng_(rng) {}
        Rng *rng_;
    };

    Urbg urbg() { return Urbg(this); }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        Urbg g(this);
        return dist(g);
    }

    /**
     * Gaussian sample with the given mean and standard deviation.
     * Bit-exact replay of a fresh std::normal_distribution draw over
     * mt19937_64; a non-positive stddev returns the mean without
     * consuming engine state.
     */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        if (stddev <= 0.0)
            return mean;
        return polarOne() * stddev + mean;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        Urbg g(this);
        return dist(g);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        Urbg g(this);
        return dist(g);
    }

    /** Bulk uniform fill into caller-owned storage (per-call sequence). */
    void
    fillUniform(std::span<double> out, double lo = -1.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        Urbg g(this);
        for (double &x : out)
            x = dist(g);
    }

    /** Fill a vector with n uniform samples in [lo, hi). */
    std::vector<double>
    uniformVector(size_t n, double lo = -1.0, double hi = 1.0)
    {
        std::vector<double> v(n);
        fillUniform(v, lo, hi);
        return v;
    }

    /** Fill a vector with n Gaussian samples. */
    std::vector<double>
    gaussianVector(size_t n, double mean = 0.0, double stddev = 1.0)
    {
        std::vector<double> v(n);
        fillGaussian(v, mean, stddev);
        return v;
    }

    /**
     * Bulk Gaussian fill into caller-owned storage. Reproduces the
     * per-call gaussian() draw sequence EXACTLY — each element draws
     * from a fresh std::normal_distribution (no saved second polar
     * value carries over between elements) and a non-positive stddev
     * writes `mean` without consuming engine state — so replacing a
     * loop of gaussian() calls with one fillGaussian() never changes
     * a noise stream. The DPTC tile kernel uses it to batch the
     * constant-std phase and systematic-output draws of a dot product.
     */
    void
    fillGaussian(std::span<double> out, double mean = 0.0,
                 double stddev = 1.0)
    {
        if (stddev <= 0.0) {
            for (double &x : out)
                x = mean;
            return;
        }
        double ys[kChunk], r2s[kChunk];
        size_t done = 0;
        while (done < out.size()) {
            const size_t n = std::min(out.size() - done, kChunk);
            drawPolarBatch(ys, r2s, n);
            for (size_t j = 0; j < n; ++j) {
                double ret =
                    ys[j] * std::sqrt(-2.0 * std::log(r2s[j]) / r2s[j]);
                out[done + j] = ret * stddev + mean;
            }
            done += n;
        }
    }

    /**
     * Bulk Gaussian fill with a PER-ELEMENT stddev: out[i] ~
     * N(mean, stddevs[i]^2), drawn in index order with the same
     * fresh-distribution semantics as gaussian() — element i of a
     * scalar loop `out[i] = gaussian(mean, stddevs[i])` bit-for-bit,
     * including the rule that a non-positive stddevs[i] writes `mean`
     * and consumes nothing. This is the form the full-encoding-noise
     * DDot path batches its |x[i]|-scaled magnitude draws through
     * (one call per dot product instead of 3 scalar draws per MAC).
     */
    void
    fillGaussianScaled(std::span<double> out,
                       std::span<const double> stddevs, double mean = 0.0)
    {
        assert(out.size() == stddevs.size());
        double ys[kChunk], r2s[kChunk];
        size_t idxs[kChunk];
        size_t i = 0;
        while (i < out.size()) {
            size_t cnt = 0;
            while (i < out.size() && cnt < kChunk) {
                if (stddevs[i] > 0.0)
                    idxs[cnt++] = i;
                else
                    out[i] = mean;
                ++i;
            }
            drawPolarBatch(ys, r2s, cnt);
            for (size_t j = 0; j < cnt; ++j) {
                double ret =
                    ys[j] * std::sqrt(-2.0 * std::log(r2s[j]) / r2s[j]);
                out[idxs[j]] = ret * stddevs[idxs[j]] + mean;
            }
        }
    }

    /** Derive a child generator with decorrelated state. */
    Rng
    fork()
    {
        uint64_t child_seed = nextU64();
        child_seed = child_seed * 0x9e3779b97f4a7c15ULL + nextU64();
        return Rng(child_seed);
    }

    /**
     * Gaussian draws taken so far (accepted samples; zero-stddev
     * writes consume nothing and are not counted). The execution
     * engine folds per-tile counts into GemmStats::gaussian_draws.
     */
    uint64_t drawCount() const { return draws_; }

  private:
    // mt19937_64 standard parameters (sequence-exact reimplementation).
    static constexpr size_t kN = 312;
    static constexpr size_t kM = 156;
    static constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
    static constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
    static constexpr uint64_t kLowerMask = 0x7FFFFFFFULL;
    static constexpr size_t kChunk = 256; ///< bulk-fill batch size

    void
    reseed(uint64_t seed)
    {
        state_[0] = seed;
        for (size_t i = 1; i < kN; ++i)
            state_[i] = 6364136223846793005ULL *
                            (state_[i - 1] ^ (state_[i - 1] >> 62)) +
                        i;
        pos_ = kN;
    }

    /**
     * Regenerate and temper the whole state block at once. The twist
     * runs in three wrap-free regions with a branchless matrix-A
     * select, and the temper loop is independent per word — both
     * vectorize, which is where the per-output win over the std::
     * one-word-at-a-time path comes from.
     */
    void
    refill()
    {
        for (size_t i = 0; i < kN - kM; ++i) {
            uint64_t x = (state_[i] & kUpperMask) |
                         (state_[i + 1] & kLowerMask);
            state_[i] = state_[i + kM] ^ (x >> 1) ^
                        ((-(x & 1)) & kMatrixA);
        }
        for (size_t i = kN - kM; i < kN - 1; ++i) {
            uint64_t x = (state_[i] & kUpperMask) |
                         (state_[i + 1] & kLowerMask);
            state_[i] = state_[i + kM - kN] ^ (x >> 1) ^
                        ((-(x & 1)) & kMatrixA);
        }
        uint64_t x =
            (state_[kN - 1] & kUpperMask) | (state_[0] & kLowerMask);
        state_[kN - 1] =
            state_[kM - 1] ^ (x >> 1) ^ ((-(x & 1)) & kMatrixA);
        for (size_t i = 0; i < kN; ++i) {
            uint64_t y = state_[i];
            y ^= (y >> 29) & 0x5555555555555555ULL;
            y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
            y ^= (y << 37) & 0xFFF7EEE000000000ULL;
            y ^= y >> 43;
            out_[i] = y;
        }
        pos_ = 0;
    }

    /**
     * Branchless correctly-rounded u64 -> double: both halves convert
     * exactly through int64 (the unsigned conversion GCC emits is a
     * branch), and the single rounding happens at the add — identical
     * to a direct round-to-nearest conversion of the full value.
     */
    static double
    u64ToDouble(uint64_t u)
    {
        return static_cast<double>(static_cast<int64_t>(u >> 11)) *
                   2048.0 +
               static_cast<double>(static_cast<int64_t>(u & 2047));
    }

    /**
     * std::generate_canonical<double, 53> over mt19937_64, bit-exact:
     * one engine draw scaled by 2^-64, clamped below 1.0 (the clamp
     * DOES trigger — u64 values within half an ulp of 2^64 round up).
     */
    static double
    canonicalOf(uint64_t u)
    {
        double r = u64ToDouble(u) / 18446744073709551616.0;
        if (r >= 1.0)
            r = std::nextafter(1.0, 0.0);
        return r;
    }

    double canonical() { return canonicalOf(nextU64()); }

    /**
     * One standard-normal draw, the exact libstdc++ polar rejection
     * sequence of a FRESH std::normal_distribution (the saved second
     * value is discarded, as every per-draw-constructed distribution
     * in this codebase always has).
     */
    double
    polarOne()
    {
        double x, y, r2;
        do {
            x = 2.0 * canonical() - 1.0;
            y = 2.0 * canonical() - 1.0;
            r2 = x * x + y * y;
        } while (r2 > 1.0 || r2 == 0.0);
        ++draws_;
        return y * std::sqrt(-2.0 * std::log(r2) / r2);
    }

    /**
     * The bulk candidate pass: produce `count` ACCEPTED polar pairs
     * (y, r2) in draw-sequence order, consuming engine outputs exactly
     * as `count` scalar rejection loops would. Candidate pairs are
     * converted speculatively straight from the tempered block (pure
     * reads; the consumed position advances only past pairs actually
     * inspected), so the conversion + r2 test runs branch-light over
     * contiguous words; callers then batch the log/sqrt transform.
     */
    void
    drawPolarBatch(double *ys, double *r2s, size_t count)
    {
        size_t idx = 0;
        while (idx < count) {
            if (pos_ == kN)
                refill();
            const size_t pairs_avail = (kN - pos_) / 2;
            if (pairs_avail == 0) {
                // One leftover word: the candidate pair straddles a
                // block boundary — take it through nextU64().
                double x = 2.0 * canonical() - 1.0;
                double y = 2.0 * canonical() - 1.0;
                double r2 = x * x + y * y;
                if (!(r2 > 1.0 || r2 == 0.0)) {
                    ys[idx] = y;
                    r2s[idx] = r2;
                    ++idx;
                }
                continue;
            }
            const uint64_t *u = out_ + pos_;
            size_t consumed = 0;
            for (size_t p = 0; p < pairs_avail && idx < count; ++p) {
                double x = 2.0 * canonicalOf(u[2 * p]) - 1.0;
                double y = 2.0 * canonicalOf(u[2 * p + 1]) - 1.0;
                double r2 = x * x + y * y;
                ++consumed;
                if (!(r2 > 1.0 || r2 == 0.0)) {
                    ys[idx] = y;
                    r2s[idx] = r2;
                    ++idx;
                }
            }
            pos_ += 2 * consumed;
        }
        draws_ += count;
    }

    uint64_t state_[kN];
    uint64_t out_[kN];
    size_t pos_ = kN;
    uint64_t draws_ = 0;
};

} // namespace lt

#endif // LT_UTIL_RNG_HH
