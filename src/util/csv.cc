#include "csv.hh"

#include <cstdio>

#include "logging.hh"

namespace lt {

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size())
{
    if (!out_) {
        warn("CsvWriter: cannot open ", path, "; rows will be dropped");
        return;
    }
    writeRow(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (!out_)
        return;
    if (cells.size() != arity_)
        lt_panic("CsvWriter row arity ", cells.size(), " != ", arity_);
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%g", v);
        cells.emplace_back(buf);
    }
    writeRow(cells);
}

} // namespace lt
