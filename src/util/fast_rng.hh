/**
 * @file
 * FastRng — the statistically-equivalent fast sampler of the two-path
 * noise pipeline (NoiseSampler::Fast).
 *
 * A counter-based SplitMix64 generator under a 128-layer Ziggurat
 * Gaussian sampler (Marsaglia & Tsang, adapted to 64-bit draws):
 * ~3.5 ns per N(0,1) sample vs ~20-30 ns for the bit-exact blocked
 * path. The DPTC tile kernel seeds one FastRng per output tile from
 * the same deriveSeed(stream, tile) scheme as the bit-exact path, so
 * Fast-mode results are still a pure function of (operands, config,
 * stream) — deterministic for a fixed seed and bit-identical at any
 * thread count — but the draw sequence is NOT compatible with
 * std::normal_distribution over mt19937_64: golden digests pinned to
 * the bit-exact stream do not apply in Fast mode. Distribution quality
 * is gated by the moment/KS tests in tests/test_util.cc and the Fast
 * fig15 noise-accuracy sweep (bench_fig15_noise_accuracy --fast-gate).
 */

#ifndef LT_UTIL_FAST_RNG_HH
#define LT_UTIL_FAST_RNG_HH

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>

#include "util/rng.hh"

namespace lt {

/**
 * Counter-based fast Gaussian/uniform sampler. Copyable; copies
 * advance independently. Mirrors the draw-method subset of Rng the
 * DPTC noise path consumes (gaussian / fillGaussian /
 * fillGaussianScaled / uniform / drawCount), including the
 * non-positive-stddev rule: write the mean, consume no state.
 */
class FastRng
{
  public:
    explicit FastRng(uint64_t seed = 0x4c54'2024ULL) : state_(seed) {}

    /** SplitMix64 output stream: state advances by the golden gamma. */
    uint64_t
    nextU64()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return lo + canonical() * (hi - lo);
    }

    /** Gaussian sample (Ziggurat); non-positive stddev returns mean. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        if (stddev <= 0.0)
            return mean;
        return standardNormal() * stddev + mean;
    }

    /** Bulk Gaussian fill, element i in index order. */
    void
    fillGaussian(std::span<double> out, double mean = 0.0,
                 double stddev = 1.0)
    {
        if (stddev <= 0.0) {
            for (double &x : out)
                x = mean;
            return;
        }
        for (double &x : out)
            x = standardNormal() * stddev + mean;
    }

    /** Bulk Gaussian fill with per-element stddevs (see Rng). */
    void
    fillGaussianScaled(std::span<double> out,
                       std::span<const double> stddevs, double mean = 0.0)
    {
        assert(out.size() == stddevs.size());
        for (size_t i = 0; i < out.size(); ++i)
            out[i] = stddevs[i] > 0.0
                         ? standardNormal() * stddevs[i] + mean
                         : mean;
    }

    /** Gaussian draws taken so far (zero-stddev writes not counted). */
    uint64_t drawCount() const { return draws_; }

  private:
    /** 128-layer Ziggurat tables for the standard normal. */
    struct Tables
    {
        uint64_t kn[128];
        double wn[128];
        double fn[128];

        Tables()
        {
            const double m1 = 9223372036854775808.0; // 2^63
            double dn = 3.442619855899;
            double tn = dn;
            const double vn = 9.91256303526217e-3;
            const double q = vn / std::exp(-0.5 * dn * dn);
            kn[0] = static_cast<uint64_t>((dn / q) * m1);
            kn[1] = 0;
            wn[0] = q / m1;
            wn[127] = dn / m1;
            fn[0] = 1.0;
            fn[127] = std::exp(-0.5 * dn * dn);
            for (int i = 126; i >= 1; --i) {
                dn = std::sqrt(-2.0 * std::log(vn / dn +
                                               std::exp(-0.5 * dn * dn)));
                kn[i + 1] = static_cast<uint64_t>((dn / tn) * m1);
                tn = dn;
                fn[i] = std::exp(-0.5 * dn * dn);
                wn[i] = dn / m1;
            }
        }
    };

    static const Tables &
    tables()
    {
        static const Tables t;
        return t;
    }

    /** 53-bit uniform in [0, 1). */
    double
    canonical()
    {
        return static_cast<double>(nextU64() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Uniform in (0, 1] complement trick for the log() tail draws. */
    double
    canonicalNonzero()
    {
        return 1.0 - canonical();
    }

    double
    standardNormal()
    {
        ++draws_;
        const Tables &t = tables();
        constexpr double r = 3.442619855899; ///< base-layer edge
        int64_t hz = static_cast<int64_t>(nextU64());
        size_t iz = static_cast<size_t>(hz & 127);
        // |hz| without signed-overflow UB on INT64_MIN.
        uint64_t ahz = hz < 0 ? 0 - static_cast<uint64_t>(hz)
                              : static_cast<uint64_t>(hz);
        if (ahz < t.kn[iz]) // ~98.8% of draws: one compare, one mul
            return static_cast<double>(hz) * t.wn[iz];
        for (;;) {
            double x = static_cast<double>(hz) * t.wn[iz];
            if (iz == 0) {
                // Base layer: exponential-accept tail beyond r.
                double xt, y;
                do {
                    xt = -std::log(canonicalNonzero()) * (1.0 / r);
                    y = -std::log(canonicalNonzero());
                } while (y + y < xt * xt);
                return hz > 0 ? r + xt : -r - xt;
            }
            // Wedge: accept under the Gaussian between layer edges.
            if (t.fn[iz] + canonical() * (t.fn[iz - 1] - t.fn[iz]) <
                std::exp(-0.5 * x * x))
                return x;
            hz = static_cast<int64_t>(nextU64());
            iz = static_cast<size_t>(hz & 127);
            ahz = hz < 0 ? 0 - static_cast<uint64_t>(hz)
                         : static_cast<uint64_t>(hz);
            if (ahz < t.kn[iz])
                return static_cast<double>(hz) * t.wn[iz];
        }
    }

    uint64_t state_;
    uint64_t draws_ = 0;
};

} // namespace lt

#endif // LT_UTIL_FAST_RNG_HH
