#include "logging.hh"

#include <cstdio>
#include <iostream>

namespace lt {

namespace {
LogLevel g_level = LogLevel::Inform;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace lt
